#!/usr/bin/env python
"""Quickstart: deploy one function on a CPU+DPU machine and invoke it.

Shows the basic Molecule lifecycle: build a heterogeneous worker
machine, deploy a function with CPU and DPU profiles, and watch the
cold -> warm transition and DPU placement.

Run:  python examples/quickstart.py
"""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)


def main():
    # A worker machine: one Xeon host + two Bluefield-1 DPUs, with an
    # OS per PU, XPU-Shim everywhere, and executors xSpawn-ed onto the
    # DPUs (all simulated deterministically).
    molecule = MoleculeRuntime.create(num_dpus=2)
    print("machine topology:")
    print(molecule.machine.describe())

    # A Python image-processing function, deployable on CPU *or* DPU.
    # Molecule boots a dedicated template container per PU so later
    # instances start via cfork instead of a full cold boot.
    function = FunctionDef(
        name="image-resize",
        code=FunctionCode(
            "image-resize",
            language=Language.PYTHON,
            import_ms=12.8,   # PIL import, pre-loaded by the template
            memory_mb=60.0,
        ),
        work=WorkProfile(warm_exec_ms=14.1),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(function)

    print("\ninvocations:")
    cold = molecule.invoke_now("image-resize")
    print(f"  cold  on {cold.pu_name}: {cold.total_ms:7.2f} ms "
          f"(startup {cold.startup_s * 1e3:.2f} ms via cfork)")

    warm = molecule.invoke_now("image-resize")
    print(f"  warm  on {warm.pu_name}: {warm.total_ms:7.2f} ms "
          f"(instance cache hit)")

    dpu = molecule.invoke_now("image-resize", kind=PuKind.DPU)
    print(f"  cold  on {dpu.pu_name}: {dpu.total_ms:7.2f} ms "
          f"(remote cfork over nIPC, slower ARM cores)")

    dpu_warm = molecule.invoke_now("image-resize", kind=PuKind.DPU)
    print(f"  warm  on {dpu_warm.pu_name}: {dpu_warm.total_ms:7.2f} ms")

    print(f"\nbilling (credit units): cpu={warm.billed_cost:.1f} "
          f"dpu={dpu_warm.billed_cost:.1f} (DPU is the cheaper price class)")
    pool = molecule.invoker.pools[0]
    print(f"warm-pool hit rate on the host: {pool.hit_rate:.0%}")


if __name__ == "__main__":
    main()
