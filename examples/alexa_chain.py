#!/usr/bin/env python
"""The Alexa smart-home skill as a cross-PU function chain.

Five Node.js functions (frontend -> interact -> smarthome -> door ->
light) run as a serverless DAG.  Molecule connects them with
direct-connect FIFOs — local IPC on the same PU, neighbour IPC across
PUs — while the baseline hops through Express over HTTP.

Run:  python examples/alexa_chain.py
"""

from repro.baselines import MoleculeHomo
from repro.core import MoleculeRuntime
from repro.hardware import specs
from repro.workloads import serverlessbench


def show(label, result):
    edges = ", ".join(f"{edge * 1e3:.2f}" for edge in result.edge_latencies_s)
    print(f"  {label:<22} total {result.total_ms:6.2f} ms   edges [{edges}] ms")


def main():
    chain = serverlessbench.alexa_chain()

    print("baseline (Molecule-homo, Express HTTP hops):")
    for label, spec in (("CPU only", specs.XEON_8160), ("DPU only", specs.BLUEFIELD1)):
        homo = MoleculeHomo(pu_spec=spec)
        for function in serverlessbench.alexa_functions():
            homo.deploy(function)
        show(label, homo.run_chain_now(chain))

    print("\nMolecule (direct-connect IPC / nIPC):")
    molecule = MoleculeRuntime.create(num_dpus=1)
    for function in serverlessbench.alexa_functions():
        molecule.deploy_now(function)
    cpu = molecule.machine.host_cpu
    dpu = molecule.machine.pu(1)
    for label, placements in (
        ("CPU only", [cpu] * 5),
        ("DPU only", [dpu] * 5),
        ("cross-PU (alternate)", [cpu, dpu, cpu, dpu, cpu]),
    ):
        molecule.run(molecule.dag.prepare(chain, placements))
        show(label, molecule.run(molecule.run_chain(chain, placements)))

    print("\nEvery inter-function edge drops from milliseconds (HTTP)"
          " to ~0.2-0.5 ms (FIFO write/read), even across PUs.")


if __name__ == "__main__":
    main()
