#!/usr/bin/env python
"""Pay-as-you-go billing and energy efficiency across PU kinds.

§4.1: Molecule prices PUs differently (DPU cheapest, FPGA dearest) and
users pick profiles by price and capability.  §6.6 adds that DPUs
promise better energy efficiency despite slower cores.  This example
runs the same function on CPU and DPU and compares the bill and the
marginal energy per request, then lets a cost-aware policy choose.

Run:  python examples/billing_and_energy.py
"""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.policies import CostAwarePolicy
from repro.hardware.power import EnergyMeter, energy_per_request


def main():
    molecule = MoleculeRuntime.create(num_dpus=1)
    function = FunctionDef(
        name="pyaes",
        code=FunctionCode("pyaes", language=Language.PYTHON, memory_mb=60),
        work=WorkProfile(warm_exec_ms=19.5),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(function)

    cpu_meter = EnergyMeter(molecule.machine.host_cpu)
    dpu_meter = EnergyMeter(molecule.machine.pu(1))

    requests = 20
    for _ in range(requests):
        molecule.invoke_now("pyaes", kind=PuKind.CPU)
        molecule.invoke_now("pyaes", kind=PuKind.DPU)

    ledger = molecule.ledger
    cpu_bill = ledger.by_pu_kind(PuKind.CPU)
    dpu_bill = ledger.by_pu_kind(PuKind.DPU)
    print(f"{requests} requests per PU kind:")
    print(f"  CPU: {cpu_bill.billed_ms:5d} billed ms -> {cpu_bill.cost:8.1f} credits, "
          f"{energy_per_request(cpu_meter, requests):6.2f} J/request")
    print(f"  DPU: {dpu_bill.billed_ms:5d} billed ms -> {dpu_bill.cost:8.1f} credits, "
          f"{energy_per_request(dpu_meter, requests):6.2f} J/request")
    print("\nThe DPU draws ~10x less marginal power, so even running ~6x"
          " longer it uses less energy per request -- but at these prices"
          " the *bill* still favours the CPU, since billed time grows"
          " faster than the price class shrinks.")

    policy = CostAwarePolicy(ledger)
    order = policy.kind_order(function)
    print(f"\ncost-aware profile selection for 'pyaes': "
          f"{[kind.value for kind in order]} "
          f"(ledger-observed cheapest first)")

    cheapest = ledger.cheapest_kind_for("pyaes")
    per_inv_cpu = cpu_bill.cost / cpu_bill.invocations
    per_inv_dpu = dpu_bill.cost / dpu_bill.invocations
    print(f"observed cost/invocation: cpu {per_inv_cpu:.1f} vs dpu {per_inv_dpu:.1f} "
          f"-> winner: {cheapest.value}")


if __name__ == "__main__":
    main()
