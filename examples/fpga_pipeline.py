#!/usr/bin/env python
"""FPGA serverless functions: vectorized sandboxes, caching, GZip.

Demonstrates the runf runtime: packing a vector of kernels into one
bitstream, warm-vs-cold FPGA starts, the zero-copy function chain via
DRAM data retention, and the GZip application's CPU/FPGA crossover.

Run:  python examples/fpga_pipeline.py
"""

from repro import MoleculeRuntime, PuKind, Simulator, build_cpu_fpga_machine
from repro.core import run_fpga_chain
from repro.sandbox import FunctionCode, RunfRuntime
from repro.workloads import fpga_apps


def main():
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1)
    molecule = MoleculeRuntime(sim, machine)
    molecule.start()

    # Deploy the three matrix kernels; the image planner packs several
    # instances of each into one bitstream on the first request.
    for function in fpga_apps.matrix_functions():
        molecule.deploy_now(function)

    print("matrix kernels (cold = program image, warm = cached):")
    for name in ("mscale", "madd", "vmult"):
        cold = molecule.invoke_now(name, kind=PuKind.FPGA)
        warm = molecule.invoke_now(name, kind=PuKind.FPGA)
        print(f"  {name:<7} cold {cold.total_ms:8.1f} ms   "
              f"warm {warm.total_ms:7.2f} ms   "
              f"({'cache hit' if not warm.cold else 'miss'})")
    runf = molecule.runf_on(machine.pu(1).pu_id)
    print(f"  resident kernels in the current image: "
          f"{runf.resident_function_ids}")
    print(f"  device programmed {runf.device.program_count} time(s), "
          f"erased {runf.device.erase_count} time(s) (no-erase optimisation)")

    # A five-stage vector chain: per-hop copying vs DRAM data retention.
    sim2 = Simulator()
    machine2 = build_cpu_fpga_machine(sim2, num_fpgas=1)
    runf2 = RunfRuntime(sim2, machine2.fpga_device(machine2.pu(1)))
    kernels = fpga_apps.vector_chain_kernels(5)
    entries = [(f"s{i}", FunctionCode(k.name, kernel=k)) for i, k in enumerate(kernels)]

    def setup(sim):
        yield from runf2.create_vector(entries)
        for sid, _ in entries:
            yield from runf2.start(sid)

    proc = sim2.spawn(setup(sim2))
    sim2.run()
    print("\nfive-function FPGA chain (Fig. 13):")
    for mode in ("copying", "shm"):
        proc = sim2.spawn(run_fpga_chain(runf2, [s for s, _ in entries], mode=mode))
        sim2.run()
        print(f"  {mode:<8} {proc.value * 1e6:7.1f} us")

    # GZip: the CPU wins on small files, the FPGA above the crossover.
    print("\nGZip CPU vs FPGA (end-to-end):")
    from repro.analysis import experiments

    sweep = experiments.fig14f_gzip(sizes_mb=(1.0, 25.0, 112.0))
    for size, cpu, fpga in zip(sweep.inputs, sweep.cpu_ms, sweep.fpga_ms):
        winner = "FPGA" if fpga < cpu else "CPU"
        print(f"  {size:6.1f} MB   cpu {cpu:8.1f} ms   fpga {fpga:7.1f} ms   -> {winner}")


if __name__ == "__main__":
    main()
