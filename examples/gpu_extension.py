#!/usr/bin/env python
"""Generality (§6.8): adding a GPU to Molecule.

The paper argues a new PU needs only three pieces: a vectorized
sandbox runtime (runG, over CUDA), an XPU-Shim instance (the generic
virtual shim on the host), and a programming model (CUDA C++ kernels).
This example builds a CPU+DPU+FPGA+GPU machine and runs one function on
each PU kind.

Run:  python examples/gpu_extension.py
"""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.hardware import FabricResources, KernelSpec


def main():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=1)
    molecule = MoleculeRuntime(sim, machine)
    molecule.start()

    print("support matrix (Table 5):")
    for name, row in molecule.support_matrix().items():
        print(f"  {name:<7} {row['kind']:<5} sandbox={row['vectorized_sandbox']:<16} "
              f"shim={row['xpu_shim']:<15} model={row['programming_model']}")

    # One vector-add function with *four* profiles: the user lets the
    # platform choose the PU per request.
    kernel = KernelSpec(
        "vecadd",
        resources=FabricResources(luts=2500, regs=4200, brams=8, dsps=16),
        exec_time_s=200e-6,
    )
    function = FunctionDef(
        name="vecadd",
        code=FunctionCode(
            "vecadd", language=Language.PYTHON, kernel=kernel, memory_mb=60
        ),
        work=WorkProfile(
            warm_exec_ms=2.0,       # CPU
            fpga_exec_ms=0.25,      # FPGA kernel
            gpu_exec_ms=0.20,       # CUDA kernel
        ),
        profiles=(PuKind.CPU, PuKind.DPU, PuKind.FPGA, PuKind.GPU),
    )
    molecule.deploy_now(function)

    print("\nvecadd on every PU kind (cold, then warm):")
    for kind in (PuKind.CPU, PuKind.DPU, PuKind.FPGA, PuKind.GPU):
        cold = molecule.invoke_now("vecadd", kind=kind)
        warm = molecule.invoke_now("vecadd", kind=kind)
        print(f"  {kind.value:<5} cold {cold.total_ms:9.2f} ms   "
              f"warm {warm.total_ms:7.3f} ms   on {warm.pu_name}")

    print("\nGPU functions coexist with CPU/DPU/FPGA ones under the same"
          " gateway, scheduler, and vectorized-sandbox abstraction.")


if __name__ == "__main__":
    main()
