#!/usr/bin/env python
"""A fleet of heterogeneous workers behind one global manager.

§4.1: the API Gateway schedules instances onto machines offering at
least one of the function's required PU kinds.  This example builds
three workers — two CPU+DPU boxes and one CPU+FPGA box — deploys mixed
functions, and replays a skewed trace through the fleet.

Run:  python examples/fleet.py
"""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
    build_cpu_fpga_machine,
)
from repro.core.cluster import GlobalManager
from repro.hardware import FabricResources, KernelSpec
from repro.sim import SeededRng
from repro.workloads import AzureLikeTrace


def main():
    manager = GlobalManager()
    manager.build_worker("worker-1", num_dpus=1)
    manager.build_worker("worker-2", num_dpus=2)
    fpga_machine = build_cpu_fpga_machine(manager.sim, num_fpgas=1)
    fpga_runtime = MoleculeRuntime(manager.sim, fpga_machine)
    fpga_runtime.start()
    manager.add_worker("fpga-box", fpga_runtime)

    print("fleet:")
    for worker in manager.workers:
        kinds = sorted(kind.value for kind in worker.pu_kinds())
        print(f"  {worker.name:<9} PU kinds: {kinds}")

    # General-purpose functions land on the CPU+DPU workers...
    for index in range(4):
        manager.deploy_now(FunctionDef(
            name=f"api-{index}",
            code=FunctionCode(f"api-{index}", language=Language.PYTHON, memory_mb=60),
            work=WorkProfile(warm_exec_ms=8.0),
            profiles=(PuKind.CPU, PuKind.DPU),
        ))
    # ... the FPGA kernel only fits the FPGA box.
    manager.deploy_now(FunctionDef(
        name="encode",
        code=FunctionCode(
            "encode",
            kernel=KernelSpec("encode", FabricResources(luts=9000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=20.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA,),
    ))

    result = manager.invoke_now("encode")
    print(f"\n'encode' routed to the FPGA box: pu={result.pu_name} "
          f"({result.pu_kind.value}), cold={result.cold}")

    trace = AzureLikeTrace(
        [f"api-{i}" for i in range(4)],
        peak_rate_per_s=40.0,
        rng=SeededRng(17),
    )

    def invoke(name):
        return manager.invoke(name)

    proc = manager.sim.spawn(
        trace.replay(manager.sim, invoke, duration_s=10.0)
    )
    manager.sim.run()

    print("\nrouting after a 10s skewed trace:")
    for name, count in sorted(manager.routed.items()):
        print(f"  {name:<9} {count:4d} requests")
    for worker in manager.workers:
        invoker = worker.runtime.invoker
        total = invoker.cold_invocations + invoker.warm_invocations
        if total:
            rate = invoker.warm_invocations / total
            print(f"  {worker.name:<9} warm-hit rate {rate:.0%}")


if __name__ == "__main__":
    main()
