#!/usr/bin/env python
"""Vertical scaling: how many concurrent instances fit per machine?

Reproduces the Fig. 2a experiment interactively: the scheduler admits
instances (reserving their DRAM) until every PU is full, for machines
with zero, one and two DPUs — and then shows what a burst of Poisson
traffic does to the warm pools.

Run:  python examples/density_scaling.py
"""

from repro import MoleculeRuntime, PuKind, Simulator, build_cpu_dpu_machine
from repro.core.scheduler import Scheduler
from repro.errors import SchedulingError
from repro.workloads import PoissonGenerator, functionbench


def main():
    function = functionbench.spec("image_resize").to_function()

    print("instance density by machine configuration (Fig. 2a):")
    for label, num_dpus in (("CPU only", 0), ("CPU + 1 DPU", 1), ("CPU + 2 DPU", 2)):
        sim = Simulator()
        machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
        scheduler = Scheduler(machine)
        placed = 0
        per_pu: dict[str, int] = {}
        while True:
            try:
                pu = scheduler.place(function)
            except SchedulingError:
                break
            placed += 1
            per_pu[pu.name] = per_pu.get(pu.name, 0) + 1
        print(f"  {label:<13} {placed:5d} instances  {per_pu}")

    # Drive real traffic: a Poisson arrival stream against a deployed
    # runtime, watching utilisation and the warm pool.
    print("\n200 req/s Poisson burst for 2 simulated seconds:")
    molecule = MoleculeRuntime.create(num_dpus=2)
    molecule.deploy_now(function)
    generator = PoissonGenerator(molecule.sim, rate_per_s=200.0)

    def invoke():
        yield from molecule.invoke("image_resize")

    molecule.run(generator.run(invoke, duration_s=2.0))
    trace = generator.trace
    latencies_ms = sorted(latency * 1e3 for latency in trace.latencies_s)
    p50 = latencies_ms[len(latencies_ms) // 2]
    p99 = latencies_ms[int(len(latencies_ms) * 0.99)]
    print(f"  completed {trace.completed} requests "
          f"(p50 {p50:.1f} ms, p99 {p99:.1f} ms)")
    print(f"  cold starts: {molecule.invoker.cold_invocations}, "
          f"warm hits: {molecule.invoker.warm_invocations}")
    print(f"  host CPU utilisation: "
          f"{molecule.machine.host_cpu.clock.utilization():.1%}")


if __name__ == "__main__":
    main()
