"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "fig2a"]) == 0
    out = capsys.readouterr().out
    assert "=== fig2a ===" in out
    assert "1000" in out and "1512" in out


def test_run_multiple_experiments(capsys):
    assert main(["run", "fig2b", "table4"]) == 0
    out = capsys.readouterr().out
    assert "=== fig2b ===" in out
    assert "=== table4 ===" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "fig2a" in err  # lists the valid names


def test_report_emits_markdown(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# EXPERIMENTS")
    assert "Figure 11a" in out


def test_all_printers_run(capsys):
    # Smoke: every registered experiment prints without raising.
    for name in EXPERIMENTS:
        EXPERIMENTS[name]()
    out = capsys.readouterr().out
    assert len(out) > 1000


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_metrics_prints_tables_and_exposition(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert "== start kinds ==" in out
    assert "== lifecycle phases ==" in out
    assert "# TYPE repro_request_seconds histogram" in out
    # The demo exercises all three start paths.
    for kind in ("cold", "fork", "warm"):
        assert f'repro_starts_total{{start_kind="{kind}"}}' in out


def test_metrics_json_is_parseable(capsys):
    import json

    assert main(["metrics", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["requests_admitted"] == 4
    assert "repro_phase_seconds" in snapshot["metrics"]
