"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "fig2a"]) == 0
    out = capsys.readouterr().out
    assert "=== fig2a ===" in out
    assert "1000" in out and "1512" in out


def test_run_multiple_experiments(capsys):
    assert main(["run", "fig2b", "table4"]) == 0
    out = capsys.readouterr().out
    assert "=== fig2b ===" in out
    assert "=== table4 ===" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "fig2a" in err  # lists the valid names


def test_report_emits_markdown(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# EXPERIMENTS")
    assert "Figure 11a" in out


def test_all_printers_run(capsys):
    # Smoke: every registered experiment prints without raising.
    for name in EXPERIMENTS:
        EXPERIMENTS[name]()
    out = capsys.readouterr().out
    assert len(out) > 1000


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_metrics_prints_tables_and_exposition(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert "== start kinds ==" in out
    assert "== lifecycle phases ==" in out
    assert "# TYPE repro_request_seconds histogram" in out
    # The demo exercises all three start paths.
    for kind in ("cold", "fork", "warm"):
        assert f'repro_starts_total{{start_kind="{kind}"}}' in out


def test_metrics_json_is_parseable(capsys):
    import json

    assert main(["metrics", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["requests_admitted"] == 4
    assert "repro_phase_seconds" in snapshot["metrics"]


def test_load_quick_writes_report(capsys, tmp_path):
    out_file = tmp_path / "BENCH_load.json"
    assert main([
        "load", "--scenario", "burst", "--quick", "--seed", "11",
        "--output", str(out_file),
    ]) == 0
    out = capsys.readouterr().out
    assert "scenario burst" in out
    assert f"wrote {out_file}" in out
    import json

    report = json.loads(out_file.read_text())
    assert report["schema"] == "repro-load/1"
    assert report["load"]["answered"] > 0


def test_load_json_output_is_parseable(capsys, tmp_path):
    import json

    assert main([
        "load", "--scenario", "poisson", "--quick", "--seed", "11",
        "--json", "--output", str(tmp_path / "b.json"),
    ]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[: out.rindex("}") + 1])
    assert "host" not in payload  # stripped for deterministic output
    assert payload["latency"]["end_to_end"]["count"] > 0


def test_load_unknown_scenario_exits_2(capsys, tmp_path):
    assert main([
        "load", "--scenario", "bogus", "--quick",
        "--output", str(tmp_path / "b.json"),
    ]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err
    assert "poisson" in err  # lists the valid scenarios


def test_load_compare_same_run_has_no_regressions(capsys, tmp_path):
    first = tmp_path / "base.json"
    assert main([
        "load", "--scenario", "poisson", "--quick", "--seed", "11",
        "--output", str(first),
    ]) == 0
    capsys.readouterr()
    assert main([
        "load", "--scenario", "poisson", "--quick", "--seed", "11",
        "--output", str(tmp_path / "again.json"),
        "--compare", str(first), "--fail-on-regression",
    ]) == 0
    assert "no regressions" in capsys.readouterr().out
