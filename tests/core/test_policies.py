"""Tests for profile-selection policies."""

import pytest

from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
from repro.core.billing import BillingLedger
from repro.core.policies import (
    ChainLocalityPolicy,
    CheapestPolicy,
    CostAwarePolicy,
    FastestPolicy,
    UserOrderPolicy,
    choose_pu,
)
from repro.errors import SchedulingError
from repro.hardware import ProcessingUnit, build_cpu_dpu_machine, specs
from repro.sim import Simulator


def fn(profiles=(PuKind.CPU, PuKind.DPU), warm_ms=10.0):
    return FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=warm_ms),
        profiles=profiles,
    )


def test_user_order_policy_preserves_profiles():
    policy = UserOrderPolicy()
    assert policy.kind_order(fn((PuKind.DPU, PuKind.CPU))) == [PuKind.DPU, PuKind.CPU]


def test_cheapest_policy_puts_dpu_first():
    policy = CheapestPolicy()
    assert policy.kind_order(fn((PuKind.CPU, PuKind.DPU))) == [PuKind.DPU, PuKind.CPU]


def test_fastest_policy_puts_cpu_first():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    policy = FastestPolicy(machine)
    assert policy.kind_order(fn((PuKind.DPU, PuKind.CPU))) == [PuKind.CPU, PuKind.DPU]


def test_cost_aware_policy_uses_ledger_history():
    sim = Simulator()
    cpu = ProcessingUnit(sim, 0, "cpu0", specs.XEON_8160)
    dpu = ProcessingUnit(sim, 1, "dpu0", specs.BLUEFIELD1)
    ledger = BillingLedger()
    policy = CostAwarePolicy(ledger)
    # No history: falls back to price order (DPU first).
    assert policy.kind_order(fn())[0] is PuKind.DPU
    # History shows CPU was cheaper for this function (it ran 10x faster).
    ledger.charge(1, "f", cpu, 0.010)
    ledger.charge(2, "f", dpu, 0.100)
    assert policy.kind_order(fn())[0] is PuKind.CPU


def test_chain_locality_pins_and_unpins():
    policy = ChainLocalityPolicy(UserOrderPolicy())
    function = fn((PuKind.CPU, PuKind.DPU))
    policy.pin_chain(["f"], PuKind.DPU)
    assert policy.kind_order(function)[0] is PuKind.DPU
    policy.unpin_chain(["f"])
    assert policy.kind_order(function)[0] is PuKind.CPU


def test_chain_locality_rejects_invalid_pin():
    policy = ChainLocalityPolicy(UserOrderPolicy())
    policy.pin_chain(["f"], PuKind.FPGA)
    with pytest.raises(SchedulingError):
        policy.kind_order(fn((PuKind.CPU,)))


def test_choose_pu_respects_capacity_predicate():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    function = fn((PuKind.DPU, PuKind.CPU))
    # DPU "full": falls through to the CPU.
    chosen = choose_pu(
        machine,
        UserOrderPolicy(),
        function,
        has_capacity=lambda pu: pu.kind is PuKind.CPU,
    )
    assert chosen is machine.host_cpu
    assert choose_pu(machine, UserOrderPolicy(), function, lambda pu: False) is None
