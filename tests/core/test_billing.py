"""Tests for the pay-as-you-go billing ledger."""

import pytest

from repro.core.billing import BillingError, BillingLedger
from repro.hardware import ProcessingUnit, PuKind, specs
from repro.sim import Simulator


@pytest.fixture
def pus():
    sim = Simulator()
    return {
        "cpu": ProcessingUnit(sim, 0, "cpu0", specs.XEON_8160),
        "dpu": ProcessingUnit(sim, 1, "dpu0", specs.BLUEFIELD1),
        "fpga": ProcessingUnit(sim, 2, "fpga0", specs.ULTRASCALE_PLUS),
    }


def test_charge_records_entry(pus):
    ledger = BillingLedger()
    entry = ledger.charge(1, "f", pus["cpu"], duration_s=0.010)
    assert entry.billed_ms == 10
    assert entry.cost == pytest.approx(10 * 1.0)
    assert len(ledger) == 1


def test_one_ms_minimum_granularity(pus):
    # §1: billing granularity is 1ms.
    ledger = BillingLedger()
    tiny = ledger.charge(1, "f", pus["cpu"], duration_s=0.0001)
    assert tiny.billed_ms == 1


def test_negative_duration_rejected(pus):
    with pytest.raises(BillingError):
        BillingLedger().charge(1, "f", pus["cpu"], duration_s=-1.0)


def test_price_classes_affect_cost(pus):
    ledger = BillingLedger()
    cpu = ledger.charge(1, "f", pus["cpu"], 0.010)
    dpu = ledger.charge(2, "f", pus["dpu"], 0.010)
    fpga = ledger.charge(3, "f", pus["fpga"], 0.010)
    assert dpu.cost < cpu.cost < fpga.cost


def test_summaries(pus):
    ledger = BillingLedger()
    ledger.charge(1, "a", pus["cpu"], 0.010)
    ledger.charge(2, "a", pus["dpu"], 0.010)
    ledger.charge(3, "b", pus["cpu"], 0.020)
    total = ledger.total()
    assert total.invocations == 3
    assert total.billed_ms == 40
    assert ledger.by_function("a").invocations == 2
    assert ledger.by_pu_kind(PuKind.CPU).billed_ms == 30


def test_summary_merge(pus):
    ledger = BillingLedger()
    ledger.charge(1, "a", pus["cpu"], 0.010)
    ledger.charge(2, "b", pus["cpu"], 0.020)
    merged = ledger.by_function("a").merged(ledger.by_function("b"))
    assert merged.invocations == 2
    assert merged.billed_ms == 30


def test_cheapest_kind_for(pus):
    ledger = BillingLedger()
    # Same wall time: DPU is cheaper per ms.
    ledger.charge(1, "f", pus["cpu"], 0.010)
    ledger.charge(2, "f", pus["dpu"], 0.010)
    assert ledger.cheapest_kind_for("f") is PuKind.DPU
    assert ledger.cheapest_kind_for("ghost") is None


def test_runtime_charges_ledger_per_invocation():
    from repro import (
        FunctionCode, FunctionDef, Language, MoleculeRuntime, PuKind, WorkProfile,
    )

    runtime = MoleculeRuntime.create(num_dpus=0)
    runtime.deploy_now(
        FunctionDef(
            name="f",
            code=FunctionCode("f", language=Language.PYTHON),
            work=WorkProfile(warm_exec_ms=10.0),
            profiles=(PuKind.CPU,),
        )
    )
    result = runtime.invoke_now("f")
    runtime.invoke_now("f")
    assert len(runtime.ledger) == 2
    assert runtime.ledger.total().cost > 0
    assert result.billed_cost == runtime.ledger.entries[0].cost
