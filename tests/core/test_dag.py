"""Tests for function chains and direct-connect DAG communication."""

import pytest

from repro import (
    Chain,
    ChainStage,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import SchedulingError, WorkloadError


def chain_fn(name):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.NODEJS),
        work=WorkProfile(warm_exec_ms=3.78, dpu_slowdown=2.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )


@pytest.fixture
def runtime():
    molecule = MoleculeRuntime.create(num_dpus=2)
    for i in range(5):
        molecule.deploy_now(chain_fn(f"f{i}"))
    return molecule


ALEXA = Chain("alexa", tuple(ChainStage(f"f{i}", 1024) for i in range(5)))


def test_chain_requires_stages():
    with pytest.raises(WorkloadError):
        Chain("empty", ())


def test_chain_edges():
    assert ALEXA.edges == [("f0", "f1"), ("f1", "f2"), ("f2", "f3"), ("f3", "f4")]
    assert ALEXA.function_names == [f"f{i}" for i in range(5)]


def test_run_chain_requires_prepared_instances(runtime):
    cpu = runtime.machine.host_cpu
    with pytest.raises(SchedulingError, match="no warm instance"):
        runtime.run(runtime.run_chain(ALEXA, [cpu] * 5))


def test_run_chain_placement_mismatch_rejected(runtime):
    cpu = runtime.machine.host_cpu
    with pytest.raises(SchedulingError):
        runtime.run(runtime.run_chain(ALEXA, [cpu] * 3))


def test_cpu_only_chain_edges_around_200us(runtime):
    # Fig. 12a: Molecule same-PU edges land around 0.2ms.
    cpu = runtime.machine.host_cpu
    placements = [cpu] * 5
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    result = runtime.run(runtime.run_chain(ALEXA, placements))
    assert len(result.edge_latencies_s) == 4
    for edge in result.edge_latencies_s:
        assert 0.1e-3 < edge < 0.4e-3


def test_dpu_only_chain_edges_slower_but_sub_ms(runtime):
    # Fig. 12b: DPU-DPU edges are higher but still well under 1ms.
    dpu = runtime.machine.pu(1)
    placements = [dpu] * 5
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    result = runtime.run(runtime.run_chain(ALEXA, placements))
    cpu_like = 0.19e-3
    for edge in result.edge_latencies_s:
        assert cpu_like < edge < 1.0e-3


def test_cross_pu_chain_uses_nipc(runtime):
    # Fig. 12c/d: cross-PU edges pay nIPC, still ~0.3ms.
    cpu, dpu = runtime.machine.host_cpu, runtime.machine.pu(1)
    placements = [cpu, dpu, cpu, dpu, cpu]
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    result = runtime.run(runtime.run_chain(ALEXA, placements))
    for edge in result.edge_latencies_s:
        assert 0.15e-3 < edge < 0.6e-3


def test_chain_total_includes_exec_and_comm(runtime):
    cpu = runtime.machine.host_cpu
    placements = [cpu] * 5
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    result = runtime.run(runtime.run_chain(ALEXA, placements))
    assert result.exec_s == pytest.approx(5 * 3.78e-3, rel=0.01)
    assert result.comm_s > 0
    assert result.total_s == pytest.approx(result.exec_s + result.comm_s)


def test_chain_reuses_instances_across_requests(runtime):
    cpu = runtime.machine.host_cpu
    placements = [cpu] * 5
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    cold_boots_before = runtime.runc_on(0).cforks
    runtime.run(runtime.run_chain(ALEXA, placements))
    runtime.run(runtime.run_chain(ALEXA, placements))
    assert runtime.runc_on(0).cforks == cold_boots_before  # no new forks


def test_chain_placements_recorded(runtime):
    cpu, dpu = runtime.machine.host_cpu, runtime.machine.pu(1)
    placements = [cpu, dpu, cpu, dpu, cpu]
    runtime.run(runtime.dag.prepare(ALEXA, placements))
    result = runtime.run(runtime.run_chain(ALEXA, placements))
    assert result.placements == ["cpu0", "dpu0", "cpu0", "dpu0", "cpu0"]


def test_fpga_chain_shm_beats_copying():
    # Fig. 13: data retention (shm) ~2x better at 5 chained functions.
    from repro.core import run_fpga_chain
    from repro.hardware import (
        FabricResources,
        KernelSpec,
        build_cpu_fpga_machine,
    )
    from repro.sandbox import FunctionCode as FC, RunfRuntime
    from repro.sim import Simulator

    def build(mode):
        sim = Simulator()
        machine = build_cpu_fpga_machine(sim, num_fpgas=1)
        runf = RunfRuntime(sim, machine.fpga_device(machine.pu(1)))
        entries = [
            (
                f"s{i}",
                FC(
                    f"vec{i}",
                    kernel=KernelSpec(
                        f"vec{i}", FabricResources(luts=1000), exec_time_s=50e-6
                    ),
                ),
            )
            for i in range(5)
        ]
        def setup(sim):
            yield from runf.create_vector(entries)
            for sid, _ in entries:
                yield from runf.start(sid)
        p = sim.spawn(setup(sim))
        sim.run()
        run_proc = sim.spawn(
            run_fpga_chain(runf, [sid for sid, _ in entries], mode=mode)
        )
        sim.run()
        return run_proc.value

    copying = build("copying")
    shm = build("shm")
    assert 1.5 < copying / shm < 2.5


def test_fpga_chain_invalid_mode_rejected():
    from repro.core import run_fpga_chain
    from repro.hardware import build_cpu_fpga_machine
    from repro.sandbox import RunfRuntime
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1)
    runf = RunfRuntime(sim, machine.fpga_device(machine.pu(1)))
    with pytest.raises(WorkloadError):
        proc = sim.spawn(run_fpga_chain(runf, ["x"], mode="bogus"))
        sim.run()


def test_fpga_chain_shm_requires_retention():
    from repro.core import run_fpga_chain
    from repro.hardware import build_cpu_fpga_machine
    from repro.sandbox import RunfRuntime
    from repro.sim import Simulator

    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1, data_retention=False)
    runf = RunfRuntime(sim, machine.fpga_device(machine.pu(1)))
    with pytest.raises(WorkloadError):
        proc = sim.spawn(run_fpga_chain(runf, ["x"], mode="shm"))
        sim.run()
