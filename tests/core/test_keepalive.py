"""Tests for warm pools and FPGA image planning."""

import pytest

from repro.core.keepalive import FpgaImagePlanner, WarmPool
from repro.errors import SchedulingError


class FakeInstance:
    def __init__(self, name):
        self.function = type("F", (), {"name": name})()


def test_pool_miss_then_hit():
    pool = WarmPool(capacity=4)
    assert pool.acquire("f") is None
    inst = FakeInstance("f")
    pool.release(inst)
    assert pool.acquire("f") is inst
    assert pool.hits == 1 and pool.misses == 1
    assert pool.hit_rate == 0.5


def test_pool_lru_eviction():
    pool = WarmPool(capacity=2)
    a, b, c = FakeInstance("a"), FakeInstance("b"), FakeInstance("c")
    assert pool.release(a) == []
    assert pool.release(b) == []
    evicted = pool.release(c)
    assert evicted == [a]  # least recently used function evicted
    assert len(pool) == 2


def test_pool_acquire_refreshes_lru():
    pool = WarmPool(capacity=2)
    a, b = FakeInstance("a"), FakeInstance("b")
    pool.release(a)
    pool.release(b)
    got = pool.acquire("a")  # refresh a
    pool.release(got)
    evicted = pool.release(FakeInstance("c"))
    assert evicted[0].function.name == "b"


def test_pool_drop_all():
    pool = WarmPool(capacity=8)
    for _ in range(3):
        pool.release(FakeInstance("f"))
    dropped = pool.drop_all("f")
    assert len(dropped) == 3
    assert len(pool) == 0


def test_pool_invalid_capacity():
    with pytest.raises(SchedulingError):
        WarmPool(capacity=0)


def test_pool_hit_rate_empty_is_zero():
    assert WarmPool().hit_rate == 0.0


# -- FPGA image planner -----------------------------------------------------------


def test_planner_packs_paper_wrapper_12_instances():
    # Table 4: 4 copies each of 3 kernels = 12 instances in one image.
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan(["madd", "mmult", "mscale"])
    assert plan.func_names == ("madd", "mmult", "mscale")
    assert plan.copies_each == 4


def test_planner_reduces_copies_for_many_functions():
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan([f"k{i}" for i in range(6)])
    assert len(plan.func_names) * plan.copies_each <= 12
    assert plan.copies_each >= 1


def test_planner_drops_least_recent_when_overfull():
    planner = FpgaImagePlanner(copies_each=1, max_instances=2)
    plan = planner.plan(["a", "b", "c"])
    assert plan.func_names == ("a", "b")


def test_planner_dedupes_predictions():
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan(["a", "a", "b"])
    assert plan.func_names == ("a", "b")


def test_planner_empty_prediction_rejected():
    with pytest.raises(SchedulingError):
        FpgaImagePlanner().plan([])


def test_planner_invalid_config_rejected():
    with pytest.raises(SchedulingError):
        FpgaImagePlanner(copies_each=0)
    with pytest.raises(SchedulingError):
        FpgaImagePlanner(copies_each=4, max_instances=2)
