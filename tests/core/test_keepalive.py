"""Tests for warm pools and FPGA image planning."""

import pytest

from repro.core.keepalive import FpgaImagePlanner, WarmPool
from repro.errors import SchedulingError


class FakeInstance:
    def __init__(self, name):
        self.function = type("F", (), {"name": name})()


def test_pool_miss_then_hit():
    pool = WarmPool(capacity=4)
    assert pool.acquire("f") is None
    inst = FakeInstance("f")
    pool.release(inst)
    assert pool.acquire("f") is inst
    assert pool.hits == 1 and pool.misses == 1
    assert pool.hit_rate == 0.5


def test_pool_lru_eviction():
    pool = WarmPool(capacity=2)
    a, b, c = FakeInstance("a"), FakeInstance("b"), FakeInstance("c")
    assert pool.release(a) == []
    assert pool.release(b) == []
    evicted = pool.release(c)
    assert evicted == [a]  # least recently used function evicted
    assert len(pool) == 2


def test_pool_acquire_refreshes_lru():
    pool = WarmPool(capacity=2)
    a, b = FakeInstance("a"), FakeInstance("b")
    pool.release(a)
    pool.release(b)
    got = pool.acquire("a")  # refresh a
    pool.release(got)
    evicted = pool.release(FakeInstance("c"))
    assert evicted[0].function.name == "b"


def test_pool_drop_all():
    pool = WarmPool(capacity=8)
    for _ in range(3):
        pool.release(FakeInstance("f"))
    dropped = pool.drop_all("f")
    assert len(dropped) == 3
    assert len(pool) == 0


def test_pool_invalid_capacity():
    with pytest.raises(SchedulingError):
        WarmPool(capacity=0)


def test_pool_hit_rate_empty_is_zero():
    assert WarmPool().hit_rate == 0.0


def test_pool_acquire_removes_emptied_bucket():
    """Regression: an acquire that drains a bucket must delete it.

    A leftover empty bucket drifts to the LRU front as its neighbours
    are evicted; the eviction loop's ``bucket.pop(0)`` then raised
    IndexError.  This sequence reproduces exactly that drift."""
    pool = WarmPool(capacity=2)
    a, b = FakeInstance("a"), FakeInstance("b")
    pool.release(a)
    pool.release(b)
    assert pool.acquire("a") is a  # empties (and must delete) bucket 'a'
    pool.release(FakeInstance("c"))         # len 2: no eviction yet
    assert pool.release(FakeInstance("d")) == [b]   # evicts oldest 'b'
    # 'a' would now sit at the LRU front if its empty bucket survived;
    # with the old code this release crashed with IndexError.
    evicted = pool.release(FakeInstance("e"))
    assert [i.function.name for i in evicted] == ["c"]
    assert len(pool) == 2


def test_pool_ttl_boundary_idle_equals_ttl_not_reaped():
    """Reaping is strict: an instance idle for exactly the TTL stays."""
    pool = WarmPool(capacity=4, keep_alive_ttl_s=5.0)
    inst = FakeInstance("f")
    pool.release(inst, now=10.0)
    assert pool.reap_expired(now=15.0) == []       # idle == ttl: keep
    assert pool.expired == 0
    assert pool.reap_expired(now=15.0 + 1e-9) == [inst]
    assert pool.expired == 1
    assert len(pool) == 0


def test_pool_ttl_override_beats_pool_ttl():
    pool = WarmPool(capacity=4, keep_alive_ttl_s=100.0)
    pool.ttl_overrides["fast"] = 1.0
    fast, slow = FakeInstance("fast"), FakeInstance("slow")
    pool.release(fast, now=0.0)
    pool.release(slow, now=0.0)
    assert pool.reap_expired(now=2.0) == [fast]
    assert pool.idle_instances("slow") == [slow]


def test_pool_ttl_override_reaps_without_pool_wide_ttl():
    pool = WarmPool(capacity=4)  # no pool-wide TTL
    inst = FakeInstance("f")
    pool.release(inst, now=0.0)
    assert pool.reap_expired(now=100.0) == []      # no TTL applies
    pool.ttl_overrides["f"] = 1.0
    assert pool.reap_expired(now=100.0) == [inst]


def test_pool_hit_rate_interleaved():
    pool = WarmPool(capacity=4)
    assert pool.acquire("f") is None               # miss
    pool.release(FakeInstance("f"))
    assert pool.acquire("f") is not None           # hit
    assert pool.acquire("f") is None               # miss (just drained)
    pool.release(FakeInstance("g"))
    assert pool.acquire("g") is not None           # hit
    assert pool.acquire("h") is None               # miss
    assert pool.hits == 2 and pool.misses == 3
    assert pool.hit_rate == 2 / 5


# -- FPGA image planner -----------------------------------------------------------


def test_planner_packs_paper_wrapper_12_instances():
    # Table 4: 4 copies each of 3 kernels = 12 instances in one image.
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan(["madd", "mmult", "mscale"])
    assert plan.func_names == ("madd", "mmult", "mscale")
    assert plan.copies_each == 4


def test_planner_reduces_copies_for_many_functions():
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan([f"k{i}" for i in range(6)])
    assert len(plan.func_names) * plan.copies_each <= 12
    assert plan.copies_each >= 1


def test_planner_drops_least_recent_when_overfull():
    planner = FpgaImagePlanner(copies_each=1, max_instances=2)
    plan = planner.plan(["a", "b", "c"])
    assert plan.func_names == ("a", "b")


def test_planner_dedupes_predictions():
    planner = FpgaImagePlanner(copies_each=4, max_instances=12)
    plan = planner.plan(["a", "a", "b"])
    assert plan.func_names == ("a", "b")


def test_planner_empty_prediction_rejected():
    with pytest.raises(SchedulingError):
        FpgaImagePlanner().plan([])


def test_planner_invalid_config_rejected():
    with pytest.raises(SchedulingError):
        FpgaImagePlanner(copies_each=0)
    with pytest.raises(SchedulingError):
        FpgaImagePlanner(copies_each=4, max_instances=2)
