"""Tests for the function registry and work profiles."""

import pytest

from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
from repro.core.registry import FunctionRegistry
from repro.errors import RegistryError, WorkloadError
from repro.hardware import FabricResources, KernelSpec, ProcessingUnit, specs
from repro.sim import Simulator


def py_fn(name="f", **kwargs):
    defaults = dict(
        code=FunctionCode(name, language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=10.0),
        profiles=(PuKind.CPU,),
    )
    defaults.update(kwargs)
    return FunctionDef(name=name, **defaults)


def test_register_and_get():
    registry = FunctionRegistry()
    fn = py_fn("hello")
    registry.register(fn)
    assert registry.get("hello") is fn
    assert "hello" in registry
    assert len(registry) == 1
    assert registry.names() == ["hello"]


def test_duplicate_registration_rejected():
    registry = FunctionRegistry()
    registry.register(py_fn("x"))
    with pytest.raises(RegistryError):
        registry.register(py_fn("x"))


def test_unknown_lookup_rejected():
    with pytest.raises(RegistryError):
        FunctionRegistry().get("ghost")


def test_unregister():
    registry = FunctionRegistry()
    registry.register(py_fn("x"))
    registry.unregister("x")
    assert "x" not in registry
    with pytest.raises(RegistryError):
        registry.unregister("x")


def test_profiles_must_be_nonempty():
    with pytest.raises(RegistryError):
        py_fn("f", profiles=())


def test_fpga_profile_requires_kernel():
    with pytest.raises(RegistryError):
        py_fn("f", profiles=(PuKind.CPU, PuKind.FPGA))


def test_gp_profile_requires_language():
    kernel = KernelSpec("k", FabricResources(luts=1), exec_time_s=1e-3)
    with pytest.raises(RegistryError):
        FunctionDef(
            name="f",
            code=FunctionCode("f", kernel=kernel),
            work=WorkProfile(warm_exec_ms=1.0, fpga_exec_ms=0.1),
            profiles=(PuKind.CPU,),
        )


def test_supports():
    fn = py_fn("f", profiles=(PuKind.CPU, PuKind.DPU))
    assert fn.supports(PuKind.DPU)
    assert not fn.supports(PuKind.FPGA)


# -- WorkProfile ------------------------------------------------------------------


def test_work_profile_scales_by_pu_speed():
    sim = Simulator()
    cpu = ProcessingUnit(sim, 0, "c", specs.XEON_8160)
    dpu = ProcessingUnit(sim, 1, "d", specs.BLUEFIELD1)
    work = WorkProfile(warm_exec_ms=16.0)
    assert work.exec_time(cpu) == pytest.approx(0.016)
    assert work.exec_time(dpu) == pytest.approx(0.016 / 0.16)


def test_work_profile_dpu_slowdown_override():
    sim = Simulator()
    dpu = ProcessingUnit(sim, 1, "d", specs.BLUEFIELD1)
    work = WorkProfile(warm_exec_ms=10.0, dpu_slowdown=2.0)
    assert work.exec_time(dpu) == pytest.approx(0.020)


def test_work_profile_fpga_requires_profile():
    sim = Simulator()
    fpga = ProcessingUnit(sim, 1, "f", specs.ULTRASCALE_PLUS)
    with pytest.raises(WorkloadError):
        WorkProfile(warm_exec_ms=10.0).exec_time(fpga)
    assert WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=2.0).exec_time(
        fpga
    ) == pytest.approx(0.002)


def test_work_profile_gpu_profile():
    sim = Simulator()
    gpu = ProcessingUnit(sim, 1, "g", specs.GENERIC_GPU)
    assert WorkProfile(warm_exec_ms=10.0, gpu_exec_ms=1.0).exec_time(
        gpu
    ) == pytest.approx(0.001)
    with pytest.raises(WorkloadError):
        WorkProfile(warm_exec_ms=10.0).exec_time(gpu)


def test_work_profile_rejects_negative():
    with pytest.raises(WorkloadError):
        WorkProfile(warm_exec_ms=-1.0)
