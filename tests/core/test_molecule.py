"""Integration tests for the MoleculeRuntime facade: deployment,
cold/warm invocation on CPU and DPU, remote cfork, FPGA path."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.errors import SchedulingError
from repro.hardware import FabricResources, KernelSpec


def py_fn(name="img", warm_ms=14.1, import_ms=12.8, profiles=(PuKind.CPU, PuKind.DPU)):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, import_ms=import_ms),
        work=WorkProfile(warm_exec_ms=warm_ms),
        profiles=profiles,
    )


@pytest.fixture
def molecule():
    runtime = MoleculeRuntime.create(num_dpus=2)
    runtime.deploy_now(py_fn())
    return runtime


def test_create_boots_executors_on_dpus(molecule):
    assert molecule.executor_client(1) is not None
    assert molecule.executor_client(2) is not None
    assert molecule.executor_client(0) is None  # host manages itself


def test_cold_then_warm_invocation(molecule):
    cold = molecule.invoke_now("img")
    warm = molecule.invoke_now("img")
    assert cold.cold and not warm.cold
    assert warm.total_s < cold.total_s
    assert cold.pu_kind is PuKind.CPU


def test_warm_start_is_mostly_exec(molecule):
    molecule.invoke_now("img")
    warm = molecule.invoke_now("img")
    assert warm.startup_s == pytest.approx(0.0)
    assert warm.exec_s == pytest.approx(0.0141, rel=0.01)


def test_cold_cfork_startup_under_25ms_on_cpu(molecule):
    cold = molecule.invoke_now("img")
    assert cold.startup_s < 0.025  # cfork, not a full container boot


def test_remote_cfork_costs_1_to_3ms_more_than_local():
    # Fig. 10: forking a remote template adds ~1-3ms via XPU-Shim.
    runtime = MoleculeRuntime.create(num_dpus=1)
    fn_cpu = py_fn("a", profiles=(PuKind.CPU,))
    runtime.deploy_now(fn_cpu)
    local = runtime.invoke_now("a")

    # Same function, but the instance must be cforked on the DPU; use a
    # CPU-speed DPU model so only the nIPC overhead differs.
    from repro.hardware import specs
    from repro.hardware.machine import build_cpu_dpu_machine
    from repro.hardware.pu import PuSpec
    import dataclasses

    sim = Simulator()
    fast_dpu = dataclasses.replace(specs.BLUEFIELD1, speed=1.0, costs=specs.XEON_8160.costs)
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    machine.pus[1].spec = fast_dpu
    runtime2 = MoleculeRuntime(sim=sim, machine=machine)
    runtime2.start()
    fn_dpu = py_fn("a", profiles=(PuKind.DPU,))
    runtime2.deploy_now(fn_dpu)
    remote = runtime2.invoke_now("a")
    extra = remote.startup_s - local.startup_s
    assert 0.001 < extra < 0.003


def test_invoke_on_dpu_slower_execution(molecule):
    dpu_result = molecule.invoke_now("img", kind=PuKind.DPU)
    cpu_result = molecule.invoke_now("img", kind=PuKind.CPU, force_cold=True)
    assert 4.0 < dpu_result.exec_s / cpu_result.exec_s < 7.5


def test_force_cold_bypasses_pool(molecule):
    molecule.invoke_now("img")
    again = molecule.invoke_now("img", force_cold=True)
    assert again.cold


def test_invoke_unknown_kind_rejected(molecule):
    with pytest.raises(SchedulingError):
        molecule.invoke_now("img", kind=PuKind.FPGA)


def test_warm_pool_hit_rate_tracked(molecule):
    for _ in range(5):
        molecule.invoke_now("img")
    pool = molecule.invoker.pools[0]
    assert pool.hits == 4


def test_billing_charged_per_invocation(molecule):
    result = molecule.invoke_now("img")
    assert result.billed_cost > 0
    dpu_result = molecule.invoke_now("img", kind=PuKind.DPU)
    # DPU runs longer but is cheaper per ms; with 6x runtime the bill
    # is still larger, but less than 6x larger.
    assert dpu_result.billed_cost < 6 * result.billed_cost


def test_without_cfork_falls_back_to_full_cold_boot():
    runtime = MoleculeRuntime.create(num_dpus=0, use_cfork=False)
    runtime.deploy_now(py_fn(profiles=(PuKind.CPU,)))
    cold = runtime.invoke_now("img")
    assert cold.startup_s > 0.150  # full container + runtime boot


def test_cfork_vs_baseline_cold_speedup():
    with_cfork = MoleculeRuntime.create(num_dpus=0)
    with_cfork.deploy_now(py_fn(profiles=(PuKind.CPU,)))
    fast = with_cfork.invoke_now("img")

    without = MoleculeRuntime.create(num_dpus=0, use_cfork=False)
    without.deploy_now(py_fn(profiles=(PuKind.CPU,)))
    slow = without.invoke_now("img")
    assert slow.startup_s / fast.startup_s > 8.0


def test_fpga_invocation_cold_then_cached():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=1, num_gpus=0)
    runtime = MoleculeRuntime(sim=sim, machine=machine)
    runtime.start()
    kernel = KernelSpec(
        "vmult", FabricResources(luts=7500, regs=12000, brams=32, dsps=100),
        exec_time_s=1651e-6,
    )
    fn = FunctionDef(
        name="vmult",
        code=FunctionCode("vmult", kernel=kernel),
        work=WorkProfile(warm_exec_ms=3.551, fpga_exec_ms=1.651),
        profiles=(PuKind.FPGA,),
    )
    runtime.deploy_now(fn)
    cold = runtime.invoke_now("vmult")
    warm = runtime.invoke_now("vmult")
    assert cold.cold and not warm.cold
    # Cold: load image (no erase) + prep sandbox ~ 3.8s (Fig. 10c).
    assert 3.5 < cold.startup_s < 4.5
    assert warm.startup_s == pytest.approx(0.0)
    # Warm invoke ~ 53ms overhead + kernel exec.
    assert 0.050 < warm.total_s < 0.060


def test_gpu_invocation_via_rung():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=0, num_gpus=1)
    runtime = MoleculeRuntime(sim=sim, machine=machine)
    runtime.start()
    kernel = KernelSpec("vecadd", FabricResources(), exec_time_s=200e-6)
    fn = FunctionDef(
        name="vecadd",
        code=FunctionCode("vecadd", kernel=kernel),
        work=WorkProfile(warm_exec_ms=2.0, gpu_exec_ms=0.2),
        profiles=(PuKind.GPU,),
    )
    runtime.deploy_now(fn)
    cold = runtime.invoke_now("vecadd")
    warm = runtime.invoke_now("vecadd")
    assert cold.cold and not warm.cold
    assert warm.total_s < cold.total_s


def test_support_matrix_covers_all_pus():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=1)
    runtime = MoleculeRuntime(sim=sim, machine=machine)
    matrix = runtime.support_matrix()
    kinds = {row["kind"] for row in matrix.values()}
    assert kinds == {"cpu", "dpu", "fpga", "gpu"}
    fpga_row = next(r for r in matrix.values() if r["kind"] == "fpga")
    assert fpga_row["vectorized_sandbox"].startswith("runf")
    assert fpga_row["xpu_shim"] == "virtual (host)"
    dpu_row = next(r for r in matrix.values() if r["kind"] == "dpu")
    assert dpu_row["communication"] == "RDMA"
    assert dpu_row["cfork"] is True
