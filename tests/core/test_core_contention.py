"""Tests for core contention: execution occupies PU cores."""

import dataclasses

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
)
from repro.hardware import specs
from repro.hardware.machine import build_cpu_dpu_machine


def fn(name="f", warm_ms=10.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=1.0),
        work=WorkProfile(warm_exec_ms=warm_ms),
        profiles=(PuKind.CPU,),
    )


def make_runtime_with_cores(cores: int) -> MoleculeRuntime:
    sim = Simulator()
    machine = build_cpu_dpu_machine(
        sim, num_dpus=0,
        cpu_spec=dataclasses.replace(specs.XEON_8160, cores=cores),
    )
    runtime = MoleculeRuntime(sim, machine)
    runtime.start()
    runtime.deploy_now(fn())
    return runtime


def run_burst(runtime, count):
    def burst(sim):
        procs = [sim.spawn(runtime.invoke("f")) for _ in range(count)]
        yield sim.all_of(procs)
        return [p.value for p in procs]

    proc = runtime.sim.spawn(burst(runtime.sim))
    runtime.sim.run()
    return proc.value


def test_requests_beyond_core_count_queue():
    runtime = make_runtime_with_cores(cores=2)
    start = runtime.sim.now
    results = run_burst(runtime, 6)
    makespan = runtime.sim.now - start
    # 6 requests / 2 cores at 10ms each: >= 3 serial waves of exec.
    assert makespan > 0.030
    assert len(results) == 6


def test_enough_cores_no_queueing():
    runtime = make_runtime_with_cores(cores=8)
    # Pre-warm instances to exclude startup serialization.
    run_burst(runtime, 8)
    start = runtime.sim.now
    run_burst(runtime, 8)
    makespan = runtime.sim.now - start
    # Fully parallel warm burst: ~one exec duration plus gateway fan-out.
    assert makespan < 0.015


def test_queueing_grows_tail_latency():
    few = make_runtime_with_cores(cores=1)
    run_burst(few, 4)  # warm up
    results_few = run_burst(few, 4)
    many = make_runtime_with_cores(cores=4)
    run_burst(many, 4)
    results_many = run_burst(many, 4)
    worst_few = max(r.total_s for r in results_few)
    worst_many = max(r.total_s for r in results_many)
    assert worst_few > 2 * worst_many


def test_core_released_after_each_request():
    runtime = make_runtime_with_cores(cores=2)
    run_burst(runtime, 10)
    assert runtime.machine.host_cpu.cores.in_use == 0
