"""Candidate caching in the scheduler.

The health-filtered candidate view must be reused while nothing
changed, invalidated the moment a breaker or crash transition bumps the
registry version, and recomputed when an OPEN breaker's cool-down
elapses with no mutation at all (the ``valid_until`` path).
"""

from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
from repro.core.reliability import HealthRegistry
from repro.core.scheduler import Scheduler
from repro.hardware import build_cpu_dpu_machine
from repro.sim import Simulator


def fn(name="f", profiles=(PuKind.CPU, PuKind.DPU)):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=60.0),
        work=WorkProfile(warm_exec_ms=10.0),
        profiles=profiles,
    )


def make(failure_threshold=2, open_s=30.0):
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    health = HealthRegistry(
        sim, failure_threshold=failure_threshold, open_s=open_s
    )
    scheduler = Scheduler(machine, health=health)
    return sim, machine, health, scheduler


def trip_breaker(health, pu, failures=2):
    for _ in range(failures):
        health.record_failure(pu)


def test_candidates_returns_cached_tuple():
    _sim, _machine, _health, scheduler = make()
    f = fn()
    first = scheduler.candidates(f)
    assert isinstance(first, tuple)
    assert scheduler.candidates(f) is first  # same version, no refilter


def test_candidates_without_health_returns_static_tuple():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    scheduler = Scheduler(machine)
    f = fn()
    assert scheduler.candidates(f) is scheduler.candidates(f)


def test_breaker_trip_invalidates_candidates():
    _sim, machine, health, scheduler = make()
    f = fn()
    dpu = machine.pus_of_kind(PuKind.DPU)[0]
    assert dpu in scheduler.candidates(f)
    trip_breaker(health, dpu)
    refreshed = scheduler.candidates(f)
    assert dpu not in refreshed
    # And the filtered view is itself cached again.
    assert scheduler.candidates(f) is refreshed


def test_crash_and_reboot_invalidate_candidates():
    _sim, machine, health, scheduler = make()
    f = fn()
    dpu = machine.pus_of_kind(PuKind.DPU)[1]
    health.mark_down(dpu)
    assert dpu not in scheduler.candidates(f)
    health.mark_up(dpu)
    assert dpu in scheduler.candidates(f)


def test_open_cooldown_expiry_recomputes_without_version_bump():
    """An OPEN breaker recovers purely by time passing; the cache must
    not outlive the cool-down."""
    sim, machine, health, scheduler = make(open_s=30.0)
    f = fn()
    dpu = machine.pus_of_kind(PuKind.DPU)[0]
    trip_breaker(health, dpu)
    assert dpu not in scheduler.candidates(f)

    def wait(sim):
        yield sim.timeout(31.0)

    sim.spawn(wait(sim))
    sim.run()
    # No registry mutation since the trip — only the clock moved; the
    # valid-until bound forces a refilter and the breaker half-opens.
    assert dpu in scheduler.candidates(f)


def test_candidates_per_kind_cached_independently():
    _sim, machine, health, scheduler = make()
    f = fn()
    cpu_only = scheduler.candidates(f, kind=PuKind.CPU)
    dpu_only = scheduler.candidates(f, kind=PuKind.DPU)
    assert all(pu.kind is PuKind.CPU for pu in cpu_only)
    assert all(pu.kind is PuKind.DPU for pu in dpu_only)
    dpu = machine.pus_of_kind(PuKind.DPU)[0]
    trip_breaker(health, dpu)
    assert dpu not in scheduler.candidates(f, kind=PuKind.DPU)
    assert scheduler.candidates(f, kind=PuKind.CPU) == cpu_only
