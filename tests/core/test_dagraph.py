"""Tests for general function DAGs (fan-out / fan-in)."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.dagraph import (
    DagEdge,
    DagGraphEngine,
    FunctionDag,
    alexa_tree,
)
from repro.errors import SchedulingError, WorkloadError


def chain_fn(name, warm_ms=3.78):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.NODEJS),
        work=WorkProfile(warm_exec_ms=warm_ms, dpu_slowdown=2.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )


# -- DAG structure ----------------------------------------------------------------


def test_dag_requires_edges():
    with pytest.raises(WorkloadError):
        FunctionDag("empty", [])


def test_dag_rejects_cycles():
    with pytest.raises(WorkloadError):
        FunctionDag("loop", [DagEdge("a", "b"), DagEdge("b", "a")])


def test_dag_requires_single_entry():
    with pytest.raises(WorkloadError):
        FunctionDag("two-roots", [DagEdge("a", "c"), DagEdge("b", "c")])


def test_alexa_tree_shape():
    dag = alexa_tree()
    assert dag.entry == "frontend"
    assert sorted(dag.sinks) == ["door", "light"]
    assert dag.nodes[0] == "frontend"
    assert len(dag.edges) == 4


def test_topological_nodes_respect_edges():
    dag = FunctionDag(
        "diamond",
        [DagEdge("a", "b"), DagEdge("a", "c"), DagEdge("b", "d"), DagEdge("c", "d")],
    )
    order = dag.nodes
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")
    assert dag.sinks == ["d"]


def test_critical_path_weighted_by_exec():
    dag = FunctionDag(
        "diamond",
        [DagEdge("a", "b"), DagEdge("a", "c"), DagEdge("b", "d"), DagEdge("c", "d")],
    )
    weights = {"a": 1.0, "b": 10.0, "c": 1.0, "d": 1.0}
    path = dag.critical_path(lambda node: weights[node])
    assert path == ["a", "b", "d"]


# -- execution ----------------------------------------------------------------------


@pytest.fixture
def runtime():
    molecule = MoleculeRuntime.create(num_dpus=1)
    for name in ("frontend", "interact", "smarthome", "door", "light"):
        molecule.deploy_now(chain_fn(name))
    return molecule


def test_alexa_tree_executes_end_to_end(runtime):
    dag = alexa_tree()
    engine = DagGraphEngine(runtime)
    placements = engine.co_locate(dag, runtime.machine.host_cpu)
    runtime.run(engine.prepare(dag, placements))
    result = runtime.run(engine.run(dag, placements))
    assert result.total_s > 0
    # All four edges measured.
    assert set(result.edge_latencies_s) == {
        ("frontend", "interact"),
        ("interact", "smarthome"),
        ("smarthome", "door"),
        ("smarthome", "light"),
    }
    # Same-PU edges land in the Fig. 12 Molecule band.
    for latency in result.edge_latencies_s.values():
        assert 0.1e-3 < latency < 0.5e-3


def test_fanout_branches_run_concurrently(runtime):
    # door and light execute in parallel after smarthome: the tree's
    # total is far less than a serialized 5-stage chain would be.
    dag = alexa_tree()
    engine = DagGraphEngine(runtime)
    placements = engine.co_locate(dag, runtime.machine.host_cpu)
    runtime.run(engine.prepare(dag, placements))
    result = runtime.run(engine.run(dag, placements))
    # Critical path: frontend+interact+smarthome+max(door,light) = 4 execs.
    exec_each = 3.78e-3
    assert result.total_s < 5 * exec_each + 4e-3
    assert result.exec_s == pytest.approx(5 * exec_each, rel=0.01)


def test_fan_in_waits_for_all_predecessors(runtime):
    runtime.deploy_now(chain_fn("join"))
    runtime.deploy_now(chain_fn("slow", warm_ms=20.0))
    dag = FunctionDag(
        "fanin",
        [
            DagEdge("frontend", "slow"),
            DagEdge("frontend", "interact"),
            DagEdge("slow", "join"),
            DagEdge("interact", "join"),
        ],
    )
    engine = DagGraphEngine(runtime)
    placements = engine.co_locate(dag, runtime.machine.host_cpu)
    runtime.run(engine.prepare(dag, placements))
    result = runtime.run(engine.run(dag, placements))
    # join cannot fire before the slow branch: total > slow + 2 stages.
    assert result.total_s > (3.78 + 20.0 + 3.78) * 1e-3


def test_cross_pu_dag_edges_use_nipc(runtime):
    dag = alexa_tree()
    engine = DagGraphEngine(runtime)
    cpu, dpu = runtime.machine.host_cpu, runtime.machine.pu(1)
    placements = {
        "frontend": cpu, "interact": dpu, "smarthome": cpu,
        "door": dpu, "light": cpu,
    }
    runtime.run(engine.prepare(dag, placements))
    result = runtime.run(engine.run(dag, placements))
    cross = result.edge_latencies_s[("frontend", "interact")]
    local = result.edge_latencies_s[("smarthome", "light")]
    assert cross > local


def test_run_requires_prepared_instances(runtime):
    dag = alexa_tree()
    engine = DagGraphEngine(runtime)
    placements = engine.co_locate(dag, runtime.machine.host_cpu)
    with pytest.raises(SchedulingError):
        runtime.run(engine.run(dag, placements))


def test_prepare_requires_full_placement(runtime):
    dag = alexa_tree()
    engine = DagGraphEngine(runtime)
    with pytest.raises(SchedulingError):
        runtime.run(engine.prepare(dag, {"frontend": runtime.machine.host_cpu}))
