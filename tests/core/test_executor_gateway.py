"""Unit tests for executors (nIPC command channel) and the gateway."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.executor import Command
from repro.core.gateway import ApiGateway
from repro.errors import XpuError
from repro.sim import Simulator


def fn(name="f"):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=60),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )


# -- gateway ------------------------------------------------------------------


def test_gateway_admission_charges_overhead_and_counts():
    sim = Simulator()
    gateway = ApiGateway(sim, overhead_ms=0.5)

    def scenario(sim):
        first = yield from gateway.admit()
        second = yield from gateway.admit()
        return first, second

    proc = sim.spawn(scenario(sim))
    sim.run()
    first, second = proc.value
    assert (first, second) == (1, 2)
    assert gateway.requests_admitted == 2
    assert sim.now == pytest.approx(2 * 0.5e-3)


# -- executors ------------------------------------------------------------------


@pytest.fixture
def runtime():
    molecule = MoleculeRuntime.create(num_dpus=1)
    molecule.deploy_now(fn())
    return molecule


def test_executor_handles_commands_in_order(runtime):
    client = runtime.executor_client(1)
    results = []

    def scenario(sim):
        for i in range(3):
            sandbox = yield from client.call(
                "cfork", sandbox_id=f"s{i}", code=runtime.registry.get("f").code
            )
            results.append(sandbox.sandbox_id)

    runtime.run(scenario(runtime.sim))
    assert results == ["s0", "s1", "s2"]
    assert runtime._executors[1].commands_handled >= 3


def test_executor_prepare_containers_command(runtime):
    client = runtime.executor_client(1)
    count = runtime.run(client.call("prepare_containers", count=3))
    assert count >= 3
    assert runtime.runc_on(1).pooled_containers >= 3


def test_executor_cold_start_and_delete_commands(runtime):
    client = runtime.executor_client(1)
    code = runtime.registry.get("f").code
    sandbox = runtime.run(client.call("cold_start", sandbox_id="cs", code=code))
    assert sandbox.state.value == "running"
    deleted = runtime.run(client.call("delete", sandbox_id="cs"))
    assert deleted.state.value == "deleted"


def test_executor_unknown_verb_raises(runtime):
    client = runtime.executor_client(1)
    with pytest.raises(XpuError, match="unknown command verb"):
        runtime.run(client.call("frobnicate"))


def test_unexpected_reply_rejected(runtime):
    client = runtime.executor_client(1)
    with pytest.raises(XpuError, match="unexpected executor reply"):
        client.resolve(999, None)


def test_commands_travel_over_real_nipc_channel(runtime):
    # The command FIFO is homed on the executor's PU, the reply FIFO on
    # the host; both carried real messages.
    client = runtime.executor_client(1)
    cmd_fifo = client.cmd_handle.fifo
    assert cmd_fifo.home_pu.pu_id == 1
    before = cmd_fifo.messages_written
    runtime.run(client.call("prepare_containers", count=1))
    assert cmd_fifo.messages_written == before + 1


def test_command_dataclass_shape():
    command = Command(request_id=1, verb="cfork", args={"x": 1})
    assert command.request_id == 1
    assert command.args["x"] == 1
