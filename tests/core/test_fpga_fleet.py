"""Tests for multi-FPGA scheduling and machine-wide kernel caching."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_cpu_fpga_machine,
)
from repro.hardware import FabricResources, KernelSpec


def fpga_fn(name):
    return FunctionDef(
        name=name,
        code=FunctionCode(
            name,
            kernel=KernelSpec(
                name, FabricResources(luts=4000, regs=7000, brams=20, dsps=40),
                exec_time_s=1e-3,
            ),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA,),
    )


def make_runtime(num_fpgas):
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=num_fpgas)
    runtime = MoleculeRuntime(sim, machine)
    runtime.start()
    return runtime


def test_second_function_uses_second_device():
    runtime = make_runtime(num_fpgas=2)
    runtime.deploy_now(fpga_fn("a"))
    runtime.deploy_now(fpga_fn("b"))
    ra = runtime.invoke_now("a")
    rb = runtime.invoke_now("b")
    assert ra.pu_name != rb.pu_name  # least-programmed device chosen
    # Both stay cached: warm on second invocation of each.
    assert not runtime.invoke_now("a").cold
    assert not runtime.invoke_now("b").cold


def test_cached_device_preferred_over_idle_one():
    runtime = make_runtime(num_fpgas=2)
    runtime.deploy_now(fpga_fn("a"))
    first = runtime.invoke_now("a")
    again = runtime.invoke_now("a")
    assert again.pu_name == first.pu_name
    assert not again.cold


def test_single_device_thrashes_between_many_functions():
    # One FPGA: the 13th distinct function cannot be cached alongside
    # twelve others (max_instances=12), so the planner repacks.
    runtime = make_runtime(num_fpgas=1)
    names = [f"k{i}" for i in range(4)]
    for name in names:
        runtime.deploy_now(fpga_fn(name))
    for name in names:
        runtime.invoke_now(name)
    # With copies_each reduced, all four still fit one image: warm hits.
    assert not runtime.invoke_now("k0").cold


def test_eight_devices_cache_96_instances():
    # §6.4: 12-instance images x 8 FPGAs = 96 cached instances.
    runtime = make_runtime(num_fpgas=8)
    for i in range(8):
        for suffix in ("x", "y", "z"):
            name = f"fn{i}{suffix}"
            if name not in runtime.registry:
                runtime.deploy_now(fpga_fn(name))
    # Invoke one function group per device (3 kernels x 4 copies = 12).
    for i in range(8):
        # Co-pack the group by invoking them back to back; the planner
        # keeps resident kernels when repacking.
        for suffix in ("x", "y", "z"):
            runtime.invoke_now(f"fn{i}{suffix}")
    total_instances = 0
    for pu in runtime.machine.pus_of_kind(PuKind.FPGA):
        runf = runtime.runf_on(pu.pu_id)
        if runf.device.image is not None:
            total_instances += len(runf.device.image.instances)
    assert total_instances == 96
    # And everything is warm now.
    for i in range(8):
        for suffix in ("x", "y", "z"):
            assert not runtime.invoke_now(f"fn{i}{suffix}").cold


def test_no_fpga_raises():
    from repro.errors import RetriesExhaustedError, SchedulingError

    runtime = MoleculeRuntime.create(num_dpus=1)
    fn = fpga_fn("a")
    runtime.registry.register(fn)
    # Placement fails on every attempt (the machine has no FPGA at all),
    # so the retry layer exhausts its budget and dead-letters.
    with pytest.raises(RetriesExhaustedError) as excinfo:
        runtime.invoke_now("a", kind=PuKind.FPGA)
    assert "SchedulingError" in excinfo.value.errors[-1]
