"""Tests for TTL-based keep-alive reaping."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.keepalive import WarmPool
from repro.errors import SchedulingError


def fn(name="f"):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=60),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU,),
    )


# -- pool-level TTL ----------------------------------------------------------------


class FakeInstance:
    def __init__(self, name):
        self.function = type("F", (), {"name": name})()


def test_pool_reap_respects_ttl():
    pool = WarmPool(capacity=8, keep_alive_ttl_s=10.0)
    young, old = FakeInstance("a"), FakeInstance("a")
    pool.release(old, now=0.0)
    pool.release(young, now=8.0)
    reaped = pool.reap_expired(now=12.0)
    assert reaped == [old]
    assert pool.expired == 1
    assert len(pool) == 1


def test_pool_without_ttl_never_reaps():
    pool = WarmPool(capacity=8)
    pool.release(FakeInstance("a"), now=0.0)
    assert pool.reap_expired(now=1e9) == []


def test_pool_invalid_ttl_rejected():
    with pytest.raises(SchedulingError):
        WarmPool(capacity=4, keep_alive_ttl_s=0.0)


# -- runtime-level TTL -----------------------------------------------------------------


def test_idle_instances_reaped_and_memory_freed():
    runtime = MoleculeRuntime.create(num_dpus=0, keep_alive_ttl_s=2.0)
    runtime.deploy_now(fn())
    cpu = runtime.machine.host_cpu
    observed = {}

    def scenario(sim):
        yield from runtime.invoke("f")
        observed["while_warm"] = cpu.dram_used_mb
        yield sim.timeout(0.5)  # still inside the TTL
        observed["within_ttl"] = cpu.dram_used_mb

    runtime.run(scenario(runtime.sim))
    # Running to quiescence ages the idle instance past the TTL; the
    # reaper destroys it and releases its memory.
    assert observed["while_warm"] == pytest.approx(60.0)
    assert observed["within_ttl"] == pytest.approx(60.0)
    assert cpu.dram_used_mb == 0.0
    assert runtime.invoker.pools[0].expired == 1


def test_requests_within_ttl_stay_warm():
    runtime = MoleculeRuntime.create(num_dpus=0, keep_alive_ttl_s=5.0)
    runtime.deploy_now(fn())
    results = []

    def client(sim):
        for _ in range(4):
            result = yield from runtime.invoke("f")
            results.append(result)
            yield sim.timeout(1.0)  # well within the TTL

    runtime.run(client(runtime.sim))
    assert results[0].cold
    assert not any(r.cold for r in results[1:])


def test_requests_beyond_ttl_go_cold_again():
    runtime = MoleculeRuntime.create(num_dpus=0, keep_alive_ttl_s=2.0)
    runtime.deploy_now(fn())
    results = []

    def client(sim):
        for _ in range(3):
            result = yield from runtime.invoke("f")
            results.append(result)
            yield sim.timeout(10.0)  # far beyond the TTL

    runtime.run(client(runtime.sim))
    assert all(r.cold for r in results)  # each gap expired the instance


def test_reaper_does_not_hang_the_simulation():
    runtime = MoleculeRuntime.create(num_dpus=0, keep_alive_ttl_s=1.0)
    runtime.deploy_now(fn())
    runtime.invoke_now("f")
    runtime.sim.run()  # must terminate (event-driven reaper)
    assert len(runtime.invoker.pools[0]) == 0
