"""Tests for the multi-machine global manager (§4.1)."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.core.cluster import GlobalManager
from repro.errors import SchedulingError
from repro.hardware import FabricResources, KernelSpec
from repro.workloads import serverlessbench


def py_fn(name="f", profiles=(PuKind.CPU, PuKind.DPU)):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=60),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=profiles,
    )


@pytest.fixture
def fleet():
    manager = GlobalManager()
    manager.build_worker("w1", num_dpus=1)
    manager.build_worker("w2", num_dpus=2)
    return manager


def test_workers_share_one_simulator(fleet):
    assert fleet.worker("w1").runtime.sim is fleet.sim
    assert fleet.worker("w2").runtime.sim is fleet.sim


def test_foreign_simulator_rejected(fleet):
    other = MoleculeRuntime.create(num_dpus=0)
    with pytest.raises(SchedulingError):
        fleet.add_worker("bad", other)


def test_duplicate_worker_rejected(fleet):
    with pytest.raises(SchedulingError):
        fleet.build_worker("w1")


def test_deploy_reaches_all_eligible_machines(fleet):
    fleet.deploy_now(py_fn())
    assert "f" in fleet.worker("w1").runtime.registry
    assert "f" in fleet.worker("w2").runtime.registry


def test_deploy_requires_capable_machine(fleet):
    kernel_fn = FunctionDef(
        name="k",
        code=FunctionCode(
            "k", kernel=KernelSpec("k", FabricResources(luts=1), exec_time_s=1e-3)
        ),
        work=WorkProfile(warm_exec_ms=1.0, fpga_exec_ms=0.1),
        profiles=(PuKind.FPGA,),
    )
    with pytest.raises(SchedulingError):
        fleet.deploy_now(kernel_fn)  # no FPGA in the fleet


def test_fpga_function_routes_to_fpga_machine():
    manager = GlobalManager()
    manager.build_worker("cpu-only", num_dpus=0)
    sim = manager.sim
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=1, num_gpus=0)
    fpga_runtime = MoleculeRuntime(sim, machine)
    fpga_runtime.start()
    manager.add_worker("fpga-box", fpga_runtime)
    kernel_fn = FunctionDef(
        name="k",
        code=FunctionCode(
            "k", kernel=KernelSpec("k", FabricResources(luts=1), exec_time_s=1e-3)
        ),
        work=WorkProfile(warm_exec_ms=1.0, fpga_exec_ms=0.1),
        profiles=(PuKind.FPGA,),
    )
    manager.deploy_now(kernel_fn)
    result = manager.invoke_now("k")
    assert result.pu_kind is PuKind.FPGA
    assert manager.routed == {"fpga-box": 1}


def test_warm_first_routing_sticks_to_machine(fleet):
    fleet.deploy_now(py_fn())
    first = fleet.invoke_now("f")
    second = fleet.invoke_now("f")
    assert not second.cold  # the warm machine was preferred
    assert sum(fleet.routed.values()) == 2
    assert len(fleet.routed) == 1  # both went to the same worker


def test_unknown_function_rejected(fleet):
    with pytest.raises(SchedulingError):
        fleet.invoke_now("ghost")


def test_chain_runs_on_single_machine(fleet):
    for fn in serverlessbench.alexa_functions():
        fleet.deploy_now(fn)
    chain = serverlessbench.alexa_chain()
    kinds = [PuKind.CPU, PuKind.DPU, PuKind.CPU, PuKind.DPU, PuKind.CPU]
    proc = fleet.sim.spawn(fleet.run_chain(chain, kinds))
    fleet.sim.run()
    result = proc.value
    placements = set(result.placements)
    # All stages on one worker's PUs (cpu0/dpu0 of a single machine).
    assert placements <= {"cpu0", "dpu0"}


def test_chain_requires_full_deployment(fleet):
    chain = serverlessbench.alexa_chain()
    with pytest.raises(SchedulingError):
        proc = fleet.sim.spawn(fleet.run_chain(chain))
        fleet.sim.run()


def test_chain_placement_kind_mismatch(fleet):
    for fn in serverlessbench.alexa_functions():
        fleet.deploy_now(fn)
    chain = serverlessbench.alexa_chain()
    with pytest.raises(SchedulingError):
        proc = fleet.sim.spawn(fleet.run_chain(chain, [PuKind.CPU]))
        fleet.sim.run()
