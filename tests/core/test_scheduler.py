"""Tests for placement, admission control and density."""

import pytest

from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
from repro.core.scheduler import Scheduler
from repro.errors import SchedulingError
from repro.hardware import build_cpu_dpu_machine, build_full_machine
from repro.sim import Simulator


def make(num_dpus=2, prefer_cheapest=False):
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
    return machine, Scheduler(machine, prefer_cheapest=prefer_cheapest)


def fn(name="f", profiles=(PuKind.CPU,), memory_mb=60.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=memory_mb),
        work=WorkProfile(warm_exec_ms=10.0),
        profiles=profiles,
    )


def test_place_reserves_memory():
    machine, scheduler = make()
    f = fn()
    pu = scheduler.place(f)
    assert pu.kind is PuKind.CPU
    assert pu.dram_used_mb == 60.0
    scheduler.release(f, pu)
    assert pu.dram_used_mb == 0.0


def test_place_respects_profile_order():
    machine, scheduler = make()
    f = fn(profiles=(PuKind.DPU, PuKind.CPU))
    assert scheduler.place(f).kind is PuKind.DPU


def test_prefer_cheapest_picks_dpu_first():
    machine, scheduler = make(prefer_cheapest=True)
    f = fn(profiles=(PuKind.CPU, PuKind.DPU))
    assert scheduler.place(f).kind is PuKind.DPU


def test_place_spills_to_next_pu_when_full():
    machine, scheduler = make(num_dpus=2)
    f = fn(profiles=(PuKind.DPU,))
    dpu0_cap = int(machine.pu(1).dram_free_mb // 60)
    placements = [scheduler.place(f) for _ in range(dpu0_cap + 1)]
    assert placements[-1].pu_id == 2  # spilled to the second DPU


def test_place_explicit_kind_must_be_in_profiles():
    machine, scheduler = make()
    with pytest.raises(SchedulingError):
        scheduler.place(fn(profiles=(PuKind.CPU,)), kind=PuKind.DPU)


def test_place_near_prefers_colocated_pu():
    machine, scheduler = make()
    f = fn(profiles=(PuKind.CPU, PuKind.DPU))
    dpu = machine.pu(1)
    assert scheduler.place(f, near=dpu) is dpu


def test_exhaustion_raises_scheduling_error():
    machine, scheduler = make(num_dpus=0)
    f = fn(memory_mb=30000.0)
    scheduler.place(f)
    scheduler.place(f)
    with pytest.raises(SchedulingError):
        scheduler.place(f)


def test_fig2a_density_1000_1256_1512():
    # Fig. 2a: 1000 instances on CPU, +256 per Bluefield DPU.
    f = fn(profiles=(PuKind.CPU, PuKind.DPU))
    for num_dpus, expected in [(0, 1000), (1, 1256), (2, 1512)]:
        machine, scheduler = make(num_dpus=num_dpus)
        density = scheduler.max_density(f, [PuKind.CPU, PuKind.DPU])
        assert density == expected


def test_accelerator_placement_skips_dram_admission():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=0)
    scheduler = Scheduler(machine)
    from repro.hardware import FabricResources, KernelSpec

    f = FunctionDef(
        name="k",
        code=FunctionCode(
            "k", kernel=KernelSpec("k", FabricResources(luts=1), exec_time_s=1e-3)
        ),
        work=WorkProfile(warm_exec_ms=1.0, fpga_exec_ms=0.1),
        profiles=(PuKind.FPGA,),
    )
    pu = scheduler.place(f)
    assert pu.kind is PuKind.FPGA
