"""Unit behavior of the AIMD limiter, the admission gate's three shed
paths, and the bounded dead-letter queue."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    OverloadConfig,
    PuKind,
    WorkProfile,
)
from repro.core.reliability import DeadLetter, DeadLetterQueue
from repro.errors import ReproError, RequestShed
from repro.overload import AdaptiveLimit


# -- AIMD limiter ------------------------------------------------------------------


def _cfg(**overrides):
    base = dict(
        initial_limit=10, min_limit=2, max_limit=12,
        latency_tolerance=2.0, increase=1.0, decrease=0.5,
        min_window=4,
    )
    base.update(overrides)
    return OverloadConfig(**base)


def test_limit_grows_additively_to_the_cap():
    limiter = AdaptiveLimit(_cfg())
    for _ in range(60):
        limiter.on_complete(0.01, ok=True)
    assert limiter.limit == 12
    assert limiter.decreases == 0
    assert limiter.increases == 60


def test_failures_shrink_multiplicatively_to_the_floor():
    limiter = AdaptiveLimit(_cfg())
    limiter.on_complete(0.01, ok=False)
    assert limiter.limit == 5
    for _ in range(10):
        limiter.on_complete(0.01, ok=False)
    assert limiter.limit == 2
    assert limiter.increases == 0


def test_slow_completion_counts_as_congestion():
    limiter = AdaptiveLimit(_cfg())
    limiter.on_complete(0.01, ok=True)   # establishes the floor
    before = limiter.limit
    limiter.on_complete(0.05, ok=True)   # > floor x tolerance
    assert limiter.limit < before
    assert limiter.decreases == 1


def test_failures_stay_out_of_the_latency_floor():
    """A fast failure must not drag the moving minimum down and
    mislabel every healthy completion as congestion."""
    limiter = AdaptiveLimit(_cfg())
    limiter.on_complete(0.5, ok=True)
    limiter.on_complete(0.001, ok=False)
    increases = limiter.increases
    limiter.on_complete(0.5, ok=True)    # still at the true floor
    assert limiter.increases == increases + 1


def test_ewma_tracks_successes_only():
    limiter = AdaptiveLimit(_cfg())
    assert limiter.ewma_latency is None
    limiter.on_complete(0.1, ok=True)
    assert limiter.ewma_latency == 0.1
    limiter.on_complete(0.2, ok=False)
    assert limiter.ewma_latency == 0.1
    limiter.on_complete(0.2, ok=True)
    assert abs(limiter.ewma_latency - 0.11) < 1e-12


# -- admission gate shed paths ----------------------------------------------------


def _pinned(**overrides):
    """A gate pinned at one concurrency slot, brownout disabled (the
    pressure signal is clamped to <= 1, so 1.5 never trips)."""
    base = dict(
        initial_limit=1, min_limit=1, max_limit=1,
        queue_capacity=1, predictive_budget_fraction=None,
        brownout_on=1.5,
    )
    base.update(overrides)
    return OverloadConfig(**base)


def _runtime(config, deadline_s=10.0, seed=11):
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=seed, default_deadline_s=deadline_s,
        overload=config,
    )
    runtime.deploy_now(FunctionDef(
        name="slow",
        code=FunctionCode("slow", language=Language.PYTHON, import_ms=20.0),
        work=WorkProfile(warm_exec_ms=50.0),
        profiles=(PuKind.CPU,),
    ))
    return runtime


def _submit(runtime, count, answered, sheds, dead=None, spacing_s=0.0001):
    sim = runtime.sim

    def call(index):
        if index:
            yield sim.timeout(index * spacing_s)
        try:
            yield from runtime.invoke("slow")
        except RequestShed as exc:
            sheds.append(exc.reason)
        except ReproError as exc:
            if dead is not None:
                dead.append(type(exc).__name__)
        else:
            answered.append(index)

    for index in range(count):
        sim.spawn(call(index), name=f"req-{index}")
    sim.run()


def test_queue_full_sheds_at_the_backstop():
    runtime = _runtime(_pinned())
    answered, sheds = [], []
    _submit(runtime, 4, answered, sheds)
    # Slot + one queue seat: the other two arrivals shed immediately.
    assert sheds == ["queue_full", "queue_full"]
    assert len(answered) == 2
    gate = runtime.overload.gates()[0]
    assert gate.shed == 2
    assert gate.max_queue_depth == 1
    assert runtime.overload.shed_by_reason == {"queue_full": 2}
    # Sheds count against admission: the gateway admitted all four.
    assert runtime.overload.conserved(
        runtime.gateway.requests_admitted, len(answered), 0
    )


def test_deadline_drain_while_parked_sheds_not_dead_letters():
    """A parked request whose budget drains before a grant is shed with
    reason ``deadline`` — it never reaches the retry loop, so it is
    never dead-lettered.  The slot holder gets a long deadline and the
    waiters short ones, so their budgets provably drain mid-service."""
    runtime = _runtime(_pinned(queue_capacity=8), deadline_s=10.0)
    sim = runtime.sim
    answered, sheds = [], []

    def call(delay_s, deadline_s):
        if delay_s:
            yield sim.timeout(delay_s)
        try:
            yield from runtime.invoke("slow", deadline_s=deadline_s)
        except RequestShed as exc:
            sheds.append(exc.reason)
        else:
            answered.append(deadline_s)

    sim.spawn(call(0.0, 10.0), name="holder")     # cold start ~70ms
    sim.spawn(call(0.001, 0.03), name="doomed-1")  # parks, drains at 30ms
    sim.spawn(call(0.002, 0.03), name="doomed-2")
    sim.run()

    assert sheds == ["deadline", "deadline"]
    assert answered == [10.0]
    # Shed, not dead-lettered: the DLQ never saw them.
    assert len(runtime.dead_letters) == 0
    assert runtime.overload.conserved(
        runtime.gateway.requests_admitted, len(answered), 0
    )
    # The in-queue sheds recorded the time they spent parked.
    waited = [entry["waited_s"] for entry in runtime.overload.shed_log]
    assert all(w > 0.0 for w in waited)


def test_predictive_shed_on_hopeless_wait():
    """Once the wait estimator is warm, a request whose estimated queue
    wait exceeds the configured fraction of its remaining budget is
    shed up front instead of parking doomed."""
    runtime = _runtime(
        _pinned(queue_capacity=64, predictive_budget_fraction=0.5)
    )
    # Warm the latency EWMA with sequential completions.
    for _ in range(3):
        runtime.invoke_now("slow")
    sim = runtime.sim
    answered, sheds = [], []

    def call(delay_s, deadline_s):
        yield sim.timeout(delay_s)
        try:
            yield from runtime.invoke("slow", deadline_s=deadline_s)
        except RequestShed as exc:
            sheds.append(exc.reason)
        else:
            answered.append(deadline_s)

    sim.spawn(call(0.0, 10.0), name="holder")     # takes the slot
    sim.spawn(call(0.001, 10.0), name="parked")   # parks (queue non-empty)
    sim.spawn(call(0.002, 0.05), name="doomed")   # two service times behind
    sim.run()

    assert sheds == ["predicted_wait"]
    assert len(answered) == 2
    # The cold-estimator guard: a fresh gate never predicts.
    fresh = _runtime(_pinned()).overload
    gate = fresh.gate_for(object())
    assert gate.estimated_wait_s() == 0.0


# -- bounded dead-letter queue -----------------------------------------------------


def _letter(request_id):
    return DeadLetter(
        request_id=request_id, function="f", attempts=3,
        errors=("boom",), enqueued_at=0.0,
    )


def test_dead_letter_queue_drops_oldest_when_bounded():
    dlq = DeadLetterQueue(capacity=2)
    for rid in range(1, 5):
        dlq.push(_letter(rid))
    # Lifetime total survives eviction (conservation accounting)...
    assert len(dlq) == 4
    assert dlq.total == 4
    assert dlq.overflowed == 2
    # ... while retention keeps the most recent entries.
    assert [e.request_id for e in dlq.entries()] == [3, 4]
    assert dlq.request_ids() == {3, 4}


def test_dead_letter_queue_unbounded_by_default():
    dlq = DeadLetterQueue()
    for rid in range(10):
        dlq.push(_letter(rid))
    assert dlq.overflowed == 0
    assert len(dlq.entries()) == 10
    assert len(dlq) == 10


def test_dead_letter_queue_validates_capacity():
    with pytest.raises(ValueError):
        DeadLetterQueue(capacity=0)


def test_late_capacity_assignment_bounds_future_pushes():
    """The overload controller arms after boot by assigning
    ``capacity`` on the live queue; the bound applies per-push from
    then on (one eviction per overflowing push)."""
    dlq = DeadLetterQueue()
    for rid in range(4):
        dlq.push(_letter(rid))
    dlq.capacity = 2
    dlq.push(_letter(99))
    assert dlq.overflowed == 1
    assert dlq.entries()[0].request_id == 1
    assert len(dlq) == 5
