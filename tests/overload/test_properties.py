"""Property-based overload invariants.

The load-bearing one extends the reliability suite's exactly-one-fate
theorem to three fates: under arbitrary workloads, crash timings and
seeds, every admitted request is answered, shed or dead-lettered —
exactly one of the three — and the counters agree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    OverloadConfig,
    PuKind,
    WorkProfile,
)
from repro.errors import ReproError, RequestShed
from repro.faults.injector import FaultInjector

# A small workload: each entry is (start_delay_ticks, force_cold).
_JOBS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=8), st.booleans()),
    min_size=1,
    max_size=10,
)

# Crash timing in 10ms ticks after workload start, and an optional
# reboot delay (None = the DPU stays dead).
_CRASH = st.tuples(
    st.integers(min_value=0, max_value=10),
    st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)


def _fn():
    return FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, import_ms=30.0),
        work=WorkProfile(warm_exec_ms=8.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    )


def _run(jobs, crash, seed):
    # A deliberately tiny gate with a tight deadline, so the random
    # workloads actually park, shed and dead-letter.
    config = OverloadConfig(
        initial_limit=2, min_limit=1, max_limit=4, queue_capacity=2,
        predictive_budget_fraction=0.5, brownout_on=0.6,
        brownout_off=0.3, brownout_min_s=0.05,
    )
    runtime = MoleculeRuntime.create(
        num_dpus=2, seed=seed, default_deadline_s=0.25, overload=config,
    )
    runtime.deploy_now(_fn())
    crash_tick, reboot_ticks = crash
    injector = FaultInjector(
        runtime,
        FaultPlan.of(
            FaultSpec(
                FaultKind.PU_CRASH,
                "dpu0",
                at_s=runtime.sim.now + crash_tick * 0.01,
                reboot_after_s=(
                    None if reboot_ticks is None else reboot_ticks * 0.01
                ),
            )
        ),
    )
    runtime.injector = injector
    injector.arm()

    answered = []
    shed = []
    dead_seen = []

    def submitter(delay_ticks, force_cold):
        if delay_ticks:
            yield runtime.sim.timeout(delay_ticks * 0.01)
        try:
            result = yield from runtime.invoke(
                "f", kind=PuKind.DPU, force_cold=force_cold
            )
        except RequestShed as exc:
            shed.append(exc)
        except ReproError as exc:
            dead_seen.append(type(exc).__name__)
        else:
            answered.append(result)

    for index, (delay, cold) in enumerate(jobs):
        runtime.sim.spawn(submitter(delay, cold), name=f"job-{index}")
    runtime.sim.run()
    return runtime, answered, shed, dead_seen


@settings(max_examples=12, deadline=None)
@given(jobs=_JOBS, crash=_CRASH, seed=st.integers(min_value=0, max_value=2**16))
def test_answered_shed_dead_partition_admitted(jobs, crash, seed):
    runtime, answered, shed, dead_seen = _run(jobs, crash, seed)
    controller = runtime.overload
    admitted = runtime.gateway.requests_admitted
    dead = len(runtime.dead_letters)

    # Sheds happen after gateway admission, so every job was admitted.
    assert admitted == len(jobs)
    # The conservation invariant: answered + shed + dead == admitted.
    assert controller.conserved(admitted, len(answered), dead)
    # Caller-side observations agree with the machine-side counters.
    assert len(answered) + len(shed) + len(dead_seen) == len(jobs)
    assert controller.shed_total == len(shed)
    assert dead == len(dead_seen)

    # Exactly one fate: the three id sets are pairwise disjoint.
    shed_ids = {exc.request_id for exc in shed}
    answered_ids = {r.request_id for r in answered}
    dead_ids = runtime.dead_letters.request_ids()
    assert shed_ids.isdisjoint(dead_ids)
    assert shed_ids.isdisjoint(answered_ids)
    assert answered_ids.isdisjoint(dead_ids)
    # Per-reason counts sum to the total (no unclassified shed).
    assert sum(controller.shed_by_reason.values()) == controller.shed_total
