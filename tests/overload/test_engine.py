"""Overload controller behavior: off means byte-identical golden
output; on means a deterministic protected run that strictly beats the
unprotected one under saturation, a breaker probe that is never shed,
and a brownout that degrades, suppresses and throttles."""

import json

from repro import (
    FunctionCode,
    FunctionDef,
    HedgeConfig,
    Language,
    MoleculeRuntime,
    OverloadConfig,
    PuKind,
    WorkProfile,
)
from repro.core.reliability import BreakerState
from repro.errors import RequestShed
from repro.loadgen import run_load

from tests.support import GOLDEN_SEED, golden_seed_snapshot


# -- engine off: stock behavior, byte for byte ------------------------------------


def test_engine_off_matches_golden_snapshot():
    """``overload=None`` must leave the canned golden workload
    byte-identical to a runtime predating the controller."""
    with open("tests/sim/data/golden_seed_snapshot.json",
              encoding="utf-8") as handle:
        expected = json.load(handle)
    current = golden_seed_snapshot(GOLDEN_SEED)
    assert json.dumps(current, sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_engine_off_load_run_identical_to_default():
    """A load run with ``overload=False`` equals one that never heard
    of the controller (same plan, same seed, same report modulo wall
    time) — and no overload-era key leaks into the report."""
    baseline = run_load("burst", quick=True, seed=1234)
    explicit = run_load("burst", quick=True, seed=1234, overload=False)
    for report in (baseline, explicit):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        explicit, sort_keys=True
    )
    assert "overload" not in baseline
    assert "shed" not in baseline["load"]
    assert all("shed" not in shard for shard in baseline["shards"])


# -- engine on: deterministic ------------------------------------------------------


def test_protected_run_is_deterministic():
    """Two protected runs of the same plan and seed must agree on every
    shed, every limit move and every brownout, byte for byte."""
    first = run_load("overload", quick=True, seed=99, overload=True)
    second = run_load("overload", quick=True, seed=99, overload=True)
    for report in (first, second):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    assert first["params"]["overload"] is True


# -- the saturation acceptance bar -------------------------------------------------


def test_saturation_protected_beats_unprotected():
    """The tentpole acceptance bar, pinned at the golden seed: under
    the chaos-under-saturation scenario (bursts past capacity plus a
    mid-run DPU crash) arming the controller must answer strictly more
    requests within the deadline, at a strictly lower p99 among
    answered, with the conservation invariant intact."""
    off = run_load("overload", quick=True, seed=GOLDEN_SEED)
    on = run_load("overload", quick=True, seed=GOLDEN_SEED, overload=True)
    # Identical offered load on both sides.
    assert on["load"]["offered"] == off["load"]["offered"]
    assert "overload" not in off

    # Strictly more goodput...
    assert on["load"]["answered"] > off["load"]["answered"]
    # ... faster at the tail among the requests that were answered...
    on_p99 = on["latency"]["end_to_end"]["p99_ms"]
    off_p99 = off["latency"]["end_to_end"]["p99_ms"]
    assert on_p99 < off_p99
    # ... and fewer requests burning their full deadline into the DLQ.
    assert on["load"]["dead_lettered"] < off["load"]["dead_lettered"]

    # The three-fate conservation invariant holds and is reported.
    over = on["overload"]
    assert over["conserved"] is True
    load = on["load"]
    assert (load["answered"] + load["shed"] + load["dead_lettered"]
            == load["admitted"])
    assert load["lost"] == 0
    assert 0.0 <= over["brownout_fraction"] <= 1.0
    # Saturation at 8x offered load actually exercised the machinery.
    assert over["brownout_entries"] >= 1
    assert over["degraded_forced"] > 0


# -- half-open probes bypass the gate ----------------------------------------------


def _slow_fn():
    return FunctionDef(
        name="slow",
        code=FunctionCode("slow", language=Language.PYTHON, import_ms=20.0),
        work=WorkProfile(warm_exec_ms=50.0),
        profiles=(PuKind.CPU,),
    )


def _pinned_config(**overrides):
    """A gate pinned at one slot with a one-deep queue (brownout off:
    the pressure signal is clamped to <= 1, so 1.5 never trips)."""
    base = dict(
        initial_limit=1, min_limit=1, max_limit=1,
        queue_capacity=1, predictive_budget_fraction=None,
        brownout_on=1.5,
    )
    base.update(overrides)
    return OverloadConfig(**base)


def test_half_open_probe_is_never_shed():
    """A saturated shard whose breaker is HALF_OPEN must let the single
    probe through the admission gate: the probe is the only signal that
    can close the breaker again, so shedding it would wedge the shard
    open forever."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=3, default_deadline_s=10.0,
        overload=_pinned_config(),
    )
    runtime.deploy_now(_slow_fn())
    frontend = runtime.sharded_frontend(1)
    shard = frontend.shards[0]
    sim = runtime.sim
    answered = []
    sheds = []

    def call(tag, delay_s):
        if delay_s:
            yield sim.timeout(delay_s)
        try:
            yield from frontend.invoke("slow")
        except RequestShed as exc:
            sheds.append((tag, exc.reason))
        else:
            answered.append(tag)

    def arm_half_open(delay_s):
        yield sim.timeout(delay_s)
        shard.breaker.state = BreakerState.HALF_OPEN
        shard.breaker.probe_in_flight = False

    sim.spawn(call("filler", 0.0), name="filler")       # takes the one slot
    sim.spawn(call("parked", 0.0005), name="parked")    # fills the one-deep queue
    sim.spawn(arm_half_open(0.001), name="arm")
    sim.spawn(call("probe", 0.0015), name="probe")      # half-open probe
    sim.spawn(call("late", 0.002), name="late")         # ordinary request
    sim.run()

    gate = runtime.overload.gates()[0]
    # The probe bypassed the saturated gate and was answered...
    assert "probe" in answered
    assert gate.bypassed == 1
    # ... while the ordinary request behind it hit the full queue.
    assert ("late", "queue_full") in sheds
    assert shard.shed == 1
    # A shed is back-pressure, not a shard failure: nothing reached the
    # breaker's failure counter.
    assert shard.failed == 0
    assert runtime.overload.conserved(
        shard.gateway.requests_admitted, len(answered), 0
    )


def test_half_open_probe_bypasses_the_result_cache():
    """With the result cache armed, a half-open breaker's probe must
    still reach a real PU even when a fresh entry covers its exact
    input key: a cached answer would 'succeed' without touching the
    shard, starving the breaker of the only signal that can close it.
    The probe therefore skips the cache consult entirely (counted as a
    ``probe`` bypass) and executes."""
    from repro.reuse import ReuseConfig
    from repro.reuse.cache import result_payload

    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=3, default_deadline_s=10.0,
        overload=_pinned_config(), reuse=ReuseConfig(),
    )
    slow = _slow_fn()
    runtime.deploy_now(FunctionDef(
        name=slow.name, code=slow.code, work=slow.work,
        profiles=slow.profiles, idempotent=True,
    ))
    frontend = runtime.sharded_frontend(1)
    # Prime a fresh entry for the key the probe will carry.
    primed = runtime.invoke_now("slow", input_key="hot")
    assert primed.cache == ""
    assert runtime.reuse.cache.peek("slow", "hot") is not None

    shard = frontend.shards[0]
    sim = runtime.sim
    results = {}

    def call(tag, delay_s, **kwargs):
        if delay_s:
            yield sim.timeout(delay_s)
        try:
            result = yield from frontend.invoke("slow", **kwargs)
        except RequestShed:
            results[tag] = None
        else:
            results[tag] = result

    def arm_half_open(delay_s):
        yield sim.timeout(delay_s)
        shard.breaker.state = BreakerState.HALF_OPEN
        shard.breaker.probe_in_flight = False

    sim.spawn(call("filler", 0.0), name="filler")
    sim.spawn(call("parked", 0.0005), name="parked")
    sim.spawn(arm_half_open(0.001), name="arm")
    sim.spawn(call("probe", 0.0015, input_key="hot"), name="probe")
    sim.run()

    gate = runtime.overload.gates()[0]
    probe = results["probe"]
    # The probe bypassed both the gate and the cache, and executed.
    assert gate.bypassed == 1
    assert probe is not None and probe.cache == ""
    assert probe.pu_name != "cache"
    # No memoized payload was stamped: the result came from the PU,
    # not from (or through) the cache — the entry itself still holds
    # what a real execution of the key produces.
    assert probe.payload is None
    entry = runtime.reuse.cache.peek("slow", "hot")
    assert entry.payload == result_payload("slow", "hot")
    reuse = runtime.reuse
    assert reuse.bypass_by_reason["probe"] == 1
    # The fresh entry never answered anyone: zero cache serves.
    assert reuse.served_fresh == 0 and reuse.served_stale == 0
    # The priming request plus every non-shed spawn was answered by a
    # real execution, and the partition still balances.
    answered = 1 + sum(1 for r in results.values() if r is not None)
    assert reuse.conserved(answered)


# -- brownout effects --------------------------------------------------------------


def test_brownout_degrades_to_host_cpu():
    """While the brownout is active, a DPU-dispatched function with a
    CPU profile runs on the host CPU instead (and is counted); the
    warm-path stocking gate reports suppression; the dwell keeps the
    brownout latched until ``brownout_min_s`` has passed."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=5, default_deadline_s=10.0,
        overload=OverloadConfig(),
    )
    runtime.deploy_now(FunctionDef(
        name="etl",
        code=FunctionCode("etl", language=Language.PYTHON, import_ms=10.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    ))
    controller = runtime.overload

    baseline = runtime.invoke_now("etl", kind=PuKind.DPU)
    assert baseline.pu_name.startswith("dpu")
    assert controller.degraded_forced == 0
    assert controller.suppress_prewarm() is False

    controller._enter_brownout()
    degraded = runtime.invoke_now("etl", kind=PuKind.DPU)
    assert degraded.pu_name.startswith("cpu")
    assert controller.degraded_forced >= 1
    assert controller.suppress_prewarm() is True
    assert controller.prewarm_suppressed == 1

    # Pressure is zero, but the minimum dwell keeps the brownout on
    # (each invoke_now drains the 10s deadline timer, so re-latch the
    # dwell clock to "just entered" first)...
    controller._brownout_since = runtime.sim.now
    controller.note_pressure()
    assert controller.brownout_active
    # ... until brownout_min_s of simulated time has passed.
    controller._brownout_since = (
        runtime.sim.now - controller.config.brownout_min_s
    )
    controller.note_pressure()
    assert not controller.brownout_active
    assert controller.brownout_entries == 1
    assert controller.brownout_s() >= controller.config.brownout_min_s
    assert controller.suppress_prewarm() is False
    # Out of brownout, dispatch goes back to the DPU.
    recovered = runtime.invoke_now("etl", kind=PuKind.DPU)
    assert recovered.pu_name.startswith("dpu")


def test_brownout_throttles_hedge_clones():
    """Arming overload next to hedging installs a throttleable clone
    bucket; entering brownout closes it, leaving reopens it."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=5,
        hedging=HedgeConfig(), overload=OverloadConfig(),
    )
    budget = runtime.hedging.budget
    # Unlimited (no ratio) but throttleable: the shape the controller
    # installs when the user armed hedging without a budget.
    assert budget is not None and budget.ratio is None
    assert budget.try_fire() is True

    runtime.overload._enter_brownout()
    assert budget.throttled is True
    assert budget.try_fire() is False
    assert budget.denied_throttled == 1

    runtime.overload._brownout_since = (
        runtime.sim.now - runtime.overload.config.brownout_min_s
    )
    runtime.overload.note_pressure()
    assert budget.throttled is False
    assert budget.try_fire() is True


def test_controller_bounds_the_dead_letter_queue():
    """Arming the controller installs the configured DLQ bound (only
    when the queue is still unbounded)."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=1,
        overload=OverloadConfig(dead_letter_capacity=7),
    )
    assert runtime.dead_letters.capacity == 7
    unbounded = MoleculeRuntime.create(
        num_dpus=1, seed=1,
        overload=OverloadConfig(dead_letter_capacity=None),
    )
    assert unbounded.dead_letters.capacity is None
