"""Unit tests for the arrival predictor: EWMA rate, idle decay, and
the nearest-rank inter-arrival percentile."""

import pytest

from repro.warmpath.predictor import GAP_BUCKETS, ArrivalPredictor


def test_unknown_function_predicts_zero():
    predictor = ArrivalPredictor()
    assert predictor.predicted_rps("ghost", now=10.0) == 0.0
    assert predictor.gap_percentile("ghost", 99.0) is None
    assert predictor.stats("ghost") is None


def test_single_arrival_has_no_rate_yet():
    predictor = ArrivalPredictor()
    predictor.observe("f", 1.0)
    assert predictor.predicted_rps("f", now=1.0) == 0.0
    assert predictor.gap_percentile("f", 50.0) is None


def test_ewma_converges_to_steady_rate():
    predictor = ArrivalPredictor(alpha=0.3)
    for i in range(30):
        predictor.observe("f", i * 0.1)  # 10 rps
    assert predictor.predicted_rps("f", now=2.9) == pytest.approx(10.0)


def test_prediction_decays_once_idle():
    predictor = ArrivalPredictor()
    for i in range(30):
        predictor.observe("f", i * 0.1)
    last = 2.9
    # Idle for many gap lengths: the prediction caps at 2 / idle.
    assert predictor.predicted_rps("f", now=last + 10.0) == pytest.approx(0.2)
    # Within one gap of the last arrival the full EWMA still applies.
    assert predictor.predicted_rps("f", now=last) == pytest.approx(10.0)


def test_same_timestep_arrivals_skip_degenerate_gap():
    predictor = ArrivalPredictor()
    predictor.observe("f", 5.0)
    predictor.observe("f", 5.0)  # gap == 0: no 1/0 sample
    stats = predictor.stats("f")
    assert stats.count == 2
    assert stats.ewma_rate == 0.0
    assert sum(stats.gap_counts) == 0


def test_gap_percentile_nearest_rank():
    predictor = ArrivalPredictor()
    now = 0.0
    predictor.observe("f", now)
    # Nine short gaps of 0.1s, then one long gap of 10s.
    for _ in range(9):
        now += 0.1
        predictor.observe("f", now)
    now += 10.0
    predictor.observe("f", now)
    # 0.1 lands in the bucket bounded by 0.1; 10.0 in the one by 10.0.
    assert predictor.gap_percentile("f", 50.0) == 0.1
    assert predictor.gap_percentile("f", 99.0) == 10.0


def test_gap_beyond_largest_bucket_reports_largest_bound():
    predictor = ArrivalPredictor()
    predictor.observe("f", 0.0)
    predictor.observe("f", 1000.0)  # far past the 120s bound
    assert predictor.gap_percentile("f", 99.0) == GAP_BUCKETS[-1]


def test_functions_listed_in_first_seen_order():
    predictor = ArrivalPredictor()
    predictor.observe("b", 0.0)
    predictor.observe("a", 1.0)
    predictor.observe("b", 2.0)
    assert predictor.functions() == ["b", "a"]


def test_invalid_alpha_rejected():
    with pytest.raises(ValueError):
        ArrivalPredictor(alpha=0.0)
    with pytest.raises(ValueError):
        ArrivalPredictor(alpha=1.5)
