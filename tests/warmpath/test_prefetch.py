"""Bitstream prefetch: the predictor programs the next vectorized FPGA
image before the triggering request arrives."""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WarmPathConfig,
    WorkProfile,
    build_cpu_fpga_machine,
)
from repro.hardware import FabricResources, KernelSpec
from repro.obs import Observability
from repro.sim import Simulator


def _fpga_runtime(warmpath, seed=11):
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim)
    obs = Observability(sim)
    molecule = MoleculeRuntime(sim, machine, obs=obs, seed=seed,
                               warmpath=warmpath)
    molecule.start()
    for name in ("fir", "aes"):
        molecule.deploy_now(FunctionDef(
            name=name,
            code=FunctionCode(
                name, language=Language.PYTHON, import_ms=80.0,
                kernel=KernelSpec(
                    name=name,
                    resources=FabricResources(
                        luts=4000, regs=7000, brams=20, dsps=40
                    ),
                    exec_time_s=100e-6,
                ),
            ),
            work=WorkProfile(warm_exec_ms=4.0, fpga_exec_ms=0.5),
            profiles=(PuKind.FPGA,),
        ))
    return molecule


def _drive(molecule, arrivals=40, gap_s=0.2):
    results = []

    def capture(name):
        result = yield from molecule.invoke(name, kind=PuKind.FPGA)
        results.append(result)

    def traffic():
        for i in range(arrivals):
            yield molecule.sim.timeout(gap_s)
            molecule.sim.spawn(capture("fir"))
            if i % 2 == 0:
                molecule.sim.spawn(capture("aes"))
        yield molecule.sim.timeout(5.0)

    molecule.run(traffic())
    return results


def test_prefetch_programs_ahead_and_hits():
    molecule = _fpga_runtime(WarmPathConfig())
    _drive(molecule)
    snap = molecule.warmpath.snapshot()
    assert snap["prefetch_started"] > 0
    assert snap["prefetch_hits"] > 0
    # The prefetch metric families surfaced through observability.
    rendered = molecule.obs.registry.to_dict()
    assert "repro_bitstream_prefetch_hits" in rendered


def test_prefetch_disabled_never_programs():
    molecule = _fpga_runtime(WarmPathConfig(prefetch=False, prewarm=False,
                                            coalesce=False))
    _drive(molecule)
    snap = molecule.warmpath.snapshot()
    assert snap["prefetch_started"] == 0
    assert snap["prefetch_hits"] == 0


def test_prefetch_run_matches_engine_off_results():
    """Prefetch only moves programming earlier; every request still
    answers, deterministically."""
    on = _fpga_runtime(WarmPathConfig())
    on_results = _drive(on)
    off = _fpga_runtime(None)
    off_results = _drive(off)
    assert len(on_results) == len(off_results) == 60
    # Two identical runs with the engine stay deterministic.
    again = _fpga_runtime(WarmPathConfig())
    again_results = _drive(again)
    assert [r.total_ms for r in again_results] == [
        r.total_ms for r in on_results
    ]
