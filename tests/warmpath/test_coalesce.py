"""Cold-start coalescing: batch bookkeeping units plus the end-to-end
storm behavior (N concurrent misses served by far fewer sandboxes)."""

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WarmPathConfig,
    WorkProfile,
)
from repro.errors import ReproError
from repro.sim import Simulator
from repro.warmpath.coalesce import ColdStartCoalescer


# -- bookkeeping units -------------------------------------------------------------


def test_lookup_finds_only_open_batches():
    sim = Simulator()
    coalescer = ColdStartCoalescer()
    batch = coalescer.begin("f", 0)
    assert coalescer.lookup("f", (0, 1)) is batch
    assert coalescer.lookup("f", (1,)) is None
    assert coalescer.lookup("g", (0,)) is None
    coalescer.close(batch)
    assert coalescer.lookup("f", (0,)) is None


def test_deliver_is_fifo_and_counts():
    sim = Simulator()
    coalescer = ColdStartCoalescer()
    batch = coalescer.begin("f", 0)
    first = batch.join(sim)
    second = batch.join(sim)
    assert coalescer.deliver(batch, "inst-1") is True
    assert first.triggered and first.value == "inst-1"
    assert not second.triggered
    assert coalescer.deliver(batch, "inst-2") is True
    assert second.value == "inst-2"
    assert coalescer.deliver(batch, "inst-3") is False  # nobody waiting
    assert batch.served == 2
    assert coalescer.followers_served == 2


def test_close_requeues_leftover_followers_with_none():
    sim = Simulator()
    coalescer = ColdStartCoalescer()
    batch = coalescer.begin("f", 0)
    waiter = batch.join(sim)
    coalescer.close(batch)
    assert waiter.triggered and waiter.value is None
    assert coalescer.followers_requeued == 1
    assert not batch.open


# -- the storm ---------------------------------------------------------------------


def _storm(warmpath, requests=40, memory_mb=None, seed=7):
    """Fire ``requests`` concurrent invocations of one cold function."""
    molecule = MoleculeRuntime.create(num_dpus=1, seed=seed, warmpath=warmpath)
    if memory_mb is None:
        memory_mb = 128
    molecule.deploy_now(FunctionDef(
        name="storm",
        code=FunctionCode("storm", language=Language.PYTHON,
                          import_ms=120.0, memory_mb=memory_mb),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU,),
    ))

    outcomes = []

    def guarded():
        try:
            result = yield from molecule.invoke("storm", kind=PuKind.CPU)
            outcomes.append(result)
        except ReproError:
            outcomes.append(None)

    def drive():
        procs = [molecule.sim.spawn(guarded()) for _ in range(requests)]
        yield molecule.sim.all_of(procs)

    molecule.run(drive())
    return molecule, [r for r in outcomes if r is not None]


def test_storm_coalesces_into_fewer_sandboxes():
    molecule, answered = _storm(WarmPathConfig(), requests=40)
    invoker = molecule.invoker
    engine = molecule.warmpath
    assert len(answered) == 40
    # One single-flight batch; one real cold start leads it.
    assert engine.coalescer.batches_opened == 1
    assert invoker.cold_invocations == 1
    assert invoker.coalesced_invocations == 39
    sandboxes = (invoker.cold_invocations + engine.extra_spawned
                 + engine.prewarm_spawned)
    assert sandboxes < 40  # the acceptance bar: fewer sandboxes than requests
    assert sandboxes <= engine.config.max_batch
    assert engine.snapshot()["coalesced_served"] == 39


def test_storm_engine_off_forks_per_request():
    molecule, answered = _storm(None, requests=40)
    assert len(answered) == 40
    assert molecule.invoker.cold_invocations == 40
    assert molecule.invoker.coalesced_invocations == 0


def test_storm_under_memory_pressure_survives_only_with_coalescing():
    # DRAM only admits ~an eighth of the storm at once: uncoalesced
    # misses overflow into placement failures, a coalesced batch
    # recycles its capped instance set through every request.
    def pressured(warmpath):
        molecule = MoleculeRuntime.create(num_dpus=1, seed=7,
                                          warmpath=warmpath)
        memory_mb = int(molecule.machine.host_cpu.dram_free_mb // 5)
        return _storm_on(molecule, memory_mb)

    def _storm_on(molecule, memory_mb, requests=40):
        molecule.deploy_now(FunctionDef(
            name="storm",
            code=FunctionCode("storm", language=Language.PYTHON,
                              import_ms=120.0, memory_mb=memory_mb),
            work=WorkProfile(warm_exec_ms=15.0),
            profiles=(PuKind.CPU,),
        ))
        outcomes = []

        def guarded():
            try:
                result = yield from molecule.invoke("storm", kind=PuKind.CPU)
                outcomes.append(result)
            except ReproError:
                outcomes.append(None)

        def drive():
            procs = [molecule.sim.spawn(guarded()) for _ in range(requests)]
            yield molecule.sim.all_of(procs)

        molecule.run(drive())
        return molecule, [r for r in outcomes if r is not None]

    _off_rt, off_answered = pressured(None)
    on_rt, on_answered = pressured(WarmPathConfig())
    assert len(on_answered) == 40
    assert len(off_answered) < len(on_answered)


def test_leader_failure_requeues_followers():
    # A leader whose cold start dies must wake its followers so they
    # retry instead of hanging forever; the sim draining proves it.
    from repro import FaultKind, FaultPlan, FaultSpec

    plan = FaultPlan.of(FaultSpec(FaultKind.PU_CRASH, "cpu0",
                                  at_s=0.005, reboot_after_s=0.05))
    molecule = MoleculeRuntime.create(num_dpus=1, seed=7,
                                      warmpath=WarmPathConfig(),
                                      fault_plan=plan)
    molecule.deploy_now(FunctionDef(
        name="storm",
        code=FunctionCode("storm", language=Language.PYTHON,
                          import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    ))

    outcomes = []

    def guarded():
        try:
            result = yield from molecule.invoke("storm")
            outcomes.append(result)
        except ReproError:
            outcomes.append(None)

    def drive():
        procs = [molecule.sim.spawn(guarded()) for _ in range(8)]
        yield molecule.sim.all_of(procs)

    molecule.run(drive())  # drains: no follower is stranded
    assert len(outcomes) == 8
