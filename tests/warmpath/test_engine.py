"""Warm-path engine behavior: off means byte-identical golden output,
on means deterministic and strictly better on the bursty scenario."""

import json

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WarmPathConfig,
    WorkProfile,
)
from repro.loadgen import run_load

from tests.support import GOLDEN_SEED, golden_seed_snapshot


# -- engine off: stock behavior, byte for byte ------------------------------------


def test_engine_off_matches_golden_snapshot():
    """``warmpath=None`` must leave the canned golden workload
    byte-identical to a runtime predating the engine."""
    with open("tests/sim/data/golden_seed_snapshot.json",
              encoding="utf-8") as handle:
        expected = json.load(handle)
    current = golden_seed_snapshot(GOLDEN_SEED)
    assert json.dumps(current, sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_engine_off_load_run_identical_to_default():
    """A load run with ``prewarm=False`` equals one that never heard
    of the engine (same plan, same seed, same report modulo wall time)."""
    baseline = run_load("burst", quick=True, seed=1234)
    explicit = run_load("burst", quick=True, seed=1234, prewarm=False)
    for report in (baseline, explicit):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        explicit, sort_keys=True
    )


# -- engine on: deterministic ------------------------------------------------------


def _steady_run(seed=21):
    molecule = MoleculeRuntime.create(num_dpus=1, seed=seed,
                                      warmpath=WarmPathConfig())
    molecule.deploy_now(FunctionDef(
        name="tick",
        code=FunctionCode("tick", language=Language.PYTHON, import_ms=150.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU,),
    ))

    def traffic():
        for _ in range(60):
            yield molecule.sim.timeout(0.1)
            molecule.sim.spawn(molecule.invoke("tick", kind=PuKind.CPU))
        yield molecule.sim.timeout(5.0)

    molecule.run(traffic())
    return molecule


def test_engine_on_is_deterministic():
    first = _steady_run()
    second = _steady_run()
    assert first.warmpath.snapshot() == second.warmpath.snapshot()
    assert json.dumps(first.metrics_snapshot(), sort_keys=True) == json.dumps(
        second.metrics_snapshot(), sort_keys=True
    )
    assert first.sim.now == second.sim.now


def test_prewarm_spawns_hits_and_self_corrects():
    molecule = _steady_run()
    engine = molecule.warmpath
    snap = engine.snapshot()
    assert snap["prewarm_spawned"] > 0
    assert snap["prewarm_hits"] > 0
    assert snap["ticks"] > 0
    # Steady single-file traffic needs one instance, not a horizon
    # full: the wasted-prewarm loop must have shrunk the horizon.
    assert engine.horizon_scale < 1.0
    # Every spawned instance is accounted hit, wasted, or still idle.
    idle = sum(
        len(pool.idle_instances("tick"))
        for pool in molecule.invoker.pools.values()
    )
    assert snap["prewarm_hits"] + snap["prewarm_wasted"] + idle >= (
        snap["prewarm_spawned"]
    )


def test_adaptive_ttl_written_from_gap_distribution():
    molecule = _steady_run()
    config = molecule.warmpath.config
    overrides = [
        pool.ttl_overrides["tick"]
        for pool in molecule.invoker.pools.values()
        if "tick" in pool.ttl_overrides
    ]
    assert overrides, "steady traffic must produce a TTL override"
    for ttl in overrides:
        assert config.min_ttl_s <= ttl <= config.max_ttl_s


def test_prewarm_loop_parks_when_idle():
    """The pre-warmer must not keep the simulation alive: the run
    above returned, and a fresh engine with zero traffic drains
    immediately."""
    def idle_drain_time(warmpath):
        molecule = MoleculeRuntime.create(num_dpus=1, seed=5,
                                          warmpath=warmpath)

        def nothing():
            yield molecule.sim.timeout(1.0)

        molecule.run(nothing())
        return molecule.sim.now

    assert idle_drain_time(WarmPathConfig()) == idle_drain_time(None)


# -- engine on: the bursty-scenario acceptance bar ---------------------------------


def test_burst_load_strictly_better_with_prewarm():
    """Same plan, same seed, finite keep-alive: arming the engine must
    strictly reduce both the cold-start rate and the p99."""
    kwargs = dict(quick=True, seed=None, keep_alive_ttl_s=1.0)
    off = run_load("burst", prewarm=False, **kwargs)
    on = run_load("burst", prewarm=True, **kwargs)
    # Identical offered load on both sides.
    assert on["load"]["offered"] == off["load"]["offered"]
    assert on["load"]["answered"] == off["load"]["answered"]
    assert on["load"]["cold_start_rate"] < off["load"]["cold_start_rate"]
    on_p99 = on["latency"]["end_to_end"]["p99_ms"]
    off_p99 = off["latency"]["end_to_end"]["p99_ms"]
    assert on_p99 < off_p99
    assert on["warmpath"]["prewarm_spawned"] > 0
    assert "warmpath" not in off
