"""Computation-reuse layer: GDSF bookkeeping, the result cache, the
single-flight table and the engine behind the gateway."""
