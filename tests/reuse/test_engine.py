"""Result-cache engine behavior: off means byte-identical reports; on
means fresh hits skip the sandbox, expired entries revalidate unless
pressure or a hopeless deadline justifies serving stale, concurrent
identical misses collapse onto one execution, and a shed is downgraded
to a stale answer without breaking the three-fate conservation."""

import json

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    OverloadConfig,
    PuKind,
    WorkProfile,
)
from repro.loadgen import run_load
from repro.reuse import ReuseConfig
from repro.reuse.cache import result_payload

from tests.support import GOLDEN_SEED


def _fn(name="memo", idempotent=True, exec_ms=5.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, import_ms=10.0),
        work=WorkProfile(warm_exec_ms=exec_ms),
        profiles=(PuKind.CPU,),
        idempotent=idempotent,
    )


def _runtime(seed=7, **kwargs):
    kwargs.setdefault("reuse", ReuseConfig())
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=seed, default_deadline_s=10.0, **kwargs
    )
    runtime.deploy_now(_fn())
    return runtime


def _advance(runtime, seconds):
    def waiter():
        yield runtime.sim.timeout(seconds)
    runtime.run(waiter())


# -- engine off: stock behavior, byte for byte ------------------------------------


def test_engine_off_load_run_identical_to_default():
    """``reuse=False`` equals a run that never heard of the cache —
    and no reuse-era key leaks into the report."""
    baseline = run_load("burst", quick=True, seed=1234)
    explicit = run_load("burst", quick=True, seed=1234, reuse=False)
    for report in (baseline, explicit):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        explicit, sort_keys=True
    )
    assert "reuse" not in baseline
    assert "zipf_s" not in baseline["params"]
    assert "cache_mb" not in baseline["params"]


# -- fresh hits --------------------------------------------------------------------


def test_fresh_hit_answers_without_a_sandbox():
    runtime = _runtime()
    first = runtime.invoke_now("memo", input_key="k1")
    second = runtime.invoke_now("memo", input_key="k1")
    # The miss executed and stamped the canonical payload...
    assert first.cache == ""
    assert first.payload == result_payload("memo", "k1")
    # ... the hit answered from the cache: no PU, no billing, and the
    # exact payload an execution of the same digest produces.
    assert second.cache == "fresh"
    assert second.pu_name == "cache"
    assert second.pu_kind is None
    assert second.billed_cost == 0.0
    assert second.payload == first.payload
    reuse = runtime.reuse
    assert reuse.served_fresh == 1
    assert reuse.executed == 1
    assert reuse.misses == 1
    assert reuse.hit_rate() == pytest.approx(0.5)
    assert reuse.conserved(answered=2)


def test_distinct_keys_and_functions_never_collide():
    runtime = _runtime()
    a = runtime.invoke_now("memo", input_key="a")
    b = runtime.invoke_now("memo", input_key="b")
    assert a.cache == b.cache == ""
    assert a.payload != b.payload
    assert runtime.reuse.misses == 2


def test_non_cacheable_requests_bypass_the_consult():
    runtime = _runtime()
    runtime.deploy_now(_fn(name="mutator", idempotent=False))
    keyed = runtime.invoke_now("mutator", input_key="k1")
    keyless = runtime.invoke_now("memo")
    assert keyed.cache == keyless.cache == ""
    assert keyed.payload is None
    reuse = runtime.reuse
    assert reuse.bypass_by_reason == {"nonidempotent": 1, "no_key": 1}
    assert len(reuse.cache) == 0
    assert reuse.executed == 2
    assert reuse.conserved(answered=2)


# -- staleness policy --------------------------------------------------------------


def test_expired_entry_revalidates_when_unpressured():
    # TTL comfortably above the 10s deadline-timer drain each
    # ``invoke_now`` costs, so only the explicit advance expires it.
    runtime = _runtime(reuse=ReuseConfig(ttl_s=15.0))
    runtime.invoke_now("memo", input_key="k1")
    _advance(runtime, 20.0)
    revalidated = runtime.invoke_now("memo", input_key="k1")
    assert revalidated.cache == ""  # executed, refreshing the entry
    assert runtime.reuse.revalidations == 1
    assert runtime.reuse.served_stale == 0
    # The refresh restored freshness: the next request hits.
    assert runtime.invoke_now("memo", input_key="k1").cache == "fresh"


def test_expired_entry_served_stale_under_pressure():
    runtime = _runtime(
        reuse=ReuseConfig(ttl_s=0.5), overload=OverloadConfig()
    )
    primed = runtime.invoke_now("memo", input_key="k1")
    _advance(runtime, 1.0)
    runtime.overload._enter_brownout()
    stale = runtime.invoke_now("memo", input_key="k1")
    assert stale.cache == "stale"
    assert stale.payload == primed.payload
    assert runtime.reuse.stale_by_reason == {"pressure": 1}
    assert runtime.reuse.served_stale == 1
    assert runtime.reuse.revalidations == 0
    assert runtime.reuse.conserved(answered=2)


def test_expired_entry_served_stale_when_deadline_is_hopeless():
    runtime = _runtime(
        reuse=ReuseConfig(ttl_s=0.5), overload=OverloadConfig()
    )
    runtime.invoke_now("memo", input_key="k1")
    _advance(runtime, 1.0)
    gate = runtime.overload.gate_for(runtime.gateway)
    gate.estimated_wait_s = lambda: 999.0  # wait dwarfs any budget
    stale = runtime.invoke_now("memo", input_key="k1")
    assert stale.cache == "stale"
    assert runtime.reuse.stale_by_reason == {"deadline": 1}


def test_serve_stale_off_always_revalidates():
    runtime = _runtime(
        reuse=ReuseConfig(ttl_s=0.5, serve_stale=False),
        overload=OverloadConfig(),
    )
    runtime.invoke_now("memo", input_key="k1")
    _advance(runtime, 1.0)
    runtime.overload._enter_brownout()
    assert runtime.invoke_now("memo", input_key="k1").cache == ""
    assert runtime.reuse.served_stale == 0
    assert runtime.reuse.revalidations == 1


# -- single flight -----------------------------------------------------------------


def test_concurrent_identical_misses_execute_once():
    runtime = _runtime()
    sim = runtime.sim
    results = []

    def call():
        result = yield from runtime.invoke("memo", input_key="hot")
        results.append(result)

    for _ in range(3):
        sim.spawn(call())
    sim.run()
    assert len(results) == 3
    assert len({r.payload for r in results}) == 1
    reuse = runtime.reuse
    assert reuse.executed == 1  # one sandbox run for the whole cohort
    assert reuse.served_fresh == 2  # followers fanned the same entry
    flights = reuse.flights
    assert flights.flights_opened == 1
    assert flights.followers_joined == 2
    assert flights.followers_served == 2
    assert flights.leader_failures == 0
    assert reuse.conserved(answered=3)


# -- invalidation ------------------------------------------------------------------


def test_fresh_hit_never_survives_an_invalidating_deploy():
    runtime = _runtime()
    runtime.invoke_now("memo", input_key="k1")
    assert runtime.invoke_now("memo", input_key="k1").cache == "fresh"
    # A redeploy (unregister + deploy) bumps the generation twice.
    runtime.registry.unregister("memo")
    runtime.deploy_now(_fn())
    post_deploy = runtime.invoke_now("memo", input_key="k1")
    assert post_deploy.cache == ""  # re-executed under the new code
    assert runtime.reuse.cache.invalidations == 1
    # The re-execution memoized under the new generation.
    assert runtime.invoke_now("memo", input_key="k1").cache == "fresh"


def test_eager_invalidate_drops_every_entry_of_a_function():
    runtime = _runtime()
    runtime.invoke_now("memo", input_key="a")
    runtime.invoke_now("memo", input_key="b")
    assert runtime.reuse.invalidate("memo") == 2
    assert len(runtime.reuse.cache) == 0
    assert runtime.invoke_now("memo", input_key="a").cache == ""


# -- shed-to-stale downgrade -------------------------------------------------------


def test_shed_fallback_prefers_any_present_entry():
    runtime = _runtime(overload=OverloadConfig())
    function = runtime.registry.get("memo")
    assert runtime.reuse.shed_fallback(function, "k1") is None
    runtime.invoke_now("memo", input_key="k1")
    hit = runtime.reuse.shed_fallback(function, "k1")
    # A still-fresh entry downgrades a shed without being "stale".
    assert hit is not None and hit.reason == "shed" and not hit.stale
    _advance(runtime, 35.0)  # past the default 30s TTL
    assert runtime.reuse.shed_fallback(function, "k1").stale is True
    assert runtime.reuse.shed_downgrades == 2
    # Keyless / disabled / orphaned entries really shed.
    assert runtime.reuse.shed_fallback(function, None) is None
    runtime.registry.unregister("memo")
    runtime.deploy_now(_fn())
    assert runtime.reuse.shed_fallback(function, "k1") is None


def test_shed_to_stale_disabled_returns_nothing():
    runtime = _runtime(
        reuse=ReuseConfig(shed_to_stale=False), overload=OverloadConfig()
    )
    runtime.invoke_now("memo", input_key="k1")
    function = runtime.registry.get("memo")
    assert runtime.reuse.shed_fallback(function, "k1") is None
    assert runtime.reuse.shed_downgrades == 0


def test_chaos_run_converts_sheds_to_stale_answers():
    """Under a deliberately pinched admission gate, arming the cache
    must convert a large share of sheds into (stale) answers while the
    three-fate conservation and the answer partition both keep
    holding."""
    gate = OverloadConfig(
        initial_limit=2, min_limit=1, max_limit=4, queue_capacity=8
    )
    off = run_load("overload", quick=True, seed=GOLDEN_SEED, overload=gate)
    on = run_load(
        "overload", quick=True, seed=GOLDEN_SEED, overload=gate,
        reuse=ReuseConfig(ttl_s=0.5),
    )
    assert on["load"]["offered"] == off["load"]["offered"]
    assert off["load"]["shed"] > 0
    # Sheds fell and answers rose: old answers beat refusals.
    assert on["load"]["shed"] < off["load"]["shed"]
    assert on["load"]["answered"] > off["load"]["answered"]
    reuse = on["reuse"]
    assert reuse["served_stale"] > 0
    assert reuse["conserved"] is True
    load = on["load"]
    assert (load["answered"] + load["shed"] + load["dead_lettered"]
            == load["admitted"])
    assert load["lost"] == 0
    assert on["overload"]["conserved"] is True
