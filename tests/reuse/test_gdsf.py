"""GDSF priority bookkeeping and the FaasCache-style warm-pool policy.

The tracker is shared by two consumers — the result cache's eviction
order and the greedy-dual keep-alive pool — so its unit behavior
(priorities, aging clock, deterministic tie-breaks) is pinned here
once, then the warm-pool A/B shows the policy difference LRU cannot
express: an expensive-to-recreate function survives a burst of cheap
hot ones.
"""

import json
from types import SimpleNamespace

import pytest

from repro.core.keepalive import (
    GdsfWarmPool,
    KEEPALIVE_POLICIES,
    WarmPool,
    make_warm_pool,
)
from repro.errors import SchedulingError
from repro.loadgen import run_load
from repro.reuse.gdsf import GreedyDualTracker


# -- the tracker -------------------------------------------------------------------


def test_admit_touch_and_priority():
    tracker = GreedyDualTracker()
    tracker.admit("a", cost=10.0, size=2.0)
    assert "a" in tracker
    assert len(tracker) == 1
    # priority = clock + freq * cost / size = 0 + 1 * 10 / 2.
    assert tracker.priority_of("a") == pytest.approx(5.0)
    tracker.touch("a")
    assert tracker.priority_of("a") == pytest.approx(10.0)


def test_victim_is_lowest_priority_with_seq_tie_break():
    tracker = GreedyDualTracker()
    tracker.admit("first", cost=1.0)
    tracker.admit("second", cost=1.0)  # same priority, later admission
    tracker.admit("rich", cost=100.0)
    assert tracker.victim() == "first"
    tracker.touch("first")
    assert tracker.victim() == "second"
    assert GreedyDualTracker().victim() is None


def test_eviction_advances_the_aging_clock():
    tracker = GreedyDualTracker()
    tracker.admit("cheap", cost=2.0)
    tracker.admit("rich", cost=100.0)
    tracker.remove("cheap", evicted=True)
    assert tracker.clock == pytest.approx(2.0)
    assert tracker.evictions == 1
    # Future admissions start at the level the cache gave up.
    tracker.admit("late", cost=1.0)
    assert tracker.priority_of("late") == pytest.approx(3.0)
    # A plain (non-eviction) removal never moves the clock.
    tracker.remove("late")
    assert tracker.clock == pytest.approx(2.0)
    assert tracker.evictions == 1
    tracker.remove("never-tracked")  # harmless no-op


def test_age_records_an_eviction_without_forgetting_the_key():
    tracker = GreedyDualTracker()
    tracker.admit("fn", cost=4.0)
    tracker.age(tracker.priority_of("fn"))
    assert "fn" in tracker
    assert tracker.evictions == 1
    assert tracker.clock == pytest.approx(4.0)
    assert tracker.keys() == ("fn",)


# -- the warm-pool policy ----------------------------------------------------------


def _instance(name, import_ms):
    """The duck-typed slice of FunctionInstance the pools consume."""
    return SimpleNamespace(
        function=SimpleNamespace(
            name=name, code=SimpleNamespace(import_ms=import_ms)
        )
    )


def test_make_warm_pool_dispatches_policies():
    assert KEEPALIVE_POLICIES == ("ttl", "gdsf")
    assert type(make_warm_pool("ttl", 4)) is WarmPool
    assert type(make_warm_pool("gdsf", 4)) is GdsfWarmPool
    with pytest.raises(SchedulingError):
        make_warm_pool("belady", 4)


def test_gdsf_keeps_the_expensive_function_where_lru_drops_it():
    """The policy A/B at unit scale: one cold-start-expensive function
    plus a burst of cheap ones past capacity.  Plain LRU evicts the
    oldest bucket — the expensive one — while GDSF sacrifices a cheap
    hot instance because losing it costs 500x less to undo."""
    heavy = _instance("heavy", import_ms=500.0)
    lights = [_instance("light", import_ms=1.0) for _ in range(2)]

    lru = WarmPool(capacity=2)
    lru.release(heavy, now=0.0)
    evicted = []
    for light in lights:
        evicted += lru.release(light, now=0.0)
    assert [i.function.name for i in evicted] == ["heavy"]

    gdsf = GdsfWarmPool(capacity=2)
    gdsf.release(heavy, now=0.0)
    evicted = []
    for light in lights:
        evicted += gdsf.release(light, now=0.0)
    assert [i.function.name for i in evicted] == ["light"]
    assert gdsf.acquire("heavy") is heavy


def test_gdsf_partial_eviction_keeps_the_cell_and_ages_the_clock():
    pool = GdsfWarmPool(capacity=2)
    pool.release(_instance("hot", import_ms=1.0), now=0.0)
    pool.release(_instance("hot", import_ms=1.0), now=0.0)
    pool.release(_instance("rich", import_ms=50.0), now=0.0)
    # One "hot" instance was evicted, but the bucket (and its tracker
    # cell) survive, and the eviction still advanced the aging clock.
    assert len(pool) == 2
    assert "hot" in pool.tracker
    assert pool.tracker.evictions == 1
    assert pool.tracker.clock > 0.0
    assert len(pool.idle_instances("hot")) == 1


def test_gdsf_acquire_and_drop_keep_tracker_in_sync():
    pool = GdsfWarmPool(capacity=4)
    pool.release(_instance("a", import_ms=5.0), now=0.0)
    pool.release(_instance("b", import_ms=5.0), now=0.0)
    # Emptying a bucket by acquire is a take-out, not an eviction.
    assert pool.acquire("a") is not None
    assert "a" not in pool.tracker
    assert pool.tracker.evictions == 0
    pool.drop_all("b")
    assert "b" not in pool.tracker
    assert len(pool.tracker) == 0


def test_gdsf_reaping_expired_instances_clears_dead_cells():
    pool = GdsfWarmPool(capacity=4, keep_alive_ttl_s=1.0)
    pool.release(_instance("idle", import_ms=5.0), now=0.0)
    pool.release(_instance("busy", import_ms=5.0), now=5.0)
    reaped = pool.reap_expired(now=5.5)
    assert [i.function.name for i in reaped] == ["idle"]
    assert "idle" not in pool.tracker
    assert "busy" in pool.tracker


# -- scenario-level A/B ------------------------------------------------------------


def test_bursty_scenario_runs_under_gdsf_keepalive():
    """The bursty workload runs deterministically under the greedy-dual
    keep-alive, keeps the accounting invariant, and records the policy
    in params — while the default TTL run's report stays free of any
    keep-alive key (golden protection)."""
    ttl = run_load("burst", quick=True, seed=1234)
    first = run_load("burst", quick=True, seed=1234, keepalive_policy="gdsf")
    second = run_load("burst", quick=True, seed=1234, keepalive_policy="gdsf")
    for report in (ttl, first, second):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    assert first["params"]["keepalive_policy"] == "gdsf"
    assert "keepalive_policy" not in ttl["params"]
    load = first["load"]
    assert load["answered"] + load["dead_lettered"] == load["admitted"]
    # Same offered load on both sides of the A/B.
    assert load["offered"] == ttl["load"]["offered"]
