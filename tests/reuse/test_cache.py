"""The result cache and the single-flight table, in isolation.

Everything here runs without a simulator except the flight tests,
which only need `sim.event()` — the cache itself is wall-clock-free by
construction (freshness and eviction both key off caller-supplied sim
times and admission order).
"""

import pytest

from repro.reuse.cache import (
    CACHE_POLICIES,
    CacheEntry,
    ResultCache,
    SingleFlightTable,
    result_payload,
)
from repro.sim import Simulator


def _entry(function="fn", digest="k0", size=100, exec_s=0.01,
           stored=0.0, ttl=10.0, generation=1):
    payload = result_payload(function, digest)
    return CacheEntry(
        function=function, digest=digest, payload=payload,
        size_bytes=size, stored_at_s=stored, expires_at_s=stored + ttl,
        generation=generation, exec_s=exec_s,
    )


# -- payload oracle ----------------------------------------------------------------


def test_result_payload_is_deterministic_and_key_sensitive():
    assert result_payload("fn", "k1") == result_payload("fn", "k1")
    assert result_payload("fn", "k1") != result_payload("fn", "k2")
    assert result_payload("fn", "k1") != result_payload("gn", "k1")
    assert result_payload("thumb", "k03").startswith("thumb/k03#")


def test_entry_freshness_window():
    entry = _entry(stored=5.0, ttl=10.0)
    assert entry.fresh(5.0)
    assert entry.fresh(14.999)
    assert not entry.fresh(15.0)
    assert entry.key == ("fn", "k0")


# -- the bounded store -------------------------------------------------------------


def test_unknown_policy_is_refused():
    assert CACHE_POLICIES == ("lru", "gdsf")
    with pytest.raises(ValueError):
        ResultCache(1024, policy="fifo")


def test_lru_evicts_least_recently_used():
    cache = ResultCache(300, policy="lru")
    for digest in ("a", "b", "c"):
        assert cache.put(_entry(digest=digest, size=100)) == []
    # Touch "a" so "b" becomes the LRU victim.
    assert cache.get("fn", "a") is not None
    evicted = cache.put(_entry(digest="d", size=100))
    assert [e.digest for e in evicted] == ["b"]
    assert len(cache) == 3
    assert cache.bytes_used == 300
    assert cache.evictions == 1


def test_gdsf_evicts_the_cheapest_entry_not_the_oldest():
    cache = ResultCache(300, policy="gdsf")
    cache.put(_entry(digest="rich", size=100, exec_s=1.0))  # expensive
    cache.put(_entry(digest="cheap1", size=100, exec_s=0.001))
    cache.put(_entry(digest="cheap2", size=100, exec_s=0.001))
    evicted = cache.put(_entry(digest="d", size=100, exec_s=0.001))
    # LRU would drop "rich" (the oldest); GDSF drops a cheap entry.
    assert [e.digest for e in evicted] == ["cheap1"]
    assert cache.peek("fn", "rich") is not None


def test_oversize_entry_is_refused_not_flushed():
    cache = ResultCache(100)
    cache.put(_entry(digest="small", size=80))
    huge = _entry(digest="huge", size=101)
    assert cache.put(huge) == [huge]
    assert len(cache) == 1
    assert cache.peek("fn", "small") is not None
    assert cache.bytes_used == 80


def test_put_replaces_in_place_without_eviction():
    cache = ResultCache(100)
    cache.put(_entry(digest="k", size=60))
    assert cache.put(_entry(digest="k", size=90)) == []
    assert cache.bytes_used == 90
    assert len(cache) == 1
    assert cache.evictions == 0


def test_peek_does_not_touch_recency():
    cache = ResultCache(200, policy="lru")
    cache.put(_entry(digest="a", size=100))
    cache.put(_entry(digest="b", size=100))
    # Peeking "a" must NOT rescue it from being the LRU victim.
    assert cache.peek("fn", "a") is not None
    evicted = cache.put(_entry(digest="c", size=100))
    assert [e.digest for e in evicted] == ["a"]
    assert cache.peek("fn", "zzz") is None


def test_discard_and_invalidate_function():
    cache = ResultCache(1000)
    cache.put(_entry(function="f1", digest="a"))
    cache.put(_entry(function="f1", digest="b"))
    cache.put(_entry(function="f2", digest="a"))
    assert cache.discard("f1", "a") is True
    assert cache.discard("f1", "a") is False
    assert cache.invalidate_function("f1") == 1
    assert cache.invalidate_function("f1") == 0
    assert len(cache) == 1
    assert cache.peek("f2", "a") is not None
    assert cache.invalidations == 2
    assert cache.bytes_used == 100


# -- single flight -----------------------------------------------------------------


def test_followers_are_fanned_the_leaders_entry():
    sim = Simulator()
    table = SingleFlightTable()
    key = ("fn", "k0")
    assert table.lookup(key) is None
    flight = table.begin(key)
    assert table.lookup(key) is flight
    waiters = [table.join(flight, sim) for _ in range(3)]
    entry = _entry()
    assert table.finish(flight, entry) == 3
    assert all(w.value is entry for w in waiters)
    assert table.lookup(key) is None
    assert len(table) == 0
    assert table.flights_opened == 1
    assert table.followers_joined == 3
    assert table.followers_served == 3


def test_abort_wakes_followers_empty_handed():
    sim = Simulator()
    table = SingleFlightTable()
    flight = table.begin(("fn", "k0"))
    waiters = [table.join(flight, sim) for _ in range(2)]
    assert table.abort(flight) == 2
    assert all(w.value is None for w in waiters)
    assert not flight.open
    assert table.leader_failures == 1
    assert table.followers_requeued == 2
    # The key is free again: a woken follower can lead a new flight.
    replacement = table.begin(("fn", "k0"))
    assert table.lookup(("fn", "k0")) is replacement


def test_finishing_a_superseded_flight_leaves_the_replacement():
    """A slow first leader finishing after its flight was aborted and
    replaced must not tear down the replacement's table slot."""
    sim = Simulator()
    table = SingleFlightTable()
    first = table.begin(("fn", "k0"))
    table.abort(first)
    replacement = table.begin(("fn", "k0"))
    table.finish(first, _entry())
    assert table.lookup(("fn", "k0")) is replacement
