"""Tests for machine builders and topology queries."""

import pytest

from repro.errors import HardwareError
from repro.hardware import (
    PuKind,
    build_cpu_dpu_machine,
    build_cpu_fpga_machine,
    build_full_machine,
)
from repro.sim import Simulator


def test_cpu_dpu_machine_topology():
    machine = build_cpu_dpu_machine(Simulator(), num_dpus=2)
    assert len(machine.pus) == 3
    assert machine.host_cpu.pu_id == 0
    assert len(machine.pus_of_kind(PuKind.DPU)) == 2
    assert len(machine.general_purpose_pus()) == 3


def test_cpu_dpu_machine_bf2_model():
    machine = build_cpu_dpu_machine(Simulator(), num_dpus=1, dpu_model="bf2")
    dpu = machine.pu(1)
    assert dpu.spec.model.startswith("Nvidia Bluefield-2")


def test_cpu_dpu_rejects_non_dpu_model():
    with pytest.raises(HardwareError):
        build_cpu_dpu_machine(Simulator(), num_dpus=1, dpu_model="gpu")


def test_cpu_dpu_rejects_negative_count():
    with pytest.raises(HardwareError):
        build_cpu_dpu_machine(Simulator(), num_dpus=-1)


def test_cpu_fpga_machine_attaches_devices():
    machine = build_cpu_fpga_machine(Simulator(), num_fpgas=8)
    fpgas = machine.pus_of_kind(PuKind.FPGA)
    assert len(fpgas) == 8
    for fpga in fpgas:
        assert machine.fpga_device(fpga) is not None
        assert fpga.host_pu is machine.host_cpu


def test_cpu_fpga_requires_at_least_one():
    with pytest.raises(HardwareError):
        build_cpu_fpga_machine(Simulator(), num_fpgas=0)


def test_full_machine_has_every_kind():
    machine = build_full_machine(Simulator(), num_dpus=1, num_fpgas=1, num_gpus=1)
    kinds = {pu.kind for pu in machine.pus.values()}
    assert kinds == {PuKind.CPU, PuKind.DPU, PuKind.FPGA, PuKind.GPU}


def test_unknown_pu_id_raises():
    machine = build_cpu_dpu_machine(Simulator(), num_dpus=0)
    with pytest.raises(HardwareError):
        machine.pu(42)


def test_fpga_device_lookup_requires_attachment():
    machine = build_cpu_dpu_machine(Simulator(), num_dpus=1)
    with pytest.raises(HardwareError):
        machine.fpga_device(machine.pu(1))


def test_host_cpu_requires_cpu_pu():
    from repro.hardware.machine import HeterogeneousComputer

    machine = HeterogeneousComputer(Simulator())
    with pytest.raises(HardwareError):
        _ = machine.host_cpu


def test_describe_lists_every_pu():
    machine = build_full_machine(Simulator(), num_dpus=1, num_fpgas=1, num_gpus=1)
    text = machine.describe()
    for pu in machine.pus.values():
        assert pu.name in text
