"""Tests for processing-unit models and the spec catalog."""

import pytest

from repro import config
from repro.errors import HardwareError
from repro.hardware import PriceClass, ProcessingUnit, PuKind, specs
from repro.sim import Simulator


@pytest.fixture
def cpu():
    return ProcessingUnit(Simulator(), 0, "cpu0", specs.XEON_8160)


@pytest.fixture
def dpu():
    return ProcessingUnit(Simulator(), 1, "dpu0", specs.BLUEFIELD1)


def test_kind_general_purpose_flags():
    assert PuKind.CPU.general_purpose
    assert PuKind.DPU.general_purpose
    assert not PuKind.FPGA.general_purpose
    assert not PuKind.GPU.general_purpose


def test_catalog_contains_paper_hardware():
    assert specs.XEON_8160.cores == 96
    assert specs.BLUEFIELD1.freq_ghz == 0.8
    assert specs.BLUEFIELD2.freq_ghz == 2.75
    assert specs.ULTRASCALE_PLUS.kind is PuKind.FPGA
    assert set(specs.CATALOG) >= {"xeon", "bf1", "bf2", "f1-fpga", "gpu", "desktop"}


def test_compute_time_scales_with_speed(cpu, dpu):
    work = 0.1  # reference seconds
    assert cpu.compute_time(work) == pytest.approx(0.1)
    # BF-1 is 4-7x slower than the host CPU (Fig. 14c).
    ratio = dpu.compute_time(work) / cpu.compute_time(work)
    assert 4.0 <= ratio <= 7.0


def test_compute_time_rejects_negative(cpu):
    with pytest.raises(HardwareError):
        cpu.compute_time(-1.0)


def test_bf2_is_3_to_4x_faster_than_bf1():
    # Fig. 14d: BF-2 functions are 3-4x faster than BF-1.
    sim = Simulator()
    bf1 = ProcessingUnit(sim, 0, "a", specs.BLUEFIELD1)
    bf2 = ProcessingUnit(sim, 1, "b", specs.BLUEFIELD2)
    ratio = bf1.compute_time(1.0) / bf2.compute_time(1.0)
    assert 3.0 <= ratio <= 6.0


def test_ipc_notify_matches_xpucall_calibration(cpu, dpu):
    # §6.1: naive XPUcall (4 notifies) is ~100us on BF-1 and ~20us on CPU.
    assert 4 * dpu.ipc_notify_time() == pytest.approx(100e-6)
    assert 4 * cpu.ipc_notify_time() == pytest.approx(20e-6)


def test_copy_time_slower_on_dpu(cpu, dpu):
    assert dpu.copy_time(4096) > cpu.copy_time(4096)
    assert cpu.copy_time(0) == 0.0


def test_dram_reservation_and_release(cpu):
    usable = cpu.spec.usable_dram_mb()
    assert cpu.try_reserve_dram(usable)
    assert not cpu.try_reserve_dram(1.0)
    cpu.release_dram(usable)
    assert cpu.dram_used_mb == 0.0


def test_dram_reserve_rejects_negative(cpu):
    with pytest.raises(HardwareError):
        cpu.try_reserve_dram(-5.0)


def test_density_calibration_cpu_1000_dpu_256():
    # Fig. 2a: the host CPU fits 1000 instances, each DPU fits 256.
    footprint = config.MEMORY.density_instance_mb
    assert int(specs.XEON_8160.usable_dram_mb() // footprint) == 1000
    assert int(specs.BLUEFIELD1.usable_dram_mb() // footprint) == 256


def test_price_classes_ordered():
    # §4.1: DPU cheapest, FPGA most expensive.
    assert (
        PriceClass.DPU.value
        < PriceClass.CPU.value
        < PriceClass.GPU.value
        < PriceClass.FPGA.value
    )


def test_billing_has_1ms_granularity():
    # §1: pay-as-you-go with 1ms granularity.
    fast = PriceClass.CPU.cost(0.0004)
    assert fast == PriceClass.CPU.cost(0.001)
    assert PriceClass.CPU.cost(0.010) == pytest.approx(10 * PriceClass.CPU.value)
