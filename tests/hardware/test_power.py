"""Tests for the energy model."""

import pytest

from repro.errors import HardwareError
from repro.hardware import ProcessingUnit, specs
from repro.hardware.power import (
    DEFAULT_POWER,
    EnergyMeter,
    PowerSpec,
    energy_per_request,
)
from repro.hardware.pu import PuKind
from repro.sim import Simulator


def make_pu(spec=specs.XEON_8160):
    sim = Simulator()
    return sim, ProcessingUnit(sim, 0, "pu", spec)


def busy_for(sim, pu, seconds):
    def proc(sim):
        pu.clock.mark_busy()
        yield sim.timeout(seconds)
        pu.clock.mark_idle()

    sim.spawn(proc(sim))
    sim.run()


def test_power_spec_validation():
    with pytest.raises(HardwareError):
        PowerSpec(idle_watts=-1.0, busy_watts=10.0)
    with pytest.raises(HardwareError):
        PowerSpec(idle_watts=50.0, busy_watts=10.0)


def test_default_power_dpu_far_below_cpu():
    assert DEFAULT_POWER[PuKind.DPU].busy_watts < DEFAULT_POWER[PuKind.CPU].busy_watts / 5


def test_idle_machine_burns_idle_power():
    sim, pu = make_pu()
    meter = EnergyMeter(pu)
    sim.timeout(10.0)
    sim.run()
    expected = 10.0 * DEFAULT_POWER[PuKind.CPU].idle_watts
    assert meter.energy_joules() == pytest.approx(expected)
    assert meter.busy_energy_joules() == 0.0


def test_busy_time_adds_marginal_power():
    sim, pu = make_pu()
    meter = EnergyMeter(pu)
    busy_for(sim, pu, 4.0)
    spec = DEFAULT_POWER[PuKind.CPU]
    assert meter.busy_s == pytest.approx(4.0)
    assert meter.energy_joules() == pytest.approx(4.0 * spec.busy_watts)
    assert meter.busy_energy_joules() == pytest.approx(
        4.0 * (spec.busy_watts - spec.idle_watts)
    )


def test_reset_restarts_window():
    sim, pu = make_pu()
    meter = EnergyMeter(pu)
    busy_for(sim, pu, 4.0)
    meter.reset()
    assert meter.busy_s == 0.0
    assert meter.window_s == 0.0


def test_energy_per_request():
    sim, pu = make_pu()
    meter = EnergyMeter(pu)
    busy_for(sim, pu, 2.0)
    per_request = energy_per_request(meter, requests=4)
    assert per_request == pytest.approx(meter.busy_energy_joules() / 4)
    with pytest.raises(HardwareError):
        energy_per_request(meter, requests=0)


def test_dpu_request_cheaper_in_energy_despite_longer_runtime():
    # The §6.6 argument: BF-1 runs ~6x longer but at ~10x lower marginal
    # power, so joules-per-request still favour the DPU.
    work_ref_s = 0.016

    def joules_on(spec):
        sim, pu = make_pu(spec)
        meter = EnergyMeter(pu)
        busy_for(sim, pu, pu.compute_time(work_ref_s))
        return meter.busy_energy_joules()

    assert joules_on(specs.BLUEFIELD1) < joules_on(specs.XEON_8160)
    assert joules_on(specs.BLUEFIELD2) < joules_on(specs.XEON_8160)
