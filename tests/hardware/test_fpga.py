"""Tests for the FPGA device model."""

import pytest

from repro import config
from repro.errors import FpgaResourceError, FpgaStateError
from repro.hardware import (
    F1_TOTALS,
    FabricResources,
    FpgaImage,
    KernelSpec,
    WRAPPER_OVERHEAD,
    build_cpu_fpga_machine,
)
from repro.sim import Simulator


SMALL_KERNEL = KernelSpec(
    name="madd", resources=FabricResources(luts=4000, regs=7000, brams=20, dsps=40),
    exec_time_s=115e-6,
)


def make_device(sim=None, **kwargs):
    sim = sim or Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1, **kwargs)
    fpga_pu = machine.pu(1)
    return sim, machine.fpga_device(fpga_pu)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


# -- fabric resources ---------------------------------------------------------


def test_fabric_resources_add_and_scale():
    a = FabricResources(luts=10, regs=20, brams=1, dsps=2)
    b = a + a
    assert b.luts == 20 and b.dsps == 4
    assert a.scaled(3).regs == 60


def test_fabric_fits_within():
    small = FabricResources(luts=10)
    assert small.fits_within(F1_TOTALS)
    huge = FabricResources(luts=F1_TOTALS.luts + 1)
    assert not huge.fits_within(F1_TOTALS)


def test_fraction_of_totals():
    frac = WRAPPER_OVERHEAD.fraction_of(F1_TOTALS)
    # §6.4: wrapper base overhead is ~5% of F1 lookup tables.
    assert frac["luts"] == pytest.approx(0.05, abs=0.005)


# -- images -------------------------------------------------------------------


def test_image_requires_kernels():
    with pytest.raises(FpgaResourceError):
        FpgaImage("empty", [])


def test_image_resources_include_wrapper():
    image = FpgaImage("img", [SMALL_KERNEL])
    total = image.resources()
    assert total.luts == WRAPPER_OVERHEAD.luts + 4000


def test_image_vectorized_packing_and_lookup():
    image = FpgaImage("img", [SMALL_KERNEL] * 3)
    assert image.count("madd") == 3
    assert image.find_instance("madd").slot == 0
    assert image.find_instance("nope") is None
    assert image.kernel_names == ["madd"] * 3


# -- programming --------------------------------------------------------------


def test_fresh_device_programs_without_erase():
    sim, device = make_device()
    image = FpgaImage("img", [SMALL_KERNEL])
    run(sim, device.program(image))
    assert device.image is image
    assert device.erase_count == 0
    # Only the load phase was paid.
    assert sim.now == pytest.approx(config.FPGA_COSTS.load_image_s)


def test_reprogram_with_erase_pays_erase_cost():
    sim, device = make_device()
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    start = sim.now
    run(sim, device.program(FpgaImage("b", [SMALL_KERNEL]), erase_first=True))
    elapsed = sim.now - start
    assert elapsed == pytest.approx(
        config.FPGA_COSTS.erase_s + config.FPGA_COSTS.load_image_s
    )
    assert device.erase_count == 1


def test_no_erase_optimization_skips_erase():
    # Fig. 10c: "No-Erase" loads directly over the stale image.
    sim, device = make_device()
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    start = sim.now
    run(sim, device.program(FpgaImage("b", [SMALL_KERNEL]), erase_first=False))
    assert sim.now - start == pytest.approx(config.FPGA_COSTS.load_image_s)
    assert device.erase_count == 0


def test_oversized_image_rejected():
    sim, device = make_device()
    big = KernelSpec(
        name="huge",
        resources=FabricResources(luts=F1_TOTALS.luts),
        exec_time_s=1.0,
    )
    with pytest.raises(FpgaResourceError):
        run(sim, device.program(FpgaImage("big", [big])))


def test_twelve_instance_wrapper_fits_f1():
    # Table 4: 12 packed instances use ~10% of LUTs - easily fits.
    image = FpgaImage("vector", [SMALL_KERNEL] * 12)
    frac = image.resources().fraction_of(F1_TOTALS)
    assert frac["luts"] < 0.15


# -- DRAM banks / retention -----------------------------------------------------


def test_bank_assignment_is_static_and_exclusive():
    sim, device = make_device()
    bank0 = device.assign_bank(slot=0)
    bank0_again = device.assign_bank(slot=0)
    assert bank0 is bank0_again
    bank1 = device.assign_bank(slot=1)
    assert bank1 is not bank0


def test_bank_exhaustion_raises():
    sim, device = make_device()
    for slot in range(len(device.banks)):
        device.assign_bank(slot)
    with pytest.raises(FpgaStateError):
        device.assign_bank(slot=99)


def test_data_retention_survives_reprogramming():
    # §4.3: DRAM data retention enables zero-copy FPGA chains.
    sim, device = make_device()
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    device.banks[0].payload = "intermediate-result"
    run(sim, device.program(FpgaImage("b", [SMALL_KERNEL]), erase_first=False))
    assert device.bank_with_payload("intermediate-result") is device.banks[0]


def test_without_retention_payloads_cleared():
    sim, device = make_device(data_retention=False)
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    device.banks[0].payload = "data"
    run(sim, device.program(FpgaImage("b", [SMALL_KERNEL]), erase_first=False))
    assert device.bank_with_payload("data") is None


# -- execution --------------------------------------------------------------------


def test_invoke_requires_programmed_device():
    sim, device = make_device()
    with pytest.raises(FpgaStateError):
        run(sim, device.invoke("madd"))


def test_invoke_unknown_kernel_rejected():
    sim, device = make_device()
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    with pytest.raises(FpgaStateError):
        run(sim, device.invoke("other"))


def test_invoke_takes_kernel_exec_time():
    sim, device = make_device()
    run(sim, device.program(FpgaImage("a", [SMALL_KERNEL])))
    start = sim.now
    run(sim, device.invoke("madd"))
    assert sim.now - start == pytest.approx(SMALL_KERNEL.exec_time_s)
    assert device.has_kernel("madd")
