"""Tests for the interconnect graph and routing."""

import pytest

from repro.errors import RoutingError
from repro.hardware import LinkKind, build_cpu_dpu_machine, build_full_machine
from repro.hardware.interconnect import Interconnect, Link
from repro.sim import Simulator


def test_link_transfer_time_has_latency_floor():
    link = Link(0, 1, LinkKind.RDMA)
    tiny = link.transfer_time(16)
    assert tiny >= 3e-6  # RDMA base latency
    assert link.transfer_time(1 << 20) > tiny


def test_dma_matches_paper_4kb_cost():
    # §6.5: DMA moves 4KB between CPU and FPGA in 50-100us; the wire
    # component alone is ~41us, the rest is software copy cost.
    link = Link(0, 1, LinkKind.DMA)
    wire = link.transfer_time(4096)
    assert 30e-6 < wire < 100e-6


def test_loopback_is_free_ish():
    link = Link(0, 0, LinkKind.LOOPBACK)
    assert link.transfer_time(4096) < 1e-6


def test_route_same_pu_is_loopback():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    cpu = machine.host_cpu
    route = machine.route(cpu, cpu)
    assert route.hop_count == 1
    assert route.links[0].kind is LinkKind.LOOPBACK


def test_route_direct_cpu_dpu_is_rdma():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    cpu, dpu = machine.pu(0), machine.pu(1)
    route = machine.route(cpu, dpu)
    assert route.hop_count == 1
    assert route.links[0].kind is LinkKind.RDMA
    assert route.intercepted_by is None


def test_dpu_to_dpu_is_cpu_intercepted():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    dpu1, dpu2 = machine.pu(1), machine.pu(2)
    route = machine.route(dpu1, dpu2)
    assert route.hop_count == 2
    assert route.intercepted_by == machine.host_cpu.pu_id


def test_dpu_to_fpga_is_cpu_intercepted():
    # §5 Limitations: DPU<->FPGA data is forwarded by the host CPU.
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=0)
    dpu = machine.pu(1)
    fpga = [p for p in machine.pus.values() if p.name.startswith("fpga")][0]
    route = machine.route(dpu, fpga)
    assert route.intercepted_by == machine.host_cpu.pu_id
    kinds = [link.kind for link in route.links]
    assert kinds == [LinkKind.RDMA, LinkKind.DMA]


def test_multi_hop_transfer_time_sums_links():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    direct = machine.route(machine.pu(0), machine.pu(1))
    via_cpu = machine.route(machine.pu(1), machine.pu(2))
    assert via_cpu.transfer_time(4096) == pytest.approx(
        2 * direct.transfer_time(4096)
    )


def test_no_route_raises():
    net = Interconnect()
    with pytest.raises(RoutingError):
        net.route(0, 1)


def test_self_link_rejected():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    cpu = machine.host_cpu
    with pytest.raises(RoutingError):
        machine.connect(cpu, cpu, LinkKind.RDMA)


def test_bfs_fallback_for_long_chains():
    # A line topology a-b-c-d (no shared neighbour between a and d).
    from repro.hardware import ProcessingUnit, specs

    sim = Simulator()
    net = Interconnect()
    pus = [ProcessingUnit(sim, i, f"p{i}", specs.XEON_8160) for i in range(4)]
    for a, b in zip(pus, pus[1:]):
        net.add_link(a, b, LinkKind.NETWORK)
    route = net.route(0, 3)
    assert route.hop_count == 3
    assert route.intercepted_by == 1


def test_neighbors_listing():
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    assert list(machine.interconnect.neighbors(0)) == [1, 2]
    assert list(machine.interconnect.neighbors(1)) == [0]
