"""Topology-lookup caching on the heterogeneous computer.

``pus_of_kind`` / ``general_purpose_pus`` sit on the scheduling hot
path; they return shared immutable tuples, recomputed only when the
topology actually changes.
"""

from repro.hardware import build_cpu_dpu_machine, specs
from repro.hardware.pu import PuKind
from repro.sim import Simulator


def make(num_dpus=2):
    return build_cpu_dpu_machine(Simulator(), num_dpus=num_dpus)


def test_pus_of_kind_returns_immutable_shared_tuple():
    machine = make()
    first = machine.pus_of_kind(PuKind.DPU)
    assert isinstance(first, tuple)
    assert machine.pus_of_kind(PuKind.DPU) is first  # cached, no rescan


def test_general_purpose_pus_is_cached_tuple():
    machine = make()
    first = machine.general_purpose_pus()
    assert isinstance(first, tuple)
    assert machine.general_purpose_pus() is first
    assert len(first) == 3  # cpu0 + two DPUs


def test_add_pu_invalidates_kind_caches():
    machine = make(num_dpus=1)
    before_dpus = machine.pus_of_kind(PuKind.DPU)
    before_gp = machine.general_purpose_pus()
    added = machine.add_pu("dpu9", specs.CATALOG["bf1"])
    after_dpus = machine.pus_of_kind(PuKind.DPU)
    assert after_dpus is not before_dpus
    assert added in after_dpus
    assert len(after_dpus) == len(before_dpus) + 1
    assert added in machine.general_purpose_pus()
    assert machine.general_purpose_pus() is not before_gp


def test_empty_kind_is_cached_too():
    machine = make()
    assert machine.pus_of_kind(PuKind.FPGA) == ()
    assert machine.pus_of_kind(PuKind.FPGA) is machine.pus_of_kind(PuKind.FPGA)


def test_host_cpu_survives_caching():
    machine = make()
    assert machine.host_cpu is machine.pus_of_kind(PuKind.CPU)[0]
