"""Tests for partial reconfiguration regions (§3.5's contrast case)."""

import pytest

from repro import config
from repro.errors import FpgaResourceError, FpgaStateError
from repro.hardware import (
    FabricResources,
    FpgaImage,
    KernelSpec,
    build_cpu_fpga_machine,
)
from repro.sim import Simulator


def small_kernel(name, exec_us=100.0):
    return KernelSpec(
        name, FabricResources(luts=4000, regs=7000, brams=20, dsps=40),
        exec_time_s=exec_us * 1e-6,
    )


def make_device():
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1)
    return sim, machine.fpga_device(machine.pu(1))


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_enable_partitions_fabric():
    sim, device = make_device()
    device.enable_partial_reconfiguration(4)
    assert device.partial_reconfig_enabled
    assert device.region_kernel_names() == [None] * 4


def test_region_count_limited():
    # "one FPGA can only support very limited regions"
    sim, device = make_device()
    with pytest.raises(FpgaStateError):
        device.enable_partial_reconfiguration(0)
    with pytest.raises(FpgaStateError):
        device.enable_partial_reconfiguration(64)


def test_cannot_partition_loaded_fabric():
    sim, device = make_device()
    run(sim, device.program(FpgaImage("img", [small_kernel("a")])))
    with pytest.raises(FpgaStateError):
        device.enable_partial_reconfiguration(2)


def test_full_image_program_refused_after_partition():
    sim, device = make_device()
    device.enable_partial_reconfiguration(2)
    with pytest.raises(FpgaStateError):
        run(sim, device.program(FpgaImage("img", [small_kernel("a")])))


def test_region_program_faster_than_full_load():
    sim, device = make_device()
    device.enable_partial_reconfiguration(4)
    begin = sim.now
    run(sim, device.program_region(0, small_kernel("a")))
    elapsed = sim.now - begin
    assert elapsed == pytest.approx(config.FPGA_COSTS.load_image_s / 4)


def test_region_reprogram_leaves_others_resident():
    sim, device = make_device()
    device.enable_partial_reconfiguration(2)
    run(sim, device.program_region(0, small_kernel("a")))
    run(sim, device.program_region(1, small_kernel("b")))
    run(sim, device.program_region(0, small_kernel("c")))
    assert device.region_kernel_names() == ["c", "b"]
    assert device.has_kernel("b") and not device.has_kernel("a")


def test_kernel_must_fit_region_slice():
    sim, device = make_device()
    device.enable_partial_reconfiguration(8)
    big = KernelSpec(
        "big", FabricResources(luts=400_000), exec_time_s=1e-3
    )  # > 1/8 of the fabric
    with pytest.raises(FpgaResourceError):
        run(sim, device.program_region(0, big))


def test_invalid_region_index():
    sim, device = make_device()
    device.enable_partial_reconfiguration(2)
    with pytest.raises(FpgaStateError):
        run(sim, device.program_region(5, small_kernel("a")))


def test_invoke_from_region():
    sim, device = make_device()
    device.enable_partial_reconfiguration(2)
    run(sim, device.program_region(0, small_kernel("a", exec_us=250.0)))
    begin = sim.now
    run(sim, device.invoke("a"))
    assert sim.now - begin == pytest.approx(250e-6)
    with pytest.raises(FpgaStateError):
        run(sim, device.invoke("ghost"))


def test_vectorized_image_beats_regions_in_capacity():
    # The paper's motivation for vectorized sandboxes: a full image
    # packs 12 instances; 8 regions cap at 8 kernels.
    sim, device = make_device()
    image = FpgaImage("vector", [small_kernel("k")] * 12)
    assert image.resources().fits_within(device.totals)
    sim2, device2 = make_device()
    device2.enable_partial_reconfiguration(8)
    assert len(device2.regions) < 12
