"""Property-based tests for the load-generation layer.

Two machine-wide invariants, checked over *generated* arrival plans:

* the open-loop driver admits exactly one request per planned arrival,
  whatever the inter-arrival structure looks like;
* with a fault plan active, every admitted request is still accounted
  for — ``answered + dead_lettered == admitted`` and nothing is lost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    FunctionMix,
    OpenLoopDriver,
    PoissonArrivals,
    attach_fault_plan,
    build_runtime,
    default_mix,
)
from repro.sim.rng import SeededRng

# Simulation runs are comparatively expensive; keep the example budget
# small and the plans short.  The invariants are structural, not
# statistical, so a handful of diverse plans is enough.
_SIM_SETTINGS = settings(max_examples=15, deadline=None)


def _plan_from_gaps(gaps, functions):
    """Build a plan from raw inter-arrival gaps and function picks."""
    arrivals, now = [], 0.0
    for gap, name in zip(gaps, functions):
        now += gap
        arrivals.append(Arrival(time_s=now, function=name))
    return ArrivalPlan(tuple(arrivals), duration_s=now + 0.001)


_gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    min_size=1,
    max_size=40,
)


@_SIM_SETTINGS
@given(gaps=_gaps, seed=st.integers(min_value=0, max_value=2**16))
def test_open_loop_admits_exactly_the_plan(gaps, seed):
    """Admission count equals plan length for arbitrary gap structure
    (bursts of simultaneous arrivals included)."""
    functions = ["thumb", "etl", "infer"] * (len(gaps) // 3 + 1)
    plan = _plan_from_gaps(gaps, functions)
    runtime, frontend = build_runtime(plan, seed=seed, shards=2)
    driver = OpenLoopDriver(runtime, plan, frontend)
    records = driver.run()
    assert driver.submitted == len(plan)
    assert len(records) == len(plan)
    assert frontend.requests_admitted == len(plan)
    # Per-shard admissions partition the machine-wide count.
    assert sum(s.routed for s in frontend.shards) == len(plan)


@_SIM_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=20.0, max_value=120.0, allow_nan=False),
    crash_at=st.floats(min_value=0.05, max_value=0.8, allow_nan=False),
    reboot_after=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=0.5, allow_nan=False)
    ),
)
def test_no_request_lost_under_faults(seed, rate, crash_at, reboot_after):
    """With a PU crash (with or without reboot) mid-run, the reliability
    layer must keep the books balanced: answered + dead == admitted."""
    rng = SeededRng(seed).fork("prop:faults")
    plan = PoissonArrivals(default_mix(), rate, rng=rng).plan(duration_s=1.0)
    runtime, frontend = build_runtime(plan, seed=seed, shards=2)
    attach_fault_plan(
        runtime,
        FaultPlan.of(
            FaultSpec(
                kind=FaultKind.PU_CRASH,
                target="dpu0",
                at_s=crash_at,
                reboot_after_s=reboot_after,
            ),
        ),
    )
    records = OpenLoopDriver(runtime, plan, frontend).run()
    admitted = frontend.requests_admitted
    answered = sum(1 for r in records if r.answered)
    dead = len(runtime.dead_letters)
    assert admitted == len(plan)
    assert answered + dead == admitted
    # Outcomes are mutually exclusive: a record is answered or carries
    # the error that dead-lettered it, never neither.
    assert all(r.outcome for r in records)


@given(
    weights=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_mix_only_emits_declared_functions(weights, seed):
    """A FunctionMix never picks a function outside its declaration."""
    names = [f"fn{i}" for i in range(len(weights))]
    mix = FunctionMix.of(*zip(names, weights))
    rng = SeededRng(seed).fork("prop:mix")
    picks = {mix.pick(rng)[0] for _ in range(100)}
    assert picks <= set(names)
