"""Property-based tests for system invariants (capabilities, memory,
fabric, scheduling, stats)."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.analysis.stats import percentile
from repro.hardware import FabricResources, ProcessingUnit, specs
from repro.hardware.fpga import F1_TOTALS
from repro.multios import OsInstance, SharedSegment
from repro.sim import Simulator
from repro.xpu import CapGroup, ObjectId, Permission, XpuPid


# -- XpuPid encoding ---------------------------------------------------------------


@given(
    pu_id=st.integers(min_value=0, max_value=2**20),
    local_uid=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_xpu_pid_roundtrip(pu_id, local_uid):
    pid = XpuPid(pu_id, local_uid)
    assert XpuPid.decode(pid.encode()) == pid


@given(
    a=st.tuples(st.integers(0, 1000), st.integers(0, 2**32 - 1)),
    b=st.tuples(st.integers(0, 1000), st.integers(0, 2**32 - 1)),
)
def test_xpu_pid_encoding_injective(a, b):
    assume(a != b)
    assert XpuPid(*a).encode() != XpuPid(*b).encode()


# -- capabilities --------------------------------------------------------------------

_PERMS = st.sampled_from([Permission.READ, Permission.WRITE, Permission.OWNER])


@given(ops=st.lists(st.tuples(st.booleans(), _PERMS), max_size=40))
def test_capability_state_matches_op_replay(ops):
    """A CapGroup's final state equals a naive set-based replay."""
    group = CapGroup(XpuPid(0, 1))
    obj = ObjectId("fifo", "x")
    expected: set[Permission] = set()
    for add, perm in ops:
        if add:
            group.add(obj, perm)
            expected.add(perm)
        else:
            group.remove(obj, perm)
            expected.discard(perm)
    for perm in (Permission.READ, Permission.WRITE, Permission.OWNER):
        assert group.has(obj, perm) == (perm in expected)


# -- memory accounting -----------------------------------------------------------------


@given(
    privates=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    shared_mb=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_rss_at_least_pss_and_shared_conserved(privates, shared_mb):
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "pu", specs.XEON_8160)
    os_instance = OsInstance(sim, pu)
    segment = SharedSegment("seg", shared_mb)
    processes = []
    for i, private in enumerate(privates):
        proc = sim.spawn(os_instance.spawn(f"p{i}"))
        sim.run()
        process = proc.value
        process.memory.allocate_private(private)
        process.memory.map_segment(segment)
        processes.append(process)
    for process in processes:
        assert process.memory.rss_mb >= process.memory.pss_mb - 1e-9
    # PSS is conservative: summed over all mappers it equals total memory.
    total_pss = sum(p.memory.pss_mb for p in processes)
    expected = sum(privates) + shared_mb
    assert math.isclose(total_pss, expected, rel_tol=1e-9, abs_tol=1e-6)


# -- FPGA fabric arithmetic -----------------------------------------------------------------


_fabric = st.builds(
    FabricResources,
    luts=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    regs=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    brams=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    dsps=st.floats(min_value=0, max_value=1e4, allow_nan=False),
)


@given(a=_fabric, b=_fabric)
def test_fabric_addition_commutative_and_monotone(a, b):
    assert a + b == b + a
    total = a + b
    assert a.fits_within(total) and b.fits_within(total)


@given(a=_fabric, count=st.integers(min_value=0, max_value=10))
def test_fabric_scaling_equals_repeated_addition(a, count):
    total = FabricResources()
    for _ in range(count):
        total = total + a
    scaled = a.scaled(count)
    assert math.isclose(total.luts, scaled.luts, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(total.dsps, scaled.dsps, rel_tol=1e-9, abs_tol=1e-6)


@given(a=_fabric)
def test_fabric_fraction_consistent_with_fits(a):
    fractions = a.fraction_of(F1_TOTALS)
    if all(value <= 1.0 for value in fractions.values()):
        assert a.fits_within(F1_TOTALS)
    else:
        assert not a.fits_within(F1_TOTALS)


# -- scheduler admission ------------------------------------------------------------------------


@given(
    footprint=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
    num_dpus=st.integers(min_value=0, max_value=3),
)
def test_density_equals_floor_sum(footprint, num_dpus):
    from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
    from repro.core.scheduler import Scheduler
    from repro.hardware import build_cpu_dpu_machine

    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
    scheduler = Scheduler(machine)
    function = FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, memory_mb=footprint),
        work=WorkProfile(warm_exec_ms=1.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    density = scheduler.max_density(function, [PuKind.CPU, PuKind.DPU])
    expected = sum(
        int(pu.dram_free_mb // footprint)
        for pu in machine.general_purpose_pus()
    )
    assert density == expected


@given(
    footprint=st.floats(min_value=10.0, max_value=20000.0, allow_nan=False),
    attempts=st.integers(min_value=1, max_value=50),
)
def test_placement_never_overcommits_dram(footprint, attempts):
    from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
    from repro.core.scheduler import Scheduler
    from repro.errors import SchedulingError
    from repro.hardware import build_cpu_dpu_machine

    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    scheduler = Scheduler(machine)
    function = FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, memory_mb=footprint),
        work=WorkProfile(warm_exec_ms=1.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    for _ in range(attempts):
        try:
            scheduler.place(function)
        except SchedulingError:
            break
    for pu in machine.general_purpose_pus():
        assert pu.dram_used_mb <= pu.dram.capacity + 1e-6


# -- warm pool --------------------------------------------------------------------------------


@given(
    capacity=st.integers(min_value=1, max_value=10),
    names=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=50),
)
def test_warm_pool_never_exceeds_capacity(capacity, names):
    from repro.core.keepalive import WarmPool

    class Instance:
        def __init__(self, name):
            self.function = type("F", (), {"name": name})()

    pool = WarmPool(capacity)
    for name in names:
        pool.release(Instance(name))
        assert len(pool) <= capacity


# -- percentiles --------------------------------------------------------------------------------


@given(
    samples=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    p=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_percentile_within_sample_range(samples, p):
    value = percentile(samples, p)
    assert min(samples) <= value <= max(samples)
    assert value in samples


@given(
    samples=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_percentile_monotone_in_p(samples):
    values = [percentile(samples, p) for p in (0, 25, 50, 75, 90, 99, 100)]
    assert values == sorted(values)


# -- interconnect -------------------------------------------------------------------------------


@given(
    size_a=st.integers(min_value=0, max_value=1 << 24),
    size_b=st.integers(min_value=0, max_value=1 << 24),
)
def test_transfer_time_monotone_in_size(size_a, size_b):
    from repro.hardware import Link, LinkKind

    assume(size_a <= size_b)
    for kind in (LinkKind.RDMA, LinkKind.DMA, LinkKind.NETWORK):
        link = Link(0, 1, kind)
        assert link.transfer_time(size_a) <= link.transfer_time(size_b)
        assert link.transfer_time(size_a) >= 0
