"""Property-based tests for the fan-out engine's invariants.

Random partition geometries, seeds and mid-fanout DPU crashes; the
invariants that must hold regardless:

* every submitted partition task reaches exactly one terminal fate,
  logged exactly once, and the frontend-level conservation balance
  (answered + shed + dead == admitted) closes;
* a job that completes returns exactly the sequential reference
  reduction — crashes and failovers may move the timeline, never the
  answer; a job that fails partially still accounts for every task;
* ``wait(ANY_COMPLETED)`` is live: while unfinished futures remain it
  always returns a non-empty done-set, and draining by repeated
  any-waits terminates.
"""

import functools
import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FanoutConfig,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import FanoutPartialFailure
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.faults.injector import FaultInjector
from repro.futures import (
    ANY_COMPLETED,
    FanoutFuture,
    Partitioner,
    synthetic_dataset,
    wait,
)
from repro.sim import Simulator

_SIM_SETTINGS = settings(max_examples=12, deadline=None)

# Crash timing in 10ms ticks after the job starts; an optional reboot
# delay (None = the DPU stays dead and failover must carry the tail).
_CRASH = st.one_of(
    st.none(),
    st.tuples(
        st.sampled_from(["dpu0", "dpu1"]),
        st.integers(min_value=0, max_value=10),
        st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    ),
)

_GEOMETRY = st.tuples(
    st.integers(min_value=1, max_value=24),   # partitions
    st.integers(min_value=1, max_value=8),    # chunk size
    st.integers(min_value=1, max_value=96),   # dataset size
)


def _run_fanout(geometry, crash, seed):
    partitions, chunk_size, n_items = geometry
    runtime = MoleculeRuntime.create(
        num_dpus=2, seed=seed, default_deadline_s=5.0,
        fanout=FanoutConfig(
            partitions=partitions, chunk_size=chunk_size,
            admit_stagger_s=0.001, speculate=False,
        ),
    )
    runtime.deploy_now(FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, import_ms=30.0),
        work=WorkProfile(warm_exec_ms=8.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    ))
    if crash is not None:
        pu_name, crash_tick, reboot_ticks = crash
        injector = FaultInjector(runtime, FaultPlan.of(FaultSpec(
            FaultKind.PU_CRASH, pu_name,
            at_s=crash_tick * 0.01,
            reboot_after_s=(
                None if reboot_ticks is None else reboot_ticks * 0.01
            ),
        )))
        runtime.injector = injector
        injector.arm()
    items = synthetic_dataset(seed, n_items)

    def drive():
        try:
            job = yield from runtime.fanout.run_job(
                lambda x: x + 1, items, operator.add, function="f"
            )
        except FanoutPartialFailure as exc:
            return ("partial", exc)
        return ("ok", job)

    proc = runtime.sim.spawn(drive())
    runtime.sim.run()
    return runtime, items, proc.value


@_SIM_SETTINGS
@given(
    geometry=_GEOMETRY,
    crash=_CRASH,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_every_task_reaches_exactly_one_terminal_fate(
    geometry, crash, seed
):
    runtime, _items, _outcome = _run_fanout(geometry, crash, seed)
    engine = runtime.fanout
    log = engine.task_log
    # One log entry per submitted task, each sequence exactly once.
    assert len(log) == engine.tasks_submitted
    assert sorted(seq for _, seq, _ in log) == list(
        range(engine.tasks_submitted)
    )
    # Terminal fates only, and the counters agree with the log.
    fates = [outcome for _, _, outcome in log]
    assert set(fates) <= {"done", "shed", "error"}
    assert fates.count("done") == engine.tasks_done
    assert fates.count("shed") == engine.tasks_shed
    assert fates.count("error") == engine.tasks_error
    # The frontend-level balance closes even with a dead DPU.
    assert engine.conserved(
        runtime.gateway.requests_admitted, len(runtime.dead_letters)
    )


@_SIM_SETTINGS
@given(
    geometry=_GEOMETRY,
    crash=_CRASH,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_map_reduce_matches_sequential_reference(geometry, crash, seed):
    """Crashes and failover may move the timeline, never the answer."""
    runtime, items, outcome = _run_fanout(geometry, crash, seed)
    kind, payload = outcome
    if kind == "ok":
        assert payload.value == functools.reduce(
            operator.add, [x + 1 for x in items]
        )
    else:
        # Partial failure still accounts for every submitted task.
        assert (
            payload.done + payload.failed + payload.shed
        ) == runtime.fanout.tasks_submitted
        assert payload.failed + payload.shed > 0


# -- wait(ANY_COMPLETED) liveness ---------------------------------------------------


def _pending_future(seq):
    part = Partitioner.fixed_size(1).partition((seq,))[0]
    future = FanoutFuture(seq, part, "f")
    future._mark_running(0.0)
    return future


@_SIM_SETTINGS
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
def test_wait_any_completed_is_live(delays):
    """Draining a random set by repeated any-waits terminates, every
    wake returns a non-empty done-set, and nothing is reported done
    twice."""
    sim = Simulator()
    futures = [_pending_future(i) for i in range(len(delays))]

    def finisher(future, delay):
        if delay:
            yield sim.timeout(delay)
        future._finish(future.seq, sim.now)

    for future, delay in zip(futures, delays):
        sim.spawn(finisher(future, delay))

    drained = []

    def drain():
        remaining = list(futures)
        while remaining:
            done, remaining = yield from wait(
                sim, remaining, ANY_COMPLETED
            )
            assert done, "any-wait woke with an empty done-set"
            assert all(f.done() for f in done)
            drained.extend(done)

    sim.spawn(drain())
    sim.run()
    assert sorted(f.seq for f in drained) == list(range(len(delays)))
