"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.spawn(proc(sim, delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observations = []

    def proc(sim, delay):
        before = sim.now
        yield sim.timeout(delay)
        observations.append((before, sim.now))

    for delay in delays:
        sim.spawn(proc(sim, delay))
    sim.run()
    for before, after in observations:
        assert after >= before


@given(
    capacity=st.integers(min_value=1, max_value=8),
    workers=st.integers(min_value=1, max_value=30),
    hold=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)
def test_resource_never_exceeds_capacity(capacity, workers, hold):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    max_seen = [0]

    def worker(sim):
        request = resource.request()
        yield request
        max_seen[0] = max(max_seen[0], resource.in_use)
        assert resource.in_use <= capacity
        yield sim.timeout(hold)
        resource.release(request)

    for _ in range(workers):
        sim.spawn(worker(sim))
    sim.run()
    assert resource.in_use == 0
    assert max_seen[0] <= capacity


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim):
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer(sim):
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.01)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert received == items


@given(
    capacity=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    amounts=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_container_level_always_within_bounds(capacity, amounts):
    sim = Simulator()
    tank = Container(sim, capacity=capacity, init=capacity / 2)

    def churn(sim):
        for amount in amounts:
            amount = min(amount, capacity)
            yield tank.put(amount)
            assert 0.0 <= tank.level <= capacity + 1e-9
            yield tank.get(amount)
            assert 0.0 <= tank.level <= capacity + 1e-9

    sim.spawn(churn(sim))
    sim.run(until=1.0)
    assert 0.0 <= tank.level <= capacity + 1e-9


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_identical_seeds_identical_traces(seed):
    from repro.sim import SeededRng

    def trace(seed):
        rng = SeededRng(seed)
        sim = Simulator()
        log = []

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(rng.exponential(1.0))
                log.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        return log

    assert trace(seed) == trace(seed)
