"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Resource, Simulator, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(sim, delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.spawn(proc(sim, delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observations = []

    def proc(sim, delay):
        before = sim.now
        yield sim.timeout(delay)
        observations.append((before, sim.now))

    for delay in delays:
        sim.spawn(proc(sim, delay))
    sim.run()
    for before, after in observations:
        assert after >= before


@given(
    capacity=st.integers(min_value=1, max_value=8),
    workers=st.integers(min_value=1, max_value=30),
    hold=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)
def test_resource_never_exceeds_capacity(capacity, workers, hold):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    max_seen = [0]

    def worker(sim):
        request = resource.request()
        yield request
        max_seen[0] = max(max_seen[0], resource.in_use)
        assert resource.in_use <= capacity
        yield sim.timeout(hold)
        resource.release(request)

    for _ in range(workers):
        sim.spawn(worker(sim))
    sim.run()
    assert resource.in_use == 0
    assert max_seen[0] <= capacity


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim):
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer(sim):
        for item in items:
            yield store.put(item)
            yield sim.timeout(0.01)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert received == items


@given(
    capacity=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    amounts=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
)
def test_container_level_always_within_bounds(capacity, amounts):
    sim = Simulator()
    tank = Container(sim, capacity=capacity, init=capacity / 2)

    def churn(sim):
        for amount in amounts:
            amount = min(amount, capacity)
            yield tank.put(amount)
            assert 0.0 <= tank.level <= capacity + 1e-9
            yield tank.get(amount)
            assert 0.0 <= tank.level <= capacity + 1e-9

    sim.spawn(churn(sim))
    sim.run(until=1.0)
    assert 0.0 <= tank.level <= capacity + 1e-9


# -- batched vs. reference loop equivalence ---------------------------------
#
# The batched drain must produce the exact (time, priority, seq)
# dispatch order of the pre-batch per-event heap loop, which is kept
# available under ``Simulator(batched=False)`` as the oracle.  Delays
# are drawn from a small grid (with repeats) so same-timestamp
# collisions, zero delays, and singleton timesteps all occur often.

_DELAY_GRID = st.sampled_from([0.0, 0.0, 0.25, 0.5, 1.0, 1.0, 2.0])


@st.composite
def _kernel_programs(draw):
    n_sleepers = draw(st.integers(min_value=1, max_value=5))
    sleepers = [
        draw(st.lists(_DELAY_GRID, min_size=1, max_size=4))
        for _ in range(n_sleepers)
    ]
    conditions = draw(st.lists(
        st.tuples(st.sampled_from(["all", "any"]),
                  st.lists(_DELAY_GRID, min_size=1, max_size=3)),
        max_size=3,
    ))
    interrupts = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=n_sleepers - 1),
                  _DELAY_GRID),
        max_size=3,
    ))
    chains = draw(st.lists(
        st.tuples(_DELAY_GRID, st.integers(min_value=0, max_value=3)),
        max_size=3,
    ))
    return sleepers, conditions, interrupts, chains


def _run_kernel_program(program, batched):
    from repro.errors import Interrupt
    from repro.sim.core import NORMAL, URGENT

    sleepers, conditions, interrupts, chains = program
    sim = Simulator(batched=batched)
    trace = []

    def sleeper(idx, delays):
        for step, delay in enumerate(delays):
            try:
                yield sim.timeout(delay)
                trace.append(("wake", idx, step, sim.now))
            except Interrupt:
                trace.append(("interrupted", idx, step, sim.now))

    procs = [sim.spawn(sleeper(i, d)) for i, d in enumerate(sleepers)]

    def condition_waiter(idx, kind, delays):
        events = [sim.timeout(d) for d in delays]
        yield sim.all_of(events) if kind == "all" else sim.any_of(events)
        trace.append(("cond", idx, kind, sim.now))

    for i, (kind, delays) in enumerate(conditions):
        sim.spawn(condition_waiter(i, kind, delays))

    def interrupter(target, delay):
        yield sim.timeout(delay)
        if procs[target].is_alive:
            procs[target].interrupt("stop")
            trace.append(("interrupt", target, sim.now))

    for target, delay in interrupts:
        sim.spawn(interrupter(target, delay))

    def chain(idx, delay, hops):
        # Zero-delay event chains at one instant, alternating URGENT
        # and NORMAL triggers: the two-lane same-timestep machinery.
        yield sim.timeout(delay)
        for hop in range(hops):
            event = sim.event()
            event.succeed(hop, priority=URGENT if hop % 2 else NORMAL)
            yield event
            trace.append(("chain", idx, hop, sim.now))

    for i, (delay, hops) in enumerate(chains):
        sim.spawn(chain(i, delay, hops))

    sim.run()
    return trace, sim.now, sim.processed_count


@given(program=_kernel_programs())
@settings(deadline=None, max_examples=80)
def test_batched_loop_matches_reference_dispatch_order(program):
    batched_trace = _run_kernel_program(program, batched=True)
    reference_trace = _run_kernel_program(program, batched=False)
    assert batched_trace == reference_trace


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_identical_seeds_identical_traces(seed):
    from repro.sim import SeededRng

    def trace(seed):
        rng = SeededRng(seed)
        sim = Simulator()
        log = []

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(rng.exponential(1.0))
                log.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        return log

    assert trace(seed) == trace(seed)
