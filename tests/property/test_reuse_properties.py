"""Property-based invariants for the computation-reuse layer.

Over generated Zipf workloads (arbitrary skew, arbitrary seeds, with
and without a mid-run PU crash) the books must always balance: every
submitted request meets exactly one fate, the three-fate conservation
``answered + shed + dead == admitted`` holds with the cache armed, and
the answers partition into ``fresh + stale + executed``.  On top of
the random sweep, two targeted adversaries: an invalidating deploy
must never be followed by a fresh hit, and a crashing single-flight
leader must cost one re-execution — never a wedged follower cohort.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import ReproError, SandboxError
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.loadgen import (
    OpenLoopDriver,
    PoissonArrivals,
    attach_fault_plan,
    attach_zipf_inputs,
    build_runtime,
    default_mix,
)
from repro.reuse import ReuseConfig
from repro.sim.rng import SeededRng

# Simulation runs are comparatively expensive; keep the example budget
# small.  The invariants are structural, not statistical.
_SIM_SETTINGS = settings(max_examples=15, deadline=None)


@_SIM_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=30.0, max_value=150.0, allow_nan=False),
    skew=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    crash=st.booleans(),
)
def test_reuse_conservation_over_random_zipf_workloads(
    seed, rate, skew, crash
):
    """Whatever the skew, the seed, or a dpu0 crash mid-run: one fate
    per request, three-fate conservation machine-wide, and the cached/
    executed answer partition exactly covering the answered set."""
    rng = SeededRng(seed).fork("prop:reuse")
    plan = PoissonArrivals(default_mix(), rate, rng=rng).plan(duration_s=1.0)
    plan = attach_zipf_inputs(plan, rng.fork("keys"), skew=skew)
    runtime, frontend = build_runtime(
        plan, seed=seed, shards=2, reuse=True, idempotent=True,
        overload=True,
    )
    if crash:
        attach_fault_plan(runtime, FaultPlan.of(FaultSpec(
            kind=FaultKind.PU_CRASH, target="dpu0",
            at_s=0.3, reboot_after_s=0.3,
        )))
    records = OpenLoopDriver(runtime, plan, frontend).run()

    # Exactly one record, carrying exactly one fate, per planned arrival.
    assert len(records) == len(plan)
    assert frontend.requests_admitted == len(plan)
    answered = sum(1 for r in records if r.answered)
    shed = sum(1 for r in records if r.shed)
    dead = len(records) - answered - shed
    assert answered + shed + dead == len(plan)
    # Only answered requests may claim a cache serve, and the flag is
    # one of the three legal values.
    for record in records:
        assert record.cache in ("", "fresh", "stale")
        if not record.answered:
            assert record.cache == ""

    reuse = runtime.reuse
    assert reuse.conserved(answered)
    assert runtime.overload.conserved(len(plan), answered, dead)
    # Single-flight never strands anyone: every follower that joined
    # was either fanned an entry or requeued to re-elect.
    flights = reuse.flights
    assert (flights.followers_served + flights.followers_requeued
            == flights.followers_joined)
    assert 0.0 <= reuse.hit_rate() <= 1.0


def _memo_fn(exec_ms=5.0):
    return FunctionDef(
        name="memo",
        code=FunctionCode("memo", language=Language.PYTHON, import_ms=10.0),
        work=WorkProfile(warm_exec_ms=exec_ms),
        profiles=(PuKind.CPU,),
        idempotent=True,
    )


@_SIM_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    key=st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
)
def test_fresh_hit_never_follows_an_invalidating_deploy(seed, key):
    """For any seed and any input key: once the function is redeployed,
    the very next request for a previously-hot key must re-execute —
    an entry filled under the old code may never serve fresh."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=seed, default_deadline_s=10.0,
        reuse=ReuseConfig(ttl_s=1000.0),  # freshness is not the test
    )
    runtime.deploy_now(_memo_fn())
    runtime.invoke_now("memo", input_key=key)
    assert runtime.invoke_now("memo", input_key=key).cache == "fresh"
    runtime.registry.unregister("memo")
    runtime.deploy_now(_memo_fn())
    assert runtime.invoke_now("memo", input_key=key).cache == ""


def test_leader_crash_reexecutes_instead_of_wedging_followers():
    """The mutation test behind the abort path: sabotage the first
    execution so the single-flight leader dies mid-flight.  Followers
    must be woken empty-handed, re-elect a new leader, and answer from
    its (real) execution — the failure costs one error and one extra
    election, never a wedged cohort or a phantom answer."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=11, default_deadline_s=10.0,
        reuse=ReuseConfig(),
    )
    runtime.deploy_now(_memo_fn(exec_ms=50.0))
    sim = runtime.sim
    invoker = runtime.invoker
    original = invoker._invoke_with_retries
    sabotage = {"left": 1}

    def sabotaged(*args, **kwargs):
        if sabotage["left"]:
            sabotage["left"] -= 1
            # Let the followers park on the flight first, then die.
            yield sim.timeout(0.01)
            raise SandboxError("injected leader crash")
        result = yield from original(*args, **kwargs)
        return result

    invoker._invoke_with_retries = sabotaged
    results, errors = [], []

    def call():
        try:
            result = yield from runtime.invoke("memo", input_key="hot")
        except ReproError as exc:
            errors.append(exc)
        else:
            results.append(result)

    for index in range(3):
        sim.spawn(call(), name=f"cohort{index}")
    sim.run()  # terminating at all proves nobody wedged

    assert len(errors) == 1  # the sabotaged leader's own request
    assert len(results) == 2  # both followers were answered...
    assert len({r.payload for r in results}) == 1  # ... identically
    reuse = runtime.reuse
    flights = reuse.flights
    assert flights.leader_failures == 1
    assert flights.followers_requeued == 2  # both woken empty-handed
    assert flights.flights_opened == 2  # the re-election
    # One requeued follower led the re-election, the other re-joined it.
    assert flights.followers_joined == 3
    assert flights.followers_served == 1
    assert reuse.executed == 1  # one real run for the whole cohort
    assert reuse.served_fresh == 1
    assert reuse.conserved(answered=len(results))
