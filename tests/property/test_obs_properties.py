"""Property-based tests for the observability subsystem: span-tree
timing invariants and counter conservation under random invocation
plans, plus histogram/quantile laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.obs.metrics import Histogram

# One invocation in a plan: (function index, PU kind).
_INVOCATIONS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.sampled_from([PuKind.CPU, PuKind.DPU])),
    min_size=1,
    max_size=8,
)


def _functions():
    return [
        FunctionDef(
            name=f"f{i}",
            code=FunctionCode(
                f"f{i}", language=Language.PYTHON, import_ms=50.0 * (i + 1)
            ),
            work=WorkProfile(warm_exec_ms=5.0 * (i + 1)),
            profiles=(PuKind.CPU, PuKind.DPU),
        )
        for i in range(3)
    ]


@settings(max_examples=20, deadline=None)
@given(plan=_INVOCATIONS)
def test_span_durations_nest_within_request(plan):
    """For every trace: each phase fits inside the request span, and
    the phases (which never overlap) sum to at most the end-to-end
    duration."""
    molecule = MoleculeRuntime.create(num_dpus=1)
    for function in _functions():
        molecule.deploy_now(function)
    for index, kind in plan:
        molecule.invoke_now(f"f{index}", kind=kind)
    traces = molecule.obs.completed_traces()
    assert len(traces) == len(plan)
    for trace in traces:
        root = trace.root
        total = root.duration_s
        assert sum(trace.phases().values()) <= total + 1e-9
        for child in root.children:
            assert root.begin_s - 1e-12 <= child.begin_s
            assert child.end_s <= root.end_s + 1e-12
            assert child.duration_s >= 0


@settings(max_examples=20, deadline=None)
@given(plan=_INVOCATIONS)
def test_counter_totals_equal_requests_admitted(plan):
    """Conservation: requests_total == starts_total == gateway
    admissions, and per-function counts match the plan."""
    molecule = MoleculeRuntime.create(num_dpus=1)
    for function in _functions():
        molecule.deploy_now(function)
    for index, kind in plan:
        molecule.invoke_now(f"f{index}", kind=kind)
    registry = molecule.obs.registry
    n = len(plan)
    assert molecule.gateway.requests_admitted == n
    assert registry.get("repro_requests_total").total() == n
    assert registry.get("repro_starts_total").total() == n
    assert registry.get("repro_gateway_requests_total").value == n
    by_function: dict[str, int] = {}
    for labels, child in registry.get("repro_requests_total").series():
        by_function[labels["function"]] = (
            by_function.get(labels["function"], 0) + int(child.value)
        )
    expected: dict[str, int] = {}
    for index, _kind in plan:
        expected[f"f{index}"] = expected.get(f"f{index}", 0) + 1
    assert by_function == expected
    # cold + fork + warm partition the invocations.
    kinds = {
        labels["start_kind"]: int(child.value)
        for labels, child in registry.get("repro_starts_total").series()
    }
    assert sum(kinds.values()) == n
    assert set(kinds) <= {"cold", "fork", "warm"}


# -- histogram laws (pure, no runtime needed) ---------------------------------

_SAMPLES = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=100,
)


@given(samples=_SAMPLES)
def test_histogram_count_and_sum_conserved(samples):
    h = Histogram(buckets=(0.1, 1.0, 10.0, 100.0))
    for value in samples:
        h.observe(value)
    assert h.count == len(samples)
    assert math.isclose(h.sum, sum(samples), rel_tol=1e-9, abs_tol=1e-9)
    # The +Inf bucket always accumulates everything.
    assert h.bucket_counts()[-1][1] == len(samples)


@given(samples=_SAMPLES)
def test_histogram_quantiles_monotone(samples):
    h = Histogram(buckets=(0.1, 1.0, 10.0, 100.0))
    for value in samples:
        h.observe(value)
    quantiles = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)]
    assert quantiles == sorted(quantiles)
    assert all(q >= 0 for q in quantiles)
