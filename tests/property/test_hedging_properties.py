"""Property-based tests for tail-latency hedging.

Machine-wide invariants over *generated* arrival plans with the hedge
engine armed aggressively (so most plans actually race clones):

* every planned request is answered exactly once — hedging never
  duplicates or loses an answer;
* the race accounting is conservative: clones fired bounds clones won
  plus clones cancelled, and no loser ever runs to completion;
* anti-affinity holds: no clone lands on its primary's PU.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HedgeConfig
from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    OpenLoopDriver,
    build_runtime,
)

# Simulation runs are comparatively expensive; keep the example budget
# small and the plans short.  The invariants are structural, not
# statistical, so a handful of diverse plans is enough.
_SIM_SETTINGS = settings(max_examples=15, deadline=None)

#: Hedge nearly everything: tiny warm-up floor, 20ms fallback trigger.
_HEDGE = HedgeConfig(min_samples=3, default_trigger_s=0.02)


def _plan_from_gaps(gaps, functions):
    """Build a plan from raw inter-arrival gaps and function picks."""
    arrivals, now = [], 0.0
    for gap, name in zip(gaps, functions):
        now += gap
        arrivals.append(Arrival(time_s=now, function=name))
    return ArrivalPlan(tuple(arrivals), duration_s=now + 0.001)


_gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    min_size=1,
    max_size=40,
)


@_SIM_SETTINGS
@given(gaps=_gaps, seed=st.integers(min_value=0, max_value=2**16))
def test_hedged_requests_answered_exactly_once(gaps, seed):
    """Whatever the arrival structure (bursts of simultaneous arrivals
    included), hedging must neither lose nor duplicate an answer."""
    functions = ["thumb", "etl", "infer"] * (len(gaps) // 3 + 1)
    plan = _plan_from_gaps(gaps, functions)
    runtime, frontend = build_runtime(
        plan, seed=seed, shards=2, hedge=_HEDGE
    )
    records = OpenLoopDriver(runtime, plan, frontend).run()
    assert len(records) == len(plan)
    answered = sum(1 for r in records if r.answered)
    dead = len(runtime.dead_letters)
    assert frontend.requests_admitted == len(plan)
    assert answered + dead == len(plan)
    # One record per planned arrival, each with a definite outcome.
    assert sorted(r.index for r in records) == list(range(len(plan)))
    assert all(r.outcome for r in records)


@_SIM_SETTINGS
@given(gaps=_gaps, seed=st.integers(min_value=0, max_value=2**16))
def test_hedge_race_accounting_is_conservative(gaps, seed):
    """fired >= won + cancelled (a clone that fails outright resolves
    the race as neither), and losers never complete."""
    functions = ["thumb", "etl", "infer"] * (len(gaps) // 3 + 1)
    plan = _plan_from_gaps(gaps, functions)
    runtime, frontend = build_runtime(
        plan, seed=seed, shards=2, hedge=_HEDGE
    )
    OpenLoopDriver(runtime, plan, frontend).run()
    hedger = runtime.hedging
    assert hedger.fired >= hedger.won + hedger.cancelled
    assert hedger.losers_completed == 0
    assert hedger.fired == len(hedger.events)
    # Wasted work only ever comes from resolved races.
    if hedger.fired == 0:
        assert hedger.wasted_s == 0.0
        assert hedger.wasted_cost == 0.0


@_SIM_SETTINGS
@given(gaps=_gaps, seed=st.integers(min_value=0, max_value=2**16))
def test_no_request_hedged_onto_its_own_pu(gaps, seed):
    """Anti-affinity: every resolved clone placement differs from the
    primary's PU recorded at fire time."""
    functions = ["thumb", "etl", "infer"] * (len(gaps) // 3 + 1)
    plan = _plan_from_gaps(gaps, functions)
    runtime, frontend = build_runtime(
        plan, seed=seed, shards=2, hedge=_HEDGE
    )
    OpenLoopDriver(runtime, plan, frontend).run()
    for event in runtime.hedging.events:
        assert event["primary_pu"] is not None
        if event["clone_pu"] is not None:
            assert event["clone_pu"] != event["primary_pu"]
