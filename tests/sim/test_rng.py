"""Tests for the seeded RNG streams."""

import pytest

from repro.sim import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(7)
    b = SeededRng(7)
    assert [a.uniform(0, 1) for _ in range(5)] == [b.uniform(0, 1) for _ in range(5)]


def test_different_seed_different_stream():
    a = SeededRng(7)
    b = SeededRng(8)
    assert [a.uniform(0, 1) for _ in range(5)] != [b.uniform(0, 1) for _ in range(5)]


def test_fork_is_deterministic_and_independent():
    root = SeededRng(1)
    child1 = root.fork("nipc")
    child2 = SeededRng(1).fork("nipc")
    other = root.fork("startup")
    s1 = [child1.uniform(0, 1) for _ in range(3)]
    s2 = [child2.uniform(0, 1) for _ in range(3)]
    s3 = [other.uniform(0, 1) for _ in range(3)]
    assert s1 == s2
    assert s1 != s3


def test_exponential_mean_roughly_correct():
    rng = SeededRng(3)
    samples = [rng.exponential(10.0) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 9.0 < mean < 11.0


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        SeededRng(1).exponential(0.0)


def test_jitter_never_negative_and_tracks_value():
    rng = SeededRng(9)
    for _ in range(1000):
        sample = rng.jitter(100.0, fraction=0.1)
        assert sample >= 50.0
        assert sample < 200.0


def test_jitter_passes_through_zero():
    assert SeededRng(1).jitter(0.0) == 0.0


def test_randint_bounds():
    rng = SeededRng(4)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_choice_and_shuffle_deterministic():
    rng = SeededRng(5)
    items = list(range(10))
    rng.shuffle(items)
    rng2 = SeededRng(5)
    items2 = list(range(10))
    rng2.shuffle(items2)
    assert items == items2
    assert rng.choice([1, 2, 3]) == rng2.choice([1, 2, 3])
