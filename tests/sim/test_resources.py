"""Unit tests for Resource, Store and Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Resource, Simulator, Store


# -- Resource ----------------------------------------------------------------


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.in_use == 2 and res.queue_length == 1


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_resource_fifo_fairness():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, name, hold):
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(hold)
        res.release(req)

    for name in ("a", "b", "c"):
        sim.spawn(worker(sim, name, 1.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r2)  # cancel before grant
    res.release(r1)
    assert not r2.triggered
    assert res.in_use == 0


def test_resource_invalid_capacity():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_resource_serializes_processes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish_times = []

    def worker(sim):
        req = res.request()
        yield req
        yield sim.timeout(2.0)
        res.release(req)
        finish_times.append(sim.now)

    for _ in range(3):
        sim.spawn(worker(sim))
    sim.run()
    assert finish_times == [2.0, 4.0, 6.0]


# -- Store --------------------------------------------------------------------


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered and got.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim):
        item = yield store.get()
        log.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(2.0)
        yield store.put("hello")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert log == [(2.0, "hello")]


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    for item in (1, 2, 3):
        store.put(item)
    values = [store.get().value for _ in range(3)]
    assert values == [1, 2, 3]


def test_store_capacity_blocks_putters():
    sim = Simulator()
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    assert first.triggered and not second.triggered
    got = store.get()
    assert got.value == "a"
    assert second.triggered
    assert store.get().value == "b"


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    assert len(store) == 1


def test_store_invalid_capacity():
    with pytest.raises(SimulationError):
        Store(Simulator(), capacity=0)


def test_store_multiple_waiting_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer(sim, name):
        item = yield store.get()
        log.append((name, item))

    sim.spawn(consumer(sim, "first"))
    sim.spawn(consumer(sim, "second"))

    def producer(sim):
        yield sim.timeout(1.0)
        store.put("a")
        store.put("b")

    sim.spawn(producer(sim))
    sim.run()
    assert log == [("first", "a"), ("second", "b")]


# -- Container ------------------------------------------------------------------


def test_container_levels():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, init=40.0)
    assert tank.level == 40.0
    tank.get(15.0)
    assert tank.level == 25.0
    tank.put(10.0)
    assert tank.level == 35.0


def test_container_get_blocks_until_put():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    log = []

    def consumer(sim):
        yield tank.get(5.0)
        log.append(sim.now)

    def producer(sim):
        yield sim.timeout(3.0)
        yield tank.put(5.0)

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert log == [3.0]


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=8.0)
    put = tank.put(5.0)
    assert not put.triggered
    tank.get(4.0)
    assert put.triggered
    assert tank.level == 9.0


def test_container_rejects_bad_amounts():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(SimulationError):
        tank.get(-1.0)
    with pytest.raises(SimulationError):
        tank.put(-1.0)
    with pytest.raises(SimulationError):
        tank.get(11.0)


def test_container_invalid_init():
    with pytest.raises(SimulationError):
        Container(Simulator(), capacity=5.0, init=6.0)
