"""Semantics of the timestep-batched drain (``Simulator(batched=True)``).

The batched loop's ordering contract is pinned property-style against
the reference loop in tests/property/test_sim_properties.py; these
tests pin the structural behaviours that make it work — the global
URGENT lane, singleton retirement with the scratch overlay, collided
buckets retiring late, exception resumability, and the profiling
counters — plus the parts of the public surface (``peek``/``step``)
that must behave identically in both modes.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.core import NORMAL, URGENT, Simulator


def test_batched_is_the_default():
    assert Simulator().batched is True
    assert Simulator(batched=False).batched is False


def test_urgent_preempts_same_time_normal_backlog():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.0)
        log.append("first")
        normal = sim.event()
        normal.succeed("n", priority=NORMAL)
        urgent = sim.event()
        urgent.succeed("u", priority=URGENT)
        normal.callbacks.append(lambda ev: log.append("normal"))
        urgent.callbacks.append(lambda ev: log.append("urgent"))
        yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    # The URGENT trigger was enqueued *after* the NORMAL one but must
    # dispatch first within the same timestep.
    assert log == ["first", "urgent", "normal"]


def test_urgent_must_be_immediate():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim._enqueue(sim.event(), delay=1.0, priority=URGENT)


def test_only_urgent_and_normal_priorities():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim._enqueue(sim.event(), delay=0.0, priority=7)


def test_failed_event_in_collided_timestep_leaves_rest_resumable():
    sim = Simulator()
    log = []

    def a():
        yield sim.timeout(1.0)
        log.append("a")
        boom = sim.event()
        boom.fail(RuntimeError("boom"))
        follow = sim.event()
        follow.succeed("late")
        follow.callbacks.append(lambda ev: log.append("follow"))

    def b():
        yield sim.timeout(1.0)
        log.append("b")

    sim.spawn(a())
    sim.spawn(b())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    assert sim.now == 1.0
    # b's timeout and the follow-up event were still queued behind the
    # failure; a second run drains them at the same instant.
    sim.run()
    assert log == ["a", "b", "follow"]
    assert sim.now == 1.0


def test_failed_event_in_singleton_timestep_spills_scratch():
    sim = Simulator()
    log = []

    def a():
        # The only event at t=1.0: the timestep is retired before
        # dispatch, so its zero-delay followers live in the scratch
        # overlay when the failure escapes.
        yield sim.timeout(1.0)
        log.append("a")
        boom = sim.event()
        boom.fail(RuntimeError("boom"))
        follow = sim.event()
        follow.succeed("late")
        follow.callbacks.append(lambda ev: log.append("follow"))

    sim.spawn(a())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    sim.run()
    assert log == ["a", "follow"]
    assert sim.now == 1.0


def test_zero_delay_timeout_during_singleton_drain_keeps_seq_order():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.0)
        zero = sim.timeout(0.0)
        late = sim.event()
        late.succeed("late")
        zero.callbacks.append(lambda ev: log.append("zero"))
        late.callbacks.append(lambda ev: log.append("late"))
        yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    # zero-delay timeout was created first, so it dispatches first.
    assert log == ["zero", "late"]


def test_peek_and_step_match_reference_walk():
    def build(batched):
        sim = Simulator(batched=batched)
        log = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            log.append((tag, sim.now))
            yield sim.timeout(delay)
            log.append((tag + "'", sim.now))

        for i, delay in enumerate([2.0, 1.0, 1.0, 3.0]):
            sim.spawn(proc(delay, f"p{i}"))
        return sim, log

    batched, b_log = build(True)
    reference, r_log = build(False)
    b_peeks, r_peeks = [], []
    while batched.peek() != float("inf"):
        b_peeks.append(batched.peek())
        batched.step()
    while reference.peek() != float("inf"):
        r_peeks.append(reference.peek())
        reference.step()
    assert b_log == r_log
    assert b_peeks == r_peeks
    assert batched.now == reference.now


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert fired == []
    sim.run(until=10.0)
    assert fired == [5.0]
    assert sim.now == 10.0


def test_bucket_deques_are_recycled_across_timesteps():
    sim = Simulator()

    def waver(offset):
        # Two events per timestep at every integer instant: each
        # timestep promotes to a bucket deque, which must come back
        # from the free-list after the first wave.
        for _ in range(50):
            yield sim.timeout(1.0)

    sim.spawn(waver(0))
    sim.spawn(waver(1))
    sim.run()
    profile = sim.kernel_profile()
    bucket = profile["slab"]["bucket"]
    # Two deques ever allocated: wave 1's, plus wave 2's (promoted
    # mid-drain of wave 1, before wave 1's deque is recycled).  Every
    # later wave reuses one of those two.
    assert bucket["new"] == 2
    assert bucket["reused"] == 48
    assert len(sim._bucket_pool) == 2


def test_kernel_profile_accounting():
    sim = Simulator()

    def fan(n):
        yield sim.all_of([sim.timeout(1.0) for _ in range(n)])

    def lone():
        yield sim.timeout(0.5)
        yield sim.timeout(2.0)

    sim.spawn(fan(10))
    sim.spawn(lone())
    sim.run()
    profile = sim.kernel_profile()
    assert profile["batched"] is True
    assert profile["events_processed"] == sim.processed_count
    dispatched = profile["dispatched_by_kind"]
    assert sum(dispatched.values()) == profile["events_processed"]
    assert dispatched["timeout"] == 12
    batches = profile["batches_drained"]
    assert batches == sum(profile["batch_size_hist"].values())
    assert profile["heap_ops_avoided"] == (
        profile["events_processed"] - batches
    )
    assert profile["mean_batch_size"] == pytest.approx(
        profile["events_processed"] / batches
    )
    # Three timesteps: t=0.5 is a pure singleton; t=2.5 pairs lone's
    # timeout with its process-finish event; t=1.0 drains the
    # 10-timeout fan-in plus the condition trigger and process exit.
    assert profile["batch_size_hist"] == {"1": 1, "2-3": 1, "8-15": 1}
    for kind in ("timeout", "resume", "event", "bucket"):
        slab = profile["slab"][kind]
        assert slab["new"] >= 0 and slab["reused"] >= 0
        assert 0.0 <= slab["hit_rate"] <= 1.0


def test_reference_mode_keeps_heap_tuples():
    sim = Simulator(batched=False)

    def proc():
        yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    assert sim.now == 1.0
    assert sim.processed_count > 0
    profile = sim.kernel_profile()
    assert profile["batched"] is False
    assert profile["batches_drained"] == 0
