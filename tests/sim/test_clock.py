"""Tests for the nesting utilisation clock."""

import pytest

from repro.sim import PreemptibleClock, Simulator


def test_single_activity():
    sim = Simulator()
    clock = PreemptibleClock(sim)

    def proc(sim):
        clock.mark_busy()
        yield sim.timeout(2.0)
        clock.mark_idle()
        yield sim.timeout(2.0)

    sim.spawn(proc(sim))
    sim.run()
    assert clock.busy_time == pytest.approx(2.0)
    assert clock.utilization() == pytest.approx(0.5)


def test_overlapping_activities_count_union():
    sim = Simulator()
    clock = PreemptibleClock(sim)

    def activity(sim, start, duration):
        yield sim.timeout(start)
        clock.mark_busy()
        yield sim.timeout(duration)
        clock.mark_idle()

    # [0,2] and [1,3]: union busy time is 3, not 4.
    sim.spawn(activity(sim, 0.0, 2.0))
    sim.spawn(activity(sim, 1.0, 2.0))
    sim.run()
    assert clock.busy_time == pytest.approx(3.0)


def test_mark_idle_without_busy_is_noop():
    sim = Simulator()
    clock = PreemptibleClock(sim)
    clock.mark_idle()
    assert clock.busy_time == 0.0


def test_utilization_counts_open_interval():
    sim = Simulator()
    clock = PreemptibleClock(sim)

    def proc(sim):
        clock.mark_busy()
        yield sim.timeout(4.0)

    sim.spawn(proc(sim))
    sim.run()
    assert clock.utilization() == pytest.approx(1.0)


def test_utilization_empty_window_zero():
    sim = Simulator()
    clock = PreemptibleClock(sim)
    assert clock.utilization() == 0.0
