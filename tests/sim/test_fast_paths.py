"""Regression tests for the kernel fast paths.

These pin the behavioural contracts behind the dispatch optimisations:
tombstoned interrupt slots, direct resumption of already-processed
targets, condition defusal over pre-processed children, and the
Timeout/_Resume free-lists.
"""

import platform

import pytest

from repro.errors import Interrupt
from repro.sim import Simulator

IS_CPYTHON = platform.python_implementation() == "CPython"


# -- interrupt vs. same-timestep trigger --------------------------------------------


def test_interrupt_suppresses_same_timestep_trigger():
    """An interrupt must win over the target triggering in the same
    timestep: the stale wait callback may not resume the process a
    second time with the old target's value."""
    sim = Simulator()
    log = []

    def interrupter(sim, get_victim):
        yield sim.timeout(1.0)
        get_victim().interrupt("now")

    def victim(sim):
        try:
            # Triggers at t=1.0, the same timestep as the interrupt —
            # but the interrupter's timeout was created first, so the
            # interrupt lands before this timeout dispatches.
            yield sim.timeout(1.0, value="late")
            log.append("not interrupted")
        except Interrupt as exc:
            log.append(("interrupted", exc.cause))
        value = yield sim.timeout(5.0, value="second")
        log.append(("second", value, sim.now))

    holder = {}
    sim.spawn(interrupter(sim, lambda: holder["p"]))
    holder["p"] = sim.spawn(victim(sim))
    sim.run()
    # Exactly one resume per wait: the interrupt, then the second
    # timeout — never a spurious resume carrying "late".
    assert log == [("interrupted", "now"), ("second", "second", 6.0)]


def test_interrupt_then_new_wait_not_clobbered_by_old_target():
    """After an interrupted process starts a fresh wait, the old
    target's eventual trigger must not deliver into the new wait."""
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(10.0, value="old")
        except Interrupt:
            pass
        value = yield sim.timeout(20.0, value="new")
        log.append((value, sim.now))

    def interrupter(sim, p):
        yield sim.timeout(2.0)
        p.interrupt()

    p = sim.spawn(victim(sim))
    sim.spawn(interrupter(sim, p))
    sim.run()
    # The old target fires at t=10 into a tombstoned slot; the victim
    # only resumes at t=22 with the new wait's value.
    assert log == [("new", 22.0)]


def test_interrupt_slot_tombstone_is_o1_and_exact():
    """Interrupting one of several waiters on an event only removes
    that waiter's callback."""
    sim = Simulator()
    gate = sim.event()
    woke = []

    def waiter(sim, tag):
        try:
            value = yield gate
            woke.append((tag, value))
        except Interrupt:
            woke.append((tag, "interrupted"))

    procs = [sim.spawn(waiter(sim, i)) for i in range(3)]

    def driver(sim):
        yield sim.timeout(1.0)
        procs[1].interrupt()
        yield sim.timeout(1.0)
        gate.succeed("go")

    sim.spawn(driver(sim))
    sim.run()
    assert sorted(woke) == [(0, "go"), (1, "interrupted"), (2, "go")]


# -- conditions over already-processed children -------------------------------------


def test_all_of_already_processed_failed_child_is_defused():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("boom")).defuse()
    sim.run()
    assert bad.processed and not bad.ok

    caught = []

    def waiter(sim):
        try:
            yield sim.all_of([sim.timeout(1.0), bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(sim))
    sim.run()  # must not re-raise the already-handled failure
    assert caught == ["boom"]


def test_any_of_already_processed_success_resolves_immediately():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()

    results = []

    def waiter(sim):
        values = yield sim.any_of([done, sim.timeout(100.0)])
        results.append((dict(values), sim.now))

    sim.spawn(waiter(sim))
    sim.run()
    assert results == [({done: "early"}, 0.0)]


def test_condition_defuses_late_child_failure_after_trigger():
    """A child failing after the condition already resolved must be
    marked handled, not escape ``run()``."""
    sim = Simulator()
    late_fail = sim.event()

    def failer(sim):
        yield sim.timeout(2.0)
        late_fail.fail(RuntimeError("late"))

    def waiter(sim):
        yield sim.any_of([sim.timeout(1.0), late_fail])

    sim.spawn(failer(sim))
    sim.spawn(waiter(sim))
    sim.run()  # raises if the late failure was not defused
    assert late_fail.processed and not late_fail.ok


def test_all_of_values_cover_every_child():
    sim = Simulator()
    results = []

    def waiter(sim):
        events = [sim.timeout(float(i + 1), value=i) for i in range(5)]
        values = yield sim.all_of(events)
        results.append([values[ev] for ev in events])

    sim.spawn(waiter(sim))
    sim.run()
    assert results == [[0, 1, 2, 3, 4]]


# -- free-lists ---------------------------------------------------------------------


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_timeout_free_list_recycles_unreferenced_events():
    sim = Simulator()

    def proc(sim):
        for _ in range(5):
            yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run()
    assert sim._timeout_pool  # finished timeouts were recycled
    pooled = sim._timeout_pool[-1]
    fresh = sim.timeout(0.5, value="reused")
    assert fresh is pooled  # the pool actually feeds new timeouts
    assert fresh.delay == 0.5


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_recycled_timeout_delivers_new_value():
    sim = Simulator()
    got = []

    def proc(sim):
        first = yield sim.timeout(1.0, value="a")
        second = yield sim.timeout(1.0, value="b")
        got.append((first, second))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [("a", "b")]
    assert sim.now == 2.0


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_referenced_timeout_is_not_recycled():
    sim = Simulator()
    held = []

    def proc(sim):
        t = sim.timeout(1.0)
        held.append(t)  # an outside reference survives dispatch
        yield t

    sim.spawn(proc(sim))
    sim.run()
    assert held[0] not in sim._timeout_pool
    assert held[0].processed  # still a valid, processed event


def test_resume_records_are_pooled():
    sim = Simulator()

    def proc(sim):
        done = sim.event()
        done.succeed("x")
        yield sim.timeout(0.0)
        # Waiting on an already-processed event takes the direct-resume
        # path (no intermediate wakeup event).
        value = yield done
        return value

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.value == "x"
    assert sim._resume_pool  # dispatched records returned to the pool


def test_timeout_pool_is_bounded():
    sim = Simulator()

    def proc(sim):
        for _ in range(Simulator._TIMEOUT_POOL_MAX + 200):
            yield sim.timeout(0.0)

    sim.spawn(proc(sim))
    sim.run()
    assert len(sim._timeout_pool) <= Simulator._TIMEOUT_POOL_MAX


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_event_free_list_grows_under_burst_and_reuses():
    sim = Simulator()

    def burst(sim, n):
        # n plain events succeed-and-dispatch in one timestep with no
        # surviving reference (not even a loop variable: the suspended
        # generator frame would keep its last binding alive across the
        # dispatch and fail the refcount gate); every one should land
        # in the slab.
        yield sim.timeout(1.0)
        for _ in range(n):
            sim.event().succeed("x")
        yield sim.timeout(1.0)

    sim.spawn(burst(sim, 64))
    sim.run()
    assert len(sim._event_pool) == 64  # grown on demand, not preallocated
    profile = sim.kernel_profile()
    assert profile["slab"]["event"]["new"] == 64
    # The next burst is served entirely from the free-list.
    sim.spawn(burst(sim, 64))
    sim.run()
    profile = sim.kernel_profile()
    assert profile["slab"]["event"]["new"] == 64
    assert profile["slab"]["event"]["reused"] == 64


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_event_pool_is_bounded():
    sim = Simulator()

    def burst(sim):
        yield sim.timeout(1.0)
        for _ in range(Simulator._EVENT_POOL_MAX + 100):
            sim.event().succeed("x")
        yield sim.timeout(1.0)

    sim.spawn(burst(sim))
    sim.run()
    assert len(sim._event_pool) <= Simulator._EVENT_POOL_MAX


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_event_reused_after_waiter_cancelled():
    sim = Simulator()
    from repro.errors import Interrupt

    log = []

    def waiter(sim, box):
        # The trigger is popped straight into the yield so this frame
        # never binds it: the Interrupt's traceback pins the frame (a
        # gc cycle the refcount gate cannot see), and a `trigger` local
        # here would pin the event with it.
        try:
            yield box.pop()
            log.append("woke")
        except Interrupt:
            log.append("cancelled")

    def driver(sim):
        trigger = sim.event()
        target = sim.spawn(waiter(sim, [trigger]))
        yield sim.timeout(1.0)
        target.interrupt("cancel")
        yield sim.timeout(1.0)
        trigger.succeed("late")
        # The generator ends here, so by the time the event dispatches
        # (with its waiter's callback slot tombstoned by the interrupt)
        # nothing outside the queue references it.

    sim.spawn(driver(sim))
    sim.run()
    assert log == ["cancelled"]
    assert sim._event_pool  # the cancelled-waiter event was recycled
    pooled = sim._event_pool[-1]
    fresh = sim.event()
    assert fresh is pooled  # reuse-after-cancel feeds the next event
    assert not fresh.triggered


@pytest.mark.skipif(not IS_CPYTHON, reason="free-list is refcount-gated")
def test_referenced_plain_event_is_not_recycled():
    sim = Simulator()
    held = []

    def proc(sim):
        event = sim.event()
        event.succeed("keep")
        held.append(event)
        yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run()
    assert held[0].processed
    assert held[0] not in sim._event_pool
    assert held[0].value == "keep"
