"""Unit tests for the event kernel."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert log == [2.5]


def test_timeout_value_is_delivered():
    sim = Simulator()
    result = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        result.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert result == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return 99

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.processed and p.ok
    assert p.value == 99


def test_processes_interleave_in_time_order():
    sim = Simulator()
    log = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        log.append(name)

    sim.spawn(proc(sim, "slow", 2.0))
    sim.spawn(proc(sim, "fast", 1.0))
    sim.run()
    assert log == ["fast", "slow"]


def test_same_time_events_fifo_order():
    sim = Simulator()
    log = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        sim.spawn(proc(sim, name))
    sim.run()
    assert log == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim):
        value = yield gate
        log.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert log == [(3.0, "open")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_failed_event_throws_into_process():
    sim = Simulator()
    caught = []

    def proc(sim):
        gate = sim.event()
        gate.fail(ValueError("boom"))
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(proc(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failure_escapes_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.spawn(proc(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_waiting_on_process_event():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(2.0)
        return "done"

    def parent(sim):
        result = yield sim.spawn(child(sim))
        log.append((sim.now, result))

    sim.spawn(parent(sim))
    sim.run()
    assert log == [(2.0, "done")]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    log = []

    def child(sim):
        yield sim.timeout(1.0)
        return "early"

    def parent(sim, child_proc):
        yield sim.timeout(5.0)
        value = yield child_proc
        log.append((sim.now, value))

    child_proc = sim.spawn(child(sim))
    sim.spawn(parent(sim, child_proc))
    sim.run()
    assert log == [(5.0, "early")]


def test_yielding_non_event_raises_inside_process():
    sim = Simulator()
    caught = []

    def proc(sim):
        try:
            yield 42
        except SimulationError as exc:
            caught.append(str(exc))

    sim.spawn(proc(sim))
    sim.run()
    assert len(caught) == 1 and "expected an Event" in caught[0]


def test_all_of_collects_values():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        values = yield sim.all_of([t1, t2])
        log.append((sim.now, sorted(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert log == [(2.0, ["a", "b"])]


def test_any_of_triggers_on_first():
    sim = Simulator()
    log = []

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        values = yield sim.any_of([t1, t2])
        log.append((sim.now, list(values.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert log == [(1.0, ["fast"])]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        values = yield sim.all_of([])
        log.append(values)

    sim.spawn(proc(sim))
    sim.run()
    assert log == [{}]


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt("stop it")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert log == [(1.0, "stop it")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.1)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_stops_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(4.0)
    assert sim.peek() == 4.0
    sim.run()
    assert sim.peek() == float("inf")


def test_is_alive_tracks_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive
