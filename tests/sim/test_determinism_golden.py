"""Golden-seed determinism guard.

``tests/sim/data/golden_seed_snapshot.json`` was captured with the
pre-fast-path kernel (before the direct-resume records, tombstoned
interrupt slots and Timeout free-list landed).  The same seed and plan
must keep producing a byte-identical metrics snapshot: the fast paths
may change how fast events dispatch, never in what order.

If this test fails, a kernel change broke the (time, priority, seq)
ordering contract — do *not* regenerate the golden file to make it
pass without understanding exactly why the trace moved.
"""

import json
from pathlib import Path

from tests.support import GOLDEN_SEED, golden_seed_snapshot

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_seed_snapshot.json"


def test_golden_seed_snapshot_is_byte_identical():
    current = golden_seed_snapshot()
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert current["seed"] == GOLDEN_SEED == golden["seed"]
    assert json.dumps(current, sort_keys=True) == json.dumps(
        golden, sort_keys=True
    )


def test_snapshot_is_seed_stable_within_one_interpreter():
    first = golden_seed_snapshot()
    second = golden_seed_snapshot()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
