"""The perf harness: report schema, comparison logic, CLI round trip."""

import copy
import json

import pytest

from repro import perf
from repro.cli import main


def test_scenario_registry_names():
    assert set(perf.SCENARIOS) == {
        "kernel_microbench",
        "invocation_sweep",
        "coldstart_storm",
        "loadgen_replay",
        "fanout_sweep",
        "startup_replay",
        "reuse_sweep",
    }


def test_run_benchmarks_quick_populates_every_scenario():
    report = perf.run_benchmarks(quick=True)
    assert report["schema"] == "repro-perf/1"
    assert report["quick"] is True
    assert set(report["scenarios"]) == set(perf.SCENARIOS)
    for scenario in report["scenarios"].values():
        assert scenario["wall_s"] > 0
        rates = [
            v for k, v in scenario["metrics"].items() if k.endswith("_per_sec")
        ]
        assert rates and all(r > 0 for r in rates)
        assert scenario["stages"]
        assert scenario["params"]


def test_coldstart_storm_coalesces_into_fewer_sandboxes():
    report = perf.run_benchmarks(quick=True, scenarios=["coldstart_storm"])
    scenario = report["scenarios"]["coldstart_storm"]
    requests = scenario["params"]["requests"]
    metrics = scenario["metrics"]
    # The engine serves the whole storm from fewer sandboxes than
    # requests; without it the DRAM-pressured overflow dies placing.
    assert metrics["answered_engine_on"] == requests
    assert metrics["sandboxes_engine_on"] < requests
    assert metrics["answered_engine_off"] < metrics["answered_engine_on"]
    assert metrics["cold_engine_on"] < metrics["cold_engine_off"] + (
        metrics["coalesced_engine_on"]
    )


def test_loadgen_replay_times_batched_against_reference():
    report = perf.run_benchmarks(quick=True, scenarios=["loadgen_replay"])
    scenario = report["scenarios"]["loadgen_replay"]
    metrics = scenario["metrics"]
    # Both kernels replayed the same seeded plan to completion.
    assert metrics["events"] > 0
    assert metrics["answered"] > 0
    assert metrics["events_per_sec"] > 0
    assert metrics["reference_events_per_sec"] > 0
    assert metrics["speedup_vs_reference"] > 0
    assert scenario["stages"]["batched_replay_s"] > 0
    assert scenario["stages"]["reference_replay_s"] > 0
    # Params pin the golden-recipe sizing compare_reports matches on.
    assert scenario["params"]["seed"] == perf.bench.REPLAY_SEED
    assert scenario["params"]["shards"] == perf.bench.REPLAY_SHARDS


def test_fanout_sweep_runs_both_gather_modes():
    report = perf.run_benchmarks(quick=True, scenarios=["fanout_sweep"])
    scenario = report["scenarios"]["fanout_sweep"]
    metrics = scenario["metrics"]
    assert metrics["tasks"] == scenario["params"]["tasks"]
    assert metrics["fanout_tasks_per_sec"] > 0
    assert metrics["gather_p99_ms"] > 0
    assert metrics["gather_off_p99_ms"] > 0
    assert scenario["stages"]["gather_on_s"] > 0
    assert scenario["stages"]["gather_off_s"] > 0
    assert scenario["params"]["seed"] == perf.bench.REPLAY_SEED


def test_run_benchmarks_profile_attaches_kernel_snapshots():
    report = perf.run_benchmarks(
        quick=True, scenarios=["kernel_microbench"], profile=True
    )
    profiles = report["profiles"]
    prof = profiles["kernel_microbench"]
    assert prof["batched"] is True
    assert prof["events_processed"] > 0
    assert prof["batches_drained"] > 0
    assert set(prof["dispatched_by_kind"]) == {
        "resume", "timeout", "event", "other",
    }
    assert set(prof["slab"]) == {"timeout", "resume", "event", "bucket"}
    rendered = perf.format_profile(profiles)
    assert "kernel_microbench" in rendered
    assert "heap ops avoided" in rendered
    # Without the flag the report schema is unchanged.
    plain = perf.run_benchmarks(quick=True, scenarios=["kernel_microbench"])
    assert "profiles" not in plain


def test_run_benchmarks_scenario_subset_and_unknown():
    report = perf.run_benchmarks(quick=True, scenarios=["kernel_microbench"])
    assert list(report["scenarios"]) == ["kernel_microbench"]
    with pytest.raises(KeyError):
        perf.run_benchmarks(quick=True, scenarios=["nope"])


def _fake_report(events_per_sec):
    return {
        "schema": perf.bench.SCHEMA,
        "quick": True,
        "scenarios": {
            "kernel_microbench": {
                "wall_s": 1.0,
                "metrics": {
                    "events_per_sec": events_per_sec,
                    "events": 1000.0,
                },
                "stages": {},
                "params": {"procs": 1},
            },
        },
    }


def test_compare_flags_regression_beyond_threshold():
    prior = _fake_report(1000.0)
    current = _fake_report(700.0)  # -30%
    regressions = perf.compare_reports(current, prior, threshold=0.20)
    assert len(regressions) == 1
    r = regressions[0]
    assert r["scenario"] == "kernel_microbench"
    assert r["metric"] == "events_per_sec"
    assert r["delta"] == pytest.approx(-0.30)
    assert "REGRESSIONS" in perf.format_comparison(regressions, 0.20)


def test_compare_tolerates_drop_within_threshold_and_gains():
    prior = _fake_report(1000.0)
    assert perf.compare_reports(_fake_report(850.0), prior, 0.20) == []
    assert perf.compare_reports(_fake_report(2000.0), prior, 0.20) == []
    assert "no regressions" in perf.format_comparison([], 0.20)


def test_compare_skips_mismatched_params_and_missing_scenarios():
    prior = _fake_report(1000.0)
    current = _fake_report(100.0)
    current["scenarios"]["kernel_microbench"]["params"] = {"procs": 99}
    assert perf.compare_reports(current, prior, 0.20) == []
    assert perf.compare_reports(_fake_report(100.0), {"scenarios": {}}, 0.20) == []


def test_non_rate_metrics_are_not_compared():
    prior = _fake_report(1000.0)
    current = copy.deepcopy(prior)
    current["scenarios"]["kernel_microbench"]["metrics"]["events"] = 1.0
    assert perf.compare_reports(current, prior, 0.20) == []


def test_write_report_round_trips(tmp_path):
    report = perf.run_benchmarks(quick=True, scenarios=["kernel_microbench"])
    path = tmp_path / "bench.json"
    perf.write_report(report, str(path))
    assert json.loads(path.read_text()) == report


def test_cli_perf_quick_writes_report_and_compares(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    code = main([
        "perf", "--quick", "--output", str(out), "kernel_microbench",
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["scenarios"]["kernel_microbench"]["metrics"]["events_per_sec"] > 0

    # Compare against itself: never a regression.
    code = main([
        "perf", "--quick", "--output", str(out), "--compare", str(out),
        "--fail-on-regression", "kernel_microbench",
    ])
    assert code == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_perf_fail_on_regression_exits_nonzero(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    prior_path = tmp_path / "prior.json"
    assert main([
        "perf", "--quick", "--output", str(out), "kernel_microbench",
    ]) == 0
    prior = json.loads(out.read_text())
    # Fabricate an implausibly fast prior run to force a regression.
    scenario = prior["scenarios"]["kernel_microbench"]
    scenario["metrics"]["events_per_sec"] *= 100.0
    prior_path.write_text(json.dumps(prior))
    code = main([
        "perf", "--quick", "--output", str(out), "--compare", str(prior_path),
        "--fail-on-regression", "kernel_microbench",
    ])
    assert code == 1
    assert "REGRESSIONS" in capsys.readouterr().out
    # Warn-only is the default: same comparison without the flag passes.
    assert main([
        "perf", "--quick", "--output", str(out), "--compare", str(prior_path),
        "kernel_microbench",
    ]) == 0


def test_cli_perf_profile_writes_sidecar(tmp_path, capsys):
    out = tmp_path / "BENCH_perf.json"
    code = main([
        "perf", "--quick", "--profile", "--output", str(out),
        "kernel_microbench",
    ])
    assert code == 0
    # The report itself keeps the unprofiled schema...
    report = json.loads(out.read_text())
    assert "profiles" not in report
    # ...and the counters land in the sidecar next to it.
    sidecar = json.loads((tmp_path / "BENCH_perf_profile.json").read_text())
    assert sidecar["kernel_microbench"]["events_processed"] > 0
    assert "heap ops avoided" in capsys.readouterr().out


def test_cli_perf_unknown_scenario_is_an_error(tmp_path):
    assert main([
        "perf", "--quick", "--output", str(tmp_path / "b.json"), "nope",
    ]) == 2
