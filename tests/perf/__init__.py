"""Tests for the wall-clock perf harness."""
