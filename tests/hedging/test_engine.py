"""Hedging engine behavior: off means byte-identical golden output, on
means deterministic and a strictly better burst tail at bounded cost."""

import json

from repro import HedgeConfig
from repro.loadgen import run_load

from tests.support import GOLDEN_SEED, golden_seed_snapshot


# -- engine off: stock behavior, byte for byte ------------------------------------


def test_engine_off_matches_golden_snapshot():
    """``hedging=None`` must leave the canned golden workload
    byte-identical to a runtime predating the engine."""
    with open("tests/sim/data/golden_seed_snapshot.json",
              encoding="utf-8") as handle:
        expected = json.load(handle)
    current = golden_seed_snapshot(GOLDEN_SEED)
    assert json.dumps(current, sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_engine_off_load_run_identical_to_default():
    """A load run with ``hedge=False`` equals one that never heard of
    the engine (same plan, same seed, same report modulo wall time)."""
    baseline = run_load("burst", quick=True, seed=1234)
    explicit = run_load("burst", quick=True, seed=1234, hedge=False)
    for report in (baseline, explicit):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        explicit, sort_keys=True
    )
    assert "hedging" not in baseline


# -- engine on: deterministic ------------------------------------------------------


def _hedged_burst(seed=1234):
    return run_load(
        "burst", quick=True, seed=seed, rps=320.0,
        hedge=HedgeConfig(min_samples=10, percentile=90.0,
                          default_trigger_s=0.25),
    )


def test_hedged_run_is_deterministic():
    """Two hedged runs of the same plan and seed must agree on every
    race: same winners, same counters, same report, byte for byte."""
    first = _hedged_burst()
    second = _hedged_burst()
    for report in (first, second):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    assert first["hedging"]["fired"] > 0


def test_hedge_accounting_invariants():
    report = _hedged_burst()
    hedging = report["hedging"]
    # Every fired clone resolves as a win or a cancellation (a clone
    # that fails outright before the race resolves is neither).
    assert hedging["fired"] >= hedging["won"] + hedging["cancelled"]
    # No loser ever ran to completion past its checkpoints.
    assert hedging["losers_completed"] == 0
    # Report dimensions derive from the counters.
    answered = report["load"]["answered"]
    assert hedging["hedge_rate"] == hedging["fired"] / answered
    assert hedging["hedged_answered"] <= hedging["fired"]
    assert 0.0 <= hedging["wasted_cost_fraction"] < 0.05


# -- engine on: the burst-tail acceptance bar --------------------------------------


def test_burst_tail_strictly_better_with_hedging():
    """Same plan, same seed, overloaded burst: arming the hedging
    engine must strictly cut the p999 at under 5% mean-cost increase
    (the tentpole acceptance bar, asserted strictly here and warn-only
    against full-size runs in CI)."""
    kwargs = dict(quick=True, seed=1, rps=320.0)
    off = run_load("burst", **kwargs)
    on = run_load("burst", hedge=True, **kwargs)
    # Identical offered load on both sides.
    assert on["load"]["offered"] == off["load"]["offered"]
    assert on["load"]["answered"] == off["load"]["answered"]
    on_e2e = on["latency"]["end_to_end"]
    off_e2e = off["latency"]["end_to_end"]
    assert on_e2e["p999_ms"] < off_e2e["p999_ms"]
    assert on_e2e["p99_ms"] < off_e2e["p99_ms"]
    on_cost = on["cost"]["mean_cost_per_answered"]
    off_cost = off["cost"]["mean_cost_per_answered"]
    assert on_cost <= off_cost * 1.05
    assert on["hedging"]["fired"] > 0
    assert on["hedging"]["won"] > 0
    assert "hedging" not in off
    assert on["params"]["hedge"] is True
