"""Hedging x cold-start coalescing: a parked follower that gets hedged
away must not strand its batch.

A coalesced follower owns no placement — it is parked on the leader's
:class:`CoalescedBatch` waiting for a recycled instance.  When its
clone answers first, the follower must (a) consume or return whatever
the batch eventually delivers so the recycle chain keeps moving, and
(b) leave no dangling parked-follower entry behind.  This is the
regression net for exactly that interaction.
"""

from repro import (
    FunctionCode,
    FunctionDef,
    HedgeConfig,
    Language,
    MoleculeRuntime,
    PuKind,
    WarmPathConfig,
    WorkProfile,
)
from repro.errors import ReproError

#: Followers park on the leader's ~140ms cold start; the 30ms fallback
#: trigger hedges them off the batch long before it delivers.
_CFG = HedgeConfig(min_samples=99, default_trigger_s=0.03)


def _coalesced_storm(requests=12, seed=7):
    molecule = MoleculeRuntime.create(
        num_dpus=1, seed=seed,
        warmpath=WarmPathConfig(),
        hedging=_CFG,
    )
    molecule.deploy_now(FunctionDef(
        name="storm",
        code=FunctionCode("storm", language=Language.PYTHON,
                          import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    ))

    outcomes = []

    def guarded():
        try:
            result = yield from molecule.invoke("storm")
            outcomes.append(result)
        except ReproError:
            outcomes.append(None)

    def drive():
        procs = [molecule.sim.spawn(guarded()) for _ in range(requests)]
        yield molecule.sim.all_of(procs)

    molecule.run(drive())
    return molecule, outcomes


def test_hedged_followers_leave_no_dangling_batch():
    molecule, outcomes = _coalesced_storm()
    # The run drained (molecule.run returned) and answered everything:
    # a stranded parked follower would deadlock the drain instead.
    assert len(outcomes) == 12 and all(o is not None for o in outcomes)
    hedger = molecule.hedging
    # Parked followers did hedge: their placement was unknown, so the
    # fire path had to fall back to the batch's PU hint.
    assert hedger.fired > 0
    assert hedger.losers_completed == 0
    # No batch still holds parked followers, and every follower event
    # was resolved (served, requeued, or consumed by a hedged loser).
    coalescer = molecule.warmpath.coalescer
    for batch in coalescer._batches.values():
        assert not batch.waiters
    assert coalescer.followers_served + coalescer.followers_requeued >= 0


def test_hedged_follower_anti_affinity_uses_batch_pu():
    """Every clone fired for a parked (placement-less) follower still
    respected anti-affinity: the recorded clone PU differs from the
    batch PU the primary was parked on."""
    molecule, _outcomes = _coalesced_storm()
    for event in molecule.hedging.events:
        if event["clone_pu"] is not None:
            assert event["clone_pu"] != event["primary_pu"]


def test_hedged_coalesced_storm_is_deterministic():
    first, first_outcomes = _coalesced_storm()
    second, second_outcomes = _coalesced_storm()
    assert first.hedging.snapshot() == second.hedging.snapshot()
    assert first.hedging.events == second.hedging.events
    assert first.warmpath.snapshot() == second.warmpath.snapshot()
    assert first.sim.now == second.sim.now
    assert [o.total_s for o in first_outcomes] == [
        o.total_s for o in second_outcomes
    ]


def test_books_balanced_after_hedged_coalescing():
    """DRAM and billing stay exact when clones answer for followers
    whose batch later delivers an instance nobody needs."""
    molecule, outcomes = _coalesced_storm()
    for pu_id, pool in molecule.invoker.pools.items():
        pu = molecule.machine.pus[pu_id]
        expected = sum(
            inst.function.code.memory_mb for inst in pool.idle_instances()
        )
        assert pu.dram_used_mb == expected
    from collections import Counter
    normal = Counter(
        e.request_id for e in molecule.ledger.entries if not e.hedge_waste
    )
    assert all(n == 1 for n in normal.values())
    assert set(normal) == {o.request_id for o in outcomes}
