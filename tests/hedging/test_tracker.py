"""Latency tracker and hedge-policy trigger/eligibility units."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    HedgeConfig,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.hedging import LATENCY_BUCKETS
from repro.hedging.tracker import LatencyTracker


# -- tracker -----------------------------------------------------------------------


def test_empty_tracker_has_no_percentile():
    tracker = LatencyTracker()
    assert tracker.count("f") == 0
    assert tracker.latency_percentile("f", 95.0) is None
    assert tracker.functions() == []


def test_percentile_is_bucket_upper_bound_nearest_rank():
    tracker = LatencyTracker()
    # 9 samples in the 5ms bucket, 1 in the 500ms bucket.
    for _ in range(9):
        tracker.observe("f", 0.004)
    tracker.observe("f", 0.4)
    assert tracker.count("f") == 10
    # p50 lands well inside the 5ms bucket...
    assert tracker.latency_percentile("f", 50.0) == 0.005
    # ...while p95 crosses into the outlier's bucket (nearest rank:
    # ceil(10 * 0.95) = 10th sample).
    assert tracker.latency_percentile("f", 95.0) == 0.5


def test_overflow_samples_report_top_bucket():
    tracker = LatencyTracker()
    tracker.observe("f", 120.0)  # beyond the last bucket bound
    assert tracker.latency_percentile("f", 99.0) == LATENCY_BUCKETS[-1]


def test_negative_samples_are_ignored():
    tracker = LatencyTracker()
    tracker.observe("f", -1.0)
    assert tracker.count("f") == 0


def test_functions_are_tracked_independently():
    tracker = LatencyTracker()
    tracker.observe("a", 0.004)
    tracker.observe("b", 2.0)
    assert tracker.latency_percentile("a", 99.0) == 0.005
    assert tracker.latency_percentile("b", 99.0) == 2.5
    assert sorted(tracker.functions()) == ["a", "b"]


# -- policy trigger + eligibility --------------------------------------------------


def _runtime(config):
    molecule = MoleculeRuntime.create(num_dpus=1, seed=3, hedging=config)
    fn = FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, import_ms=50.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(fn)
    return molecule, fn


def test_trigger_uses_fallback_below_min_samples():
    molecule, fn = _runtime(HedgeConfig(min_samples=5, default_trigger_s=0.1))
    policy = molecule.hedging
    assert policy.trigger_delay(fn) == 0.1
    for _ in range(5):
        policy.observe("f", 0.004)
    # Warmed: the observed p95 bucket takes over.
    assert policy.trigger_delay(fn) == 0.005


def test_trigger_disabled_without_fallback_until_warm():
    molecule, fn = _runtime(
        HedgeConfig(min_samples=5, default_trigger_s=None)
    )
    policy = molecule.hedging
    assert policy.trigger_delay(fn) is None
    assert not policy.eligible(fn, None, PuKind.CPU, None, False)


def test_trigger_clamped_to_floor():
    molecule, fn = _runtime(
        HedgeConfig(min_samples=1, default_trigger_s=None, min_trigger_s=0.002)
    )
    policy = molecule.hedging
    policy.observe("f", 0.0001)  # p95 bucket bound 1ms, below the floor
    assert policy.trigger_delay(fn) == 0.002


def test_eligibility_gates():
    molecule, fn = _runtime(HedgeConfig(default_trigger_s=0.1))
    policy = molecule.hedging
    cpu = molecule.machine.host_cpu
    # The plain unpinned general-purpose attempt hedges.
    assert policy.eligible(fn, None, PuKind.CPU, None, False)
    # A caller-pinned PU or forced cold start never hedges.
    assert not policy.eligible(fn, None, PuKind.CPU, cpu, False)
    assert not policy.eligible(fn, None, PuKind.CPU, None, True)
    # Accelerated attempts have no cancellation checkpoints.
    assert not policy.eligible(fn, PuKind.FPGA, PuKind.FPGA, None, False)


def test_eligibility_requires_two_healthy_candidates():
    molecule, fn = _runtime(HedgeConfig(default_trigger_s=0.1))
    policy = molecule.hedging
    # Pinning the request to the CPU kind leaves a single candidate PU:
    # a clone could never satisfy anti-affinity.
    assert not policy.eligible(fn, PuKind.CPU, PuKind.CPU, None, False)


def test_fire_requires_distinct_candidate():
    molecule, fn = _runtime(HedgeConfig(default_trigger_s=0.1))
    policy = molecule.hedging
    state = policy.begin(fn, request_id=7)
    # Unknown primary placement: no clone, counted skipped.
    assert not policy.fire(state, fn, None, None)
    assert policy.skipped == 1
    assert not state.fired
    cpu = molecule.machine.host_cpu
    assert policy.fire(state, fn, None, cpu)
    assert state.fired and state.exclude is cpu
    assert policy.fired == 1
    assert policy.events[-1]["primary_pu"] == cpu.name
    assert policy.events[-1]["clone_pu"] is None


def test_first_wins_claim_is_exclusive():
    molecule, fn = _runtime(HedgeConfig(default_trigger_s=0.1))
    state = molecule.hedging.begin(fn, request_id=1)
    assert state.claim("primary", "r1", {})
    assert not state.claim("clone", "r2", {})
    assert state.winner[0] == "primary"
    assert state.lost("clone") and not state.lost("primary")


def test_snapshot_keys_are_stable():
    molecule, _fn = _runtime(HedgeConfig())
    assert sorted(molecule.hedging.snapshot()) == [
        "cancelled", "fired", "losers_completed", "observed",
        "skipped", "wasted_cost", "wasted_s", "won",
    ]


def test_runtime_rejects_nothing_when_off():
    molecule = MoleculeRuntime.create(num_dpus=1, seed=3)
    assert molecule.hedging is None
    assert molecule.invoker.hedging is None


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
