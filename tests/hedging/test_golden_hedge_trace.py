"""Golden hedge-trace regression: a checked-in arrival trace replayed
through two gateway shards with hedging armed must reproduce
byte-identical per-request tuples *and* per-hedge race outcomes.

Three files are checked in under ``data/``:

* ``golden_hedge_plan.json`` — the 246-arrival bursty plan;
* ``golden_hedge_tuples.json`` — per-request ``hedge_tuple()`` rows
  (the golden load-trace shape plus the ``hedged`` flag);
* ``golden_hedge_events.json`` — one record per fired hedge: primary
  PU, clone PU, winner, wasted milliseconds.

Together they pin the whole race pipeline: trigger timing, clone
placement (anti-affinity), first-wins arbitration, loser teardown and
waste accounting.  If a change *intentionally* alters the timeline,
regenerate both outputs and call the change out in review.
"""

import json
from pathlib import Path

from repro import HedgeConfig
from repro.loadgen import ArrivalPlan, OpenLoopDriver, build_runtime

DATA = Path(__file__).parent / "data"
GOLDEN_SEED = 1234
GOLDEN_SHARDS = 2

#: Pinned explicitly (not HedgeConfig defaults) so default tuning can
#: move without invalidating the golden outputs.
GOLDEN_CONFIG = HedgeConfig(
    percentile=95.0, min_samples=10,
    default_trigger_s=0.25, min_trigger_s=0.002,
)


def _load_plan() -> ArrivalPlan:
    return ArrivalPlan.from_json(
        (DATA / "golden_hedge_plan.json").read_text()
    )


def _replay(plan: ArrivalPlan):
    runtime, frontend = build_runtime(
        plan, seed=GOLDEN_SEED, shards=GOLDEN_SHARDS, hedge=GOLDEN_CONFIG
    )
    records = OpenLoopDriver(runtime, plan, frontend).run()
    return [list(r.hedge_tuple()) for r in records], runtime.hedging


def test_replay_matches_checked_in_tuples_and_events():
    plan = _load_plan()
    expected_tuples = json.loads(
        (DATA / "golden_hedge_tuples.json").read_text()
    )
    expected_events = json.loads(
        (DATA / "golden_hedge_events.json").read_text()
    )
    tuples, hedger = _replay(plan)
    assert len(tuples) == len(plan)
    assert tuples == expected_tuples
    assert json.loads(json.dumps(hedger.events)) == expected_events


def test_replay_is_identical_across_runs():
    plan = _load_plan()
    first_tuples, first_hedger = _replay(plan)
    second_tuples, second_hedger = _replay(plan)
    # Byte-identical, not approximately equal: serialise and compare.
    assert json.dumps(first_tuples) == json.dumps(second_tuples)
    assert json.dumps(first_hedger.events) == json.dumps(
        second_hedger.events
    )
    assert first_hedger.snapshot() == second_hedger.snapshot()


def test_golden_run_actually_hedges():
    """The checked-in trace exercises the race machinery for real:
    clones fire, most win (the burst tail is queue-bound), and at
    least one race resolves by cancelling a loser clone."""
    plan = _load_plan()
    tuples, hedger = _replay(plan)
    snap = hedger.snapshot()
    assert snap["fired"] > 0
    assert snap["won"] > 0
    assert snap["fired"] >= snap["won"] + snap["cancelled"]
    assert snap["losers_completed"] == 0
    # The hedged flag in the tuples matches the event count: every
    # fired hedge belongs to an answered, flagged request.
    assert sum(1 for t in tuples if t[-1]) == snap["fired"]
    # Anti-affinity held in every checked-in race.
    for event in hedger.events:
        if event["clone_pu"] is not None:
            assert event["clone_pu"] != event["primary_pu"]
