"""The hedge clone budget and its scheduling feedback: a provable
clone-rate bound (``fired <= burst + ratio x answered`` for any latency
distribution), throttling, the waste ceiling, and the per-PU win/waste
feedback into primary placement."""

import pytest

from repro import HedgeConfig, MoleculeRuntime
from repro.hedging.budget import HedgeBudget
from repro.loadgen import run_load


# -- token bucket unit behavior ----------------------------------------------------


def test_budget_validates_parameters():
    with pytest.raises(ValueError):
        HedgeBudget(ratio=0.0)
    with pytest.raises(ValueError):
        HedgeBudget(burst=0.5)
    with pytest.raises(ValueError):
        HedgeBudget(waste_ceiling=1.5)


def test_budget_accrues_per_answer_and_spends_per_clone():
    budget = HedgeBudget(ratio=0.25, burst=2.0)
    assert budget.try_fire() and budget.try_fire()
    assert not budget.try_fire()          # bucket drained
    for _ in range(4):                    # four answers accrue one token
        budget.on_answered()
    assert budget.try_fire()
    assert not budget.try_fire()
    assert budget.granted <= budget.burst + 0.25 * budget.answered


def test_budget_never_overfills_past_burst():
    budget = HedgeBudget(ratio=1.0, burst=3.0)
    for _ in range(100):
        budget.on_answered()
    assert budget.tokens == 3.0
    fired = sum(1 for _ in range(10) if budget.try_fire())
    assert fired == 3


def test_throttle_refuses_regardless_of_tokens():
    budget = HedgeBudget()                # unlimited but throttleable
    assert budget.try_fire() is True
    budget.throttled = True
    assert budget.try_fire() is False
    assert budget.denied_throttled == 1
    budget.throttled = False
    assert budget.try_fire() is True


def test_waste_ceiling_refuses_wasteful_clones():
    budget = HedgeBudget(waste_ceiling=0.1)
    assert budget.try_fire(wasted_cost=0.0, total_cost=1.0) is True
    assert budget.try_fire(wasted_cost=0.2, total_cost=1.0) is False
    assert budget.denied_waste == 1


# -- the clone-rate regression bound -----------------------------------------------


def test_clone_rate_provably_respects_budget():
    """The bound from the budget's contract, pinned against a run whose
    trigger is deliberately adversarial (p50 trigger: roughly half of
    all requests outlive it and try to clone)."""
    ratio, burst = 0.02, 4.0
    report = run_load(
        "burst", quick=True, seed=1234, rps=320.0,
        hedge=HedgeConfig(min_samples=10, percentile=50.0,
                          default_trigger_s=0.001,
                          budget_ratio=ratio, budget_burst=burst),
    )
    hedging = report["hedging"]
    answered = report["load"]["answered"]
    assert hedging["fired"] <= burst + ratio * answered
    budget = hedging["budget"]
    assert budget["granted"] == hedging["fired"]
    # The bound actually bit: the adversarial trigger wanted more
    # clones than the bucket allowed.
    assert budget["denied"] > 0
    assert hedging["throttled"] == budget["denied"]
    assert budget["ratio"] == ratio and budget["burst"] == burst


def test_hedge_budget_flag_implies_hedging():
    """``--hedge-budget`` alone arms hedging with the given ratio."""
    report = run_load("burst", quick=True, seed=7, hedge_budget=0.05)
    assert report["params"]["hedge"] is True
    assert report["params"]["hedge_budget"] == 0.05
    assert report["hedging"]["budget"]["ratio"] == 0.05


# -- per-PU feedback into placement ------------------------------------------------


class _FakePu:
    def __init__(self, name):
        self.name = name


def _feedback_engine():
    runtime = MoleculeRuntime.create(
        num_dpus=1, seed=9,
        hedging=HedgeConfig(pu_feedback=True, pu_feedback_min_samples=4),
    )
    return runtime


def test_pu_feedback_registers_with_scheduler():
    runtime = _feedback_engine()
    assert runtime.scheduler.hedge_feedback is runtime.hedging
    # Off by default: feedback reordering changes golden placements.
    plain = MoleculeRuntime.create(num_dpus=1, seed=9, hedging=HedgeConfig())
    assert getattr(plain.scheduler, "hedge_feedback", None) is None


def test_pu_penalty_needs_samples_then_tracks_loss_rate():
    engine = _feedback_engine().hedging
    assert engine.pu_penalty("dpu0") == 0.0
    engine.pu_stats["dpu0"] = {"primaries": 2, "lost": 2, "waste_s": 0.0}
    assert engine.pu_penalty("dpu0") == 0.0     # below the sample floor
    engine.pu_stats["dpu0"] = {"primaries": 8, "lost": 6, "waste_s": 0.0}
    assert engine.pu_penalty("dpu0") == 0.75


def test_reorder_sinks_lossy_pus_stably():
    engine = _feedback_engine().hedging
    engine.pu_stats["lossy"] = {"primaries": 8, "lost": 8, "waste_s": 0.0}
    candidates = (_FakePu("lossy"), _FakePu("a"), _FakePu("b"))
    reordered = engine.reorder_candidates(candidates)
    # The chronic race-loser sinks to the back; ties keep their order.
    assert [pu.name for pu in reordered] == ["a", "b", "lossy"]
    # All-equal penalties: the tuple passes through untouched.
    even = (_FakePu("x"), _FakePu("y"))
    assert engine.reorder_candidates(even) is even
