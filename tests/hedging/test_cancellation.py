"""Mutation-verified loser teardown.

The hedge race's correctness rests on two properties the happy path
never shows off: a losing copy must (a) stop before responding — no
duplicate answer, no duplicate bill — and (b) release its instance
exactly once.  This module runs a cold stampede that forces dozens of
races, asserts a *detector* over the runtime's books, then breaks the
cancellation path on purpose (monkeypatched mutations) and asserts the
same detector catches each break.  A refactor that silently disables
cancellation fails here, not in production.
"""

from collections import Counter

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    HedgeConfig,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.invoker import Invoker
from repro.errors import ReproError

#: Aggressive enough that a 24-request cold stampede hedges most of the
#: queue (the fallback trigger fires long before any cold start ends).
_CFG = HedgeConfig(min_samples=99, default_trigger_s=0.02)


def _stampede(hedging, requests=24, fault_plan=None, seed=7):
    """Fire ``requests`` concurrent invocations of one cold function."""
    molecule = MoleculeRuntime.create(
        num_dpus=2, seed=seed, hedging=hedging, fault_plan=fault_plan
    )
    molecule.deploy_now(FunctionDef(
        name="tail",
        code=FunctionCode("tail", language=Language.PYTHON, import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    ))

    outcomes = []

    def guarded():
        try:
            result = yield from molecule.invoke("tail")
            outcomes.append(result)
        except ReproError:
            outcomes.append(None)

    def drive():
        procs = [molecule.sim.spawn(guarded()) for _ in range(requests)]
        yield molecule.sim.all_of(procs)

    molecule.run(drive())
    return molecule, outcomes


def _violations(molecule, answered_ids):
    """Book-keeping violations a broken loser teardown produces."""
    found = []
    hedger = molecule.hedging
    if hedger.losers_completed:
        found.append(f"{hedger.losers_completed} losers ran to completion")
    # Exactly one normal (non-waste) bill per answered request: a loser
    # that responds bills its request a second time.
    normal = Counter(
        e.request_id for e in molecule.ledger.entries if not e.hedge_waste
    )
    doubles = [rid for rid, n in normal.items() if n > 1]
    if doubles:
        found.append(f"double-billed requests: {sorted(doubles)[:5]}")
    if set(normal) != answered_ids:
        found.append("billed request ids != answered request ids")
    # Instances parked back into the warm pools must be unique: a
    # double release duplicates pool entries (two future requests would
    # share one sandbox) and double-frees DRAM on eviction.
    idle = [
        inst
        for pool in molecule.invoker.pools.values()
        for inst in pool.idle_instances()
    ]
    if len(idle) != len({id(inst) for inst in idle}):
        found.append("duplicate instances in warm pools")
    for pu_id, pool in molecule.invoker.pools.items():
        pu = molecule.machine.pus[pu_id]
        expected = sum(
            inst.function.code.memory_mb for inst in pool.idle_instances()
        )
        if pu.dram_used_mb != expected:
            found.append(
                f"{pu.name} DRAM books off: used {pu.dram_used_mb}, "
                f"idle instances account {expected}"
            )
    return found


def test_stampede_races_and_keeps_the_books_clean():
    molecule, outcomes = _stampede(_CFG)
    assert len(outcomes) == 24 and all(o is not None for o in outcomes)
    hedger = molecule.hedging
    assert hedger.fired > 0
    assert hedger.fired >= hedger.won + hedger.cancelled
    assert _violations(molecule, {o.request_id for o in outcomes}) == []
    # Anti-affinity held in every resolved race.
    for event in hedger.events:
        if event["clone_pu"] is not None:
            assert event["clone_pu"] != event["primary_pu"]


def test_hedged_stampede_is_deterministic():
    first, first_outcomes = _stampede(_CFG)
    second, second_outcomes = _stampede(_CFG)
    assert first.hedging.snapshot() == second.hedging.snapshot()
    assert first.hedging.events == second.hedging.events
    assert first.sim.now == second.sim.now
    assert [o.total_s for o in first_outcomes] == [
        o.total_s for o in second_outcomes
    ]


# -- mutations: break the cancel path, watch the detector catch it -----------------


def test_mutation_disabled_checkpoints_is_caught(monkeypatch):
    """Blind the loss checkpoints: losers run to completion, respond,
    and double-bill — every signal the detector watches for."""
    monkeypatch.setattr(
        Invoker, "_hedge_lost", lambda self, hedge: False
    )
    molecule, outcomes = _stampede(_CFG)
    # The run still answers (first-wins claim is the last line of
    # defence against a duplicate *response*)...
    assert all(o is not None for o in outcomes)
    # ...but the books prove the teardown never happened.
    found = _violations(molecule, {o.request_id for o in outcomes})
    assert any("losers ran to completion" in v for v in found)
    assert any("double-billed" in v for v in found)


def test_mutation_double_release_is_caught(monkeypatch):
    """Release the loser's instance twice: the warm pools grow
    duplicate entries the detector flags."""
    original = Invoker._release_instance

    def double_release(self, instance):
        original(self, instance)
        original(self, instance)

    monkeypatch.setattr(Invoker, "_release_instance", double_release)
    molecule, outcomes = _stampede(_CFG)
    found = _violations(
        molecule, {o.request_id for o in outcomes if o is not None}
    )
    assert any(
        "duplicate instances" in v or "DRAM books off" in v for v in found
    )


# -- hedging x faults --------------------------------------------------------------


def test_clone_onto_crashing_pu_still_answers_once():
    """A PU crash taking out in-flight clones mid-race must not lose or
    double-answer any request: answered + dead == admitted, and no
    loser sneaks past its checkpoints."""
    plan = FaultPlan.of(
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=0.05,
                  reboot_after_s=0.5),
    )
    molecule, outcomes = _stampede(_CFG, fault_plan=plan)
    answered = [o for o in outcomes if o is not None]
    dead = len(molecule.dead_letters)
    admitted = molecule.gateway.requests_admitted
    assert admitted == 24
    assert len(answered) + dead == admitted
    # Each answered request was answered exactly once.
    assert len({o.request_id for o in answered}) == len(answered)
    hedger = molecule.hedging
    assert hedger.fired >= hedger.won + hedger.cancelled
    assert hedger.losers_completed == 0
