"""Unit tests for the reliability primitives: retry policy backoff,
dead-letter queue, and request deadlines."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    RetryPolicy,
    WorkProfile,
)
from repro.core.reliability import DeadLetter, DeadLetterQueue
from repro.errors import DeadlineExceeded
from repro.sim.rng import SeededRng


# -- RetryPolicy --------------------------------------------------------------------


def test_backoff_grows_exponentially_without_jitter():
    policy = RetryPolicy(
        max_attempts=5, backoff_base_ms=10.0, backoff_multiplier=2.0,
        backoff_max_ms=1000.0, jitter=0.0,
    )
    assert policy.backoff_s(1) == pytest.approx(0.010)
    assert policy.backoff_s(2) == pytest.approx(0.020)
    assert policy.backoff_s(3) == pytest.approx(0.040)


def test_backoff_is_capped():
    policy = RetryPolicy(
        backoff_base_ms=10.0, backoff_multiplier=10.0,
        backoff_max_ms=50.0, jitter=0.0,
    )
    assert policy.backoff_s(4) == pytest.approx(0.050)


def test_backoff_jitter_is_bounded_and_deterministic():
    policy = RetryPolicy(
        backoff_base_ms=100.0, backoff_multiplier=1.0,
        backoff_max_ms=100.0, jitter=0.2,
    )
    values = [policy.backoff_s(1, SeededRng(42).fork("retry")) for _ in range(5)]
    # Same seed -> same jittered pause every time.
    assert len(set(values)) == 1
    assert 0.080 <= values[0] <= 0.120
    # A different seed draws a different pause (with overwhelming odds).
    other = policy.backoff_s(1, SeededRng(43).fork("retry"))
    assert other != values[0]


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"backoff_base_ms": -1.0},
    {"backoff_max_ms": -1.0},
    {"jitter": 1.0},
    {"jitter": -0.1},
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_backoff_rejects_attempt_zero():
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0)


# -- DeadLetterQueue ----------------------------------------------------------------


def test_dead_letter_queue_accounting():
    queue = DeadLetterQueue()
    assert len(queue) == 0
    queue.push(DeadLetter(
        request_id=7, function="f", attempts=3,
        errors=("SandboxError",), enqueued_at=1.5,
    ))
    queue.push(DeadLetter(
        request_id=9, function="g", attempts=1,
        errors=(), enqueued_at=2.0, reason="deadline",
    ))
    assert len(queue) == 2
    assert queue.request_ids() == {7, 9}
    assert [e.reason for e in queue.entries()] == ["retries_exhausted", "deadline"]


# -- deadlines ----------------------------------------------------------------------


def _slow_fn(exec_ms=500.0):
    return FunctionDef(
        name="slow",
        code=FunctionCode("slow", language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=exec_ms),
        profiles=(PuKind.CPU,),
    )


def test_deadline_exceeded_dead_letters_with_reason():
    molecule = MoleculeRuntime.create(num_dpus=0, default_deadline_s=0.05)
    molecule.deploy_now(_slow_fn())
    with pytest.raises(DeadlineExceeded):
        molecule.invoke_now("slow")
    [entry] = molecule.dead_letters.entries()
    assert entry.reason == "deadline"
    assert entry.function == "slow"
    counter = molecule.obs.registry.get("repro_deadline_exceeded_total")
    assert counter.total() == 1


def test_per_request_deadline_overrides_gateway_default():
    molecule = MoleculeRuntime.create(num_dpus=0, default_deadline_s=0.05)
    molecule.deploy_now(_slow_fn())
    # A generous per-request budget lets the same function finish.
    result = molecule.invoke_now("slow", deadline_s=10.0)
    assert result.total_s > 0.05
    assert len(molecule.dead_letters) == 0


def test_deadline_fires_at_the_right_sim_time():
    molecule = MoleculeRuntime.create(num_dpus=0, default_deadline_s=0.2)
    molecule.deploy_now(_slow_fn())
    admitted_at = molecule.sim.now
    with pytest.raises(DeadlineExceeded):
        molecule.invoke_now("slow")
    assert molecule.sim.now - admitted_at >= 0.2


def test_result_carries_attempt_metadata():
    molecule = MoleculeRuntime.create(num_dpus=0)
    molecule.deploy_now(_slow_fn(exec_ms=1.0))
    result = molecule.invoke_now("slow")
    assert result.attempts == 1
    assert not result.retried
    assert result.error is None
    assert not result.degraded
