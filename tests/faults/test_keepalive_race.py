"""Races between injected crashes and the rest of the platform: the
keep-alive reaper, warm DPU pools, and cold starts in flight when the
PU dies."""

import pytest

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.faults.injector import FaultInjector


def _fn(name="f", profiles=(PuKind.DPU, PuKind.CPU), exec_ms=5.0, import_ms=50.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(
            name, language=Language.PYTHON, import_ms=import_ms, memory_mb=60
        ),
        work=WorkProfile(warm_exec_ms=exec_ms),
        profiles=profiles,
    )


def _dpu0(runtime):
    [pu] = [p for p in runtime.machine.pus.values() if p.name == "dpu0"]
    return pu


def _crash(runtime, at_s, reboot_after_s=None):
    injector = FaultInjector(
        runtime,
        FaultPlan.of(
            FaultSpec(
                FaultKind.PU_CRASH, "dpu0",
                at_s=at_s, reboot_after_s=reboot_after_s,
            )
        ),
    )
    runtime.injector = injector
    injector.arm()
    return injector


def test_reaper_survives_crash_of_pooled_instances():
    runtime = MoleculeRuntime.create(
        num_dpus=1, keep_alive_ttl_s=0.2, seed=3
    )
    runtime.deploy_now(_fn())
    dpu0 = _dpu0(runtime)
    used_before = dpu0.dram_used_mb
    # The cold request takes ~150ms and then pools its instance; the
    # crash at +250ms lands inside the keep-alive window, reaping the
    # sandbox out from under the keep-alive reaper — which must
    # tolerate the corpse when the TTL fires at ~350ms.
    _crash(runtime, at_s=runtime.sim.now + 0.25)
    answered = []

    def job():
        result = yield from runtime.invoke("f", kind=PuKind.DPU)
        answered.append(result)

    runtime.sim.spawn(job())
    runtime.sim.run()  # request, crash, then the TTL all play out
    assert len(answered) == 1
    assert len(runtime.invoker.pools[dpu0.pu_id]) == 0
    assert dpu0.dram_used_mb == used_before


def test_crash_then_reboot_then_reaper_frees_the_pool():
    runtime = MoleculeRuntime.create(
        num_dpus=1, keep_alive_ttl_s=0.3, seed=3
    )
    runtime.deploy_now(_fn())
    runtime.invoke_now("f", kind=PuKind.DPU)
    # Reboot lands BEFORE the TTL expires: the reaper then collects an
    # instance whose sandbox died in a previous epoch.
    _crash(runtime, at_s=runtime.sim.now + 0.05, reboot_after_s=0.1)
    runtime.sim.run()
    dpu0 = _dpu0(runtime)
    assert not runtime.health.is_down(dpu0)
    assert len(runtime.invoker.pools[dpu0.pu_id]) == 0
    # A fresh request cold-starts cleanly on the rebooted DPU.
    result = runtime.invoke_now("f", kind=PuKind.DPU)
    assert result.cold
    assert result.pu_name == "dpu0"


def test_crash_mid_cold_start_retries_elsewhere():
    runtime = MoleculeRuntime.create(num_dpus=2, seed=3)
    runtime.deploy_now(_fn(import_ms=200.0))
    # The cold start takes >= 200ms of import; kill the DPU in the middle.
    _crash(runtime, at_s=runtime.sim.now + 0.05)
    result = runtime.invoke_now("f", kind=PuKind.DPU, force_cold=True)
    # The attempt detected the crash, retried, and landed on the
    # surviving DPU — never lost, never served by a dead PU.
    assert result.attempts > 1
    assert result.pu_name == "dpu1"
    assert len(runtime.dead_letters) == 0


def test_crash_and_fast_reboot_mid_cold_start_is_still_detected():
    runtime = MoleculeRuntime.create(num_dpus=1, seed=3)
    runtime.deploy_now(_fn(import_ms=200.0))
    # Crash AND reboot both land inside the 200ms cold start: plain
    # is_down checks would miss it, the crash epoch does not.
    _crash(runtime, at_s=runtime.sim.now + 0.05, reboot_after_s=0.02)
    result = runtime.invoke_now("f", kind=PuKind.DPU, force_cold=True)
    assert result.attempts > 1
    assert len(runtime.dead_letters) == 0


def test_warm_dpu_pool_instance_lost_to_crash_cold_starts_next():
    runtime = MoleculeRuntime.create(num_dpus=2, seed=3)
    runtime.deploy_now(_fn())
    first = runtime.invoke_now("f", kind=PuKind.DPU)
    assert first.pu_name == "dpu0"
    _crash(runtime, at_s=runtime.sim.now + 0.01, reboot_after_s=0.05)
    runtime.run(_sleep(runtime, 0.1))  # crash + reboot both done
    again = runtime.invoke_now("f", kind=PuKind.DPU)
    # The pooled warm instance died with the crash; the request must not
    # be served by its corpse.
    assert again.cold or again.pu_name != "dpu0"
    assert len(runtime.dead_letters) == 0


def _sleep(runtime, seconds):
    def sleeper():
        yield runtime.sim.timeout(seconds)
    return sleeper()
