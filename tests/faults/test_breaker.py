"""Circuit-breaker transitions and scheduler integration.

Covers the full CLOSED -> OPEN -> HALF_OPEN -> CLOSED lifecycle, probe
exclusivity in HALF_OPEN, and the scheduler excluding unavailable PUs
from its placement candidates."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.core.reliability import BreakerState, CircuitBreaker


@pytest.fixture
def breaker():
    return CircuitBreaker(failure_threshold=3, open_s=10.0)


def test_closed_trips_open_at_threshold(breaker):
    breaker.record_failure(now=1.0)
    breaker.record_failure(now=2.0)
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(now=3.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_at == 3.0


def test_success_resets_consecutive_count(breaker):
    breaker.record_failure(now=1.0)
    breaker.record_failure(now=2.0)
    breaker.record_success(now=3.0)
    breaker.record_failure(now=4.0)
    breaker.record_failure(now=5.0)
    assert breaker.state is BreakerState.CLOSED


def test_open_blocks_until_cooldown_then_half_open(breaker):
    for t in (1.0, 2.0, 3.0):
        breaker.record_failure(now=t)
    assert not breaker.allows(now=5.0)
    assert breaker.state is BreakerState.OPEN
    # Cool-down elapsed: the availability check itself moves to HALF_OPEN.
    assert breaker.allows(now=13.0)
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_admits_exactly_one_probe(breaker):
    for t in (1.0, 2.0, 3.0):
        breaker.record_failure(now=t)
    assert breaker.allows(now=13.0)
    breaker.begin_attempt(now=13.0)
    # Probe in flight: a second attempt is rejected.
    assert not breaker.allows(now=13.5)


def test_probe_success_closes(breaker):
    for t in (1.0, 2.0, 3.0):
        breaker.record_failure(now=t)
    breaker.allows(now=13.0)
    breaker.begin_attempt(now=13.0)
    breaker.record_success(now=14.0)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allows(now=14.0)
    # The whole journey is on the transition log.
    assert [s for _, s in breaker.transitions] == [
        BreakerState.OPEN, BreakerState.HALF_OPEN, BreakerState.CLOSED,
    ]


def test_probe_failure_reopens_for_a_fresh_cooldown(breaker):
    for t in (1.0, 2.0, 3.0):
        breaker.record_failure(now=t)
    breaker.allows(now=13.0)
    breaker.begin_attempt(now=13.0)
    breaker.record_failure(now=14.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_at == 14.0
    assert not breaker.allows(now=20.0)   # 6s into the new 10s cool-down
    assert breaker.allows(now=24.0)       # ... which then expires again


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(open_s=0.0)


# -- health registry + scheduler ----------------------------------------------------


def _dpu_fn():
    return FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    )


@pytest.fixture
def molecule():
    runtime = MoleculeRuntime.create(num_dpus=2)
    runtime.deploy_now(_dpu_fn())
    return runtime


def _dpu(molecule, name):
    [pu] = [p for p in molecule.machine.pus.values() if p.name == name]
    return pu


def test_scheduler_excludes_crashed_pus(molecule):
    fn = molecule.registry.get("f")
    before = [pu.name for pu in molecule.scheduler.candidates(fn, kind=PuKind.DPU)]
    assert "dpu0" in before
    molecule.health.mark_down(_dpu(molecule, "dpu0"))
    after = [pu.name for pu in molecule.scheduler.candidates(fn, kind=PuKind.DPU)]
    assert "dpu0" not in after
    assert "dpu1" in after


def test_scheduler_excludes_open_breaker_pus(molecule):
    fn = molecule.registry.get("f")
    dpu0 = _dpu(molecule, "dpu0")
    for _ in range(molecule.health.failure_threshold):
        molecule.health.record_failure(dpu0)
    names = [pu.name for pu in molecule.scheduler.candidates(fn, kind=PuKind.DPU)]
    assert "dpu0" not in names


def test_mark_up_restores_candidacy_and_bumps_epoch(molecule):
    fn = molecule.registry.get("f")
    dpu0 = _dpu(molecule, "dpu0")
    epoch_before = molecule.health.epoch(dpu0)
    molecule.health.mark_down(dpu0)
    assert molecule.health.epoch(dpu0) == epoch_before + 1
    assert molecule.health.is_down(dpu0)
    molecule.health.mark_up(dpu0)
    assert not molecule.health.is_down(dpu0)
    # Epoch survives the reboot: in-flight attempts still see the crash.
    assert molecule.health.epoch(dpu0) == epoch_before + 1
    names = [pu.name for pu in molecule.scheduler.candidates(fn, kind=PuKind.DPU)]
    assert "dpu0" in names


def test_breaker_transitions_feed_obs_counter(molecule):
    dpu0 = _dpu(molecule, "dpu0")
    for _ in range(molecule.health.failure_threshold):
        molecule.health.record_failure(dpu0)
    counter = molecule.obs.registry.get("repro_breaker_transitions_total")
    by_state = {
        labels["to_state"]: child.value for labels, child in counter.series()
    }
    assert by_state.get("open") == 1
