"""Failure-injection tests: dead instances must never serve requests."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)


def fn(name="f"):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, memory_mb=60),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU,),
    )


@pytest.fixture
def runtime():
    molecule = MoleculeRuntime.create(num_dpus=0)
    molecule.deploy_now(fn())
    return molecule


def _kill_warm_instance(runtime):
    """Simulate a crash of the pooled warm instance's process."""
    pool = runtime.invoker.pools[0]
    instance = pool.idle_instances()[0]
    instance.sandbox.backend.process.exit()
    return instance


def test_crashed_warm_instance_triggers_cold_start(runtime):
    runtime.invoke_now("f")  # leaves one warm instance
    _kill_warm_instance(runtime)
    result = runtime.invoke_now("f")
    assert result.cold  # the dead instance was reaped, not reused


def test_crashed_instance_is_reaped_and_memory_freed(runtime):
    runtime.invoke_now("f")
    cpu = runtime.machine.host_cpu
    used_before = cpu.dram_used_mb
    _kill_warm_instance(runtime)
    runtime.invoke_now("f")
    runtime.sim.run()  # let the async destroy finish
    # One live warm instance remains reserved; the dead one was released.
    assert cpu.dram_used_mb == used_before


def test_healthy_instances_unaffected_by_one_crash(runtime):
    # Two warm instances; kill one; the other still serves warm.
    runtime.run(_concurrent_pair(runtime))
    pool = runtime.invoker.pools[0]
    assert len(pool) == 2
    _kill_warm_instance(runtime)
    result = runtime.invoke_now("f")
    assert not result.cold  # second instance survived


def _concurrent_pair(runtime):
    def both(sim):
        a = sim.spawn(runtime.invoke("f"))
        b = sim.spawn(runtime.invoke("f"))
        yield sim.all_of([a, b])

    return both(runtime.sim)


def test_eviction_destroys_sandbox_and_releases_memory():
    molecule = MoleculeRuntime.create(num_dpus=0, warm_pool_capacity=1)
    molecule.deploy_now(fn("a"))
    molecule.deploy_now(fn("b"))
    molecule.invoke_now("a")
    molecule.invoke_now("b")  # evicts a's instance (capacity 1)
    molecule.sim.run()
    cpu = molecule.machine.host_cpu
    assert cpu.dram_used_mb == pytest.approx(60.0)  # only b's instance
    pool = molecule.invoker.pools[0]
    assert len(pool) == 1


def test_force_cold_storm_respects_admission():
    from repro.errors import RetriesExhaustedError

    molecule = MoleculeRuntime.create(num_dpus=0)
    tiny_machine_fn = FunctionDef(
        name="big",
        code=FunctionCode("big", language=Language.PYTHON, memory_mb=25000.0),
        work=WorkProfile(warm_exec_ms=1.0),
        profiles=(PuKind.CPU,),
    )
    molecule.deploy_now(tiny_machine_fn)
    molecule.invoke_now("big", force_cold=True)
    molecule.invoke_now("big", force_cold=True)
    # Out of DRAM: each attempt fails scheduling, the retry layer
    # exhausts its budget, and the request is dead-lettered.
    with pytest.raises(RetriesExhaustedError):
        molecule.invoke_now("big", force_cold=True)
    assert len(molecule.dead_letters) == 1
    assert molecule.dead_letters.entries()[0].reason == "retries_exhausted"
