"""Graceful degradation: accelerator functions fall back to CPU when
their accelerator is down, and nothing is ever lost.

This is the PR's end-to-end acceptance scenario: kill the only FPGA
mid-workload and verify zero lost requests with the breaker and
degradation counters visible in the metrics snapshot."""

import pytest

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.faults import run_scenario
from repro.faults.injector import FaultInjector
from repro.hardware import FabricResources, KernelSpec


def _fpga_runtime(**kwargs):
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=1, num_gpus=0)
    runtime = MoleculeRuntime(sim, machine, **kwargs)
    runtime.start()
    fn = FunctionDef(
        name="vadd",
        code=FunctionCode(
            "vadd",
            language=Language.PYTHON,
            kernel=KernelSpec("vadd", FabricResources(luts=4000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA, PuKind.CPU),
    )
    runtime.deploy_now(fn)
    return runtime


def _fpga0(runtime):
    [pu] = [p for p in runtime.machine.pus.values() if p.name == "fpga0"]
    return pu


def test_fpga_down_degrades_to_cpu_profile():
    runtime = _fpga_runtime(seed=3)
    healthy = runtime.invoke_now("vadd", payload_bytes=4096)
    assert healthy.pu_kind is PuKind.FPGA
    assert not healthy.degraded
    runtime.health.mark_down(_fpga0(runtime))
    fallback = runtime.invoke_now("vadd", payload_bytes=4096)
    assert fallback.pu_kind is PuKind.CPU
    assert fallback.degraded
    counter = runtime.obs.registry.get("repro_degraded_total")
    assert counter.total() == 1


def test_degradation_requires_a_fallback_profile():
    from repro.errors import RetriesExhaustedError

    runtime = _fpga_runtime(seed=3)
    fpga_only = FunctionDef(
        name="rigid",
        code=FunctionCode(
            "rigid",
            kernel=KernelSpec("rigid", FabricResources(luts=4000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA,),
    )
    runtime.deploy_now(fpga_only)
    runtime.health.mark_down(_fpga0(runtime))
    # No general-purpose profile to fall back onto: retries exhaust and
    # the request is dead-lettered instead of silently vanishing.
    with pytest.raises(RetriesExhaustedError):
        runtime.invoke_now("rigid", payload_bytes=4096)
    assert len(runtime.dead_letters) == 1


def test_bitstream_failure_is_retried_transparently():
    runtime = _fpga_runtime(seed=3)
    injector = FaultInjector(
        runtime,
        FaultPlan.of(
            FaultSpec(FaultKind.BITSTREAM_FAIL, "fpga0", after_requests=1)
        ),
    )
    runtime.injector = injector
    injector.arm()
    result = runtime.invoke_now("vadd", payload_bytes=4096)
    # First attempt hit the corrupted bitstream; the retry reprogrammed
    # the fabric and completed on the FPGA (one failure does not trip
    # the breaker).
    assert result.attempts == 2
    assert result.retried
    assert "bitstream" in result.error
    assert result.pu_kind is PuKind.FPGA
    assert not result.degraded


def test_fpga_killed_mid_workload_loses_nothing():
    summary = run_scenario("fpga-degrade", seed=5)
    assert summary["lost"] == 0
    assert summary["answered"] == summary["submitted"]
    assert summary["degraded_requests"] > 0
    assert summary["breaker_states"].get("fpga0") == "down"
    # The counters back the story in the snapshot itself.
    metrics = summary["snapshot"]["metrics"]
    degraded_total = sum(
        s["value"] for s in metrics["repro_degraded_total"]["series"]
    )
    assert degraded_total == summary["degraded_requests"]
    fault_total = sum(
        s["value"] for s in metrics["repro_faults_injected_total"]["series"]
    )
    assert fault_total >= 1
