"""FaultPlan / FaultSpec validation and JSON round-tripping."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import FaultKind, FaultPlan, FaultSpec


def test_spec_requires_exactly_one_trigger():
    with pytest.raises(FaultPlanError):
        FaultSpec(FaultKind.PU_CRASH, "dpu0")
    with pytest.raises(FaultPlanError):
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=1.0, after_requests=3)
    # Either trigger alone is fine.
    FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=1.0)
    FaultSpec(FaultKind.PU_CRASH, "dpu0", after_requests=3)


@pytest.mark.parametrize("kwargs", [
    {"at_s": -1.0},
    {"after_requests": 0},
    {"at_s": 0.0, "probability": 1.5},
    {"at_s": 0.0, "probability": -0.1},
    {"at_s": 0.0, "delay_s": -1.0},
    {"at_s": 0.0, "duration_s": 0.0},
    {"at_s": 0.0, "latency_factor": 0.5},
    {"at_s": 0.0, "bandwidth_factor": 0.9},
    {"at_s": 0.0, "count": 0},
])
def test_spec_rejects_bad_parameters(kwargs):
    with pytest.raises(FaultPlanError):
        FaultSpec(FaultKind.FIFO_DELAY, "cmd-dpu0", **kwargs)


def test_spec_rejects_empty_target():
    with pytest.raises(FaultPlanError):
        FaultSpec(FaultKind.PU_CRASH, "", at_s=0.0)


def test_plan_json_round_trip():
    plan = FaultPlan.of(
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=0.5, reboot_after_s=2.0),
        FaultSpec(FaultKind.FIFO_DROP, "*", after_requests=3, probability=0.25),
        FaultSpec(
            FaultKind.LINK_DEGRADE, "cpu0<->dpu0", at_s=1.0,
            latency_factor=4.0, bandwidth_factor=2.0, duration_s=5.0,
        ),
        FaultSpec(FaultKind.BITSTREAM_FAIL, "fpga0", after_requests=1, count=2),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_dict_omits_defaults():
    spec = FaultSpec(FaultKind.SANDBOX_KILL, "etl-1", at_s=0.25)
    assert spec.to_dict() == {
        "kind": "sandbox_kill", "target": "etl-1", "at_s": 0.25,
    }


def test_plan_from_dict_rejects_garbage():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"nope": []})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": "not-a-list"})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [{"kind": "warp_core_breach",
                                         "target": "x", "at_s": 0.0}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [{"kind": "pu_crash", "target": "x",
                                         "at_s": 0.0, "bogus_field": 1}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_json("{not json")


def test_plan_iteration_and_length():
    specs = (
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=0.0),
        FaultSpec(FaultKind.PU_CRASH, "dpu1", at_s=1.0),
    )
    plan = FaultPlan.of(*specs)
    assert len(plan) == 2
    assert tuple(plan) == specs
