"""Property-based reliability invariants.

The load-bearing one: **no request is ever both answered and
dead-lettered** — and none is neither.  Every admitted request has
exactly one fate, under arbitrary workloads and crash timings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import ReproError
from repro.faults.injector import FaultInjector

# A small workload: each entry is (start_delay_ticks, force_cold).
_JOBS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=8), st.booleans()),
    min_size=1,
    max_size=8,
)

# Crash timing in 10ms ticks after workload start, and an optional
# reboot delay (None = the DPU stays dead).
_CRASH = st.tuples(
    st.integers(min_value=0, max_value=10),
    st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
)


def _fn():
    return FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON, import_ms=30.0),
        work=WorkProfile(warm_exec_ms=8.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    )


def _run(jobs, crash, seed):
    runtime = MoleculeRuntime.create(
        num_dpus=2, seed=seed, default_deadline_s=5.0
    )
    runtime.deploy_now(_fn())
    crash_tick, reboot_ticks = crash
    injector = FaultInjector(
        runtime,
        FaultPlan.of(
            FaultSpec(
                FaultKind.PU_CRASH,
                "dpu0",
                at_s=runtime.sim.now + crash_tick * 0.01,
                reboot_after_s=(
                    None if reboot_ticks is None else reboot_ticks * 0.01
                ),
            )
        ),
    )
    runtime.injector = injector
    injector.arm()

    answered = []
    failed = []

    def submitter(delay_ticks, force_cold):
        if delay_ticks:
            yield runtime.sim.timeout(delay_ticks * 0.01)
        try:
            result = yield from runtime.invoke(
                "f", kind=PuKind.DPU, force_cold=force_cold
            )
        except ReproError as exc:
            failed.append(type(exc).__name__)
        else:
            answered.append(result)

    for index, (delay, cold) in enumerate(jobs):
        runtime.sim.spawn(submitter(delay, cold), name=f"job-{index}")
    runtime.sim.run()
    return runtime, answered, failed


@settings(max_examples=15, deadline=None)
@given(jobs=_JOBS, crash=_CRASH, seed=st.integers(min_value=0, max_value=2**16))
def test_no_request_is_both_answered_and_dead_lettered(jobs, crash, seed):
    runtime, answered, failed = _run(jobs, crash, seed)
    answered_ids = {r.request_id for r in answered}
    dead_ids = runtime.dead_letters.request_ids()
    # Exactly-one-fate: the sets are disjoint...
    assert answered_ids.isdisjoint(dead_ids)
    # ... and together they cover every submitted request.
    assert len(answered_ids) + len(dead_ids) == len(jobs)
    assert len(answered) == len(answered_ids)  # no double answers either
    # Every terminal error the caller saw has a matching dead letter.
    assert len(failed) == len(dead_ids)


@settings(max_examples=10, deadline=None)
@given(jobs=_JOBS, crash=_CRASH, seed=st.integers(min_value=0, max_value=2**16))
def test_admission_accounting_is_conserved(jobs, crash, seed):
    runtime, answered, _failed = _run(jobs, crash, seed)
    snapshot = runtime.metrics_snapshot()
    answered_total = sum(
        s["value"]
        for s in snapshot["metrics"]["repro_requests_total"]["series"]
    )
    assert snapshot["requests_admitted"] == len(jobs)
    assert answered_total == len(answered)
    assert snapshot["dead_letters"] == len(runtime.dead_letters)
