"""FaultInjector triggers, target validation, and determinism.

The acceptance bar: the same (seed, plan) pair must replay the exact
same fault history and produce a byte-identical metrics snapshot."""

import json

import pytest

from repro import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import FaultPlanError
from repro.faults import run_scenario, scenario_names
from repro.faults.injector import FaultInjector


def _fn(profiles=(PuKind.CPU,)):
    return FunctionDef(
        name="f",
        code=FunctionCode("f", language=Language.PYTHON),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=profiles,
    )


def _pu(runtime, name):
    [pu] = [p for p in runtime.machine.pus.values() if p.name == name]
    return pu


def _install(runtime, *specs):
    """Arm a plan on an already-booted runtime (tests only)."""
    injector = FaultInjector(runtime, FaultPlan.of(*specs))
    runtime.injector = injector
    injector.arm()
    return injector


def test_at_s_trigger_fires_at_that_sim_time():
    runtime = MoleculeRuntime.create(num_dpus=1)
    fire_at = runtime.sim.now + 0.25
    injector = _install(
        runtime, FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=fire_at)
    )
    assert injector.fired == []
    runtime.sim.run()
    [(at, spec)] = injector.fired
    assert at == pytest.approx(fire_at)
    assert runtime.health.is_down(_pu(runtime, "dpu0"))


def test_past_at_s_fires_immediately_on_arm():
    runtime = MoleculeRuntime.create(num_dpus=1)
    injector = _install(
        runtime, FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=0.0)
    )
    runtime.sim.run()
    assert len(injector.fired) == 1


def test_after_requests_trigger_fires_on_nth_admission():
    runtime = MoleculeRuntime.create(num_dpus=1)
    runtime.deploy_now(_fn())
    injector = _install(
        runtime, FaultSpec(FaultKind.PU_CRASH, "dpu0", after_requests=2)
    )
    runtime.invoke_now("f")
    assert injector.fired == []
    runtime.invoke_now("f")
    assert len(injector.fired) == 1
    assert runtime.health.is_down(_pu(runtime, "dpu0"))


def test_unknown_pu_target_fails_at_construction():
    runtime = MoleculeRuntime.create(num_dpus=1)
    with pytest.raises(FaultPlanError):
        FaultInjector(
            runtime,
            FaultPlan.of(FaultSpec(FaultKind.PU_CRASH, "tpu9", at_s=0.0)),
        )


def test_malformed_link_target_fails_at_construction():
    runtime = MoleculeRuntime.create(num_dpus=1)
    with pytest.raises(FaultPlanError):
        FaultInjector(
            runtime,
            FaultPlan.of(
                FaultSpec(FaultKind.LINK_DEGRADE, "cpu0->dpu0", at_s=0.0)
            ),
        )


def test_crash_with_reboot_restores_the_pu():
    runtime = MoleculeRuntime.create(num_dpus=1)
    fire_at = runtime.sim.now + 0.1
    _install(
        runtime,
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=fire_at, reboot_after_s=0.5),
    )
    runtime.sim.run()
    dpu0 = _pu(runtime, "dpu0")
    assert not runtime.health.is_down(dpu0)
    assert runtime.health.epoch(dpu0) == 1
    assert runtime.sim.now >= fire_at + 0.5


def test_link_degrade_slows_transfers_and_restores():
    runtime = MoleculeRuntime.create(num_dpus=1)
    interconnect = runtime.machine.interconnect
    cpu0, dpu0 = _pu(runtime, "cpu0"), _pu(runtime, "dpu0")

    def wire_time():
        route = interconnect.route(cpu0.pu_id, dpu0.pu_id)
        return route.transfer_time(64 * 1024)

    baseline = wire_time()
    fire_at = runtime.sim.now + 0.01
    _install(
        runtime,
        FaultSpec(
            FaultKind.LINK_DEGRADE, "cpu0<->dpu0", at_s=fire_at,
            latency_factor=10.0, bandwidth_factor=10.0, duration_s=1.0,
        ),
    )
    runtime.sim.run()  # fires the fault, then the restore timer
    assert runtime.injector.fired
    # After the duration window the link is back to nominal cost.
    assert wire_time() == pytest.approx(baseline)
    # Re-degrade without a duration and measure the slowed link directly.
    interconnect.degrade(
        cpu0.pu_id, dpu0.pu_id, latency_factor=10.0, bandwidth_factor=10.0
    )
    assert wire_time() > baseline * 5
    interconnect.restore(cpu0.pu_id, dpu0.pu_id)
    assert wire_time() == pytest.approx(baseline)


def test_fired_faults_are_counted_in_obs():
    runtime = MoleculeRuntime.create(num_dpus=1)
    _install(
        runtime,
        FaultSpec(FaultKind.PU_CRASH, "dpu0", at_s=runtime.sim.now + 0.1),
    )
    runtime.sim.run()
    counter = runtime.obs.registry.get("repro_faults_injected_total")
    by_kind = {labels["kind"]: c.value for labels, c in counter.series()}
    assert by_kind == {"pu_crash": 1}


# -- canned scenarios ---------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_every_scenario_loses_nothing(name):
    summary = run_scenario(name, seed=11)
    assert summary["lost"] == 0
    assert summary["answered"] + summary["dead_lettered"] == summary["submitted"]
    assert summary["faults_injected"], "scenario fired no faults"


def test_same_seed_replays_byte_identical_snapshot():
    first = run_scenario("dpu-crash", seed=1234)
    second = run_scenario("dpu-crash", seed=1234)
    assert json.dumps(first["snapshot"], sort_keys=True) == json.dumps(
        second["snapshot"], sort_keys=True
    )
    assert first["faults_injected"] == second["faults_injected"]


def test_different_seed_changes_the_run():
    first = run_scenario("flaky-nipc", seed=1)
    second = run_scenario("flaky-nipc", seed=2)
    assert json.dumps(first["snapshot"], sort_keys=True) != json.dumps(
        second["snapshot"], sort_keys=True
    )
