"""Integration tests: a full MoleculeRuntime invocation produces a
complete, properly nested span tree, and cold/fork/warm starts land in
the right ``start_kind`` label."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.hardware import FabricResources, KernelSpec
from repro.obs.spans import LIFECYCLE_PHASES


def _python_fn(name="hello", import_ms=120.0, profiles=(PuKind.CPU, PuKind.DPU)):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, import_ms=import_ms),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=profiles,
    )


@pytest.fixture
def molecule():
    return MoleculeRuntime.create(num_dpus=1)


def _last_trace(runtime):
    return runtime.obs.completed_traces()[-1]


def test_span_tree_is_complete_and_nested(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.CPU)
    trace = _last_trace(molecule)
    root = trace.root
    assert root.name == "request"
    assert not root.open
    # Cold path: every lifecycle phase appears, in order.
    assert [c.name for c in root.children] == list(LIFECYCLE_PHASES)
    for child in root.children:
        assert not child.open
        assert root.begin_s <= child.begin_s <= child.end_s <= root.end_s
    assert sum(trace.phases().values()) <= root.duration_s + 1e-9


def test_warm_start_skips_sandbox_start_phase(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.CPU)
    molecule.invoke_now("hello", kind=PuKind.CPU)
    trace = _last_trace(molecule)
    assert trace.root.attributes["start_kind"] == "warm"
    assert [c.name for c in trace.root.children] == [
        "admit", "schedule", "exec", "respond",
    ]


def test_fork_vs_baseline_cold_start_kinds(molecule):
    molecule.deploy_now(_python_fn())  # boots cfork templates
    molecule.invoke_now("hello", kind=PuKind.CPU)
    assert _last_trace(molecule).root.attributes["start_kind"] == "fork"
    # Registered without deploy: no template exists, so the sandbox
    # boots the baseline cold path.
    molecule.registry.register(_python_fn(name="bare", profiles=(PuKind.CPU,)))
    molecule.invoke_now("bare")
    trace = _last_trace(molecule)
    assert trace.root.attributes["start_kind"] == "cold"
    [sandbox_start] = [c for c in trace.root.children if c.name == "sandbox_start"]
    assert sandbox_start.attributes["forked"] is False


def test_remote_invocation_records_nipc_span(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.DPU)
    trace = _last_trace(molecule)
    assert trace.root.attributes["pu_kind"] == "dpu"
    [sandbox_start] = [c for c in trace.root.children if c.name == "sandbox_start"]
    # The cfork command travels over the executor's XPU-FIFO channel.
    [nipc] = [c for c in sandbox_start.children if c.name == "nipc"]
    assert nipc.attributes["transport"] == "xpu-fifo"
    assert nipc.duration_s > 0


def test_fpga_invocation_records_dma_spans():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=1, num_gpus=0)
    molecule = MoleculeRuntime(sim, machine)
    molecule.start()
    fn = FunctionDef(
        name="fpga-k",
        code=FunctionCode(
            "fpga-k",
            kernel=KernelSpec("fpga-k", FabricResources(luts=4000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA,),
    )
    molecule.deploy_now(fn)
    molecule.invoke_now("fpga-k", payload_bytes=4096)
    trace = _last_trace(molecule)
    assert trace.root.attributes["pu_kind"] == "fpga"
    assert trace.root.attributes["start_kind"] == "cold"
    [exec_span] = [c for c in trace.root.children if c.name == "exec"]
    dma = [c for c in exec_span.children if c.name == "nipc"]
    assert len(dma) == 2  # payload in + result out
    assert all(s.attributes["transport"] == "dma" for s in dma)
    assert {s.attributes["direction"] for s in dma} == {"in", "out"}


def test_start_kind_counters_match_invocations(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.CPU)  # fork
    molecule.invoke_now("hello", kind=PuKind.CPU)  # warm
    molecule.registry.register(_python_fn(name="bare", profiles=(PuKind.CPU,)))
    molecule.invoke_now("bare")                    # baseline cold
    starts = molecule.obs.registry.get("repro_starts_total")
    by_kind = {
        labels["start_kind"]: child.value for labels, child in starts.series()
    }
    assert by_kind == {"cold": 1, "fork": 1, "warm": 1}


def test_metrics_snapshot_and_exposition_surface_everything(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.CPU)
    molecule.invoke_now("hello", kind=PuKind.CPU)
    snapshot = molecule.metrics_snapshot()
    assert snapshot["requests_admitted"] == 2
    metrics = snapshot["metrics"]
    phase_series = metrics["repro_phase_seconds"]["series"]
    phases_seen = {s["labels"]["phase"] for s in phase_series}
    assert phases_seen >= {"admit", "schedule", "exec", "respond"}
    assert all(s["count"] >= 1 for s in phase_series)
    # Gauges were refreshed at snapshot time: one warm instance pooled.
    pool_series = metrics["repro_warm_pool_size"]["series"]
    assert sum(s["value"] for s in pool_series) == 1
    text = molecule.metrics_exposition()
    assert "# TYPE repro_request_seconds histogram" in text
    assert 'repro_starts_total{start_kind="fork"} 1' in text
    assert 'repro_starts_total{start_kind="warm"} 1' in text
    assert text.endswith("\n")


def test_kernel_metrics_are_opt_in_and_match_profile(molecule):
    molecule.deploy_now(_python_fn())
    molecule.invoke_now("hello", kind=PuKind.CPU)
    # The default snapshot registers no kernel families: golden runs
    # keep a byte-identical metric catalog.
    plain = molecule.metrics_snapshot()
    assert not any(k.startswith("repro_kernel_") for k in plain["metrics"])

    snapshot = molecule.metrics_snapshot(include_kernel=True)
    metrics = snapshot["metrics"]
    profile = molecule.sim.kernel_profile()
    [events] = metrics["repro_kernel_events_processed"]["series"]
    assert events["value"] == profile["events_processed"]
    [batches] = metrics["repro_kernel_batches_drained"]["series"]
    assert batches["value"] == profile["batches_drained"]
    dispatched = {
        s["labels"]["kind"]: s["value"]
        for s in metrics["repro_kernel_dispatched"]["series"]
    }
    assert dispatched == profile["dispatched_by_kind"]
    slab = {
        s["labels"]["kind"]: s["value"]
        for s in metrics["repro_kernel_slab_hit_rate"]["series"]
    }
    assert slab == {
        kind: entry["hit_rate"] for kind, entry in profile["slab"].items()
    }

    # A second publish reuses the bound children and tracks the kernel.
    molecule.invoke_now("hello", kind=PuKind.CPU)
    again = molecule.metrics_snapshot(include_kernel=True)["metrics"]
    [events2] = again["repro_kernel_events_processed"]["series"]
    assert events2["value"] == molecule.sim.kernel_profile()["events_processed"]
    assert events2["value"] > events["value"]


def test_failed_invocation_counts_failure_not_latency(molecule):
    # A function too big for any PU's DRAM fails admission control
    # AFTER the trace opened: the trace unwinds and only the failure
    # counter moves.
    hog = FunctionDef(
        name="hog",
        code=FunctionCode("hog", language=Language.PYTHON, memory_mb=10**9),
        work=WorkProfile(warm_exec_ms=1.0),
        profiles=(PuKind.CPU,),
    )
    molecule.registry.register(hog)
    with pytest.raises(Exception):
        molecule.invoke_now("hog")
    failures = molecule.obs.registry.get("repro_invocation_failures_total")
    [(labels, child)] = failures.series()
    assert labels["function"] == "hog"
    # Scheduling fails every attempt; the retry layer surfaces the
    # terminal RetriesExhaustedError after its budget runs out.
    assert labels["error"] == "RetriesExhaustedError"
    assert child.value == 1
    retries = molecule.obs.registry.get("repro_retries_total")
    assert retries.total() == 2  # 3 attempts = 2 retries
    requests = molecule.obs.registry.get("repro_requests_total")
    assert requests.total() == 0
    assert molecule.obs.completed_traces() == []
