"""Unit tests for the metrics primitives: counter/gauge/histogram
semantics, label-schema enforcement, cardinality caps and quantile
edge cases."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
)


# -- Counter ------------------------------------------------------------------


def test_counter_accumulates():
    c = Counter()
    assert c.value == 0.0
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_rejects_negative_increment():
    c = Counter()
    with pytest.raises(ObsError):
        c.inc(-1.0)
    assert c.value == 0.0


def test_counter_allows_zero_increment():
    c = Counter()
    c.inc(0.0)
    assert c.value == 0.0


# -- Gauge --------------------------------------------------------------------


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(10.0)
    g.inc(5.0)
    g.dec(3.0)
    assert g.value == 12.0
    g.inc(-20.0)  # gauges may go negative
    assert g.value == -8.0


# -- Histogram ----------------------------------------------------------------


def test_histogram_buckets_are_cumulative():
    h = Histogram(buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.bucket_counts() == [
        (1.0, 1), (2.0, 3), (4.0, 4), (math.inf, 5),
    ]
    assert h.count == 5
    assert h.sum == pytest.approx(106.5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ObsError):
        Histogram(buckets=(2.0, 1.0))
    with pytest.raises(ObsError):
        Histogram(buckets=(1.0, 1.0))
    with pytest.raises(ObsError):
        Histogram(buckets=())


def test_histogram_explicit_inf_bucket_is_deduped():
    h = Histogram(buckets=(1.0, math.inf))
    assert h.bounds == (1.0, math.inf)


def test_histogram_quantiles_interpolate():
    h = Histogram(buckets=(10.0, 20.0))
    for _ in range(10):
        h.observe(15.0)  # all land in the (10, 20] bucket
    # Interpolation is linear within the bucket: q of 0.5 crosses at
    # half the bucket's span from its lower bound.
    assert h.quantile(0.5) == pytest.approx(15.0)
    assert h.quantile(1.0) == pytest.approx(20.0)


def test_histogram_quantile_edges():
    h = Histogram(buckets=(10.0,))
    assert math.isnan(h.quantile(0.5))  # empty histogram
    h.observe(5.0)
    assert h.quantile(0.0) == pytest.approx(0.0)
    assert h.quantile(1.0) == pytest.approx(10.0)
    with pytest.raises(ObsError):
        h.quantile(-0.1)
    with pytest.raises(ObsError):
        h.quantile(1.1)


def test_histogram_quantile_clamps_inf_bucket():
    h = Histogram(buckets=(1.0,))
    h.observe(50.0)  # lands in +Inf
    # The +Inf bucket has no upper bound; the estimate is clamped to
    # the last finite boundary.
    assert h.quantile(0.99) == pytest.approx(1.0)


def test_histogram_p50_p95_p99_properties():
    h = Histogram(buckets=DEFAULT_BUCKETS)
    for i in range(100):
        h.observe(0.001 * (i + 1))  # 1ms .. 100ms
    assert 0.04 <= h.p50 <= 0.06
    assert 0.08 <= h.p95 <= 0.1
    assert 0.09 <= h.p99 <= 0.1


# -- MetricFamily labels ------------------------------------------------------


def test_family_requires_exact_label_set():
    r = MetricsRegistry()
    fam = r.counter("x_total", "help.", ("a", "b"))
    fam.labels(a="1", b="2").inc()
    with pytest.raises(ObsError):
        fam.labels(a="1")  # missing b
    with pytest.raises(ObsError):
        fam.labels(a="1", b="2", c="3")  # unexpected c


def test_family_children_are_distinct_series():
    r = MetricsRegistry()
    fam = r.counter("x_total", "help.", ("a",))
    fam.labels(a="1").inc(3)
    fam.labels(a="2").inc(4)
    assert fam.labels(a="1").value == 3
    assert fam.labels(a="2").value == 4
    assert fam.total() == 7


def test_family_labelless_delegation():
    r = MetricsRegistry()
    c = r.counter("plain_total", "help.")
    c.inc(2)
    assert c.value == 2
    g = r.gauge("g", "help.")
    g.set(7)
    assert g.value == 7
    h = r.histogram("h_seconds", "help.", buckets=(1.0,))
    h.observe(0.5)
    assert h.labels().count == 1


def test_family_labelless_delegation_rejected_with_labels():
    r = MetricsRegistry()
    fam = r.counter("x_total", "help.", ("a",))
    with pytest.raises(ObsError):
        fam.inc()


def test_family_cardinality_cap():
    r = MetricsRegistry(max_series_per_family=3)
    fam = r.counter("x_total", "help.", ("a",))
    for i in range(3):
        fam.labels(a=str(i)).inc()
    with pytest.raises(ObsError):
        fam.labels(a="unbounded")
    # Existing series stay reachable.
    fam.labels(a="0").inc()
    assert fam.labels(a="0").value == 2


def test_histogram_family_has_no_total():
    r = MetricsRegistry()
    fam = r.histogram("h_seconds", "help.", ("a",), buckets=(1.0,))
    fam.labels(a="1").observe(0.5)
    with pytest.raises(ObsError):
        fam.total()


# -- MetricsRegistry ----------------------------------------------------------


def test_registry_rejects_duplicate_names():
    r = MetricsRegistry()
    r.counter("x_total", "help.")
    with pytest.raises(ObsError):
        r.gauge("x_total", "help.")


def test_registry_validates_names_and_labels():
    r = MetricsRegistry()
    with pytest.raises(ObsError):
        r.counter("0bad", "help.")
    with pytest.raises(ObsError):
        r.counter("ok_total", "help.", ("0bad",))
    with pytest.raises(ObsError):
        r.histogram("h_seconds", "help.", ("le",))  # reserved


def test_registry_get_and_families():
    r = MetricsRegistry()
    a = r.counter("a_total", "help.")
    b = r.gauge("b", "help.")
    assert r.get("a_total") is a
    assert list(r.families()) == [a, b]
    with pytest.raises(ObsError):
        r.get("missing")


def test_registry_to_dict_shape():
    r = MetricsRegistry()
    fam = r.histogram("h_seconds", "help.", ("a",), buckets=(1.0, 2.0))
    fam.labels(a="x").observe(0.5)
    d = r.to_dict()
    [series] = d["h_seconds"]["series"]
    assert d["h_seconds"]["type"] == "histogram"
    assert series["labels"] == {"a": "x"}
    assert series["count"] == 1
    assert series["buckets"] == {"1": 1, "2": 1, "+Inf": 1}
    assert series["p50"] == pytest.approx(0.5)
