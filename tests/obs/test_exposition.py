"""Golden tests for the Prometheus text exposition format."""

from repro.obs.metrics import MetricsRegistry


def test_counter_and_gauge_exposition_golden():
    r = MetricsRegistry()
    c = r.counter("demo_requests_total", "Requests served.", ("code",))
    c.labels(code="200").inc(3)
    c.labels(code="500").inc()
    g = r.gauge("demo_temperature", "Current temperature.")
    g.set(36.6)
    assert r.expose() == (
        "# HELP demo_requests_total Requests served.\n"
        "# TYPE demo_requests_total counter\n"
        'demo_requests_total{code="200"} 3\n'
        'demo_requests_total{code="500"} 1\n'
        "# HELP demo_temperature Current temperature.\n"
        "# TYPE demo_temperature gauge\n"
        "demo_temperature 36.6\n"
    )


def test_histogram_exposition_golden():
    r = MetricsRegistry()
    h = r.histogram("demo_seconds", "Latency.", ("op",), buckets=(0.1, 1.0))
    h.labels(op="get").observe(0.05)
    h.labels(op="get").observe(0.5)
    h.labels(op="get").observe(5.0)
    assert r.expose() == (
        "# HELP demo_seconds Latency.\n"
        "# TYPE demo_seconds histogram\n"
        'demo_seconds_bucket{op="get",le="0.1"} 1\n'
        'demo_seconds_bucket{op="get",le="1"} 2\n'
        'demo_seconds_bucket{op="get",le="+Inf"} 3\n'
        'demo_seconds_sum{op="get"} 5.55\n'
        'demo_seconds_count{op="get"} 3\n'
    )


def test_zero_observation_histogram_still_renders_buckets():
    r = MetricsRegistry()
    h = r.histogram("empty_seconds", "Latency.", buckets=(1.0,))
    h.labels()  # materialised but never observed
    assert r.expose() == (
        "# HELP empty_seconds Latency.\n"
        "# TYPE empty_seconds histogram\n"
        'empty_seconds_bucket{le="1"} 0\n'
        'empty_seconds_bucket{le="+Inf"} 0\n'
        "empty_seconds_sum 0\n"
        "empty_seconds_count 0\n"
    )


def test_label_values_are_escaped():
    r = MetricsRegistry()
    c = r.counter("demo_total", "Escaping.", ("msg",))
    c.labels(msg='a"b\\c\nd').inc()
    assert r.expose() == (
        "# HELP demo_total Escaping.\n"
        "# TYPE demo_total counter\n"
        'demo_total{msg="a\\"b\\\\c\\nd"} 1\n'
    )


def test_series_render_in_sorted_label_order():
    r = MetricsRegistry()
    c = r.counter("demo_total", "Ordering.", ("x",))
    for value in ("b", "a", "c"):
        c.labels(x=value).inc()
    lines = [l for l in r.expose().splitlines() if not l.startswith("#")]
    assert lines == [
        'demo_total{x="a"} 1',
        'demo_total{x="b"} 1',
        'demo_total{x="c"} 1',
    ]


def test_empty_registry_exposes_empty_string():
    assert MetricsRegistry().expose() == ""
