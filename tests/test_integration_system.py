"""System-level integration tests: a full mixed deployment on a
CPU+DPU+FPGA+GPU machine serving singles, chains and accelerated
functions concurrently, with ledger / pool / utilisation accounting
checked at the end."""

import pytest

from repro import (
    Chain,
    ChainStage,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    Simulator,
    WorkProfile,
    build_full_machine,
)
from repro.hardware import FabricResources, KernelSpec
from repro.obs.spans import LIFECYCLE_PHASES
from repro.workloads import functionbench, serverlessbench


@pytest.fixture
def system():
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=2, num_fpgas=1, num_gpus=1)
    runtime = MoleculeRuntime(sim, machine)
    runtime.start()
    # FunctionBench singles on CPU/DPU.
    for function in functionbench.all_functions():
        runtime.deploy_now(function)
    # The Alexa chain.
    for function in serverlessbench.alexa_functions():
        runtime.deploy_now(function)
    # One FPGA kernel and one GPU kernel.
    fpga_fn = FunctionDef(
        name="fpga-k",
        code=FunctionCode(
            "fpga-k",
            kernel=KernelSpec("fpga-k", FabricResources(luts=4000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA,),
    )
    gpu_fn = FunctionDef(
        name="gpu-k",
        code=FunctionCode(
            "gpu-k",
            kernel=KernelSpec("gpu-k", FabricResources(), exec_time_s=2e-4),
        ),
        work=WorkProfile(warm_exec_ms=5.0, gpu_exec_ms=0.2),
        profiles=(PuKind.GPU,),
    )
    runtime.deploy_now(fpga_fn)
    runtime.deploy_now(gpu_fn)
    return runtime


def test_mixed_workload_end_to_end(system):
    # Singles on CPU and DPU.
    for name in ("image_resize", "matmul", "pyaes"):
        cpu = system.invoke_now(name, kind=PuKind.CPU)
        dpu = system.invoke_now(name, kind=PuKind.DPU)
        assert cpu.pu_kind is PuKind.CPU and dpu.pu_kind is PuKind.DPU

    # Accelerated functions.
    fpga = system.invoke_now("fpga-k")
    gpu = system.invoke_now("gpu-k")
    assert fpga.pu_kind is PuKind.FPGA and gpu.pu_kind is PuKind.GPU

    # A chain spanning CPU and both DPUs.
    chain = serverlessbench.alexa_chain()
    cpu_pu = system.machine.host_cpu
    dpu1, dpu2 = system.machine.pu(1), system.machine.pu(2)
    placements = [cpu_pu, dpu1, cpu_pu, dpu2, cpu_pu]
    system.run(system.dag.prepare(chain, placements))
    result = system.run(system.run_chain(chain, placements))
    assert result.total_s > 0
    assert len(result.edge_latencies_s) == 4

    # Accounting is consistent.
    ledger = system.ledger
    assert ledger.total().invocations == system.gateway.requests_admitted
    assert ledger.by_pu_kind(PuKind.FPGA).invocations == 1
    assert ledger.by_pu_kind(PuKind.GPU).invocations == 1


def test_concurrent_requests_share_warm_instances(system):
    def burst(sim):
        procs = [sim.spawn(system.invoke("image_resize")) for _ in range(10)]
        yield sim.all_of(procs)
        return [p.value for p in procs]

    results = system.run(burst(system.sim))
    assert len(results) == 10
    colds = [r for r in results if r.cold]
    # Concurrent arrivals fork several instances, but far fewer than 10
    # once the pool starts serving.
    assert 1 <= len(colds) <= 10
    again = system.run(burst(system.sim))
    assert not any(r.cold for r in again)  # fully warm second burst


def test_obs_records_request_breakdown(system):
    system.invoke_now("matmul", kind=PuKind.CPU)
    [trace] = [t for t in system.obs.completed_traces()
               if t.function == "matmul"]
    request = trace.root
    assert [c.name for c in request.children] == list(LIFECYCLE_PHASES)
    # deploy() boots cfork templates, so the first start is a fork.
    assert request.attributes["start_kind"] == "fork"
    assert request.attributes["pu_kind"] == "cpu"
    phases = trace.phases()
    assert sum(phases.values()) <= request.duration_s + 1e-9
    assert phases["exec"] > 0


def test_utilization_clocks_advance(system):
    system.invoke_now("linpack", kind=PuKind.CPU)
    system.invoke_now("linpack", kind=PuKind.DPU)
    assert system.machine.host_cpu.clock.busy_time > 0
    assert system.machine.pu(1).clock.busy_time > 0


def test_video_processing_dominated_by_exec(system):
    result = system.invoke_now("video_processing", kind=PuKind.CPU)
    assert result.exec_s > 30.0  # ~34s simulated
    assert result.startup_s < 0.1
    # Fig. 14a: startup optimisation is immaterial for long functions.
    assert result.exec_s / result.total_s > 0.98


def test_energy_accounting_over_mixed_load(system):
    from repro.hardware.power import EnergyMeter

    cpu_meter = EnergyMeter(system.machine.host_cpu)
    dpu_meter = EnergyMeter(system.machine.pu(1))
    for _ in range(5):
        system.invoke_now("pyaes", kind=PuKind.CPU)
        system.invoke_now("pyaes", kind=PuKind.DPU)
    # DPU spent more busy time but less marginal energy (§6.6).
    assert dpu_meter.busy_s > cpu_meter.busy_s
    assert dpu_meter.busy_energy_joules() < cpu_meter.busy_energy_joules()
