"""Calibration consistency checks: the derivations documented in
config.py must actually hold (guards against constant drift)."""

import pytest

from repro import config
from repro.hardware import specs


def test_fig11a_decomposition_identities():
    # Desktop numbers are the reference-CPU costs halved (speed=2.0).
    speed = config.SPEED_DESKTOP
    baseline = (
        config.STARTUP.container_create_ms + config.STARTUP.runtime_init_python_ms
    ) / speed
    naive = (
        config.STARTUP.container_create_ms
        + config.STARTUP.cfork_propagate_ms
        + config.STARTUP.cgroup_attach_semaphore_ms
    ) / speed
    func_container = (
        config.STARTUP.cfork_propagate_ms
        + config.STARTUP.cgroup_attach_semaphore_ms
    ) / speed
    cpuset = (
        config.STARTUP.cfork_propagate_ms + config.STARTUP.cgroup_attach_mutex_ms
    ) / speed
    assert baseline == pytest.approx(85.55)
    assert naive == pytest.approx(47.25)
    assert func_container == pytest.approx(30.05)
    assert cpuset == pytest.approx(8.40)


def test_xpucall_calibration_identity():
    # §5: base XPUcall = 4 notifies = ~100us on BF-1, ~20us on CPU.
    assert 4 * config.BF1_COSTS.ipc_notify_us == pytest.approx(100.0)
    assert 4 * config.CPU_COSTS.ipc_notify_us == pytest.approx(20.0)


def test_density_calibration_identity():
    footprint = config.MEMORY.density_instance_mb
    cpu_usable = config.CPU_DRAM_MB - config.CPU_DRAM_RESERVED_MB
    dpu_usable = config.DPU_DRAM_MB - config.DPU_DRAM_RESERVED_MB
    assert cpu_usable // footprint == 1000
    assert dpu_usable // footprint == 256


def test_fig9_commercial_anchors():
    # The published bars: Lambda > OpenWhisk > 1s startup scale.
    assert config.COMMERCIAL.lambda_startup_ms > config.COMMERCIAL.openwhisk_startup_ms > 900
    assert config.COMMERCIAL.lambda_comm_ms > config.COMMERCIAL.openwhisk_comm_ms


def test_fig14e_chain_anchors():
    from repro.workloads import serverlessbench as sb

    alexa_total = 5 * sb.ALEXA_EXEC_MS + 4 * config.BASELINE_DAG.express_hop_cpu_ms
    mapreduce_total = (
        3 * sb.MAPREDUCE_EXEC_MS + 2 * config.BASELINE_DAG.flask_hop_cpu_ms
    )
    assert alexa_total == pytest.approx(38.6, abs=1.0)
    assert mapreduce_total == pytest.approx(20.0, abs=1.0)


def test_speed_bands():
    # Fig. 14c: BF-1 4-7x slower; Fig. 14d: BF-2 close to the CPU.
    assert 1 / 7 <= config.SPEED_BF1 <= 1 / 4
    assert 0.7 <= config.SPEED_BF2 <= 1.0
    assert config.SPEED_DESKTOP > config.SPEED_XEON


def test_fpga_stage_identities():
    costs = config.FPGA_COSTS
    assert costs.erase_s + costs.load_image_s + costs.prep_sandbox_s > 20.0
    assert costs.load_image_s + costs.prep_sandbox_s == pytest.approx(3.8)
    assert costs.prep_sandbox_s == pytest.approx(1.9)
    assert costs.warm_invoke_s == pytest.approx(0.053)


def test_table4_wrapper_base_is_5pct_luts():
    assert config.WRAPPER_LUTS / config.F1_FABRIC.luts == pytest.approx(0.05, abs=0.002)


def test_baseline_python_boot_near_175ms():
    total = config.STARTUP.container_create_ms + config.STARTUP.runtime_init_python_ms
    assert 160.0 < total < 185.0  # Fig. 10a baseline band


def test_spec_catalog_consistent_with_config():
    assert specs.XEON_8160.speed == config.SPEED_XEON
    assert specs.BLUEFIELD1.speed == config.SPEED_BF1
    assert specs.BLUEFIELD2.speed == config.SPEED_BF2
    assert specs.BLUEFIELD1.costs == config.BF1_COSTS
