"""Tests for multi-threaded XPUcall handling (§5)."""

import pytest

from repro.errors import XpuError
from repro.hardware import ProcessingUnit, specs
from repro.sim import Simulator
from repro.xpu.threading import (
    QueueDiscipline,
    ShimThreadPool,
    burst_completion_time,
)


def make_pool(threads=2, discipline=QueueDiscipline.MPSC_PER_THREAD):
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "dpu", specs.BLUEFIELD1)
    return sim, ShimThreadPool(sim, pu, threads=threads, discipline=discipline)


def test_single_call_completes():
    sim, pool = make_pool()
    done = pool.submit(caller_id=0, service_s=0.001)

    def waiter(sim):
        t = yield done
        return t

    proc = sim.spawn(waiter(sim))
    sim.run()
    assert proc.value > 0.001


def test_invalid_configuration_rejected():
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "dpu", specs.BLUEFIELD1)
    with pytest.raises(XpuError):
        ShimThreadPool(sim, pu, threads=0)
    pool = ShimThreadPool(sim, pu, threads=1)
    with pytest.raises(XpuError):
        pool.submit(0, service_s=-1.0)


def test_two_threads_halve_balanced_burst():
    sim1, pool1 = make_pool(threads=1)
    t1 = burst_completion_time(sim1, pool1, calls=8, service_s=0.01)
    sim2, pool2 = make_pool(threads=2)
    t2 = burst_completion_time(sim2, pool2, calls=8, service_s=0.01)
    assert t2 == pytest.approx(t1 / 2, rel=0.1)


def test_skewed_burst_starves_static_assignment():
    # All calls from one caller land on one MPSC queue: no speedup.
    sim, pool = make_pool(threads=4)
    skewed = burst_completion_time(sim, pool, calls=8, service_s=0.01, skewed=True)
    sim2, pool2 = make_pool(threads=4)
    balanced = burst_completion_time(sim2, pool2, calls=8, service_s=0.01)
    assert skewed > 3 * balanced


def test_work_stealing_fixes_skew():
    sim, pool = make_pool(threads=4, discipline=QueueDiscipline.MPMC_WORK_STEALING)
    skewed = burst_completion_time(sim, pool, calls=8, service_s=0.01, skewed=True)
    sim2, pool2 = make_pool(threads=4)
    static_skewed = burst_completion_time(
        sim2, pool2, calls=8, service_s=0.01, skewed=True
    )
    assert skewed < static_skewed / 3


def test_load_imbalance_metric():
    sim, pool = make_pool(threads=4)
    burst_completion_time(sim, pool, calls=8, service_s=0.001, skewed=True)
    assert pool.load_imbalance == pytest.approx(4.0)  # one thread did all
    sim2, pool2 = make_pool(threads=4, discipline=QueueDiscipline.MPMC_WORK_STEALING)
    burst_completion_time(sim2, pool2, calls=8, service_s=0.001, skewed=True)
    assert pool2.load_imbalance < 3.0
