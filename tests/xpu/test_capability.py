"""Tests for the distributed capability system."""

import pytest

from repro.errors import CapabilityError, UnknownObjectError
from repro.xpu import CapGroup, CapabilityTable, ObjectId, Permission, XpuPid


def test_xpu_pid_encode_decode_roundtrip():
    pid = XpuPid(pu_id=3, local_uid=4242)
    assert XpuPid.decode(pid.encode()) == pid


def test_xpu_pid_encoding_partitions_by_pu():
    # §3.2: PU id in the high bits statically partitions the id space.
    a = XpuPid(1, 100).encode()
    b = XpuPid(2, 100).encode()
    assert a != b
    assert XpuPid.decode(a).pu_id == 1


def test_permissions_are_flags():
    rw = Permission.READ | Permission.WRITE
    assert Permission.READ & rw
    assert not (Permission.OWNER & rw)
    assert Permission.ALL & Permission.OWNER


def test_cap_group_add_and_check():
    group = CapGroup(XpuPid(0, 1))
    obj = ObjectId("fifo", "u1")
    assert not group.has(obj, Permission.READ)
    group.add(obj, Permission.READ)
    assert group.has(obj, Permission.READ)
    assert not group.has(obj, Permission.READ | Permission.WRITE)


def test_cap_group_add_is_union():
    group = CapGroup(XpuPid(0, 1))
    obj = ObjectId("fifo", "u1")
    group.add(obj, Permission.READ)
    group.add(obj, Permission.WRITE)
    assert group.has(obj, Permission.READ | Permission.WRITE)


def test_cap_group_remove_partial_and_full():
    group = CapGroup(XpuPid(0, 1))
    obj = ObjectId("fifo", "u1")
    group.add(obj, Permission.READ | Permission.WRITE)
    group.remove(obj, Permission.WRITE)
    assert group.has(obj, Permission.READ)
    group.remove(obj, Permission.READ)
    assert group.permissions_for(obj) is Permission.NONE
    assert obj not in group.capabilities()


def test_require_raises_capability_error():
    group = CapGroup(XpuPid(0, 1))
    obj = ObjectId("fifo", "u1")
    with pytest.raises(CapabilityError):
        group.require(obj, Permission.WRITE)
    group.add(obj, Permission.WRITE)
    group.require(obj, Permission.WRITE)  # no raise


def test_table_group_registration_and_lookup():
    table = CapabilityTable()
    group = CapGroup(XpuPid(0, 7))
    table.register_group(group)
    assert table.group(XpuPid(0, 7)) is group
    assert table.known_pids() == [XpuPid(0, 7)]


def test_table_duplicate_group_rejected():
    table = CapabilityTable()
    table.register_group(CapGroup(XpuPid(0, 7)))
    with pytest.raises(CapabilityError):
        table.register_group(CapGroup(XpuPid(0, 7)))


def test_table_unknown_group_raises():
    with pytest.raises(UnknownObjectError):
        CapabilityTable().group(XpuPid(9, 9))


def test_table_drop_group():
    table = CapabilityTable()
    table.register_group(CapGroup(XpuPid(0, 7)))
    table.drop_group(XpuPid(0, 7))
    with pytest.raises(UnknownObjectError):
        table.group(XpuPid(0, 7))


def test_table_object_lifecycle():
    table = CapabilityTable()
    obj_id = ObjectId("fifo", "u1")
    sentinel = object()
    table.register_object(obj_id, sentinel)
    assert table.lookup(obj_id) is sentinel
    assert table.has_object(obj_id)
    with pytest.raises(CapabilityError):
        table.register_object(obj_id, object())
    table.drop_object(obj_id)
    assert not table.has_object(obj_id)
    with pytest.raises(UnknownObjectError):
        table.lookup(obj_id)


def test_object_id_str():
    assert str(ObjectId("fifo", "abc")) == "fifo:abc"
