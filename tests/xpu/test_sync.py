"""Unit tests for the synchronisation strategies (§5)."""

import pytest

from repro import config
from repro.hardware import build_cpu_dpu_machine
from repro.sim import Simulator
from repro.xpu.sync import SyncManager


def make(num_dpus=2):
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
    return sim, SyncManager(sim, machine)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_immediate_applies_and_charges(sim_mgr=None):
    sim, sync = make()
    state = []
    run(sim, sync.immediate(0, lambda: state.append("applied")))
    assert state == ["applied"]
    assert sync.immediate_rounds == 1
    assert sim.now > 0  # a real cross-PU round was paid


def test_immediate_with_no_peers_is_free():
    sim, sync = make(num_dpus=0)
    run(sim, sync.immediate(0, lambda: None))
    assert sim.now == 0.0


def test_immediate_cost_is_max_over_peers_not_sum():
    sim1, sync1 = make(num_dpus=1)
    sim2, sync2 = make(num_dpus=2)
    # Peers are contacted in parallel: same round time for 1 and 2 DPUs
    # (identical links).
    assert sync2.immediate_sync_time(0) == pytest.approx(
        sync1.immediate_sync_time(0)
    )


def test_lazy_applies_only_on_flush():
    sim, sync = make()
    state = []
    sync.lazy(lambda: state.append("a"))
    sync.lazy(lambda: state.append("b"))
    assert state == []
    applied = sync.flush()
    assert applied == 2
    assert state == ["a", "b"]
    assert sync.lazy_flushes == 1


def test_lazy_auto_flushes_after_window():
    sim, sync = make()
    state = []
    sync.lazy(lambda: state.append("x"))
    sim.run(until=config.LAZY_SYNC_WINDOW_S * 2)
    assert state == ["x"]


def test_lazy_batches_into_one_flush():
    sim, sync = make()
    for i in range(5):
        sync.lazy(lambda i=i: None)
    sim.run(until=config.LAZY_SYNC_WINDOW_S * 2)
    assert sync.lazy_flushes == 1


def test_flush_empty_is_noop():
    sim, sync = make()
    assert sync.flush() == 0
    assert sync.lazy_flushes == 0
