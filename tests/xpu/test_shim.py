"""Integration tests for the XPU-Shim cluster: capabilities, nIPC, xSpawn."""

import pytest

from repro.errors import CapabilityError, FifoError, XpuError
from repro.xpu import FifoEnd, ObjectId, Permission
from repro.xpu.xpucall import XpucallTransport

from tests.support import build_testbed


@pytest.fixture
def bed():
    return build_testbed(num_dpus=2)


def register(bed, pu_id, name):
    return bed.cluster.register_process(pu_id, name=name)


def test_register_process_mints_global_pids(bed):
    a = register(bed, 0, "a")
    b = register(bed, 1, "b")
    assert a.xpu_pid.pu_id == 0
    assert b.xpu_pid.pu_id == 1
    assert a.xpu_pid != b.xpu_pid


def test_get_xpupid_returns_callers_pid(bed):
    group = register(bed, 0, "p")
    shim = bed.cluster.shim_on(0)
    pid = bed.run(shim.get_xpupid(group))
    assert pid == group.xpu_pid


def test_xfifo_init_grants_owner_all(bed):
    group = register(bed, 0, "creator")
    shim = bed.cluster.shim_on(0)
    handle = bed.run(shim.xfifo_init(group, "local-1", "global-1"))
    assert group.has(handle.fifo.obj_id, Permission.ALL)
    assert handle.fifo.home_pu.pu_id == 0


def test_xfifo_uuid_collision_rejected(bed):
    group = register(bed, 0, "creator")
    shim = bed.cluster.shim_on(0)
    bed.run(shim.xfifo_init(group, "l", "dup"))
    with pytest.raises(FifoError):
        bed.run(shim.xfifo_init(group, "l2", "dup"))


def test_connect_without_capability_denied(bed):
    creator = register(bed, 0, "creator")
    stranger = register(bed, 1, "stranger")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    bed.run(cpu_shim.xfifo_init(creator, "l", "guarded"))
    with pytest.raises(CapabilityError):
        bed.run(dpu_shim.xfifo_connect(stranger, "guarded"))


def test_grant_then_connect_succeeds(bed):
    creator = register(bed, 0, "creator")
    peer = register(bed, 1, "peer")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    handle = bed.run(cpu_shim.xfifo_init(creator, "l", "chan"))
    bed.run(
        cpu_shim.grant_cap(creator, peer.xpu_pid, handle.fifo.obj_id, Permission.WRITE)
    )
    peer_handle = bed.run(dpu_shim.xfifo_connect(peer, "chan", FifoEnd.WRITE))
    assert not peer_handle.is_local


def test_grant_requires_owner(bed):
    creator = register(bed, 0, "creator")
    peer = register(bed, 1, "peer")
    other = register(bed, 1, "other")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    handle = bed.run(cpu_shim.xfifo_init(creator, "l", "chan"))
    bed.run(
        cpu_shim.grant_cap(creator, peer.xpu_pid, handle.fifo.obj_id, Permission.WRITE)
    )
    # peer has WRITE but not OWNER: cannot grant onwards.
    with pytest.raises(CapabilityError):
        bed.run(
            dpu_shim.grant_cap(peer, other.xpu_pid, handle.fifo.obj_id, Permission.WRITE)
        )


def test_revoke_cap_blocks_future_connect(bed):
    creator = register(bed, 0, "creator")
    peer = register(bed, 1, "peer")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    handle = bed.run(cpu_shim.xfifo_init(creator, "l", "chan"))
    obj = handle.fifo.obj_id
    bed.run(cpu_shim.grant_cap(creator, peer.xpu_pid, obj, Permission.WRITE))
    bed.run(cpu_shim.revoke_cap(creator, peer.xpu_pid, obj, Permission.WRITE))
    with pytest.raises(CapabilityError):
        bed.run(dpu_shim.xfifo_connect(peer, "chan", FifoEnd.WRITE))


def test_nipc_write_read_roundtrip_cross_pu(bed):
    """A DPU process writes into a CPU-homed XPU-FIFO (neighbour IPC)."""
    reader_group = register(bed, 0, "reader")
    writer_group = register(bed, 1, "writer")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    received = []

    def scenario(sim):
        handle = yield from cpu_shim.xfifo_init(reader_group, "l", "rx")
        yield from cpu_shim.grant_cap(
            reader_group, writer_group.xpu_pid, handle.fifo.obj_id, Permission.WRITE
        )
        w_handle = yield from dpu_shim.xfifo_connect(writer_group, "rx", FifoEnd.WRITE)

        def reader(sim):
            payload = yield from cpu_shim.xfifo_read(reader_group, handle)
            received.append((sim.now, payload))

        sim.spawn(reader(sim))
        yield from dpu_shim.xfifo_write(writer_group, w_handle, {"x": 1}, size=256)

    bed.run(scenario(bed.sim))
    assert received and received[0][1] == {"x": 1}


def test_nipc_cross_pu_slower_than_local(bed):
    """nIPC pays the interconnect; local IPC does not."""

    def measure(writer_pu, home_pu):
        local_bed = build_testbed(num_dpus=2)
        reader_group = local_bed.cluster.register_process(home_pu, name="r")
        writer_group = local_bed.cluster.register_process(writer_pu, name="w")
        home_shim = local_bed.cluster.shim_on(home_pu)
        writer_shim = local_bed.cluster.shim_on(writer_pu)
        times = {}

        def scenario(sim):
            handle = yield from home_shim.xfifo_init(reader_group, "l", "rx")
            yield from home_shim.grant_cap(
                reader_group, writer_group.xpu_pid, handle.fifo.obj_id, Permission.WRITE
            )
            w = yield from writer_shim.xfifo_connect(writer_group, "rx", FifoEnd.WRITE)
            start = sim.now
            yield from writer_shim.xfifo_write(writer_group, w, b"", size=64)
            times["write"] = sim.now - start

        local_bed.run(scenario(local_bed.sim))
        return times["write"]

    local = measure(writer_pu=0, home_pu=0)
    cross = measure(writer_pu=1, home_pu=0)
    assert cross > local


def test_write_with_readonly_handle_rejected(bed):
    creator = register(bed, 0, "creator")
    peer = register(bed, 1, "peer")
    cpu_shim = bed.cluster.shim_on(0)
    dpu_shim = bed.cluster.shim_on(1)
    handle = bed.run(cpu_shim.xfifo_init(creator, "l", "chan"))
    bed.run(
        cpu_shim.grant_cap(creator, peer.xpu_pid, handle.fifo.obj_id, Permission.READ)
    )
    r_handle = bed.run(dpu_shim.xfifo_connect(peer, "chan", FifoEnd.READ))
    with pytest.raises(CapabilityError):
        bed.run(dpu_shim.xfifo_write(peer, r_handle, b"", 8))


def test_close_to_zero_refs_closes_fifo_lazily(bed):
    from repro import config

    creator = register(bed, 0, "creator")
    shim = bed.cluster.shim_on(0)
    checks = {}

    def scenario(sim):
        handle = yield from shim.xfifo_init(creator, "l", "temp")
        yield from shim.xfifo_close(creator, handle)
        checks["closed"] = handle.fifo.closed
        # The UUID reclamation is lazy: still registered inside the window.
        checks["still_there"] = bed.cluster.captable.has_object(handle.fifo.obj_id)
        yield sim.timeout(2 * config.LAZY_SYNC_WINDOW_S)
        checks["gone"] = not bed.cluster.captable.has_object(handle.fifo.obj_id)

    bed.run(scenario(bed.sim))
    assert checks == {"closed": True, "still_there": True, "gone": True}
    assert bed.cluster.sync.lazy_flushes == 1


def test_use_after_close_rejected(bed):
    creator = register(bed, 0, "creator")
    shim = bed.cluster.shim_on(0)
    handle = bed.run(shim.xfifo_init(creator, "l", "temp"))
    bed.run(shim.xfifo_close(creator, handle))
    with pytest.raises(FifoError):
        bed.run(shim.xfifo_write(creator, handle, b"", 8))


def test_xspawn_creates_process_on_neighbor_pu(bed):
    parent = register(bed, 0, "molecule")
    cpu_shim = bed.cluster.shim_on(0)
    pid, group, process = bed.run(
        cpu_shim.xspawn(parent, target_pu_id=1, name="executor")
    )
    assert pid.pu_id == 1
    assert process in bed.oses[1].live_processes
    assert bed.cluster.captable.group(pid) is group


def test_xspawn_passes_capv_explicitly(bed):
    parent = register(bed, 0, "molecule")
    cpu_shim = bed.cluster.shim_on(0)
    handle = bed.run(cpu_shim.xfifo_init(parent, "l", "cmd"))
    obj = handle.fifo.obj_id
    pid, group, _ = bed.run(
        cpu_shim.xspawn(
            parent, 1, "executor", capv=[(obj, Permission.READ | Permission.WRITE)]
        )
    )
    assert group.has(obj, Permission.READ | Permission.WRITE)
    # No implicit permissions: an object not in capv is not shared.
    other = bed.run(cpu_shim.xfifo_init(parent, "l2", "other"))
    assert not group.has(other.fifo.obj_id, Permission.READ)


def test_xspawn_capv_requires_owner(bed):
    parent = register(bed, 0, "molecule")
    stranger = register(bed, 0, "stranger")
    cpu_shim = bed.cluster.shim_on(0)
    handle = bed.run(cpu_shim.xfifo_init(parent, "l", "cmd"))
    with pytest.raises(CapabilityError):
        bed.run(
            cpu_shim.xspawn(
                stranger, 1, "executor", capv=[(handle.fifo.obj_id, Permission.READ)]
            )
        )


def test_xspawn_to_accelerator_lands_on_host_via_virtual_shim():
    # §4.1: accelerators cannot launch generic programs; their virtual
    # XPU-Shim instance runs the executor on the neighbouring CPU.
    bed = build_testbed(num_dpus=1, full=True)
    parent = bed.cluster.register_process(0, name="p")
    cpu_shim = bed.cluster.shim_on(0)
    fpga_pu = next(p for p in bed.machine.pus.values() if p.name.startswith("fpga"))
    pid, _group, process = bed.run(
        cpu_shim.xspawn(parent, fpga_pu.pu_id, "fpga-executor")
    )
    assert process in bed.oses[bed.machine.host_cpu.pu_id].live_processes
    assert pid.pu_id == fpga_pu.pu_id


def test_virtual_shim_runs_on_host_pu():
    bed = build_testbed(num_dpus=1, full=True)
    fpga_pu = next(p for p in bed.machine.pus.values() if p.name.startswith("fpga"))
    shim = bed.cluster.shim_on(fpga_pu.pu_id)
    assert shim.exec_pu is bed.machine.host_cpu
    assert shim.pu is fpga_pu


def test_install_rejects_duplicates_and_wrong_kinds():
    bed = build_testbed(num_dpus=1, full=True)
    cpu = bed.machine.host_cpu
    with pytest.raises(XpuError):
        bed.cluster.install(cpu, bed.oses[0])
    fpga_pu = next(p for p in bed.machine.pus.values() if p.name.startswith("fpga"))
    with pytest.raises(XpuError):
        bed.cluster.install(fpga_pu)


def test_immediate_sync_counted_per_capability_update(bed):
    before = bed.cluster.sync.immediate_rounds
    creator = register(bed, 0, "c")
    peer = register(bed, 1, "p")
    shim = bed.cluster.shim_on(0)
    handle = bed.run(shim.xfifo_init(creator, "l", "chan"))
    bed.run(shim.grant_cap(creator, peer.xpu_pid, handle.fifo.obj_id, Permission.READ))
    # xfifo_init syncs the UUID; grant_cap syncs the capability.
    assert bed.cluster.sync.immediate_rounds == before + 2


def test_dpu_shim_defaults_to_polling_transport(bed):
    assert bed.cluster.shim_on(1).transport is XpucallTransport.MPSC_POLL
    assert bed.cluster.shim_on(0).transport is XpucallTransport.FIFO
