"""Tests for XPUcall transports (Fig. 7 / §6.1 calibration)."""

import pytest

from repro.hardware import ProcessingUnit, PuKind, specs
from repro.sim import Simulator
from repro.xpu import MpscQueue, XpucallTransport, default_transport


@pytest.fixture
def cpu():
    return ProcessingUnit(Simulator(), 0, "cpu", specs.XEON_8160)


@pytest.fixture
def dpu():
    return ProcessingUnit(Simulator(), 1, "dpu", specs.BLUEFIELD1)


def test_naive_xpucall_costs_match_paper(cpu, dpu):
    # §5: two IPC round trips cost ~100us on Bluefield-1, ~20us on CPU.
    base = XpucallTransport.FIFO
    assert base.round_trip_time(dpu) == pytest.approx(110e-6, rel=0.15)
    assert base.round_trip_time(cpu) == pytest.approx(22e-6, rel=0.15)


def test_transport_ordering_on_dpu(dpu):
    # Fig. 7: each optimisation strictly reduces the overhead.
    base = XpucallTransport.FIFO.round_trip_time(dpu)
    mpsc = XpucallTransport.MPSC.round_trip_time(dpu)
    poll = XpucallTransport.MPSC_POLL.round_trip_time(dpu)
    assert base > mpsc > poll


def test_mpsc_halves_ipc_round_trips(dpu):
    # Fig. 7b removes one of the two FIFO round trips.
    base = XpucallTransport.FIFO.round_trip_time(dpu)
    mpsc = XpucallTransport.MPSC.round_trip_time(dpu)
    assert mpsc < 0.65 * base


def test_polling_eliminates_kernel_ipc(dpu):
    # Fig. 7c: pure user-space polling, no notifications at all.
    poll = XpucallTransport.MPSC_POLL.round_trip_time(dpu)
    assert poll == pytest.approx(4 * dpu.op_time())
    assert poll < 25e-6


def test_request_plus_response_equals_round_trip(cpu):
    for transport in XpucallTransport:
        total = transport.request_time(cpu) + transport.response_time(cpu)
        assert total == pytest.approx(transport.round_trip_time(cpu))


def test_default_transport_polls_only_on_devices():
    # §6.1: optimisations applied on DPUs, not on the CPU.
    sim = Simulator()
    cpu = ProcessingUnit(sim, 0, "cpu", specs.XEON_8160)
    dpu = ProcessingUnit(sim, 1, "dpu", specs.BLUEFIELD1)
    assert default_transport(cpu) is XpucallTransport.FIFO
    assert default_transport(dpu) is XpucallTransport.MPSC_POLL


def test_mpsc_queue_fifo_order():
    sim = Simulator()
    queue = MpscQueue(sim)
    queue.enqueue("p1")
    queue.enqueue("p2")
    assert len(queue) == 2
    first = queue.dequeue()
    second = queue.dequeue()
    assert first.value == "p1" and second.value == "p2"
    assert queue.enqueued == 2


def test_mpsc_queue_consumer_blocks_until_producer():
    sim = Simulator()
    queue = MpscQueue(sim)
    log = []

    def consumer(sim):
        pid = yield queue.dequeue()
        log.append((sim.now, pid))

    def producer(sim):
        yield sim.timeout(1.0)
        queue.enqueue("caller")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert log == [(1.0, "caller")]
