"""Tests for OS instances: processes, fork, FIFOs, cgroups."""

import pytest

from repro import config
from repro.errors import FifoError, OsError_, UnknownProcessError
from repro.hardware import ProcessingUnit, specs
from repro.multios import CpusetLockMode, OsInstance, ProcessState
from repro.sim import Simulator


def make_os(spec=specs.XEON_8160, **kwargs):
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "pu0", spec)
    return sim, OsInstance(sim, pu, **kwargs)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_os_requires_general_purpose_pu():
    sim = Simulator()
    fpga = ProcessingUnit(sim, 0, "fpga0", specs.ULTRASCALE_PLUS)
    with pytest.raises(OsError_):
        OsInstance(sim, fpga)


def test_spawn_creates_running_process():
    sim, os_ = make_os()
    p = run(sim, os_.spawn("worker"))
    assert p.alive
    assert p.state is ProcessState.RUNNING
    assert os_.process(p.pid) is p


def test_spawn_charges_exec_cost_scaled_by_speed():
    sim, os_ = make_os(specs.BLUEFIELD1)
    run(sim, os_.spawn("worker", exec_ms=10.0))
    assert sim.now == pytest.approx(0.010 / config.SPEED_BF1)


def test_spawn_rejects_negative_cost():
    sim, os_ = make_os()
    with pytest.raises(OsError_):
        run(sim, os_.spawn("p", exec_ms=-1.0))


def test_pids_are_unique_and_increasing():
    sim, os_ = make_os()
    p1 = run(sim, os_.spawn("a"))
    p2 = run(sim, os_.spawn("b"))
    assert p2.pid > p1.pid


def test_pids_not_globally_unique_across_oses():
    # §3.2: Linux PIDs are only unique per local PU - the reason
    # XPU-Shim needs globally identifiable xpu_pids.
    sim = Simulator()
    cpu = ProcessingUnit(sim, 0, "cpu0", specs.XEON_8160)
    dpu = ProcessingUnit(sim, 1, "dpu0", specs.BLUEFIELD1)
    os_a, os_b = OsInstance(sim, cpu), OsInstance(sim, dpu)
    p_a = run(sim, os_a.spawn("a"))
    p_b = run(sim, os_b.spawn("b"))
    assert p_a.pid == p_b.pid  # collision across OSes is expected


def test_fork_requires_single_thread():
    sim, os_ = make_os()
    parent = run(sim, os_.spawn("multi"))
    parent.spawn_thread(3)
    with pytest.raises(OsError_, match="forking thread"):
        run(sim, os_.fork(parent))


def test_forkable_runtime_merge_fork_expand():
    # §4.2: merge threads -> fork -> expand in the child.
    sim, os_ = make_os()
    parent = run(sim, os_.spawn("runtime"))
    parent.spawn_thread(3)
    assert not parent.fork_safe
    parked = parent.merge_threads()
    assert parked == 3 and parent.fork_safe
    child = run(sim, os_.fork(parent))
    restored = parent.expand_threads()
    assert restored == 3 and parent.threads == 4
    assert child.alive


def test_fork_dead_parent_rejected():
    sim, os_ = make_os()
    parent = run(sim, os_.spawn("p"))
    parent.exit()
    with pytest.raises(OsError_):
        run(sim, os_.fork(parent))


def test_fork_cost_scales_with_pu_speed():
    sim_cpu, os_cpu = make_os(specs.XEON_8160)
    parent = run(sim_cpu, os_cpu.spawn("p"))
    t0 = sim_cpu.now
    run(sim_cpu, os_cpu.fork(parent))
    cpu_cost = sim_cpu.now - t0

    sim_dpu, os_dpu = make_os(specs.BLUEFIELD1)
    parent = run(sim_dpu, os_dpu.spawn("p"))
    t0 = sim_dpu.now
    run(sim_dpu, os_dpu.fork(parent))
    dpu_cost = sim_dpu.now - t0
    assert dpu_cost == pytest.approx(cpu_cost / config.SPEED_BF1 * config.SPEED_XEON)


def test_kill_and_reap():
    sim, os_ = make_os()
    p = run(sim, os_.spawn("victim"))
    os_.kill(p.pid)
    assert not p.alive
    os_.reap(p.pid)
    with pytest.raises(UnknownProcessError):
        os_.process(p.pid)


def test_reap_live_process_rejected():
    sim, os_ = make_os()
    p = run(sim, os_.spawn("p"))
    with pytest.raises(OsError_):
        os_.reap(p.pid)


def test_live_processes_listing():
    sim, os_ = make_os()
    a = run(sim, os_.spawn("a"))
    b = run(sim, os_.spawn("b"))
    os_.kill(a.pid)
    assert os_.live_processes == [b]


# -- FIFOs -----------------------------------------------------------------------


def test_fifo_roundtrip_delivers_payload():
    sim, os_ = make_os()
    fifo = os_.create_fifo("chan")
    received = []

    def reader(sim):
        payload = yield from fifo.read()
        received.append((sim.now, payload))

    def writer(sim):
        yield from fifo.write({"msg": "hi"}, size=64)

    sim.spawn(reader(sim))
    sim.spawn(writer(sim))
    sim.run()
    assert received and received[0][1] == {"msg": "hi"}


def test_fifo_latency_cpu_vs_dpu():
    # Fig. 8: the DPU's slow cores make its local FIFO several times
    # slower than the CPU's.
    def measure(spec, size):
        sim = Simulator()
        pu = ProcessingUnit(sim, 0, "pu", spec)
        os_ = OsInstance(sim, pu)
        fifo = os_.create_fifo("f")
        done = {}

        def reader(sim):
            yield from fifo.read()
            done["t"] = sim.now

        sim.spawn(reader(sim))
        sim.spawn(fifo.write(b"", size))
        sim.run()
        return done["t"]

    cpu = measure(specs.XEON_8160, 1024)
    dpu = measure(specs.BLUEFIELD1, 1024)
    assert 2.0 < dpu / cpu < 12.0


def test_fifo_duplicate_name_rejected():
    sim, os_ = make_os()
    os_.create_fifo("x")
    with pytest.raises(FifoError):
        os_.create_fifo("x")


def test_fifo_open_unknown_rejected():
    sim, os_ = make_os()
    with pytest.raises(FifoError):
        os_.open_fifo("ghost")


def test_fifo_remove_then_use_rejected():
    sim, os_ = make_os()
    fifo = os_.create_fifo("x")
    os_.remove_fifo("x")
    with pytest.raises(FifoError):
        run(sim, fifo.write(b"", 8))


def test_fifo_negative_size_rejected():
    sim, os_ = make_os()
    fifo = os_.create_fifo("x")
    with pytest.raises(FifoError):
        run(sim, fifo.write(b"", -1))


# -- cgroups ------------------------------------------------------------------------


def test_cgroup_attach_semaphore_vs_mutex_cost():
    # Fig. 11a: the cpuset patch cuts attach cost by ~4x.
    sim_a, os_sem = make_os(cpuset_lock=CpusetLockMode.SEMAPHORE)
    sim_b, os_mut = make_os(cpuset_lock=CpusetLockMode.MUTEX)
    assert os_sem.cgroups.attach_time() > 3 * os_mut.cgroups.attach_time()


def test_cgroup_attach_moves_process():
    sim, os_ = make_os()
    p = run(sim, os_.spawn("p"))
    g1 = os_.cgroups.create("g1")
    g2 = os_.cgroups.create("g2")
    run(sim, os_.cgroups.attach(p, g1))
    assert os_.cgroups.cgroup_of(p) is g1
    run(sim, os_.cgroups.attach(p, g2))
    assert os_.cgroups.cgroup_of(p) is g2
    assert p not in g1


def test_cgroup_duplicate_create_rejected():
    sim, os_ = make_os()
    os_.cgroups.create("g")
    with pytest.raises(OsError_):
        os_.cgroups.create("g")
