"""Tests for COW memory accounting (RSS/PSS)."""

import pytest

from repro.errors import OsError_
from repro.hardware import ProcessingUnit, specs
from repro.multios import OsInstance, SharedSegment, average_pss_mb, average_rss_mb
from repro.sim import Simulator


@pytest.fixture
def os_instance():
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "cpu0", specs.XEON_8160)
    return OsInstance(sim, pu)


def make_process(os_instance, name="p"):
    sim = os_instance.sim
    proc = sim.spawn(os_instance.spawn(name))
    sim.run()
    return proc.value


def test_private_allocation_counts_in_rss_and_pss(os_instance):
    p = make_process(os_instance)
    p.memory.allocate_private(10.0)
    assert p.memory.rss_mb == 10.0
    assert p.memory.pss_mb == 10.0


def test_negative_allocation_rejected(os_instance):
    p = make_process(os_instance)
    with pytest.raises(OsError_):
        p.memory.allocate_private(-1.0)


def test_free_private_bounds(os_instance):
    p = make_process(os_instance)
    p.memory.allocate_private(5.0)
    p.memory.free_private(2.0)
    assert p.memory.private_mb == 3.0
    with pytest.raises(OsError_):
        p.memory.free_private(10.0)


def test_shared_segment_splits_pss_not_rss(os_instance):
    a = make_process(os_instance, "a")
    b = make_process(os_instance, "b")
    seg = SharedSegment("libs", 8.0)
    a.memory.map_segment(seg)
    b.memory.map_segment(seg)
    assert a.memory.rss_mb == 8.0
    assert a.memory.pss_mb == 4.0
    assert b.memory.pss_mb == 4.0


def test_unmap_restores_full_share(os_instance):
    a = make_process(os_instance, "a")
    b = make_process(os_instance, "b")
    seg = SharedSegment("libs", 8.0)
    a.memory.map_segment(seg)
    b.memory.map_segment(seg)
    b.memory.unmap_segment(seg)
    assert a.memory.pss_mb == 8.0
    assert b.memory.rss_mb == 0.0


def test_unmap_unmapped_segment_rejected(os_instance):
    a = make_process(os_instance)
    with pytest.raises(OsError_):
        a.memory.unmap_segment(SharedSegment("x", 1.0))


def test_cow_write_grows_private_keeps_mapping(os_instance):
    a = make_process(os_instance, "a")
    b = make_process(os_instance, "b")
    seg = SharedSegment("cow", 6.0)
    a.memory.map_segment(seg)
    b.memory.map_segment(seg)
    a.memory.cow_write(seg, 2.0)
    assert a.memory.private_mb == 2.0
    assert seg in a.memory.segments
    # b's view is unchanged.
    assert b.memory.pss_mb == 3.0


def test_cow_write_cannot_exceed_segment(os_instance):
    a = make_process(os_instance)
    seg = SharedSegment("cow", 6.0)
    a.memory.map_segment(seg)
    with pytest.raises(OsError_):
        a.memory.cow_write(seg, 7.0)


def test_fork_shares_parent_private_as_cow(os_instance):
    parent = make_process(os_instance, "template")
    parent.memory.allocate_private(10.0)
    sim = os_instance.sim
    proc = sim.spawn(os_instance.fork(parent))
    sim.run()
    child = proc.value
    # Parent's former private pages are now a 2-way shared segment.
    assert parent.memory.private_mb == 0.0
    assert parent.memory.pss_mb == pytest.approx(5.0)
    assert child.memory.pss_mb == pytest.approx(5.0)
    assert child.memory.rss_mb == pytest.approx(10.0)


def test_many_forks_amortize_template_pss(os_instance):
    # The Fig. 11c effect: PSS per instance drops as fork count grows.
    template = make_process(os_instance, "template")
    template.memory.allocate_private(10.0)
    sim = os_instance.sim
    children = []
    for _ in range(9):
        proc = sim.spawn(os_instance.fork(template))
        sim.run()
        children.append(proc.value)
    # 10 mappers (template + 9 children) of a 10MB segment -> 1MB each.
    assert children[0].memory.pss_mb == pytest.approx(1.0)
    assert children[0].memory.rss_mb == pytest.approx(10.0)
    assert average_pss_mb(children) == pytest.approx(1.0)
    assert average_rss_mb(children) == pytest.approx(10.0)


def test_exit_releases_mappings(os_instance):
    a = make_process(os_instance, "a")
    b = make_process(os_instance, "b")
    seg = SharedSegment("libs", 8.0)
    a.memory.map_segment(seg)
    b.memory.map_segment(seg)
    b.exit()
    assert a.memory.pss_mb == 8.0


def test_averages_of_empty_set_are_zero():
    assert average_rss_mb([]) == 0.0
    assert average_pss_mb([]) == 0.0


def test_negative_segment_size_rejected():
    with pytest.raises(OsError_):
        SharedSegment("bad", -1.0)
