"""Shard routing: hash-ring stability, breaker avoidance, locality."""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.errors import SchedulingError
from repro.loadgen import HashRing, ShardedFrontend


def _fn(name="f", profiles=(PuKind.CPU, PuKind.DPU)):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, import_ms=20.0),
        work=WorkProfile(warm_exec_ms=4.0),
        profiles=profiles,
    )


def _runtime(num_dpus=2, **kwargs):
    runtime = MoleculeRuntime.create(num_dpus=num_dpus, seed=13, **kwargs)
    runtime.deploy_now(_fn())
    return runtime


# -- hash ring -------------------------------------------------------------------------


def test_ring_routing_is_stable_across_instances():
    keys = [f"fn-{i}" for i in range(200)]
    a, b = HashRing(4), HashRing(4)
    assert [a.route(k) for k in keys] == [b.route(k) for k in keys]


def test_ring_spreads_keys_over_all_shards():
    ring = HashRing(4)
    owners = {ring.route(f"fn-{i}") for i in range(500)}
    assert owners == {0, 1, 2, 3}


def test_ring_rebalance_moves_keys_only_to_the_new_shard():
    """Growing N -> N+1 may only remap keys onto the new shard; every
    key that stays on an old shard stays on the *same* old shard."""
    keys = [f"fn-{i}" for i in range(1000)]
    for n in (2, 3, 5, 8):
        before, after = HashRing(n), HashRing(n + 1)
        moved = 0
        for key in keys:
            old, new = before.route(key), after.route(key)
            if old != new:
                assert new == n, (key, old, new)
                moved += 1
        # Consistent hashing moves roughly 1/(n+1) of the keys.
        assert 0 < moved < len(keys) * 2 / (n + 1)


def test_ring_validation():
    with pytest.raises(SchedulingError):
        HashRing(0)
    with pytest.raises(SchedulingError):
        HashRing(2, vnodes=0)


# -- frontend construction --------------------------------------------------------------


def test_frontend_validates_policy_and_shard_count():
    runtime = _runtime()
    with pytest.raises(SchedulingError):
        ShardedFrontend(runtime, 0)
    with pytest.raises(SchedulingError):
        ShardedFrontend(runtime, 2, policy="random")


def test_frontend_affinity_partitions_all_pus():
    runtime = _runtime(num_dpus=2)
    frontend = ShardedFrontend(runtime, 2)
    seen = [pu for shard in frontend.shards for pu in shard.affinity]
    assert sorted(seen) == sorted(runtime.machine.pus)


def test_request_ids_unique_across_shards():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 3)
    ids = []

    def caller(name):
        result = yield from frontend.invoke(name)
        ids.append(result.request_id)

    runtime.deploy_now(_fn("g"))
    runtime.deploy_now(_fn("h"))
    for name in ("f", "g", "h", "f", "g", "h"):
        runtime.sim.spawn(caller(name))
    runtime.sim.run()
    assert len(ids) == 6
    assert len(set(ids)) == 6


# -- least-outstanding ------------------------------------------------------------------


def test_least_outstanding_picks_idle_shard():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 3, policy="least-outstanding")
    frontend.shards[0].outstanding = 5
    frontend.shards[1].outstanding = 2
    frontend.shards[2].outstanding = 7
    assert frontend.route("f").index == 1


def test_least_outstanding_never_routes_to_open_breaker_shard():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 3, policy="least-outstanding")
    bad = frontend.shards[0]
    for _ in range(bad.breaker.failure_threshold):
        bad.breaker.record_failure(runtime.sim.now)
    assert not bad.healthy
    # The broken shard is also the least-outstanding one — it must
    # still be skipped while any healthy shard exists.
    bad.outstanding = 0
    frontend.shards[1].outstanding = 3
    frontend.shards[2].outstanding = 4
    for _ in range(20):
        assert frontend.route("f").index != 0


def test_least_outstanding_degrades_when_every_breaker_is_open():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 2, policy="least-outstanding")
    for shard in frontend.shards:
        for _ in range(shard.breaker.failure_threshold):
            shard.breaker.record_failure(runtime.sim.now)
    # No healthy shard: requests must not be black-holed.
    assert frontend.route("f") in frontend.shards


# -- locality ---------------------------------------------------------------------------


def test_locality_falls_back_to_hash_when_no_warm_sandbox():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 2, policy="locality")
    expected = frontend.shards[frontend.ring.route("f")]
    assert frontend.route("f") is expected


def test_locality_routes_to_the_shard_fronting_the_warm_pu():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 2, policy="locality")
    first = runtime.invoke_now("f", kind=PuKind.DPU)
    warm_pu = next(
        pu for pu in runtime.machine.pus.values() if pu.name == first.pu_name
    )
    expected = frontend.shard_for_pu(warm_pu.pu_id)
    assert frontend.route("f", kind=PuKind.DPU) is expected


def test_locality_falls_back_when_warm_shard_is_unhealthy():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 2, policy="locality")
    first = runtime.invoke_now("f", kind=PuKind.DPU)
    warm_pu = next(
        pu for pu in runtime.machine.pus.values() if pu.name == first.pu_name
    )
    shard = frontend.shard_for_pu(warm_pu.pu_id)
    for _ in range(shard.breaker.failure_threshold):
        shard.breaker.record_failure(runtime.sim.now)
    routed = frontend.route("f", kind=PuKind.DPU)
    assert routed is frontend.shards[frontend.ring.route("f")]


# -- utilization bookkeeping ------------------------------------------------------------


def test_shard_busy_integral_tracks_outstanding_window():
    runtime = _runtime()
    frontend = ShardedFrontend(runtime, 1)
    shard = frontend.shards[0]

    def caller():
        result = yield from frontend.invoke("f")
        return result

    start = runtime.sim.now
    runtime.run(caller())
    elapsed = runtime.sim.now - start
    assert shard.outstanding == 0
    assert 0 < shard.busy_s <= elapsed
    assert shard.utilization(elapsed) == pytest.approx(
        shard.busy_s / elapsed
    )
