"""Regression tests for the closed-loop driver's task weighting.

One fan-out arrival occupies a worker slot while fanning out to many
sandbox tasks; counting *requests* would let ``concurrency`` workers
put ``concurrency x weight`` tasks in flight at once.  The driver's
``task_weight`` hook charges each arrival its fan-out factor against
the concurrency budget; these tests pin the fixed semantics:

* total in-flight tasks stay bounded by ``concurrency``;
* a single arrival heavier than the whole budget is admitted alone
  (never wedged, never overlapped);
* the default weight-1 path replays the historical schedule
  byte-identically.
"""

from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    ClosedLoopDriver,
    build_runtime,
)


def _plan(n=24, spacing_s=0.01):
    return ArrivalPlan(
        tuple(
            Arrival(time_s=i * spacing_s, function="thumb")
            for i in range(n)
        ),
        duration_s=n * spacing_s,
    )


def test_weighted_inflight_tasks_bounded_by_concurrency():
    """8 workers x weight 4 must not stack 32 tasks: the task budget,
    not the worker count, is the cap."""
    plan = _plan()
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    driver = ClosedLoopDriver(
        runtime, plan, concurrency=8, frontend=frontend,
        task_weight=lambda arrival: 4,
    )
    records = driver.run()
    assert len(records) == len(plan)
    assert all(r.answered for r in records)
    assert 0 < driver.max_inflight_tasks <= 8


def test_single_heavy_arrival_is_admitted_alone():
    """A weight greater than the whole budget must not deadlock: the
    oversized arrival runs by itself (in-flight == its own weight,
    never its weight plus a neighbor)."""
    plan = _plan(n=12)
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    heavy_weight = 10

    def weight(arrival):
        return heavy_weight if arrival.time_s == 0.0 else 1

    driver = ClosedLoopDriver(
        runtime, plan, concurrency=4, frontend=frontend,
        task_weight=weight,
    )
    records = driver.run()
    assert len(records) == len(plan)
    assert all(r.answered for r in records)
    assert driver.max_inflight_tasks == heavy_weight


def test_weight_one_replays_the_unweighted_schedule_byte_identically():
    def replay(task_weight):
        plan = _plan()
        runtime, frontend = build_runtime(plan, seed=5, shards=2)
        driver = ClosedLoopDriver(
            runtime, plan, concurrency=4, frontend=frontend,
            task_weight=task_weight,
        )
        return [vars(r) for r in driver.run()], driver

    unweighted, _ = replay(None)
    weighted, driver = replay(lambda arrival: 1)
    assert weighted == unweighted
    assert driver.max_inflight_tasks <= 4
