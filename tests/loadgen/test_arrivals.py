"""Arrival models: determinism, plan invariants, (de)serialisation."""

import pytest

from repro.errors import WorkloadError
from repro.hardware.pu import PuKind
from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    BurstyArrivals,
    DiurnalArrivals,
    FunctionMix,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.rng import SeededRng
from repro.workloads.traces import AzureLikeTrace, DiurnalProfile, OnOffProfile


def _mix():
    return FunctionMix.of(
        ("thumb", 0.6),
        ("etl", 0.3, PuKind.DPU),
        ("infer", 0.1, PuKind.CPU),
    )


def _models(rng):
    return [
        PoissonArrivals(_mix(), 50.0, rng=rng),
        BurstyArrivals(_mix(), 50.0, profile=OnOffProfile(2.0, 6.0), rng=rng),
        DiurnalArrivals(_mix(), 50.0, profile=DiurnalProfile(period_s=20.0), rng=rng),
        TraceArrivals(AzureLikeTrace(
            ["thumb", "etl", "infer"], 50.0,
            diurnal=DiurnalProfile(period_s=20.0), rng=rng,
        )),
    ]


@pytest.mark.parametrize("index", range(4))
def test_same_seed_same_plan(index):
    plan_a = _models(SeededRng(7).fork("arrivals"))[index].plan(20.0)
    plan_b = _models(SeededRng(7).fork("arrivals"))[index].plan(20.0)
    assert plan_a.to_json() == plan_b.to_json()
    assert len(plan_a) > 0


@pytest.mark.parametrize("index", range(4))
def test_different_seed_different_plan(index):
    plan_a = _models(SeededRng(7).fork("arrivals"))[index].plan(20.0)
    plan_b = _models(SeededRng(8).fork("arrivals"))[index].plan(20.0)
    assert plan_a.to_json() != plan_b.to_json()


@pytest.mark.parametrize("index", range(4))
def test_plan_invariants(index):
    plan = _models(SeededRng(11).fork("arrivals"))[index].plan(20.0)
    times = [a.time_s for a in plan]
    assert times == sorted(times)
    assert all(0.0 <= t < 20.0 for t in times)
    assert set(plan.functions()) <= {"thumb", "etl", "infer"}


def test_poisson_rate_is_roughly_offered():
    plan = PoissonArrivals(_mix(), 100.0, rng=SeededRng(3)).plan(50.0)
    assert plan.offered_rate_per_s == pytest.approx(100.0, rel=0.15)


def test_bursty_concentrates_arrivals_in_on_windows():
    profile = OnOffProfile(on_s=2.0, off_s=8.0, idle_fraction=0.0)
    plan = BurstyArrivals(
        _mix(), 100.0, profile=profile, rng=SeededRng(5)
    ).plan(40.0)
    assert len(plan) > 0
    assert all(a.time_s % 10.0 < 2.0 for a in plan)


def test_mix_kinds_flow_into_arrivals():
    plan = PoissonArrivals(_mix(), 200.0, rng=SeededRng(9)).plan(5.0)
    kinds = {a.function: a.kind for a in plan}
    assert kinds.get("etl") is PuKind.DPU
    assert kinds.get("infer") is PuKind.CPU
    assert kinds.get("thumb") is None


def test_trace_arrivals_attach_kinds():
    trace = AzureLikeTrace(["a", "b"], 100.0, rng=SeededRng(4))
    plan = TraceArrivals(trace, kinds={"a": PuKind.DPU}).plan(5.0)
    assert any(a.kind is PuKind.DPU for a in plan if a.function == "a")
    assert all(a.kind is None for a in plan if a.function == "b")


def test_plan_json_round_trip():
    plan = PoissonArrivals(_mix(), 80.0, rng=SeededRng(2)).plan(3.0)
    clone = ArrivalPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.to_json() == plan.to_json()


def test_plan_rejects_unsorted_and_bad_duration():
    with pytest.raises(WorkloadError):
        ArrivalPlan(
            (Arrival(1.0, "f"), Arrival(0.5, "f")), duration_s=2.0
        )
    with pytest.raises(WorkloadError):
        ArrivalPlan((), duration_s=0.0)


def test_plan_schema_guard():
    with pytest.raises(WorkloadError):
        ArrivalPlan.from_json('{"schema": "bogus/9", "arrivals": []}')


def test_mix_validation():
    with pytest.raises(WorkloadError):
        FunctionMix.of()
    with pytest.raises(WorkloadError):
        FunctionMix(("a",), (0.0,))
    with pytest.raises(WorkloadError):
        FunctionMix(("a", "b"), (1.0,))


def test_rate_and_duration_validation():
    with pytest.raises(WorkloadError):
        PoissonArrivals(_mix(), 0.0)
    with pytest.raises(WorkloadError):
        PoissonArrivals(_mix(), 10.0).plan(0.0)
