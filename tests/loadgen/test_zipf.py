"""The Zipf input-key layer and the ``zipf`` computation-reuse
scenario.

The sampler is validated against its own closed form (empirical rank
frequencies converge on ``probability(rank)``), the plan plumbing
against golden-compatibility rules (keys round-trip; keyless plans
serialize exactly as before), and the scenario against the acceptance
bar: at the golden seed, arming the cache strictly improves both the
p99 and the answered count, with a hit rate past one half and every
cached answer byte-equal to what executing its digest produces.
"""

import json
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    ZipfSampler,
    attach_zipf_inputs,
    run_load,
)
from repro.loadgen.scenarios import ZIPF_KEYS_PER_FUNCTION, ZIPF_SKEW
from repro.reuse.cache import result_payload
from repro.sim.rng import SeededRng

GOLDEN_SEED = 1234  # the loadgen goldens' seed, not the sim kernel's


# -- the sampler -------------------------------------------------------------------


def test_sampler_rejects_bad_inputs():
    rng = SeededRng(1).fork("zipf")
    with pytest.raises(WorkloadError):
        ZipfSampler((), 1.0, rng)
    with pytest.raises(WorkloadError):
        ZipfSampler(("a",), -0.1, rng)
    sampler = ZipfSampler(("a", "b"), 1.0, rng)
    with pytest.raises(WorkloadError):
        sampler.probability(0)  # ranks are 1-based
    with pytest.raises(WorkloadError):
        sampler.probability(3)


def test_sampler_probabilities_are_a_distribution():
    sampler = ZipfSampler(
        tuple(f"k{i}" for i in range(16)), 1.1, SeededRng(3).fork("zipf")
    )
    probs = [sampler.probability(rank) for rank in range(1, 17)]
    assert sum(probs) == pytest.approx(1.0)
    assert probs == sorted(probs, reverse=True)
    # Uniform degenerate case: skew 0 flattens the distribution.
    flat = ZipfSampler(("a", "b", "c", "d"), 0.0, SeededRng(3).fork("u"))
    assert flat.probability(1) == pytest.approx(0.25)
    assert flat.probability(4) == pytest.approx(0.25)


def test_sampler_frequencies_match_the_closed_form():
    """20k draws per rank land within a few percent of P(rank) for the
    head of the distribution — the sampler really is Zipf(s), not just
    'something skewed'."""
    keys = tuple(f"k{i:02d}" for i in range(32))
    sampler = ZipfSampler(keys, 1.1, SeededRng(42).fork("zipf-stats"))
    draws = 20_000
    counts = Counter(sampler.sample() for _ in range(draws))
    assert set(counts) <= set(keys)
    for rank in (1, 2, 3, 5, 8):
        expected = sampler.probability(rank)
        observed = counts[keys[rank - 1]] / draws
        assert observed == pytest.approx(expected, rel=0.12), rank
    # The head dominates: rank 1 beats rank 32 by an order of magnitude.
    assert counts[keys[0]] > 10 * max(1, counts[keys[31]])


def test_sampler_is_fork_deterministic():
    keys = tuple(f"k{i}" for i in range(8))
    a = ZipfSampler(keys, 1.3, SeededRng(9).fork("stream"))
    b = ZipfSampler(keys, 1.3, SeededRng(9).fork("stream"))
    assert [a.sample() for _ in range(200)] == [
        b.sample() for _ in range(200)
    ]
    c = ZipfSampler(keys, 1.3, SeededRng(9).fork("other"))
    assert [a.sample() for _ in range(50)] != [c.sample() for _ in range(50)]


# -- plan plumbing -----------------------------------------------------------------


def test_input_keys_round_trip_through_json():
    plan = ArrivalPlan(
        (
            Arrival(time_s=0.0, function="thumb", input_key="k03"),
            Arrival(time_s=0.5, function="etl"),
        ),
        duration_s=1.0,
    )
    restored = list(ArrivalPlan.from_json(plan.to_json()))
    assert restored[0].input_key == "k03"
    assert restored[1].input_key is None
    # Keyless arrivals serialize exactly as before the reuse PR: no
    # input_key field at all (golden plan files must not churn).
    keyless = Arrival(time_s=0.5, function="etl").to_dict()
    assert "input_key" not in keyless
    assert "input_key" in restored[0].to_dict()


def test_attach_zipf_inputs_is_deterministic_and_key_preserving():
    plan = ArrivalPlan(
        tuple(
            Arrival(time_s=i * 0.01, function="thumb" if i % 2 else "etl")
            for i in range(40)
        ),
        duration_s=0.5,
    )
    keyed = attach_zipf_inputs(plan, SeededRng(7).fork("keys"))
    again = attach_zipf_inputs(plan, SeededRng(7).fork("keys"))
    assert [a.input_key for a in keyed] == [a.input_key for a in again]
    assert all(a.input_key is not None for a in keyed)
    assert keyed.duration_s == plan.duration_s
    universe = {f"k{i:02d}" for i in range(ZIPF_KEYS_PER_FUNCTION)}
    assert {a.input_key for a in keyed} <= universe
    # Pre-existing keys survive a second attach untouched.
    reattached = attach_zipf_inputs(keyed, SeededRng(8).fork("other"))
    assert [a.input_key for a in reattached] == [
        a.input_key for a in keyed
    ]


# -- the scenario acceptance bar ---------------------------------------------------


def test_zipf_cache_on_strictly_beats_cache_off():
    """The tentpole acceptance bar, pinned at the golden seed: on the
    Zipf workload the cache must answer strictly more requests at a
    strictly lower p99, reuse more than half of the consults, and keep
    the extended conservation ``fresh + stale + executed == answered``
    on top of the standard books."""
    off = run_load("zipf", quick=True, seed=GOLDEN_SEED)
    on = run_load("zipf", quick=True, seed=GOLDEN_SEED, reuse=True)
    assert on["load"]["offered"] == off["load"]["offered"]
    assert "reuse" not in off
    assert off["params"]["zipf_s"] == ZIPF_SKEW

    assert on["load"]["answered"] > off["load"]["answered"]
    assert (on["latency"]["end_to_end"]["p99_ms"]
            < off["latency"]["end_to_end"]["p99_ms"])

    reuse = on["reuse"]
    assert reuse["hit_rate"] >= 0.5
    assert reuse["conserved"] is True
    assert reuse["served_fresh"] > 0
    assert (reuse["served_fresh"] + reuse["served_stale"]
            + reuse["executed"] == on["load"]["answered"])
    load = on["load"]
    assert load["answered"] + load["dead_lettered"] == load["admitted"]
    assert load["lost"] == 0
    # Cached answers return faster than executed ones at the median.
    cached = reuse["latency_cached"]
    executed = reuse["latency_executed"]
    assert cached["count"] + executed["count"] == load["answered"]
    assert cached["p50_ms"] < executed["p50_ms"]


def test_zipf_scenario_is_deterministic():
    first = run_load("zipf", quick=True, seed=77, reuse=True)
    second = run_load("zipf", quick=True, seed=77, reuse=True)
    for report in (first, second):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    assert first["params"]["reuse"] is True
    assert first["params"]["cache_mb"] == 8.0


def test_every_cached_answer_matches_the_execution_oracle():
    """Correctness, not just speed: after a cache-on run every entry
    still resident memoizes exactly the payload a real execution of its
    ``(function, digest)`` would produce — the deterministic oracle
    that makes 'the cache never serves a wrong answer' checkable."""
    from repro.loadgen.scenarios import build_runtime, _plan_zipf
    from repro.loadgen import OpenLoopDriver

    rng = SeededRng(GOLDEN_SEED).fork("loadgen:zipf")
    plan = _plan_zipf(rng, rps=10.0, duration_s=3.0)
    runtime, frontend = build_runtime(
        plan, seed=GOLDEN_SEED, shards=2, reuse=True, idempotent=True
    )
    records = OpenLoopDriver(runtime, plan, frontend).run()
    served = [r for r in records if r.cache]
    assert served, "the Zipf workload must produce cache hits"
    reuse = runtime.reuse
    assert len(reuse.cache) > 0
    for (function, digest), entry in reuse.cache._entries.items():
        assert entry.payload == result_payload(function, digest)
    assert reuse.conserved(sum(1 for r in records if r.answered))
