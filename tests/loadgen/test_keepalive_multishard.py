"""Keep-alive under a sharded front end: eviction races across shards.

The keep-alive reaper, LRU eviction and dead-corpse reaping all call
``Invoker._destroy`` on pool instances; with several gateway shards
funnelling concurrent traffic into the *same* per-PU pools, two of
those paths can race on one instance.  ``_destroy`` must be
idempotent — the DRAM reservation is released exactly once — or
admission control silently over-admits.
"""

import pytest

from repro import (
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)
from repro.loadgen import ShardedFrontend


def _fn(name="f", memory_mb=80, exec_ms=5.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(
            name, language=Language.PYTHON, import_ms=30.0,
            memory_mb=memory_mb,
        ),
        work=WorkProfile(warm_exec_ms=exec_ms),
        profiles=(PuKind.DPU, PuKind.CPU),
    )


def _dram_by_pu(runtime):
    return {
        pu_id: pu.dram_used_mb
        for pu_id, pu in runtime.machine.pus.items()
    }


def test_multishard_traffic_then_ttl_reaps_every_instance_once():
    """Two shards push overlapping bursts into the same DPU pools; when
    the TTL fires, every pooled instance must be destroyed exactly once
    and all DRAM reservations returned."""
    runtime = MoleculeRuntime.create(
        num_dpus=2, keep_alive_ttl_s=0.2, seed=17
    )
    runtime.deploy_now(_fn())
    frontend = ShardedFrontend(runtime, 2, policy="least-outstanding")
    baseline = _dram_by_pu(runtime)
    answered = []

    # Count release calls: every cold-started instance must be
    # released exactly once, however many destroy paths raced on it.
    releases = []
    orig_release = runtime.scheduler.release

    def counting_release(function, pu):
        releases.append(pu.name)
        orig_release(function, pu)

    runtime.scheduler.release = counting_release

    def burst(start_s, count):
        yield runtime.sim.timeout(start_s)
        for _ in range(count):
            result = yield from frontend.invoke("f", kind=PuKind.DPU)
            answered.append(result)

    # Overlapping bursts through both shards; quiescence then ages the
    # whole pool past the TTL so the reaper collects everything.
    runtime.sim.spawn(burst(0.0, 6))
    runtime.sim.spawn(burst(0.0, 6))
    runtime.sim.spawn(burst(0.05, 6))
    runtime.sim.run()

    assert len(answered) == 18
    assert len(runtime.dead_letters) == 0
    for pool in runtime.invoker.pools.values():
        assert len(pool) == 0
    assert _dram_by_pu(runtime) == baseline
    # Every cold-started instance was released exactly once.  A double
    # destroy would produce more releases than instances, and the DRAM
    # check alone cannot see it: the container parks the excess put and
    # silently feeds it to the next reservation.
    assert len(releases) == runtime.invoker.cold_invocations


def test_double_destroy_releases_dram_exactly_once():
    """Regression: two racing destroy paths on the same instance (TTL
    reaper vs. LRU eviction vs. corpse reaping) must not release the
    instance's DRAM reservation twice."""
    runtime = MoleculeRuntime.create(num_dpus=1, seed=17)
    runtime.deploy_now(_fn(memory_mb=100))
    baseline = _dram_by_pu(runtime)
    result = runtime.invoke_now("f", kind=PuKind.DPU)
    [dpu] = [
        pu for pu in runtime.machine.pus.values()
        if pu.name == result.pu_name
    ]
    reserved = dpu.dram_used_mb - baseline[dpu.pu_id]
    assert reserved == 100

    pool = runtime.invoker.pools[dpu.pu_id]
    instance = pool.acquire("f")
    assert instance is not None
    # Two teardown paths race on the same instance.
    runtime.sim.spawn(runtime.invoker._destroy(instance))
    runtime.sim.spawn(runtime.invoker._destroy(instance))
    runtime.sim.run()

    assert instance.destroyed
    assert dpu.dram_used_mb == baseline[dpu.pu_id]

    # The usage check above cannot catch a double release on its own:
    # ``Container.get`` parks the spurious getter instead of letting
    # the level go negative, and the parked getter then swallows the
    # *next* reservation's put.  Force a fresh cold start and assert
    # its reservation is actually visible.
    runtime.invoke_now("f", kind=PuKind.DPU)
    assert dpu.dram_used_mb == baseline[dpu.pu_id] + 100


def test_sequential_double_destroy_is_a_noop():
    runtime = MoleculeRuntime.create(num_dpus=1, seed=17)
    runtime.deploy_now(_fn(memory_mb=64))
    result = runtime.invoke_now("f", kind=PuKind.DPU)
    [dpu] = [
        pu for pu in runtime.machine.pus.values()
        if pu.name == result.pu_name
    ]
    pool = runtime.invoker.pools[dpu.pu_id]
    instance = pool.acquire("f")
    runtime.run(runtime.invoker._destroy(instance))
    freed = dpu.dram_used_mb
    runtime.run(runtime.invoker._destroy(instance))
    assert dpu.dram_used_mb == freed


def test_destroyed_corpse_left_in_pool_survives_the_reaper():
    """A corpse destroyed while still *pooled* (what a mid-race crash
    teardown produces) is later collected by the TTL reaper too; the
    second destroy must be a no-op so DRAM is not double-released."""
    runtime = MoleculeRuntime.create(
        num_dpus=1, keep_alive_ttl_s=0.15, seed=17
    )
    runtime.deploy_now(_fn(memory_mb=90))
    [dpu] = [
        pu for pu in runtime.machine.pus.values() if pu.name == "dpu0"
    ]
    baseline = dpu.dram_used_mb
    pool = runtime.invoker.pools[dpu.pu_id]

    def racing_workload():
        yield from runtime.invoke("f", kind=PuKind.DPU)
        # The instance is idle in the pool now.  Destroy it directly
        # WITHOUT removing it from the pool (the mid-race teardown
        # shape), so the TTL reaper later collects the same instance.
        [instance] = pool.idle_instances("f")
        yield from runtime.invoker._destroy(instance)
        assert instance.destroyed

    runtime.run(racing_workload())
    runtime.sim.run()  # reaper TTL fires during the drain
    assert len(pool) == 0
    # Released exactly once: the reservation is back to baseline, not
    # below it (a double release would free DRAM that was never held).
    assert dpu.dram_used_mb == baseline
    # Admission control still works on the clean pool.
    again = runtime.invoke_now("f", kind=PuKind.DPU)
    assert again.pu_name == "dpu0"
    assert len(runtime.dead_letters) == 0
