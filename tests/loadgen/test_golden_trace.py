"""Golden-trace regression: a checked-in arrival trace replayed through
two gateway shards must reproduce byte-identical per-request
(admit time, shard, PU, latency) tuples on every run.

The plan (``data/golden_plan.json``) and the expected tuples
(``data/golden_tuples.json``) are both checked in: the first guards
run-to-run determinism, the second catches any semantic drift in the
admission, routing, scheduling or execution paths.  If a change
*intentionally* alters the timeline (new overhead model, different
placement order), regenerate the tuples file and call the change out
in review.
"""

import json
from pathlib import Path

from repro.loadgen import ArrivalPlan, OpenLoopDriver, build_runtime

DATA = Path(__file__).parent / "data"
GOLDEN_SEED = 1234
GOLDEN_SHARDS = 2


def _load_plan() -> ArrivalPlan:
    return ArrivalPlan.from_json((DATA / "golden_plan.json").read_text())


def _replay(plan: ArrivalPlan):
    runtime, frontend = build_runtime(
        plan, seed=GOLDEN_SEED, shards=GOLDEN_SHARDS
    )
    records = OpenLoopDriver(runtime, plan, frontend).run()
    return [list(r.tuple()) for r in records]


def test_replay_matches_checked_in_tuples():
    plan = _load_plan()
    expected = json.loads((DATA / "golden_tuples.json").read_text())
    actual = _replay(plan)
    assert len(actual) == len(plan)
    assert actual == expected


def test_replay_is_identical_across_runs():
    plan = _load_plan()
    first = _replay(plan)
    second = _replay(plan)
    # Byte-identical, not approximately equal: serialise and compare.
    assert json.dumps(first) == json.dumps(second)


def test_golden_run_uses_both_shards_and_both_pu_kinds():
    """The checked-in trace actually exercises the sharded path: if a
    regression collapsed routing onto one shard or one PU the tuple
    diff should be accompanied by this failing too."""
    tuples = _replay(_load_plan())
    shards = {t[4] for t in tuples}
    pus = {t[5] for t in tuples}
    assert shards == {0, 1}
    assert len(pus) >= 2
