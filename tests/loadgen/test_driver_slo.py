"""Open/closed-loop drivers and the SLO report layer."""

import json

import pytest

from repro.errors import ReproError
from repro.hardware.pu import PuKind
from repro.loadgen import (
    Arrival,
    ArrivalPlan,
    ClosedLoopDriver,
    OpenLoopDriver,
    build_report,
    build_runtime,
    compare_reports,
    format_report,
    latency_block,
    run_load,
    scenario_names,
)
from repro.loadgen.slo import SCHEMA


def _plan(n=30, spacing_s=0.01):
    return ArrivalPlan(
        tuple(
            Arrival(time_s=i * spacing_s, function="thumb")
            for i in range(n)
        ),
        duration_s=n * spacing_s,
    )


def test_open_loop_submits_every_arrival():
    plan = _plan()
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    driver = OpenLoopDriver(runtime, plan, frontend)
    records = driver.run()
    assert driver.submitted == len(plan)
    assert len(records) == len(plan)
    assert all(r.answered for r in records)


def test_open_loop_paces_relative_to_workload_start():
    """Plan times are offsets from the driver start, not absolute sim
    times — boot/deploy time must not collapse the arrival schedule."""
    plan = _plan(n=10, spacing_s=0.5)
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    assert runtime.sim.now > 0  # boot + deploy consumed sim time
    driver = OpenLoopDriver(runtime, plan, frontend)
    records = driver.run()
    offsets = [r.submitted_s - driver.started_s for r in records]
    assert offsets == pytest.approx([a.time_s for a in plan])


def test_open_loop_record_fields_are_populated():
    plan = _plan(n=10)
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    records = OpenLoopDriver(runtime, plan, frontend).run()
    for record in records:
        assert record.function == "thumb"
        assert record.shard in (0, 1)
        assert record.pu
        assert record.latency_s > 0
        assert record.admitted_s >= record.submitted_s
        assert record.attempts >= 1


def test_closed_loop_caps_concurrency():
    plan = _plan(n=40)
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    peak = 0

    orig_begin = type(frontend.shards[0]).begin_request

    def spying_begin(shard):
        nonlocal peak
        orig_begin(shard)
        peak = max(peak, sum(s.outstanding for s in frontend.shards))

    for shard in frontend.shards:
        shard.begin_request = spying_begin.__get__(shard)
    records = ClosedLoopDriver(
        runtime, plan, concurrency=4, frontend=frontend
    ).run()
    assert len(records) == len(plan)
    assert [r.index for r in records] == list(range(len(plan)))
    assert 0 < peak <= 4


def test_closed_loop_rejects_bad_concurrency():
    plan = _plan(n=4)
    runtime, frontend = build_runtime(plan, seed=5, shards=1)
    with pytest.raises(ReproError):
        ClosedLoopDriver(runtime, plan, concurrency=0)


def test_latency_block_percentiles():
    block = latency_block([i / 1000 for i in range(1, 1001)])
    assert block["count"] == 1000
    assert block["p50_ms"] == pytest.approx(500.0)
    assert block["p99_ms"] == pytest.approx(990.0)
    assert block["p999_ms"] == pytest.approx(999.0)
    assert block["max_ms"] == pytest.approx(1000.0)
    assert latency_block([]) == {"count": 0}


def test_report_schema_and_accounting():
    plan = _plan(n=25)
    runtime, frontend = build_runtime(plan, seed=5, shards=2)
    driver = OpenLoopDriver(runtime, plan, frontend)
    records = driver.run()
    report = build_report(
        runtime, plan, records, "unit", params={"n": 25},
        frontend=frontend, elapsed_s=driver.elapsed_s,
    )
    assert report["schema"] == SCHEMA
    load = report["load"]
    assert load["offered"] == 25
    assert load["submitted"] == 25
    assert load["answered"] + load["dead_lettered"] == load["admitted"]
    assert load["lost"] == 0
    assert report["latency"]["end_to_end"]["count"] == 25
    assert set(report["latency"]["stages"]) <= {
        "admit", "schedule", "sandbox_start", "exec", "respond"
    }
    assert len(report["shards"]) == 2
    assert sum(s["admitted"] for s in report["shards"]) == load["admitted"]
    assert {p["pu"] for p in report["pus"]} == {
        pu.name for pu in runtime.machine.pus.values()
    }
    json.dumps(report)  # must be JSON-serialisable
    assert "scenario unit" in format_report(report)


def test_report_utilization_is_windowed():
    plan = _plan(n=25)
    runtime, frontend = build_runtime(plan, seed=5, shards=1)
    baseline = {
        pu_id: pu.clock.busy_time
        for pu_id, pu in runtime.machine.pus.items()
    }
    driver = OpenLoopDriver(runtime, plan, frontend)
    records = driver.run()
    report = build_report(
        runtime, plan, records, "unit", frontend=frontend,
        elapsed_s=driver.elapsed_s, busy_baseline=baseline,
    )
    for pu in report["pus"]:
        assert 0.0 <= pu["utilization"] <= 1.0
    for shard in report["shards"]:
        assert 0.0 <= shard["utilization"] <= 1.0


def test_compare_reports_flags_latency_and_goodput():
    base = {
        "scenario": "s", "params": {"n": 1},
        "load": {"goodput_per_s": 100.0},
        "latency": {"end_to_end": {
            "p50_ms": 10.0, "p95_ms": 20.0, "p99_ms": 30.0, "p999_ms": 40.0,
        }},
    }
    worse = json.loads(json.dumps(base))
    worse["latency"]["end_to_end"]["p99_ms"] = 45.0
    worse["load"]["goodput_per_s"] = 50.0
    regressions = compare_reports(worse, base, threshold=0.2)
    metrics = {r["metric"] for r in regressions}
    assert metrics == {"end_to_end.p99_ms", "load.goodput_per_s"}
    # Different params: no comparison at all.
    worse["params"] = {"n": 2}
    assert compare_reports(worse, base, threshold=0.2) == []


def test_run_load_is_deterministic_and_complete():
    a = run_load("poisson", seed=101, rps=80, duration_s=4.0, shards=2)
    b = run_load("poisson", seed=101, rps=80, duration_s=4.0, shards=2)
    for report in (a, b):
        report.pop("wall_s")
        report.pop("host")
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["load"]["answered"] + a["load"]["dead_lettered"] == (
        a["load"]["admitted"]
    )


def test_run_load_unknown_scenario():
    with pytest.raises(ReproError):
        run_load("nope", quick=True)
    assert scenario_names() == [
        "azure", "burst", "diurnal", "fanout", "overload", "poisson", "zipf"
    ]


def test_run_load_closed_mode():
    report = run_load(
        "poisson", seed=7, rps=50, duration_s=2.0, shards=2,
        mode="closed", concurrency=8,
    )
    assert report["params"]["mode"] == "closed"
    assert report["params"]["concurrency"] == 8
    assert report["load"]["answered"] == report["load"]["offered"]
