"""Tests for the ablation studies."""

import pytest

from repro.analysis import ablations


def test_transport_ablation_covers_all_pairs():
    rows = ablations.xpucall_transport_ablation()
    assert len(rows) == 9  # 3 PUs x 3 transports
    by_key = {(r.pu, r.transport): r.round_trip_us for r in rows}
    # On every PU the ordering base > mpsc > poll holds.
    for pu in ("cpu", "bf1", "bf2"):
        assert by_key[(pu, "fifo")] > by_key[(pu, "mpsc")] > by_key[(pu, "mpsc_poll")]
    # The optimisation matters most where notifies are dearest.
    gain_bf1 = by_key[("bf1", "fifo")] / by_key[("bf1", "mpsc_poll")]
    gain_cpu = by_key[("cpu", "fifo")] / by_key[("cpu", "mpsc_poll")]
    assert gain_bf1 == pytest.approx(gain_cpu, rel=0.3) or gain_bf1 > gain_cpu


def test_sync_strategy_ablation():
    result = ablations.sync_strategy_ablation(num_dpus=2)
    assert result.static_partition_us == 0.0
    assert result.lazy_us == 0.0  # off the critical path
    assert result.immediate_us > 10.0  # a real cross-PU round


def test_sync_immediate_grows_with_peers():
    one = ablations.sync_strategy_ablation(num_dpus=1)
    two = ablations.sync_strategy_ablation(num_dpus=2)
    assert two.immediate_us >= one.immediate_us


def test_keepalive_ablation_hit_rate_grows_with_capacity():
    rows = ablations.keepalive_ablation(capacities=(1, 4), functions_count=4, rounds=4)
    small, large = rows[0], rows[1]
    assert large.hit_rate > small.hit_rate
    assert large.mean_latency_ms < small.mean_latency_ms


def test_dag_direct_vs_bus():
    result = ablations.dag_direct_vs_bus()
    assert result.bus_total_ms > result.direct_total_ms
    assert 1.0 < result.improvement < 1.5
