"""Tests for the span tracer."""

import pytest

from repro.analysis.trace import TraceError, Tracer
from repro.sim import Simulator


def test_span_records_simulated_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc(sim):
        with tracer.span("request"):
            yield sim.timeout(2.0)

    sim.spawn(proc(sim))
    sim.run()
    [span] = tracer.roots
    assert span.name == "request"
    assert span.duration_s == pytest.approx(2.0)


def test_nested_spans_and_self_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc(sim):
        with tracer.span("request"):
            with tracer.span("startup"):
                yield sim.timeout(1.0)
            with tracer.span("exec"):
                yield sim.timeout(3.0)
            yield sim.timeout(0.5)

    sim.spawn(proc(sim))
    sim.run()
    [root] = tracer.roots
    assert [c.name for c in root.children] == ["startup", "exec"]
    assert root.duration_s == pytest.approx(4.5)
    assert root.self_time_s() == pytest.approx(0.5)


def test_attributes_recorded():
    tracer = Tracer(Simulator())
    with tracer.span("exec", pu="dpu0", cold=True) as span:
        pass
    assert span.attributes == {"pu": "dpu0", "cold": True}


def test_find_by_name():
    tracer = Tracer(Simulator())
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("b"):
            pass
    assert len(tracer.find("b")) == 2
    assert tracer.find("zzz") == []


def test_mismatched_end_rejected():
    tracer = Tracer(Simulator())
    outer = tracer.begin("outer")
    tracer.begin("inner")
    with pytest.raises(TraceError):
        tracer.end(outer)


def test_double_end_rejected():
    tracer = Tracer(Simulator())
    span = tracer.begin("s")
    tracer.end(span)
    with pytest.raises(TraceError):
        tracer.end(span)


def test_open_span_duration_rejected():
    tracer = Tracer(Simulator())
    span = tracer.begin("s")
    with pytest.raises(TraceError):
        _ = span.duration_s
    assert span.open


def test_render_produces_indented_tree():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc(sim):
        with tracer.span("request"):
            with tracer.span("exec"):
                yield sim.timeout(1.0)

    sim.spawn(proc(sim))
    sim.run()
    text = tracer.render()
    lines = text.splitlines()
    assert lines[0].startswith("request")
    assert lines[1].startswith("  exec")
    assert "ms" in lines[1]
