"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.charts import ChartError, bar_chart, line_chart, speedup_chart


def test_bar_chart_scales_to_max():
    out = bar_chart({"a": 10.0, "b": 20.0}, width=20)
    lines = out.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 20
    assert "20" in lines[1]


def test_bar_chart_log_scale_compresses():
    out = bar_chart({"tiny": 1.0, "huge": 1000.0}, width=30, log_scale=True)
    tiny_line, huge_line = out.splitlines()
    assert 0 <= tiny_line.count("#") <= 2
    assert huge_line.count("#") == 30


def test_bar_chart_validation():
    with pytest.raises(ChartError):
        bar_chart({})
    with pytest.raises(ChartError):
        bar_chart({"a": -1.0})


def test_bar_chart_zero_value_has_no_bar():
    out = bar_chart({"zero": 0.0, "one": 1.0})
    assert out.splitlines()[0].count("#") == 0


def test_line_chart_legend_and_bounds():
    out = line_chart(
        {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
        x_labels=["start", "end"],
        height=6,
        width=24,
    )
    assert "a = up" in out and "b = down" in out
    assert "start .. end" in out
    assert out.splitlines()[0].lstrip().startswith("3")


def test_line_chart_validation():
    with pytest.raises(ChartError):
        line_chart({}, x_labels=[0, 1])
    with pytest.raises(ChartError):
        line_chart({"a": [1.0], "b": [1.0, 2.0]}, x_labels=[0, 1])


def test_line_chart_constant_series():
    out = line_chart({"flat": [5.0, 5.0, 5.0]}, x_labels=[0, 2], height=4, width=10)
    assert "a = flat" in out


def test_speedup_chart_annotates_ratio():
    out = speedup_chart({"alexa": (38.6, 19.3)})
    assert "(2.00x)" in out
    assert "base" in out and "ours" in out


def test_speedup_chart_validation():
    with pytest.raises(ChartError):
        speedup_chart({})
    with pytest.raises(ChartError):
        speedup_chart({"bad": (1.0, 0.0)})


def test_cli_plot_command(capsys):
    from repro.cli import main

    assert main(["plot", "fig2a"]) == 0
    out = capsys.readouterr().out
    assert "=== fig2a ===" in out and "#" in out


def test_cli_plot_unknown_figure(capsys):
    from repro.cli import main

    assert main(["plot", "nope"]) == 2
    assert "unknown figure" in capsys.readouterr().err
