"""Reproduction tests: every experiment must match the paper's *shape*
(who wins, by roughly what factor, where crossovers fall)."""

import pytest

from repro.analysis import experiments as ex


# -- Fig. 2 -------------------------------------------------------------------


def test_fig2a_density_exact():
    result = ex.fig2a_density()
    assert result.measured == result.paper


def test_fig2b_matrix_speedups_in_band():
    result = ex.fig2b_fpga_matrix()
    low, high = result.paper_speedup
    for row in result.rows:
        assert low - 0.1 <= row.speedup <= high + 0.1
    vmult = next(r for r in result.rows if r.name == "vmult")
    assert vmult.cpu_us == pytest.approx(3551.0, rel=0.01)


# -- Fig. 8 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def nipc():
    return ex.fig8_nipc(sizes=(16, 256, 2048))


def test_fig8_nipc_range_25_to_150us(nipc):
    all_nipc = [
        value
        for name in ("nIPC-Base", "nIPC-MPSC", "nIPC-Poll")
        for value in nipc.series[name].values()
    ]
    assert min(all_nipc) > 20.0
    assert max(all_nipc) < 150.0


def test_fig8_transport_ordering(nipc):
    for size in (16, 256, 2048):
        assert (
            nipc.series["nIPC-Base"][size]
            > nipc.series["nIPC-MPSC"][size]
            > nipc.series["nIPC-Poll"][size]
        )


def test_fig8_poll_beats_linux_dpu(nipc):
    for size in (16, 256, 2048):
        assert nipc.series["nIPC-Poll"][size] < nipc.series["Linux (DPU)"][size] + 1.0


def test_fig8_poll_slower_than_linux_cpu(nipc):
    for size in (16, 256, 2048):
        ratio = nipc.series["nIPC-Poll"][size] / nipc.series["Linux (CPU)"][size]
        assert 1.3 < ratio < 6.0


def test_fig8_base_vs_linux_dpu_ratio(nipc):
    # paper: 1.6x-2.8x; we allow a wider band at tiny messages.
    for size in (256, 2048):
        ratio = nipc.series["nIPC-Base"][size] / nipc.series["Linux (DPU)"][size]
        assert 1.5 < ratio < 4.0


def test_fig8_latency_grows_with_size(nipc):
    for name, series in nipc.series.items():
        assert series[2048] > series[16]


# -- Fig. 9 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def commercial():
    return ex.fig9_commercial()


def test_fig9_startup_ordering(commercial):
    lam = commercial.row("aws-lambda").startup_ms
    ow = commercial.row("openwhisk").startup_ms
    homo = commercial.row("molecule-homo").startup_ms
    mol = commercial.row("molecule").startup_ms
    assert lam > ow > homo > mol


def test_fig9_molecule_30_to_80x_faster_startup(commercial):
    # paper: 37-46x; our cfork is slightly faster.
    mol = commercial.row("molecule").startup_ms
    for system in ("aws-lambda", "openwhisk"):
        ratio = commercial.row(system).startup_ms / mol
        assert 30.0 < ratio < 90.0


def test_fig9_homo_5_to_8x_faster_startup(commercial):
    homo = commercial.row("molecule-homo").startup_ms
    for system in ("aws-lambda", "openwhisk"):
        ratio = commercial.row(system).startup_ms / homo
        assert 4.0 < ratio < 9.0


def test_fig9_molecule_comm_sub_ms_and_60x_plus(commercial):
    mol = commercial.row("molecule").comm_ms
    assert mol < 1.0  # "<1ms" label of Fig. 9b
    assert commercial.row("openwhisk").comm_ms / mol > 50.0
    assert commercial.row("aws-lambda").comm_ms / mol > 200.0


def test_fig9_homo_comm_3_to_20x(commercial):
    homo = commercial.row("molecule-homo").comm_ms
    ow_ratio = commercial.row("openwhisk").comm_ms / homo
    lam_ratio = commercial.row("aws-lambda").comm_ms / homo
    assert 2.5 < ow_ratio < 8.0
    assert 10.0 < lam_ratio < 25.0


# -- Fig. 10 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def startup():
    return ex.fig10_startup()


def test_fig10_cfork_beats_baseline_everywhere(startup):
    for row in startup.rows:
        assert row.cfork_local_ms < row.baseline_local_ms / 5.0


def test_fig10_remote_cfork_adds_1_to_3ms(startup):
    for row in startup.rows:
        extra = row.cfork_xpu_ms - row.cfork_local_ms
        assert 0.5 < extra < 3.5


def test_fig10_dpu_baseline_4_to_7x_cpu(startup):
    cpu = next(r for r in startup.rows if r.pu == "cpu" and r.language == "python")
    dpu = next(r for r in startup.rows if r.pu == "dpu-bf1" and r.language == "python")
    assert 4.0 < dpu.baseline_local_ms / cpu.baseline_local_ms < 7.0


def test_fig10_nodejs_slower_than_python(startup):
    py = next(r for r in startup.rows if r.pu == "cpu" and r.language == "python")
    js = next(r for r in startup.rows if r.pu == "cpu" and r.language == "nodejs")
    assert js.baseline_local_ms > py.baseline_local_ms


def test_fig10c_fpga_stages(startup):
    by_name = {row.configuration: row.seconds for row in startup.fpga_rows}
    assert by_name["baseline (erase+load+prep)"] > 20.0
    assert by_name["no-erase"] == pytest.approx(3.85, abs=0.1)
    assert by_name["warm-image"] == pytest.approx(1.95, abs=0.1)
    assert by_name["warm-sandbox"] == pytest.approx(0.053, abs=0.005)


# -- Fig. 11 -----------------------------------------------------------------------


def test_fig11a_breakdown_matches_paper_exactly():
    result = ex.fig11a_cfork_breakdown()
    for stage, paper_value in result.paper_ms.items():
        assert result.measured_ms[stage] == pytest.approx(paper_value, rel=0.001)


def test_fig11bc_memory_curves():
    result = ex.fig11bc_memory()
    # Molecule RSS higher (template resources), Fig. 11b.
    for base, mol in zip(result.baseline_rss, result.molecule_rss):
        assert mol > base
    # Molecule PSS drops with instance count; ~25-45% lower at 16.
    assert result.molecule_pss[-1] < result.molecule_pss[0]
    assert 0.25 < result.pss_saving_at_max < 0.45


# -- Fig. 12 -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def dag_comm():
    return ex.fig12_dag_comm()


def test_fig12_cases_present(dag_comm):
    assert {c.case for c in dag_comm.cases} == {
        "CPU to CPU",
        "DPU to DPU",
        "CPU to DPU",
        "DPU to CPU",
    }


def test_fig12_improvements_10_to_30x(dag_comm):
    # paper: 10-18x; our calibration lands slightly above for cross-PU.
    for case in dag_comm.cases:
        for speedup in case.speedups:
            assert 10.0 < speedup < 30.0


def test_fig12_molecule_edges_sub_ms(dag_comm):
    for case in dag_comm.cases:
        for edge_ms in case.molecule_ms:
            assert edge_ms < 1.0


def test_fig12_baseline_edges_milliseconds(dag_comm):
    for case in dag_comm.cases:
        for edge_ms in case.baseline_ms:
            assert edge_ms > 2.0


# -- Fig. 13 -----------------------------------------------------------------------


def test_fig13_shm_beats_copying_increasingly():
    result = ex.fig13_fpga_chain()
    assert result.copying_us[0] == pytest.approx(result.shm_us[0], rel=0.01)
    assert 1.5 < result.speedup_at_max < 2.5
    # Monotone growth with chain length.
    assert result.copying_us == sorted(result.copying_us)
    assert result.shm_us == sorted(result.shm_us)


# -- Fig. 14a-d --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fb_cold_cpu():
    return ex.fig14_functionbench("cold_cpu")


def test_fig14a_baselines_close_to_paper(fb_cold_cpu):
    for row in fb_cold_cpu.rows:
        assert row.baseline_ms == pytest.approx(row.paper_baseline_ms, rel=0.20)


def test_fig14a_speedups_in_paper_band(fb_cold_cpu):
    speedups = [row.speedup for row in fb_cold_cpu.rows]
    assert 1.0 <= min(speedups) < 2.0   # video_processing ~1.01x
    assert 4.0 < max(speedups) < 13.0   # matmul ~11x


def test_fig14a_video_processing_barely_improves(fb_cold_cpu):
    assert fb_cold_cpu.row("video_processing").speedup < 1.05


def test_fig14b_warm_equal_for_both(fb_cold_cpu):
    warm = ex.fig14_functionbench("warm_cpu")
    for row in warm.rows:
        assert row.speedup == pytest.approx(1.0, abs=0.05)
        assert row.baseline_ms == pytest.approx(row.paper_baseline_ms, rel=0.35)


def test_fig14c_bf1_4_to_7x_slower_than_cpu(fb_cold_cpu):
    bf1 = ex.fig14_functionbench("cold_bf1")
    for row_cpu, row_bf1 in zip(fb_cold_cpu.rows, bf1.rows):
        ratio = row_bf1.baseline_ms / row_cpu.baseline_ms
        assert 4.0 <= ratio <= 7.0


def test_fig14d_bf2_3_to_4x_faster_than_bf1():
    bf1 = ex.fig14_functionbench("cold_bf1")
    bf2 = ex.fig14_functionbench("cold_bf2")
    for row1, row2 in zip(bf1.rows, bf2.rows):
        ratio = row1.baseline_ms / row2.baseline_ms
        assert 3.0 <= ratio <= 6.0


def test_fig14_unknown_variant_rejected():
    with pytest.raises(ValueError):
        ex.fig14_functionbench("bogus")


# -- Fig. 14e -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chains():
    return ex.fig14e_chains()


def test_fig14e_alexa_improvement(chains):
    # paper: 2.04-2.47x; our hop calibration lands at ~1.9-2.1x.
    for case in ("CPU", "DPU", "CrossPU"):
        assert 1.7 < chains.row("alexa", case).speedup < 2.6


def test_fig14e_mapreduce_improvement(chains):
    # paper: 3.70-4.47x; ours ~3.0-3.6x.
    for case in ("CPU", "DPU", "CrossPU"):
        assert 2.7 < chains.row("mapreduce", case).speedup < 4.7


def test_fig14e_alexa_cpu_baseline_matches_paper_label(chains):
    assert chains.row("alexa", "CPU").baseline_ms == pytest.approx(38.6, rel=0.05)
    assert chains.row("mapreduce", "CPU").baseline_ms == pytest.approx(20.0, rel=0.05)


# -- Fig. 14f/g/h --------------------------------------------------------------------


def test_fig14f_gzip_crossover_and_speedup():
    result = ex.fig14f_gzip()
    assert result.crossover_input is not None
    assert 10.0 <= result.crossover_input <= 30.0  # paper: ~25MB
    assert 4.0 < result.speedup_at(-1) < 9.0       # paper: up to 8.3x


def test_fig14f_cpu_wins_tiny_files():
    result = ex.fig14f_gzip(sizes_mb=(0.001, 112.0))
    assert result.cpu_ms[0] < result.fpga_ms[0]


def test_fig14g_aml_speedup_grows():
    result = ex.fig14g_aml()
    speedups = [result.speedup_at(i) for i in range(len(result.inputs))]
    assert speedups == sorted(speedups)
    assert 3.5 < speedups[0] < 6.0    # paper: 4.7x at 6K
    assert 25.0 < speedups[-1] < 40.0  # paper: 34.6x at 6M


def test_fig14h_matrix_2_to_3x():
    result = ex.fig14h_matrix()
    assert 2.2 < result.speedup_at(0) < 3.2  # paper: 2.8x


# -- Tables / Fig. 15 ---------------------------------------------------------------------


def test_table4_exact_wrapper_resources():
    result = ex.table4_fpga_resources()
    for key, paper_value in result.paper_wrapper.items():
        assert result.wrapper[key] == pytest.approx(paper_value, rel=0.001)
    for key, paper_value in result.paper_fractions.items():
        assert result.fractions[key] == pytest.approx(paper_value, abs=0.003)


def test_table5_generality_matrix():
    matrix = ex.table5_generality()
    kinds = {row["kind"] for row in matrix.values()}
    assert kinds == {"cpu", "dpu", "fpga", "gpu"}
    gpu_row = next(r for r in matrix.values() if r["kind"] == "gpu")
    assert gpu_row["vectorized_sandbox"].startswith("runG")
    assert gpu_row["programming_model"] == "CUDA C++"


def test_fig15_molecule_unique_position():
    points = ex.fig15_design_space()
    molecule = next(p for p in points if p.system == "molecule")
    assert molecule.startup_class == "extreme"
    assert molecule.cross_pu_comm == "nipc"
    others = [p for p in points if p.system != "molecule"]
    assert all(p.cross_pu_comm != "nipc" for p in others)
