"""Tests for statistics and report formatting."""

import pytest

from repro.analysis import (
    LatencyStats,
    format_artifact_block,
    format_comparison,
    format_table,
    normalized,
    percentile,
)


def test_percentile_nearest_rank():
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50
    assert percentile(samples, 99) == 99
    assert percentile(samples, 100) == 100
    assert percentile(samples, 0) == 1


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_latency_stats_summary():
    stats = LatencyStats()
    stats.extend([1.0, 2.0, 3.0, 4.0])
    summary = stats.summary()
    assert summary.avg == pytest.approx(2.5)
    assert summary.p50 == 2.0
    assert summary.p99 == 4.0
    assert len(summary.as_row()) == 6


def test_latency_stats_empty_mean_raises():
    with pytest.raises(ValueError):
        LatencyStats().mean()


def test_latency_stats_samples_copy():
    stats = LatencyStats()
    stats.add(1.0)
    samples = stats.samples
    samples.append(99.0)
    assert len(stats) == 1


def test_format_table_aligns():
    out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "long-name" in lines[3]
    assert lines[0].startswith("name")


def test_format_artifact_block_shape():
    stats = LatencyStats(unit="ms")
    stats.extend([6.4, 5.0, 8.0, 9.0])
    block = format_artifact_block("fork-startup result", stats)
    assert "fork-startup result" in block
    assert "latency (ms):" in block
    assert "avg" in block and "99%" in block


def test_format_comparison_computes_speedup():
    out = format_comparison("startup", [("case-a", 100.0, 10.0)])
    assert "10.00x" in out
    assert "case-a" in out


def test_normalized():
    assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
    with pytest.raises(ValueError):
        normalized([1.0], 0.0)
