"""Tests for the conformance suite."""

import pytest

from repro.analysis.validation import (
    Claim,
    ClaimResult,
    scorecard,
    validate_all,
)


@pytest.fixture(scope="module")
def results():
    return validate_all()


def test_all_claims_pass(results):
    failing = [r for r in results if not r.passed]
    assert not failing, f"failing claims: {[r.claim_id for r in failing]}"


def test_claim_coverage(results):
    # Every evaluation figure/table with a quantitative claim is covered.
    ids = {r.claim_id for r in results}
    for prefix in ("fig2a", "fig2b", "fig8", "fig9", "fig10", "fig11",
                   "fig12", "fig13", "fig14a", "fig14e", "fig14f",
                   "fig14g", "table4"):
        assert any(claim_id.startswith(prefix) for claim_id in ids), prefix


def test_scorecard_format(results):
    text = scorecard(results)
    assert "[PASS]" in text
    assert f"{len(results)}/{len(results)} claims hold" in text


def test_failing_claim_reported_not_raised():
    def boom():
        raise RuntimeError("broken probe")

    claim = Claim("x", "always fails", boom)
    from repro.analysis import validation

    result = validation.ClaimResult("x", "s", passed=False)
    # Run through the machinery by monkey-patching the claim list.
    original = validation._claims
    validation._claims = lambda: [claim]
    try:
        [outcome] = validation.validate_all()
    finally:
        validation._claims = original
    assert not outcome.passed
    assert "RuntimeError" in outcome.error
    assert "[FAIL]" in scorecard([outcome])


def test_cli_validate_exit_code(capsys):
    from repro.cli import main

    assert main(["validate"]) == 0
    out = capsys.readouterr().out
    assert "claims hold" in out
