"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.analysis.writeup import generate


@pytest.fixture(scope="module")
def report():
    return generate()


def test_every_figure_and_table_sectioned(report):
    for section in (
        "Figure 2a", "Figure 2b", "Figure 8", "Figure 9", "Figure 10",
        "Figure 11a", "Figure 11b/c", "Figure 12", "Figure 13",
        "Figure 14 (cold_cpu)", "Figure 14 (warm_cpu)",
        "Figure 14 (cold_bf1)", "Figure 14 (cold_bf2)", "Figure 14e",
        "Figure 14f", "Figure 14g", "Figure 14h", "Table 4", "Table 5",
        "Figure 15", "Ablations", "Conformance scorecard",
    ):
        assert section in report, f"missing section: {section}"


def test_report_contains_paper_anchor_numbers(report):
    for anchor in ("1512", "85.55", "47.25", "30.05", "8.40", "119,516", "38254"):
        assert anchor in report, f"missing anchor: {anchor}"


def test_scorecard_embedded_and_green(report):
    assert "19/19 claims hold" in report


def test_report_is_deterministic():
    assert generate() == generate()


def test_report_is_valid_markdown_tables(report):
    # Every table row line has balanced pipes.
    for line in report.splitlines():
        if line.startswith("|"):
            assert line.endswith("|"), line
