"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.hardware import build_cpu_dpu_machine, build_full_machine
from repro.multios import OsInstance
from repro.sim import Simulator
from repro.xpu import ShimCluster


class Testbed:
    """A wired-up machine: PUs + OSes + XPU-Shim cluster."""

    def __init__(self, sim, machine, cluster, oses):
        self.sim = sim
        self.machine = machine
        self.cluster = cluster
        self.oses = oses  # pu_id -> OsInstance

    def run(self, gen):
        """Spawn a generator, run to completion, return its value."""
        proc = self.sim.spawn(gen)
        self.sim.run()
        return proc.value


def build_testbed(num_dpus: int = 1, dpu_model: str = "bf1", full: bool = False) -> Testbed:
    """A CPU+DPU (optionally +FPGA/GPU) machine with shims installed."""
    sim = Simulator()
    if full:
        machine = build_full_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
    else:
        machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
    cluster = ShimCluster(sim, machine)
    oses = {}
    for pu in machine.general_purpose_pus():
        os_instance = OsInstance(sim, pu)
        oses[pu.pu_id] = os_instance
        cluster.install(pu, os_instance)
    host_shim = cluster.shim_on(machine.host_cpu.pu_id)
    for pu in machine.pus.values():
        if not pu.is_general_purpose:
            cluster.install_virtual(pu, host_shim)
    return Testbed(sim, machine, cluster, oses)
