"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.hardware import build_cpu_dpu_machine, build_full_machine
from repro.multios import OsInstance
from repro.sim import Simulator
from repro.xpu import ShimCluster


class Testbed:
    """A wired-up machine: PUs + OSes + XPU-Shim cluster."""

    def __init__(self, sim, machine, cluster, oses):
        self.sim = sim
        self.machine = machine
        self.cluster = cluster
        self.oses = oses  # pu_id -> OsInstance

    def run(self, gen):
        """Spawn a generator, run to completion, return its value."""
        proc = self.sim.spawn(gen)
        self.sim.run()
        return proc.value


#: Seed pinned by the golden-seed determinism test; the checked-in
#: snapshot at ``tests/sim/data/golden_seed_snapshot.json`` was taken
#: at this seed with the pre-fast-path kernel.
GOLDEN_SEED = 20260806


def golden_seed_snapshot(seed: int = GOLDEN_SEED) -> dict:
    """A canned deterministic workload whose metrics snapshot must stay
    byte-identical across kernel changes.

    Combines two fault scenarios (crash/retry/deadline races exercise
    interrupts, ``any_of`` conditions and seeded jitter) with a plain
    cold/fork/warm invocation mix, so the snapshot covers every event
    path the kernel fast paths touch.
    """
    from repro import (
        FunctionCode,
        FunctionDef,
        Language,
        MoleculeRuntime,
        PuKind,
        WorkProfile,
    )
    from repro.faults.scenarios import run_scenario

    crash = run_scenario("dpu-crash", seed=seed)
    nipc = run_scenario("flaky-nipc", seed=seed)

    molecule = MoleculeRuntime.create(num_dpus=1, seed=seed)
    hello = FunctionDef(
        name="hello",
        code=FunctionCode("hello", language=Language.PYTHON, import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(hello)
    molecule.invoke_now("hello", kind=PuKind.CPU)
    molecule.invoke_now("hello", kind=PuKind.CPU)
    molecule.invoke_now("hello", kind=PuKind.DPU)
    molecule.invoke_now("hello", force_cold=True)

    return {
        "seed": seed,
        "dpu_crash": crash["snapshot"],
        "flaky_nipc": nipc["snapshot"],
        "warm_cold_mix": molecule.metrics_snapshot(),
    }


def build_testbed(num_dpus: int = 1, dpu_model: str = "bf1", full: bool = False) -> Testbed:
    """A CPU+DPU (optionally +FPGA/GPU) machine with shims installed."""
    sim = Simulator()
    if full:
        machine = build_full_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
    else:
        machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
    cluster = ShimCluster(sim, machine)
    oses = {}
    for pu in machine.general_purpose_pus():
        os_instance = OsInstance(sim, pu)
        oses[pu.pu_id] = os_instance
        cluster.install(pu, os_instance)
    host_shim = cluster.shim_on(machine.host_cpu.pu_id)
    for pu in machine.pus.values():
        if not pu.is_general_purpose:
            cluster.install_virtual(pu, host_shim)
    return Testbed(sim, machine, cluster, oses)
