"""Tests for the Molecule-homo baseline."""

import pytest

from repro import FunctionCode, FunctionDef, Language, PuKind, WorkProfile
from repro.baselines import MoleculeHomo
from repro.errors import SchedulingError
from repro.hardware import specs
from repro.workloads import serverlessbench


def fn(name="f", warm_ms=10.0, language=Language.PYTHON, import_ms=0.0):
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=language, import_ms=import_ms),
        work=WorkProfile(warm_exec_ms=warm_ms),
        profiles=(PuKind.CPU, PuKind.DPU),
    )


def test_cold_start_is_full_container_boot():
    homo = MoleculeHomo()
    homo.deploy(fn())
    result = homo.invoke_now("f")
    assert result.cold
    # container create + python boot ~171ms on the reference CPU
    assert 0.150 < result.startup_s < 0.200


def test_warm_start_reuses_instance():
    homo = MoleculeHomo()
    homo.deploy(fn())
    homo.invoke_now("f")
    warm = homo.invoke_now("f")
    assert not warm.cold
    assert warm.startup_s == pytest.approx(0.0)


def test_force_cold():
    homo = MoleculeHomo()
    homo.deploy(fn())
    homo.invoke_now("f")
    assert homo.invoke_now("f", force_cold=True).cold


def test_on_dpu_everything_slower():
    cpu = MoleculeHomo(pu_spec=specs.XEON_8160)
    cpu.deploy(fn())
    dpu = MoleculeHomo(pu_spec=specs.BLUEFIELD1)
    dpu.deploy(fn())
    assert dpu.invoke_now("f").total_s > 4 * cpu.invoke_now("f").total_s


def test_exec_time_override():
    homo = MoleculeHomo()
    homo.deploy(fn())
    homo.invoke_now("f")
    result = homo.invoke_now("f", exec_time_s=0.5)
    assert result.exec_s == pytest.approx(0.5)


def test_chain_uses_http_hops():
    homo = MoleculeHomo()
    for function in serverlessbench.alexa_functions():
        homo.deploy(function)
    result = homo.run_chain_now(serverlessbench.alexa_chain())
    # Fig. 14e: baseline Alexa on CPU is ~38.6ms.
    assert 36.0 < result.total_s / 1e-3 < 41.0
    assert len(result.edge_latencies_s) == 4
    # Express hops are milliseconds, not the microseconds of IPC.
    for edge in result.edge_latencies_s:
        assert edge > 2e-3


def test_mapreduce_chain_cpu_total():
    homo = MoleculeHomo()
    for function in serverlessbench.mapreduce_functions():
        homo.deploy(function)
    result = homo.run_chain_now(serverlessbench.mapreduce_chain())
    # Fig. 14e: baseline MapReduce on CPU is ~20.0ms.
    assert 18.0 < result.total_s / 1e-3 < 22.0


def test_flask_hops_cost_more_than_express():
    homo = MoleculeHomo()
    for function in serverlessbench.alexa_functions():
        homo.deploy(function)
    for function in serverlessbench.mapreduce_functions():
        homo.deploy(function)
    alexa = homo.run_chain_now(serverlessbench.alexa_chain())
    mapreduce = homo.run_chain_now(serverlessbench.mapreduce_chain())
    assert mapreduce.edge_latencies_s[0] > alexa.edge_latencies_s[0]


def test_cross_pu_edges_cost_more():
    homo = MoleculeHomo()
    for function in serverlessbench.alexa_functions():
        homo.deploy(function)
    local = homo.run_chain_now(serverlessbench.alexa_chain())
    cross = homo.run_chain_now(
        serverlessbench.alexa_chain(), cross_pu_edges=[True] * 4
    )
    assert cross.total_s > local.total_s


def test_cross_pu_edges_length_checked():
    homo = MoleculeHomo()
    for function in serverlessbench.alexa_functions():
        homo.deploy(function)
    with pytest.raises(SchedulingError):
        homo.run_chain_now(serverlessbench.alexa_chain(), cross_pu_edges=[True])


def test_commercial_models_sample_within_jitter():
    from repro.baselines import aws_lambda, openwhisk

    lam = aws_lambda()
    ow = openwhisk()
    assert 1100 < lam.mean_startup_ms() < 1500
    assert 900 < ow.mean_startup_ms() < 1200
    assert lam.mean_comm_ms() > ow.mean_comm_ms()


def test_commercial_models_deterministic_given_seed():
    from repro.baselines import aws_lambda
    from repro.sim import SeededRng

    a = aws_lambda(rng=SeededRng(5))
    b = aws_lambda(rng=SeededRng(5))
    assert a.sample() == b.sample()
