"""Tests for snapshot-based startup (the fork alternative, §6.7)."""

import pytest

from repro.errors import SandboxError
from repro.hardware import ProcessingUnit, specs
from repro.multios import CpusetLockMode, OsInstance
from repro.sandbox import FunctionCode, Language, RuncRuntime, SandboxState
from repro.sandbox.snapshot import SnapshotManager
from repro.sim import Simulator

PROBE = FunctionCode("probe", language=Language.PYTHON, memory_mb=60.0)


def make():
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "cpu", specs.XEON_8160)
    os_instance = OsInstance(sim, pu, cpuset_lock=CpusetLockMode.MUTEX)
    runc = RuncRuntime(sim, os_instance)
    return sim, runc, SnapshotManager(runc)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def warm_instance(sim, runc, sandbox_id="warm"):
    run(sim, runc.create(sandbox_id, PROBE))
    return run(sim, runc.start(sandbox_id))


def test_checkpoint_requires_running_instance():
    sim, runc, snap = make()
    run(sim, runc.create("s", PROBE))
    with pytest.raises(Exception):
        run(sim, snap.checkpoint("s"))  # created but not started


def test_checkpoint_then_restore_roundtrip():
    sim, runc, snap = make()
    warm_instance(sim, runc)
    snapshot = run(sim, snap.checkpoint("warm"))
    assert snapshot.image_mb > 0
    assert snap.snapshot_for("probe") is snapshot
    restored = run(sim, snap.restore("r1", PROBE))
    assert restored.state is SandboxState.RUNNING
    assert restored.backend.process.alive
    assert snap.checkpoints == 1 and snap.restores == 1


def test_restore_without_snapshot_rejected():
    sim, runc, snap = make()
    with pytest.raises(SandboxError):
        run(sim, snap.restore("r1", PROBE))


def test_restore_faster_than_cold_boot_slower_than_cfork():
    # Fig. 15 placement: snapshots are "fast" (tens of ms), cfork is
    # "extreme" (<=10ms on the desktop, ~17ms on the server CPU).
    sim, runc, snap = make()
    warm_instance(sim, runc)
    run(sim, snap.checkpoint("warm"))

    begin = sim.now
    run(sim, snap.restore("r1", PROBE))
    restore_time = sim.now - begin

    sim2, runc2, _ = make()
    begin = sim2.now
    warm_instance(sim2, runc2)
    cold_time = sim2.now - begin

    sim3, runc3, _ = make()
    run(sim3, runc3.ensure_template(Language.PYTHON, dedicated_to=PROBE))
    run(sim3, runc3.prepare_containers(1))
    begin = sim3.now
    run(sim3, runc3.cfork("c", PROBE))
    cfork_time = sim3.now - begin

    assert cfork_time < restore_time < cold_time


def test_restored_memory_is_private_no_pss_sharing():
    # Unlike cfork children, restored instances share nothing.
    sim, runc, snap = make()
    warm_instance(sim, runc)
    run(sim, snap.checkpoint("warm"))
    a = run(sim, snap.restore("r1", PROBE)).backend.process
    b = run(sim, snap.restore("r2", PROBE)).backend.process
    assert a.memory.pss_mb == pytest.approx(a.memory.rss_mb)
    assert b.memory.pss_mb == pytest.approx(b.memory.rss_mb)


def test_restore_cost_scales_with_image_size():
    sim, runc, snap = make()
    warm_instance(sim, runc)
    # Inflate the instance before checkpointing.
    runc.get("warm").backend.process.memory.allocate_private(500.0)
    run(sim, snap.checkpoint("warm"))
    begin = sim.now
    run(sim, snap.restore("r1", PROBE))
    big_restore = sim.now - begin

    sim2, runc2, snap2 = make()
    warm_instance(sim2, runc2)
    run(sim2, snap2.checkpoint("warm"))
    begin = sim2.now
    run(sim2, snap2.restore("r1", PROBE))
    small_restore = sim2.now - begin
    assert big_restore > small_restore
