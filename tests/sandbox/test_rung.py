"""Tests for the runG GPU runtime (§6.8 generality)."""

import pytest

from repro.errors import SandboxError, SandboxStateError
from repro.hardware import FabricResources, KernelSpec, ProcessingUnit, specs
from repro.sandbox import FunctionCode, RungRuntime, SandboxState
from repro.sandbox import rung
from repro.sim import Simulator


def gpu_fn(name, exec_us=200.0):
    return FunctionCode(
        func_id=name,
        kernel=KernelSpec(name=name, resources=FabricResources(), exec_time_s=exec_us * 1e-6),
    )


def make_runtime():
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "gpu0", specs.GENERIC_GPU)
    return sim, RungRuntime(sim, pu)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_requires_gpu_pu():
    sim = Simulator()
    cpu = ProcessingUnit(sim, 0, "cpu0", specs.XEON_8160)
    with pytest.raises(SandboxError):
        RungRuntime(sim, cpu)


def test_create_start_invoke_lifecycle():
    sim, runtime = make_runtime()
    run(sim, runtime.create("g1", gpu_fn("vecadd")))
    sandbox = run(sim, runtime.start("g1"))
    assert sandbox.state is SandboxState.RUNNING
    assert sandbox.backend.stream_id == 0
    start = sim.now
    run(sim, runtime.invoke("g1"))
    assert sim.now - start == pytest.approx(rung.KERNEL_LAUNCH_S + 200e-6)


def test_context_created_once_and_reused():
    # MPS: the wrapper context is shared by all modules.
    sim, runtime = make_runtime()
    run(sim, runtime.create("g1", gpu_fn("a")))
    first = sim.now
    run(sim, runtime.create("g2", gpu_fn("b")))
    second = sim.now - first
    assert first == pytest.approx(rung.CONTEXT_CREATE_S + rung.MODULE_LOAD_S)
    assert second == pytest.approx(rung.MODULE_LOAD_S)


def test_create_vector_amortizes_context():
    sim, runtime = make_runtime()
    created = run(
        sim, runtime.create_vector([("g1", gpu_fn("a")), ("g2", gpu_fn("b"))])
    )
    assert len(created) == 2
    assert sim.now == pytest.approx(rung.CONTEXT_CREATE_S + 2 * rung.MODULE_LOAD_S)


def test_create_requires_kernel():
    from repro.sandbox import Language

    sim, runtime = make_runtime()
    with pytest.raises(SandboxError):
        run(sim, runtime.create("g1", FunctionCode(func_id="x", language=Language.PYTHON)))


def test_streams_are_distinct():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([("g1", gpu_fn("a")), ("g2", gpu_fn("b"))]))
    s1 = run(sim, runtime.start("g1"))
    s2 = run(sim, runtime.start("g2"))
    assert s1.backend.stream_id != s2.backend.stream_id


def test_invoke_requires_running():
    sim, runtime = make_runtime()
    run(sim, runtime.create("g1", gpu_fn("a")))
    with pytest.raises(SandboxStateError):
        run(sim, runtime.invoke("g1"))


def test_delete_unloads():
    sim, runtime = make_runtime()
    run(sim, runtime.create("g1", gpu_fn("a")))
    run(sim, runtime.delete("g1"))
    with pytest.raises(SandboxError):
        runtime.state("g1")


def test_invoke_with_explicit_exec_time():
    sim, runtime = make_runtime()
    run(sim, runtime.create("g1", gpu_fn("a")))
    run(sim, runtime.start("g1"))
    start = sim.now
    run(sim, runtime.invoke("g1", exec_time_s=1e-3))
    assert sim.now - start == pytest.approx(rung.KERNEL_LAUNCH_S + 1e-3)
