"""Tests for the runf FPGA runtime: vectorized create, caching,
empty delete, and the Fig. 10c startup stages."""

import pytest

from repro import config
from repro.errors import SandboxError, SandboxStateError
from repro.hardware import FabricResources, KernelSpec, build_cpu_fpga_machine
from repro.sandbox import FunctionCode, RunfRuntime, SandboxState
from repro.sim import Simulator


def kernel(name, exec_us=100.0):
    return KernelSpec(
        name=name,
        resources=FabricResources(luts=4000, regs=7000, brams=20, dsps=40),
        exec_time_s=exec_us * 1e-6,
    )


def fn(name, exec_us=100.0):
    return FunctionCode(func_id=name, kernel=kernel(name, exec_us))


def make_runtime(no_erase=True, data_retention=True):
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1, data_retention=data_retention)
    device = machine.fpga_device(machine.pu(1))
    return sim, RunfRuntime(sim, device, no_erase=no_erase)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_create_programs_device():
    sim, runtime = make_runtime()
    sandbox = run(sim, runtime.create("s1", fn("vmult")))
    assert sandbox.state is SandboxState.CREATED
    assert runtime.device.has_kernel("vmult")


def test_create_vector_packs_one_image():
    sim, runtime = make_runtime()
    entries = [(f"s{i}", fn(f"k{i % 3}")) for i in range(12)]
    created = run(sim, runtime.create_vector(entries))
    assert len(created) == 12
    assert runtime.device.program_count == 1  # one flush for 12 sandboxes
    assert sorted(runtime.resident_function_ids) == ["k0", "k1", "k2"]


def test_create_vector_empty_rejected():
    sim, runtime = make_runtime()
    with pytest.raises(SandboxError):
        run(sim, runtime.create_vector([]))


def test_create_requires_kernel():
    from repro.sandbox import Language

    sim, runtime = make_runtime()
    with pytest.raises(SandboxError):
        run(sim, runtime.create("s1", FunctionCode(func_id="py", language=Language.PYTHON)))


def test_fig10c_baseline_erase_load_prep():
    # Baseline: erase + load + prep > 20s.
    sim, runtime = make_runtime(no_erase=False)
    run(sim, runtime.create("old", fn("old")))  # make the fabric dirty
    start = sim.now
    run(sim, runtime.create("s1", fn("vmult")))
    run(sim, runtime.start("s1"))
    total = sim.now - start
    expected = (
        config.FPGA_COSTS.erase_s
        + config.FPGA_COSTS.load_image_s
        + config.FPGA_COSTS.prep_sandbox_s
    )
    assert total == pytest.approx(expected)
    assert total > 20.0


def test_fig10c_no_erase_is_3_8s():
    sim, runtime = make_runtime(no_erase=True)
    run(sim, runtime.create("old", fn("old")))
    start = sim.now
    run(sim, runtime.create("s1", fn("vmult")))
    run(sim, runtime.start("s1"))
    assert sim.now - start == pytest.approx(3.8)


def test_fig10c_warm_image_is_1_9s():
    # Kernel already resident; only the software sandbox is prepared.
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("vmult")))
    start = sim.now
    run(sim, runtime.start("s1"))
    assert sim.now - start == pytest.approx(config.FPGA_COSTS.prep_sandbox_s)


def test_fig10c_warm_sandbox_is_53ms():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("vmult", exec_us=0.0)))
    run(sim, runtime.start("s1"))
    start = sim.now
    run(sim, runtime.invoke("s1"))
    assert sim.now - start == pytest.approx(config.FPGA_COSTS.warm_invoke_s)


def test_start_twice_skips_prep():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("vmult")))
    run(sim, runtime.start("s1"))
    start = sim.now
    run(sim, runtime.start("s1"))
    assert sim.now - start == pytest.approx(0.0)


def test_delete_is_empty_and_keeps_kernel_resident():
    # §3.5: delete returns immediately; destroy happens at next create.
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("vmult")))
    start = sim.now
    sandbox = run(sim, runtime.delete("s1"))
    assert sim.now - start == pytest.approx(0.0)
    assert sandbox.state is SandboxState.DELETED
    assert runtime.device.has_kernel("vmult")  # still flushed
    assert runtime.device.erase_count == 0


def test_next_create_replaces_previous_sandboxes():
    sim, runtime = make_runtime()
    old = run(sim, runtime.create("s1", fn("a")))
    run(sim, runtime.create("s2", fn("b")))
    assert old.state is SandboxState.DELETED
    assert not runtime.device.has_kernel("a")
    assert runtime.device.has_kernel("b")


def test_cached_sandbox_lookup():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([("s1", fn("a")), ("s2", fn("b"))]))
    hit = runtime.cached_sandbox_for("a")
    assert hit is not None and hit.sandbox_id == "s1"
    assert runtime.cached_sandbox_for("zzz") is None


def test_invoke_requires_running_state():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("a")))
    with pytest.raises(SandboxStateError):
        run(sim, runtime.invoke("s1"))


def test_invoke_with_explicit_exec_time():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("gzip")))
    run(sim, runtime.start("s1"))
    start = sim.now
    run(sim, runtime.invoke("s1", exec_time_s=0.5))
    assert sim.now - start == pytest.approx(0.5 + config.FPGA_COSTS.warm_invoke_s)


def test_invoke_after_replacement_rejected():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s1", fn("a")))
    run(sim, runtime.start("s1"))
    run(sim, runtime.create("s2", fn("b")))
    with pytest.raises(SandboxError):
        run(sim, runtime.invoke("s1"))


def test_dram_banks_assigned_per_slot():
    sim, runtime = make_runtime()
    created = run(sim, runtime.create_vector([("s1", fn("a")), ("s2", fn("b"))]))
    banks = {s.backend.instance.dram_bank for s in created}
    assert len(banks) == 2  # §5: static bank partitioning
