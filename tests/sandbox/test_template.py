"""Unit tests for template containers and the forkable runtime."""

import pytest

from repro import config
from repro.errors import SandboxError
from repro.hardware import ProcessingUnit, specs
from repro.multios import OsInstance
from repro.sandbox import FunctionCode, Language, boot_template, runtime_init_ms
from repro.sandbox.template import RUNTIME_WORKER_THREADS
from repro.sim import Simulator


def make_os(spec=specs.XEON_8160):
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "pu", spec)
    return sim, OsInstance(sim, pu)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_runtime_init_costs_per_language():
    assert runtime_init_ms(Language.PYTHON) == config.STARTUP.runtime_init_python_ms
    assert runtime_init_ms(Language.NODEJS) == config.STARTUP.runtime_init_nodejs_ms
    assert runtime_init_ms(Language.NODEJS) > runtime_init_ms(Language.PYTHON)


def test_boot_template_pays_full_cold_path():
    sim, os_instance = make_os()
    run(sim, boot_template(os_instance, Language.PYTHON))
    expected = (
        config.STARTUP.container_create_ms + config.STARTUP.runtime_init_python_ms
    ) * config.MS
    assert sim.now == pytest.approx(expected)


def test_dedicated_template_pays_imports_once():
    heavy = FunctionCode("np", language=Language.PYTHON, import_ms=100.0)
    sim, os_instance = make_os()
    run(sim, boot_template(os_instance, Language.PYTHON, dedicated_to=heavy))
    generic_sim, generic_os = make_os()
    run(generic_sim, boot_template(generic_os, Language.PYTHON))
    assert sim.now - generic_sim.now == pytest.approx(0.100)


def test_dedicated_template_language_mismatch_rejected():
    js = FunctionCode("js", language=Language.NODEJS)
    sim, os_instance = make_os()
    with pytest.raises(SandboxError):
        run(sim, boot_template(os_instance, Language.PYTHON, dedicated_to=js))


def test_template_runtime_is_multithreaded():
    sim, os_instance = make_os()
    template = run(sim, boot_template(os_instance, Language.PYTHON))
    assert template.runtime.process.threads == 1 + RUNTIME_WORKER_THREADS
    assert not template.runtime.process.fork_safe


def test_template_covers_matching_functions():
    sim, os_instance = make_os()
    generic = run(sim, boot_template(os_instance, Language.PYTHON))
    py = FunctionCode("a", language=Language.PYTHON)
    js = FunctionCode("b", language=Language.NODEJS)
    assert generic.covers(py)
    assert not generic.covers(js)
    assert not generic.skips_imports_for(py)

    dedicated = run(
        sim, boot_template(os_instance, Language.PYTHON, dedicated_to=py)
    )
    assert dedicated.covers(py)
    assert dedicated.skips_imports_for(py)
    other = FunctionCode("c", language=Language.PYTHON)
    assert not dedicated.covers(other)


def test_forkable_runtime_restores_thread_counts():
    sim, os_instance = make_os()
    template = run(sim, boot_template(os_instance, Language.PYTHON))
    parent = template.runtime.process
    threads_before = parent.threads
    child = run(sim, template.runtime.fork(os_instance))
    assert parent.threads == threads_before
    assert child.threads == threads_before  # contexts re-expanded in child


def test_forkable_runtime_refuses_dead_process():
    sim, os_instance = make_os()
    template = run(sim, boot_template(os_instance, Language.PYTHON))
    template.runtime.process.exit()
    with pytest.raises(SandboxError):
        run(sim, template.runtime.fork(os_instance))


def test_template_memory_footprint():
    sim, os_instance = make_os()
    template = run(sim, boot_template(os_instance, Language.PYTHON))
    process = template.runtime.process
    expected = config.MEMORY.template_shared_mb + config.MEMORY.template_extra_mb
    assert process.memory.private_mb == pytest.approx(expected)
    assert os_instance.shared_libraries in process.memory.segments


def test_template_boot_slower_on_dpu():
    sim_cpu, os_cpu = make_os(specs.XEON_8160)
    run(sim_cpu, boot_template(os_cpu, Language.PYTHON))
    sim_dpu, os_dpu = make_os(specs.BLUEFIELD1)
    run(sim_dpu, boot_template(os_dpu, Language.PYTHON))
    assert 4.0 < sim_dpu.now / sim_cpu.now < 7.0
