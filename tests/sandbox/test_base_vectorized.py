"""Tests for the generic OCI + vectorized sandbox interface (Table 3)."""

import pytest

from repro.errors import SandboxError, SandboxStateError
from repro.hardware import ProcessingUnit, specs
from repro.multios import OsInstance
from repro.sandbox import (
    FunctionCode,
    Language,
    RuncRuntime,
    SandboxState,
    SignalNum,
)
from repro.sim import Simulator

PY = FunctionCode("f", language=Language.PYTHON, memory_mb=60)


def make_runtime():
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "cpu", specs.XEON_8160)
    return sim, RuncRuntime(sim, OsInstance(sim, pu))


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def test_state_vector_queries_many(sim_runtime=None):
    sim, runtime = make_runtime()
    for i in range(3):
        run(sim, runtime.create(f"s{i}", PY))
    run(sim, runtime.start("s1"))
    states = runtime.state_vector(["s0", "s1", "s2"])
    assert states == [
        SandboxState.CREATED,
        SandboxState.RUNNING,
        SandboxState.CREATED,
    ]


def test_create_vector_default_loops_scalars():
    sim, runtime = make_runtime()
    created = run(
        sim, runtime.create_vector([(f"s{i}", PY) for i in range(4)])
    )
    assert [s.sandbox_id for s in created] == ["s0", "s1", "s2", "s3"]
    assert all(s.state is SandboxState.CREATED for s in created)


def test_start_vector_runs_concurrently():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([(f"s{i}", PY) for i in range(3)]))
    begin = sim.now
    started = run(sim, runtime.start_vector(["s0", "s1", "s2"]))
    elapsed = sim.now - begin
    assert all(s.state is SandboxState.RUNNING for s in started)
    # Concurrent: total time ~= one start, not three.
    single_sim, single_runtime = make_runtime()
    run(single_sim, single_runtime.create("s", PY))
    t0 = single_sim.now
    run(single_sim, single_runtime.start("s"))
    one = single_sim.now - t0
    assert elapsed == pytest.approx(one, rel=0.01)


def test_kill_vector():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([(f"s{i}", PY) for i in range(2)]))
    run(sim, runtime.start_vector(["s0", "s1"]))
    killed = run(
        sim, runtime.kill_vector([("s0", SignalNum.SIGTERM), ("s1", SignalNum.SIGKILL)])
    )
    assert all(s.state is SandboxState.STOPPED for s in killed)


def test_delete_vector():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([(f"s{i}", PY) for i in range(2)]))
    deleted = run(sim, runtime.delete_vector(["s0", "s1"]))
    assert all(s.state is SandboxState.DELETED for s in deleted)
    with pytest.raises(SandboxError):
        runtime.state("s0")


def test_sandboxes_filter_by_state():
    sim, runtime = make_runtime()
    run(sim, runtime.create_vector([(f"s{i}", PY) for i in range(3)]))
    run(sim, runtime.start("s0"))
    assert len(runtime.sandboxes(SandboxState.RUNNING)) == 1
    assert len(runtime.sandboxes(SandboxState.CREATED)) == 2
    assert len(runtime.sandboxes()) == 3


def test_require_state_message_names_states():
    sim, runtime = make_runtime()
    sandbox = run(sim, runtime.create("s", PY))
    with pytest.raises(SandboxStateError, match="created"):
        sandbox.require_state(SandboxState.RUNNING)


def test_forget_is_idempotent():
    sim, runtime = make_runtime()
    run(sim, runtime.create("s", PY))
    runtime.forget("s")
    runtime.forget("s")  # no raise
    with pytest.raises(SandboxError):
        runtime.get("s")
