"""Tests for the runc container runtime, templates and cfork.

The Fig. 11a breakdown numbers (desktop i7, speed=2.0) are asserted
exactly: baseline 85.55ms, naive cfork 47.25ms, +FuncContainer 30.05ms,
+cpuset-opt 8.40ms.
"""

import pytest

from repro import config
from repro.errors import SandboxError, SandboxStateError
from repro.hardware import ProcessingUnit, specs
from repro.multios import CpusetLockMode, OsInstance
from repro.sandbox import FunctionCode, Language, RuncRuntime, SandboxState
from repro.sim import Simulator


def make_runtime(spec=specs.XEON_8160, lock=CpusetLockMode.SEMAPHORE):
    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "pu0", spec)
    os_instance = OsInstance(sim, pu, cpuset_lock=lock)
    return sim, RuncRuntime(sim, os_instance)


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


PYFN = FunctionCode(func_id="img", language=Language.PYTHON, memory_mb=60)


def cold_boot(sim, runtime, code=PYFN, sandbox_id="s1"):
    run(sim, runtime.create(sandbox_id, code))
    return run(sim, runtime.start(sandbox_id))


# -- FunctionCode validation ---------------------------------------------------


def test_function_code_needs_language_or_kernel():
    with pytest.raises(SandboxError):
        FunctionCode(func_id="bad")


def test_function_code_rejects_negative_costs():
    with pytest.raises(SandboxError):
        FunctionCode(func_id="bad", language=Language.PYTHON, import_ms=-1)


# -- baseline cold path -----------------------------------------------------------


def test_cold_boot_reaches_running():
    sim, runtime = make_runtime()
    sandbox = cold_boot(sim, runtime)
    assert sandbox.state is SandboxState.RUNNING
    assert runtime.state("s1") is SandboxState.RUNNING
    assert runtime.cold_boots == 1


def test_cold_boot_latency_desktop_matches_fig11_baseline():
    sim, runtime = make_runtime(specs.DESKTOP_I7)
    cold_boot(sim, runtime)
    assert sim.now == pytest.approx(85.55e-3, rel=1e-6)


def test_cold_boot_on_server_cpu_around_175ms():
    # Fig. 10a: Python baseline cold start on the Xeon is ~175ms.
    sim, runtime = make_runtime(specs.XEON_8160)
    cold_boot(sim, runtime)
    assert 0.150 < sim.now < 0.200


def test_cold_boot_dpu_is_4_to_7x_slower():
    sim_c, rt_c = make_runtime(specs.XEON_8160)
    cold_boot(sim_c, rt_c)
    sim_d, rt_d = make_runtime(specs.BLUEFIELD1)
    cold_boot(sim_d, rt_d)
    assert 4.0 <= sim_d.now / sim_c.now <= 7.0


def test_cold_boot_nodejs_slower_than_python():
    sim_p, rt_p = make_runtime()
    cold_boot(sim_p, rt_p)
    sim_n, rt_n = make_runtime()
    cold_boot(sim_n, rt_n, FunctionCode(func_id="js", language=Language.NODEJS))
    assert sim_n.now > sim_p.now


def test_cold_boot_pays_import_cost():
    sim_a, rt_a = make_runtime()
    cold_boot(sim_a, rt_a)
    sim_b, rt_b = make_runtime()
    heavy = FunctionCode(func_id="np", language=Language.PYTHON, import_ms=100)
    cold_boot(sim_b, rt_b, heavy)
    assert sim_b.now - sim_a.now == pytest.approx(0.100)


def test_start_requires_created_state():
    sim, runtime = make_runtime()
    with pytest.raises(SandboxError):
        run(sim, runtime.start("ghost"))
    cold_boot(sim, runtime)
    with pytest.raises(SandboxStateError):
        run(sim, runtime.start("s1"))  # already running


def test_create_kernel_function_rejected():
    from repro.hardware import FabricResources, KernelSpec

    sim, runtime = make_runtime()
    code = FunctionCode(
        func_id="k",
        kernel=KernelSpec("k", FabricResources(luts=1), exec_time_s=1e-3),
    )
    with pytest.raises(SandboxError):
        run(sim, runtime.create("s1", code))


def test_duplicate_sandbox_id_rejected():
    sim, runtime = make_runtime()
    run(sim, runtime.create("dup", PYFN))
    with pytest.raises(SandboxError):
        run(sim, runtime.create("dup", PYFN))


def test_kill_then_delete():
    sim, runtime = make_runtime()
    sandbox = cold_boot(sim, runtime)
    run(sim, runtime.kill("s1"))
    assert sandbox.state is SandboxState.STOPPED
    assert not sandbox.backend.process.alive
    run(sim, runtime.delete("s1"))
    with pytest.raises(SandboxError):
        runtime.state("s1")


def test_kill_requires_live_state():
    sim, runtime = make_runtime()
    cold_boot(sim, runtime)
    run(sim, runtime.kill("s1"))
    with pytest.raises(SandboxStateError):
        run(sim, runtime.kill("s1"))


# -- cfork ------------------------------------------------------------------------------


def test_cfork_requires_template():
    sim, runtime = make_runtime()
    with pytest.raises(SandboxError, match="no template"):
        run(sim, runtime.cfork("c1", PYFN))


def test_cfork_naive_breakdown_desktop():
    sim, runtime = make_runtime(specs.DESKTOP_I7)
    run(sim, runtime.ensure_template(Language.PYTHON))
    start = sim.now
    run(sim, runtime.cfork("c1", PYFN))
    assert (sim.now - start) == pytest.approx(47.25e-3, rel=1e-6)


def test_cfork_funccontainer_breakdown_desktop():
    sim, runtime = make_runtime(specs.DESKTOP_I7)
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.prepare_containers(1))
    start = sim.now
    run(sim, runtime.cfork("c1", PYFN))
    assert (sim.now - start) == pytest.approx(30.05e-3, rel=1e-6)


def test_cfork_cpuset_opt_breakdown_desktop():
    sim, runtime = make_runtime(specs.DESKTOP_I7, lock=CpusetLockMode.MUTEX)
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.prepare_containers(1))
    start = sim.now
    run(sim, runtime.cfork("c1", PYFN))
    assert (sim.now - start) == pytest.approx(8.40e-3, rel=1e-6)


def test_full_cfork_10x_faster_than_baseline():
    # Fig. 11a: all optimisations give >10x faster startup.
    sim, runtime = make_runtime(specs.DESKTOP_I7, lock=CpusetLockMode.MUTEX)
    cold_boot(sim, runtime)
    baseline = sim.now
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.prepare_containers(1))
    start = sim.now
    run(sim, runtime.cfork("c1", PYFN))
    assert baseline / (sim.now - start) > 10.0


def test_cfork_under_10ms_on_desktop():
    # §4.2: cfork is the first container-level fork under 10ms.
    sim, runtime = make_runtime(specs.DESKTOP_I7, lock=CpusetLockMode.MUTEX)
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.prepare_containers(1))
    start = sim.now
    run(sim, runtime.cfork("c1", PYFN))
    assert sim.now - start < 0.010


def test_generic_template_pays_imports_dedicated_skips():
    heavy = FunctionCode(func_id="np", language=Language.PYTHON, import_ms=120)
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    start = sim.now
    run(sim, runtime.cfork("c1", heavy))
    generic_cost = sim.now - start

    sim2, runtime2 = make_runtime()
    run(sim2, runtime2.ensure_template(Language.PYTHON, dedicated_to=heavy))
    start = sim2.now
    run(sim2, runtime2.cfork("c1", heavy))
    dedicated_cost = sim2.now - start
    assert generic_cost - dedicated_cost == pytest.approx(0.120)


def test_template_for_prefers_dedicated():
    heavy = FunctionCode(func_id="np", language=Language.PYTHON, import_ms=120)
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.ensure_template(Language.PYTHON, dedicated_to=heavy))
    chosen = runtime.template_for(heavy)
    assert chosen.dedicated_to == "np"
    # Other functions still get the generic template.
    assert runtime.template_for(PYFN).dedicated_to is None


def test_ensure_template_is_idempotent():
    sim, runtime = make_runtime()
    t1 = run(sim, runtime.ensure_template(Language.PYTHON))
    t2 = run(sim, runtime.ensure_template(Language.PYTHON))
    assert t1 is t2
    assert len(runtime.templates) == 1


def test_cfork_child_is_multithreaded_runtime():
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    sandbox = run(sim, runtime.cfork("c1", PYFN))
    child = sandbox.backend.process
    assert child.threads > 1  # re-expanded after fork
    template_proc = runtime.templates[0].runtime.process
    assert template_proc.threads > 1  # template recovered too


def test_cfork_memory_shares_template_pages():
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    boxes = []
    for i in range(16):
        boxes.append(run(sim, runtime.cfork(f"c{i}", PYFN)))
    child = boxes[0].backend.process
    template_pages = (
        config.MEMORY.template_shared_mb + config.MEMORY.template_extra_mb
    )
    libs = config.MEMORY.baseline_shared_lib_mb
    assert child.memory.rss_mb == pytest.approx(
        config.MEMORY.molecule_private_mb + template_pages + libs
    )
    # 17 mappers: template + 16 children (template COW pages and libs).
    assert child.memory.pss_mb == pytest.approx(
        config.MEMORY.molecule_private_mb + (template_pages + libs) / 17
    )


def test_molecule_pss_lower_than_baseline_at_16_instances():
    # Fig. 11c: ~34% lower PSS at 16 concurrent instances.
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    molecule = [
        run(sim, runtime.cfork(f"c{i}", PYFN)).backend.process for i in range(16)
    ]
    sim2, runtime2 = make_runtime()
    baseline = []
    for i in range(16):
        run(sim2, runtime2.create(f"s{i}", PYFN))
        baseline.append(run(sim2, runtime2.start(f"s{i}")).backend.process)
    from repro.multios import average_pss_mb, average_rss_mb

    pss_molecule = average_pss_mb(molecule)
    pss_baseline = average_pss_mb(baseline)
    saving = 1 - pss_molecule / pss_baseline
    assert 0.25 < saving < 0.45
    # RSS: Molecule is higher (template resources mapped), Fig. 11b.
    assert average_rss_mb(molecule) > average_rss_mb(baseline)


def test_pool_is_consumed():
    sim, runtime = make_runtime()
    run(sim, runtime.ensure_template(Language.PYTHON))
    run(sim, runtime.prepare_containers(2))
    assert runtime.pooled_containers == 2
    run(sim, runtime.cfork("c1", PYFN))
    assert runtime.pooled_containers == 1


def test_first_request_penalty_positive():
    sim, runtime = make_runtime()
    assert runtime.first_request_penalty() > 0
