"""Tests for the workload suites."""

import pytest

from repro.errors import WorkloadError
from repro.hardware import PuKind
from repro.workloads import fpga_apps, functionbench, serverlessbench


# -- FunctionBench ----------------------------------------------------------------


def test_eight_workloads_in_paper_order():
    assert functionbench.workload_names() == [
        "image_resize",
        "chameleon",
        "linpack",
        "matmul",
        "pyaes",
        "video_processing",
        "dd",
        "gzip_compression",
    ]


def test_spec_lookup():
    spec = functionbench.spec("matmul")
    assert spec.warm_ms == 1.4
    with pytest.raises(WorkloadError):
        functionbench.spec("nope")


def test_calibration_consistent_with_paper_cold_numbers():
    # cold ~= runtime boot (171.1) + imports + data + warm, within the
    # clamping slack for the three negative-residual workloads.
    runtime_boot = 171.1
    for spec in functionbench.FUNCTIONBENCH:
        modeled = runtime_boot + spec.import_ms + spec.data_ms + spec.warm_ms
        assert modeled == pytest.approx(spec.paper_cold_cpu_ms, rel=0.20)


def test_to_function_is_deployable():
    function = functionbench.spec("linpack").to_function()
    assert function.supports(PuKind.CPU) and function.supports(PuKind.DPU)
    assert function.code.import_ms == 194.5


def test_all_functions():
    functions = functionbench.all_functions()
    assert len(functions) == 8
    assert {f.name for f in functions} == set(functionbench.workload_names())


def test_bf1_paper_baselines_are_4_to_7x_cpu():
    for spec in functionbench.FUNCTIONBENCH:
        ratio = spec.paper_cold_bf1_ms / spec.paper_cold_cpu_ms
        assert 3.5 <= ratio <= 8.0


# -- ServerlessBench chains ---------------------------------------------------------


def test_alexa_chain_shape():
    chain = serverlessbench.alexa_chain()
    assert len(chain.stages) == 5
    assert chain.function_names == list(serverlessbench.ALEXA_STAGES)
    assert len(serverlessbench.ALEXA_EDGE_NAMES) == 4


def test_alexa_baseline_calibration():
    # exec*5 + 4 Express hops ~= 38.6ms (Fig. 14e label).
    from repro import config

    total = 5 * serverlessbench.ALEXA_EXEC_MS + 4 * (
        config.BASELINE_DAG.express_hop_cpu_ms
    )
    assert total == pytest.approx(38.5, abs=1.0)


def test_mapreduce_chain_shape():
    chain = serverlessbench.mapreduce_chain()
    assert len(chain.stages) == 3
    from repro import config

    total = 3 * serverlessbench.MAPREDUCE_EXEC_MS + 2 * (
        config.BASELINE_DAG.flask_hop_cpu_ms
    )
    assert total == pytest.approx(20.0, abs=1.0)


def test_chain_functions_have_dpu_profiles():
    for function in serverlessbench.alexa_functions():
        assert function.supports(PuKind.DPU)
        assert function.work.dpu_slowdown is not None


# -- FPGA applications -----------------------------------------------------------------


def test_matrix_speedups_match_fig2b_band():
    low, high = fpga_apps.PAPER_MATRIX_SPEEDUP
    for name in ("mscale", "madd", "vmult"):
        speedup = fpga_apps.MATRIX_CPU_US[name] / fpga_apps.MATRIX_FPGA_US[name]
        assert low - 0.05 <= speedup <= high + 0.05


def test_matrix_functions_deployable_on_cpu_and_fpga():
    for function in fpga_apps.matrix_functions():
        assert function.supports(PuKind.CPU)
        assert function.supports(PuKind.FPGA)
        assert function.code.kernel is not None


def test_gzip_models():
    assert fpga_apps.gzip_cpu_ms(112.0) == pytest.approx(4480.0)
    assert fpga_apps.gzip_fpga_ms(112.0) == pytest.approx(562.0)
    # CPU wins for tiny files; FPGA wins for big ones.
    assert fpga_apps.gzip_cpu_ms(0.001) < fpga_apps.gzip_fpga_ms(0.001)
    assert fpga_apps.gzip_cpu_ms(112.0) > fpga_apps.gzip_fpga_ms(112.0)
    with pytest.raises(WorkloadError):
        fpga_apps.gzip_cpu_ms(-1.0)


def test_aml_models_match_fig14g_band():
    low, high = fpga_apps.PAPER_AML_SPEEDUP
    small = fpga_apps.aml_cpu_ms(6_000) / fpga_apps.aml_fpga_ms(6_000)
    large = fpga_apps.aml_cpu_ms(6_000_000) / fpga_apps.aml_fpga_ms(6_000_000)
    assert low - 0.5 <= small <= high
    assert low <= large <= high + 0.5
    with pytest.raises(WorkloadError):
        fpga_apps.aml_fpga_ms(-1)


def test_vector_chain_kernels():
    kernels = fpga_apps.vector_chain_kernels(5)
    assert len(kernels) == 5
    assert len({k.name for k in kernels}) == 5
    with pytest.raises(WorkloadError):
        fpga_apps.vector_chain_kernels(0)


def test_table4_kernel_resources_sum_to_paper_wrapper():
    from repro.hardware import FpgaImage

    kernels = []
    for name in ("madd", "mmult", "mscale"):
        kernels.extend([fpga_apps.matrix_kernel(name)] * 4)
    demand = FpgaImage("t4", kernels).resources()
    assert demand.luts == pytest.approx(fpga_apps.PAPER_TABLE4_WRAPPER["luts"], rel=0.001)
    assert demand.regs == pytest.approx(fpga_apps.PAPER_TABLE4_WRAPPER["regs"], rel=0.001)
    assert demand.brams == pytest.approx(fpga_apps.PAPER_TABLE4_WRAPPER["brams"], rel=0.001)
    assert demand.dsps == pytest.approx(fpga_apps.PAPER_TABLE4_WRAPPER["dsps"], rel=0.001)


# -- generators ---------------------------------------------------------------------------


def test_poisson_generator_open_loop():
    from repro.sim import Simulator
    from repro.workloads import PoissonGenerator

    sim = Simulator()
    gen = PoissonGenerator(sim, rate_per_s=100.0)

    def invoke():
        yield sim.timeout(0.001)

    sim.spawn(gen.run(invoke, duration_s=1.0))
    sim.run()
    # ~100 requests expected; generous band for seeded randomness.
    assert 60 < gen.trace.completed < 150
    assert all(latency == pytest.approx(0.001) for latency in gen.trace.latencies_s)


def test_poisson_generator_rejects_bad_rate():
    from repro.sim import Simulator
    from repro.workloads import PoissonGenerator

    with pytest.raises(WorkloadError):
        PoissonGenerator(Simulator(), rate_per_s=0.0)


def test_closed_loop_client():
    from repro.sim import Simulator
    from repro.workloads import ClosedLoopClient

    sim = Simulator()
    client = ClosedLoopClient(sim)

    def invoke():
        yield sim.timeout(0.01)

    sim.spawn(client.run(invoke, requests=5))
    sim.run()
    assert client.trace.completed == 5
    assert sim.now == pytest.approx(0.05)


def test_closed_loop_rejects_negative():
    from repro.sim import Simulator
    from repro.workloads import ClosedLoopClient

    sim = Simulator()
    client = ClosedLoopClient(sim)
    with pytest.raises(WorkloadError):
        proc = sim.spawn(client.run(lambda: iter(()), requests=-1))
        sim.run()
