"""Tests for the Azure-style trace generator."""

import pytest

from repro.errors import WorkloadError
from repro.sim import SeededRng, Simulator
from repro.workloads.traces import (
    AzureLikeTrace,
    DiurnalProfile,
    TraceEvent,
    head_share,
    zipf_weights,
)


def test_zipf_weights_normalized_and_skewed():
    weights = zipf_weights(10, skew=1.1)
    assert sum(weights) == pytest.approx(1.0)
    assert weights == sorted(weights, reverse=True)
    assert weights[0] > 3 * weights[-1]


def test_zipf_validation():
    with pytest.raises(WorkloadError):
        zipf_weights(0)
    with pytest.raises(WorkloadError):
        zipf_weights(5, skew=0.0)


def test_head_share_captures_most_traffic():
    weights = zipf_weights(50, skew=1.2)
    assert head_share(weights, 5) > 0.45
    assert head_share(weights, 50) == pytest.approx(1.0)
    with pytest.raises(WorkloadError):
        head_share(weights, -1)


def test_diurnal_profile_bounds_and_peak():
    profile = DiurnalProfile(period_s=86_400, trough_fraction=0.25)
    factors = [profile.factor(t) for t in range(0, 86_400, 3_600)]
    assert all(0.25 - 1e-9 <= f <= 1.0 + 1e-9 for f in factors)
    assert profile.factor(0.0) == pytest.approx(0.25)
    assert profile.factor(43_200.0) == pytest.approx(1.0)


def test_trace_events_ordered_and_within_window():
    trace = AzureLikeTrace(["a", "b", "c"], peak_rate_per_s=50.0, rng=SeededRng(7))
    events = list(trace.events(duration_s=60.0))
    assert events
    times = [e.time_s for e in events]
    assert times == sorted(times)
    assert all(0 <= t < 60.0 for t in times)


def test_trace_skew_matches_zipf():
    trace = AzureLikeTrace(
        [f"f{i}" for i in range(10)], peak_rate_per_s=200.0, skew=1.2,
        rng=SeededRng(11),
    )
    events = list(trace.events(duration_s=120.0))
    counts = {}
    for event in events:
        counts[event.function] = counts.get(event.function, 0) + 1
    assert counts.get("f0", 0) > 4 * counts.get("f9", 1)


def test_trace_diurnal_modulates_rate():
    profile = DiurnalProfile(period_s=1_000.0, trough_fraction=0.1)
    trace = AzureLikeTrace(
        ["f"], peak_rate_per_s=100.0, diurnal=profile, rng=SeededRng(3),
    )
    events = list(trace.events(duration_s=1_000.0))
    trough = sum(1 for e in events if e.time_s % 1_000 < 200)
    peak = sum(1 for e in events if 400 <= e.time_s % 1_000 < 600)
    assert peak > 2 * trough


def test_trace_deterministic_given_seed():
    def make():
        trace = AzureLikeTrace(["a", "b"], peak_rate_per_s=30.0, rng=SeededRng(5))
        return [(e.time_s, e.function) for e in trace.events(30.0)]

    assert make() == make()


def test_trace_validation():
    with pytest.raises(WorkloadError):
        AzureLikeTrace([], peak_rate_per_s=1.0)
    with pytest.raises(WorkloadError):
        AzureLikeTrace(["f"], peak_rate_per_s=0.0)
    trace = AzureLikeTrace(["f"], peak_rate_per_s=1.0)
    with pytest.raises(WorkloadError):
        list(trace.events(duration_s=0.0))


def test_replay_drives_runtime():
    from repro import (
        FunctionCode, FunctionDef, Language, MoleculeRuntime, PuKind, WorkProfile,
    )

    molecule = MoleculeRuntime.create(num_dpus=0)
    for i in range(3):
        molecule.deploy_now(FunctionDef(
            name=f"f{i}",
            code=FunctionCode(f"f{i}", language=Language.PYTHON, memory_mb=60),
            work=WorkProfile(warm_exec_ms=2.0),
            profiles=(PuKind.CPU,),
        ))
    trace = AzureLikeTrace(
        [f"f{i}" for i in range(3)], peak_rate_per_s=50.0, rng=SeededRng(9),
    )
    log: list[TraceEvent] = []

    def invoke(name):
        return molecule.invoke(name)

    molecule.run(trace.replay(molecule.sim, invoke, duration_s=5.0, trace_log=log))
    molecule.sim.run()
    assert log
    assert molecule.gateway.requests_admitted == len(log)
    assert molecule.invoker.warm_invocations > 0  # hot head stays warm
