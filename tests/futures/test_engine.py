"""Fan-out engine behavior: planning, execution, gather, accounting.

The engine-off half mirrors every optional layer before it: a runtime
built without ``fanout=`` must stay byte-identical to one that never
heard of the engine, golden seed snapshot included.
"""

import functools
import json
import operator

import pytest

from repro import FanoutConfig, MoleculeRuntime
from repro.errors import FanoutPartialFailure, WorkloadError
from repro.futures import synthetic_dataset

from tests.futures.util import cpu_runtime, straggler_runtime
from tests.support import GOLDEN_SEED, golden_seed_snapshot


# -- engine off: stock behavior, byte for byte ------------------------------------


def test_engine_off_matches_golden_snapshot():
    with open("tests/sim/data/golden_seed_snapshot.json",
              encoding="utf-8") as handle:
        expected = json.load(handle)
    current = golden_seed_snapshot(GOLDEN_SEED)
    assert json.dumps(current, sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_engine_off_runtime_has_no_fanout_surface():
    runtime = MoleculeRuntime.create(num_dpus=1, seed=3)
    assert runtime.fanout is None
    assert runtime.obs.fanout_jobs_total is None


# -- map / map_reduce correctness --------------------------------------------------


def test_map_returns_flat_results_in_input_order():
    runtime = cpu_runtime()
    items = synthetic_dataset(5, 100)
    value = runtime.run(
        runtime.fanout.map(lambda x: x * x, items, function="sq")
    )
    assert value == [x * x for x in items]


def test_map_reduce_equals_sequential_reference():
    runtime = cpu_runtime()
    items = synthetic_dataset(9, 123)
    value = runtime.run(runtime.fanout.map_reduce(
        lambda x: x + 1, items, operator.add, function="sq"
    ))
    assert value == functools.reduce(
        operator.add, [x + 1 for x in items]
    )


def test_empty_dataset_is_rejected():
    runtime = cpu_runtime()
    with pytest.raises(WorkloadError):
        runtime.run(runtime.fanout.map(lambda x: x, (), function="sq"))


def test_unknown_function_is_rejected_before_any_dispatch():
    runtime = cpu_runtime()
    with pytest.raises(Exception):
        runtime.run(
            runtime.fanout.map(lambda x: x, (1, 2), function="nope")
        )
    assert runtime.fanout.tasks_submitted == 0


# -- planning / accounting ---------------------------------------------------------


def test_chunked_admission_counts_batches():
    runtime = cpu_runtime(partitions=16, chunk_size=4)
    items = synthetic_dataset(5, 64)
    job = runtime.run(
        runtime.fanout.run_job(lambda x: x, items, function="sq")
    )
    assert job.partitions == 16
    assert job.batches == 4
    assert runtime.fanout.batches == 4
    assert runtime.fanout.tasks_submitted == 16
    assert runtime.fanout.tasks_done == 16


def test_job_result_shape_covers_driver_record_fields():
    runtime = cpu_runtime()
    job = runtime.run(runtime.fanout.run_job(
        lambda x: x, synthetic_dataset(5, 32), function="sq"
    ))
    assert job.function == "sq"
    assert job.total_s > 0
    assert job.admitted_s >= 0
    assert job.pu_name == "fanout"
    assert job.attempts == 1
    assert set(job.stage_s) == {"partition", "fanout", "gather"}
    reduced = runtime.run(runtime.fanout.run_job(
        lambda x: x, synthetic_dataset(5, 32), operator.add, function="sq"
    ))
    assert set(reduced.stage_s) == {
        "partition", "fanout", "gather", "reduce",
    }


def test_task_log_records_every_terminal_fate_once():
    runtime = cpu_runtime(partitions=8)
    runtime.run(runtime.fanout.map(
        lambda x: x, synthetic_dataset(5, 32), function="sq"
    ))
    log = runtime.fanout.task_log
    assert len(log) == 8
    assert sorted(seq for _, seq, _ in log) == list(range(8))
    assert all(outcome == "done" for _, _, outcome in log)
    times = [t for t, _, _ in log]
    assert times == sorted(times)


def test_conservation_against_gateway_admissions():
    runtime = cpu_runtime(partitions=16)
    runtime.run(runtime.fanout.map_reduce(
        lambda x: x, synthetic_dataset(5, 64), operator.add, function="sq"
    ))
    engine = runtime.fanout
    admitted = runtime.gateway.requests_admitted
    assert engine.conserved(admitted, len(runtime.dead_letters))
    # 16 tasks + partition + reduce stage requests.
    assert admitted == 18


def test_snapshot_keys_are_stable():
    runtime = cpu_runtime()
    snap = runtime.fanout.snapshot()
    assert set(snap) == {
        "jobs", "jobs_failed", "tasks_submitted", "tasks_done",
        "tasks_shed", "tasks_error", "stage_ok", "stage_shed",
        "stage_error", "batches", "speculations", "speculation",
    }
    off = cpu_runtime(speculate=False)
    assert "speculation" not in off.fanout.snapshot()


def test_fanout_metrics_register_and_count():
    runtime = cpu_runtime(partitions=8)
    runtime.run(runtime.fanout.map(
        lambda x: x, synthetic_dataset(5, 32), function="sq"
    ))
    registry = runtime.obs.registry
    jobs = registry.get("repro_fanout_jobs")
    tasks = registry.get("repro_fanout_tasks")
    batches = registry.get("repro_fanout_batches")
    assert {
        labels["function"]: child.value for labels, child in jobs.series()
    } == {"sq": 1}
    assert {
        (labels["function"], labels["outcome"]): child.value
        for labels, child in tasks.series()
    } == {("sq", "done"): 8}
    assert sum(child.value for _, child in batches.series()) == 2


# -- straggler-aware gather --------------------------------------------------------


def test_straggler_gather_speculates_and_wins():
    runtime = straggler_runtime()
    items = synthetic_dataset(3, 256)
    job = runtime.run(runtime.fanout.run_job(
        lambda x: x * x, items, operator.add, function="sq"
    ))
    assert job.value == functools.reduce(
        operator.add, [x * x for x in items]
    )
    spec = runtime.fanout.speculation
    assert job.speculated > 0
    assert job.hedged is True
    assert spec.fired == job.speculated
    assert spec.won > 0
    assert spec.losers_completed == 0
    assert spec.anti_affinity_violations == 0


def test_gather_off_is_a_plain_all_completed_wait():
    runtime = straggler_runtime(speculate=False)
    items = synthetic_dataset(3, 256)
    job = runtime.run(runtime.fanout.run_job(
        lambda x: x * x, items, operator.add, function="sq"
    ))
    assert job.speculated == 0
    assert job.hedged is False
    assert runtime.fanout.speculation is None
    assert runtime.fanout.tasks_done == 32


def test_speculation_strictly_shortens_the_gather_tail():
    """Same dataset, same seed: arming straggler speculation must beat
    the gather-off wall clock (clones rescue the serial DPU tail)."""
    items = synthetic_dataset(3, 256)

    def gather_s(speculate):
        runtime = straggler_runtime(speculate=speculate)
        job = runtime.run(runtime.fanout.run_job(
            lambda x: x, items, function="sq"
        ))
        return job.stage_s["gather"]

    assert gather_s(True) < gather_s(False)


def test_fanout_runs_are_deterministic():
    def run_once():
        runtime = straggler_runtime()
        runtime.run(runtime.fanout.map_reduce(
            lambda x: x * x, synthetic_dataset(3, 256), operator.add,
            function="sq",
        ))
        return runtime.fanout.task_log, runtime.fanout.snapshot()

    first_log, first_snap = run_once()
    second_log, second_snap = run_once()
    assert json.dumps(first_log) == json.dumps(second_log)
    assert json.dumps(first_snap, sort_keys=True) == json.dumps(
        second_snap, sort_keys=True
    )


# -- partial failure ---------------------------------------------------------------


def test_partial_failure_surfaces_per_partition_errors():
    runtime = cpu_runtime(partitions=8)
    engine = runtime.fanout

    # Crash the only PUs the function profiles once half the tasks are
    # in flight by injecting failures directly into two futures.
    from repro.errors import ReproError
    from repro.futures.future import OUTCOME_ERROR

    original_task = engine._task

    def flaky_task(future, map_fn, function, frontend):
        if future.partition.index in (2, 5):
            engine.tasks_error += 1
            future._fail(
                ReproError(f"injected #{future.partition.index}"),
                OUTCOME_ERROR, engine.sim.now,
            )
            engine.task_log.append(
                (round(engine.sim.now, 9), future.seq, future.outcome)
            )
            engine.task_samples.append(0.0)
            return
            yield  # pragma: no cover - generator marker
        yield from original_task(future, map_fn, function, frontend)

    engine._task = flaky_task
    with pytest.raises(FanoutPartialFailure) as excinfo:
        runtime.run(engine.map(
            lambda x: x, synthetic_dataset(5, 32), function="sq"
        ))
    failure = excinfo.value
    assert failure.done == 6
    assert failure.failed == 2
    assert failure.shed == 0
    assert len(failure.errors) == 2
    assert "partition 2" in failure.errors[0]
    assert engine.jobs_failed == 1
