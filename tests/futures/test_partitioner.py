"""Unit tests: data partitioning, future state machine, ``wait``."""

import pytest

from repro.errors import ReproError, WorkloadError
from repro.futures import (
    ALL_COMPLETED,
    ANY_COMPLETED,
    N_COMPLETED,
    DONE,
    ERROR,
    PENDING,
    RUNNING,
    FanoutFuture,
    Partitioner,
    synthetic_dataset,
    wait,
)
from repro.futures.future import OUTCOME_DONE, OUTCOME_ERROR
from repro.futures.partitioner import (
    PAYLOAD_BASE_BYTES,
    PAYLOAD_BYTES_PER_ITEM,
)
from repro.sim import Simulator


# -- synthetic datasets ------------------------------------------------------------


def test_synthetic_dataset_is_seed_deterministic():
    assert synthetic_dataset(42, 100) == synthetic_dataset(42, 100)
    assert synthetic_dataset(42, 100) != synthetic_dataset(43, 100)
    items = synthetic_dataset(7, 64)
    assert len(items) == 64
    assert all(0 <= item <= 1_000 for item in items)


# -- partitioner -------------------------------------------------------------------


def test_fixed_size_partitioning_covers_input_in_order():
    items = tuple(range(10))
    parts = Partitioner.fixed_size(4).partition(items)
    assert [p.items for p in parts] == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
    assert [p.index for p in parts] == [0, 1, 2]
    assert [len(p) for p in parts] == [4, 4, 2]


def test_chunk_count_partitioning_balances_within_one():
    items = tuple(range(10))
    parts = Partitioner.chunk_count(3).partition(items)
    assert [p.items for p in parts] == [
        (0, 1, 2, 3), (4, 5, 6), (7, 8, 9),
    ]
    # More chunks than items degrades to one item per partition.
    parts = Partitioner.chunk_count(99).partition((1, 2, 3))
    assert [p.items for p in parts] == [(1,), (2,), (3,)]


def test_partition_payload_scales_with_items():
    parts = Partitioner.fixed_size(4).partition(tuple(range(6)))
    assert parts[0].payload_bytes == (
        PAYLOAD_BASE_BYTES + 4 * PAYLOAD_BYTES_PER_ITEM
    )
    assert parts[1].payload_bytes == (
        PAYLOAD_BASE_BYTES + 2 * PAYLOAD_BYTES_PER_ITEM
    )


def test_partitioner_validates_strategy():
    with pytest.raises(WorkloadError):
        Partitioner()
    with pytest.raises(WorkloadError):
        Partitioner(size=4, chunks=4)
    with pytest.raises(WorkloadError):
        Partitioner.fixed_size(0)
    with pytest.raises(WorkloadError):
        Partitioner.chunk_count(0)


# -- future state machine ----------------------------------------------------------


def _future(seq=0):
    part = Partitioner.fixed_size(2).partition((1, 2))[0]
    return FanoutFuture(seq, part, "fn")


def test_future_lifecycle_and_result():
    f = _future()
    assert f.state == PENDING and not f.done()
    with pytest.raises(ReproError):
        f.result()
    assert f.result(throw_except=False) is None
    f._mark_running(1.0)
    assert f.state == RUNNING and f.running()
    f._finish([1, 4], 2.0)
    assert f.state == DONE and f.done()
    assert f.outcome == OUTCOME_DONE
    assert f.result() == [1, 4]
    assert f.finished_s == 2.0


def test_future_error_and_terminal_idempotence():
    f = _future()
    f._mark_running(0.0)
    boom = ReproError("boom")
    f._fail(boom, OUTCOME_ERROR, 1.0)
    assert f.state == ERROR and f.done()
    assert f.error is boom
    with pytest.raises(ReproError):
        f.result()
    assert f.result(throw_except=False) is None
    # A second terminal transition is a no-op: exactly one fate.
    f._finish([9], 2.0)
    assert f.state == ERROR and f.finished_s == 1.0


# -- wait --------------------------------------------------------------------------


def _drive(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    return proc.value


def _finisher(sim, future, delay, value=1):
    def gen():
        yield sim.timeout(delay)
        future._finish(value, sim.now)
    return gen()


def test_wait_all_completed_blocks_for_everyone():
    sim = Simulator()
    fs = [_future(i) for i in range(3)]
    for i, f in enumerate(fs):
        f._mark_running(0.0)
        sim.spawn(_finisher(sim, f, 1.0 + i))
    done, not_done = _drive(sim, wait(sim, fs))
    assert [f.seq for f in done] == [0, 1, 2]
    assert not_done == []
    assert sim.now >= 3.0


def test_wait_any_completed_returns_on_first():
    sim = Simulator()
    fs = [_future(i) for i in range(3)]
    for i, f in enumerate(fs):
        f._mark_running(0.0)
        sim.spawn(_finisher(sim, f, 1.0 + i))

    def gen():
        result = yield from wait(sim, fs, ANY_COMPLETED)
        assert sim.now == pytest.approx(1.0)
        return result

    done, not_done = _drive(sim, gen())
    assert [f.seq for f in done] == [0]
    assert [f.seq for f in not_done] == [1, 2]


def test_wait_n_completed_requires_and_honors_count():
    sim = Simulator()
    fs = [_future(i) for i in range(4)]
    for i, f in enumerate(fs):
        f._mark_running(0.0)
        sim.spawn(_finisher(sim, f, 1.0 + i))

    def bad():
        yield from wait(sim, fs, N_COMPLETED)

    with pytest.raises(ReproError):
        _drive(sim, bad())

    sim2 = Simulator()
    fs2 = [_future(i) for i in range(4)]
    for i, f in enumerate(fs2):
        f._mark_running(0.0)
        sim2.spawn(_finisher(sim2, f, 1.0 + i))
    done, not_done = _drive(
        sim2, wait(sim2, fs2, N_COMPLETED, count=2)
    )
    assert len(done) == 2 and len(not_done) == 2
    # A count beyond the set degrades to ALL_COMPLETED.
    done, not_done = _drive(
        sim2, wait(sim2, fs2, N_COMPLETED, count=99)
    )
    assert len(done) == 4 and not_done == []


def test_wait_timeout_returns_early_with_partial_done():
    sim = Simulator()
    fs = [_future(i) for i in range(2)]
    fs[0]._mark_running(0.0)
    fs[1]._mark_running(0.0)
    sim.spawn(_finisher(sim, fs[0], 1.0))
    sim.spawn(_finisher(sim, fs[1], 50.0))

    def gen():
        result = yield from wait(sim, fs, ALL_COMPLETED, timeout=5.0)
        assert sim.now == pytest.approx(5.0)
        return result

    done, not_done = _drive(sim, gen())
    assert [f.seq for f in done] == [0]
    assert [f.seq for f in not_done] == [1]


def test_wait_on_already_done_futures_returns_immediately():
    sim = Simulator()
    fs = [_future(i) for i in range(2)]
    for f in fs:
        f._mark_running(0.0)
        f._finish([0], 0.0)
    done, not_done = _drive(sim, wait(sim, fs, ANY_COMPLETED))
    assert len(done) == 2 and not_done == []
    assert sim.now == 0.0
    # Empty input: trivially complete.
    done, not_done = _drive(sim, wait(sim, [], ALL_COMPLETED))
    assert done == [] and not_done == []


def test_wait_rejects_unknown_return_when():
    sim = Simulator()

    def gen():
        yield from wait(sim, [_future()], "SOME_COMPLETED")

    with pytest.raises(ReproError):
        _drive(sim, gen())


def test_wait_waiters_are_disarmed_after_wake():
    """A timeout wake must not leave stale waiter events registered."""
    sim = Simulator()
    f = _future()
    f._mark_running(0.0)
    sim.spawn(_finisher(sim, f, 10.0))

    def gen():
        yield from wait(sim, [f], ALL_COMPLETED, timeout=1.0)
        assert f._waiters == []
        yield from wait(sim, [f], ALL_COMPLETED)
        assert f._waiters == []

    _drive(sim, gen())
