"""Shared builders for the fan-out engine tests."""

from __future__ import annotations

from repro import (
    FanoutConfig,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    PuKind,
    WorkProfile,
)

#: The straggler-forming recipe: a DPU-first profile routes every
#: primary through the DPU executor's *serial* command loop, so a
#: fan-out storm queues cold starts back to back and the tail of each
#: job straggles for real, while the CPU stays free as the clone
#: target.
STRAGGLER_CONFIG = dict(
    partitions=32, chunk_size=8, admit_stagger_s=0.001,
    gather_threshold=0.5, sweep_period_s=0.005,
    speculation_min_samples=1000,
    speculation_default_trigger_s=0.05,
)


def straggler_runtime(seed: int = 11, **overrides) -> MoleculeRuntime:
    """A runtime whose fan-out jobs deterministically speculate."""
    cfg = FanoutConfig(**{**STRAGGLER_CONFIG, **overrides})
    runtime = MoleculeRuntime.create(num_dpus=2, seed=seed, fanout=cfg)
    runtime.deploy_now(FunctionDef(
        name="sq",
        code=FunctionCode("sq", language=Language.PYTHON, import_ms=40.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    ))
    return runtime


def cpu_runtime(seed: int = 7, **overrides) -> MoleculeRuntime:
    """A runtime whose fan-out jobs finish promptly (CPU-first)."""
    defaults = dict(partitions=16, chunk_size=4, admit_stagger_s=0.001)
    cfg = FanoutConfig(**{**defaults, **overrides})
    runtime = MoleculeRuntime.create(num_dpus=2, seed=seed, fanout=cfg)
    runtime.deploy_now(FunctionDef(
        name="sq",
        code=FunctionCode("sq", language=Language.PYTHON, import_ms=40.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    ))
    return runtime
