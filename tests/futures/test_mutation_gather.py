"""Mutation-verified straggler gather: the detectors detect.

A test that asserts ``losers_completed == 0`` proves nothing if the
counter could never move.  Each test here *disables* one safety
mechanism of the speculation race — the way a regression would — and
asserts the corresponding detector actually fires; the unmutated twin
asserts it stays silent.

* loser cancellation: stub the invoker's ``_hedge_lost`` checkpoint
  probe to "never lost" — losing copies run to completion, the
  completed-loser counter moves and their execution is double-billed
  as hedge waste;
* clone anti-affinity: stub ``_hedge_exclude`` to "exclude nothing" —
  clones land on their primary's PU and the speculation policy's
  placement check trips.
"""

import operator

import pytest

from repro.core.invoker import Invoker
from repro.futures import synthetic_dataset

from tests.futures.util import straggler_runtime

ITEMS = synthetic_dataset(3, 256)


def _run_job(runtime):
    return runtime.run(runtime.fanout.run_job(
        lambda x: x * x, ITEMS, operator.add, function="sq"
    ))


@pytest.fixture
def unpatched():
    saved = {
        name: getattr(Invoker, name)
        for name in ("_hedge_lost", "_hedge_exclude")
    }
    yield
    for name, fn in saved.items():
        setattr(Invoker, name, fn)


def test_baseline_race_is_clean():
    runtime = straggler_runtime()
    _run_job(runtime)
    spec = runtime.fanout.speculation
    assert spec.fired > 0
    assert spec.losers_completed == 0
    assert spec.anti_affinity_violations == 0


def test_disabling_cancellation_checkpoints_is_detected(unpatched):
    """No checkpoint ever reports the race lost -> losers run to
    completion and their execution is charged as double-billed
    waste."""
    Invoker._hedge_lost = lambda self, hedge: False
    runtime = straggler_runtime()
    _run_job(runtime)
    spec = runtime.fanout.speculation
    assert spec.fired > 0
    # The completed-loser detector fires...
    assert spec.losers_completed > 0
    # ...and the double-billing shows up as wasted execution seconds
    # (every loser ran its full exec after the race was decided).
    assert spec.wasted_s > 0.0


def test_forcing_same_pu_clones_is_detected(unpatched):
    """Clone placement ignores anti-affinity -> clones land on the
    primary's PU and the placement check trips."""
    Invoker._hedge_exclude = lambda self, hedge: None
    runtime = straggler_runtime()
    _run_job(runtime)
    spec = runtime.fanout.speculation
    assert spec.fired > 0
    assert spec.anti_affinity_violations > 0


def test_mutations_do_not_break_results(unpatched):
    """Both mutations corrupt the *race*, never the answer: results
    stay correct, every task still reaches exactly one fate."""
    import functools

    expected = functools.reduce(operator.add, [x * x for x in ITEMS])
    for mutation in (
        ("_hedge_lost", lambda self, hedge: False),
        ("_hedge_exclude", lambda self, hedge: None),
    ):
        saved = getattr(Invoker, mutation[0])
        setattr(Invoker, mutation[0], mutation[1])
        try:
            runtime = straggler_runtime()
            job = _run_job(runtime)
        finally:
            setattr(Invoker, mutation[0], saved)
        assert job.value == expected
        assert runtime.fanout.tasks_done == 32
        assert len(runtime.fanout.task_log) == 32
