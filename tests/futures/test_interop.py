"""Cross-subsystem interop: fan-out × overload control, fan-out × warm path.

The fan-out engine rides the same gateway/scheduler/invoker path as
every plain request, so the other optional subsystems must compose
with it rather than around it:

* overload control sheds fan-out tasks at the admission gate exactly
  like singleton requests — a shed partition surfaces in the job's
  ``FanoutPartialFailure`` and the frontend-level conservation
  invariant still balances;
* the warm-path engine coalesces a fan-out cold-start storm into a
  handful of single-flight batches instead of queueing one serial
  cold start per partition on the DPU executor daemon.
"""

import functools
import operator

import pytest

from repro import (
    FanoutConfig,
    FunctionCode,
    FunctionDef,
    Language,
    MoleculeRuntime,
    OverloadConfig,
    PuKind,
    WorkProfile,
)
from repro.errors import FanoutPartialFailure
from repro.futures import synthetic_dataset
from repro.loadgen import run_load
from repro.warmpath import WarmPathConfig


def _dpu_first_function(name: str = "sq") -> FunctionDef:
    return FunctionDef(
        name=name,
        code=FunctionCode(name, language=Language.PYTHON, import_ms=40.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    )


# -- fanout x overload --------------------------------------------------------------


#: A deliberately tiny gate with a tight deadline so a 32-task storm
#: actually parks and sheds (mirrors tests/overload recipes).
_TINY_GATE = dict(
    initial_limit=2, min_limit=1, max_limit=4, queue_capacity=2,
    predictive_budget_fraction=0.5,
)


def _overloaded_runtime(seed: int = 5) -> MoleculeRuntime:
    runtime = MoleculeRuntime.create(
        num_dpus=2, seed=seed, default_deadline_s=0.25,
        overload=OverloadConfig(**_TINY_GATE),
        fanout=FanoutConfig(
            partitions=32, chunk_size=8, admit_stagger_s=0.001,
            speculate=False,
        ),
    )
    runtime.deploy_now(_dpu_first_function("f"))
    return runtime


def test_overload_sheds_surface_as_partial_failure():
    """Tasks refused by the admission gate land in the job's partial
    failure as sheds (not errors), and some tasks still complete."""
    runtime = _overloaded_runtime()
    frontend = runtime.sharded_frontend(2)

    def drive():
        try:
            yield from runtime.fanout.run_job(
                lambda x: x, synthetic_dataset(5, 128),
                function="f", frontend=frontend,
            )
        except FanoutPartialFailure as exc:
            return exc
        return None

    proc = runtime.sim.spawn(drive())
    runtime.sim.run()
    failure = proc.value
    assert isinstance(failure, FanoutPartialFailure)
    assert failure.shed > 0
    assert failure.done > 0
    assert failure.done + failure.shed + failure.failed == 32


def test_conservation_holds_at_the_frontend_under_shedding():
    """Every admitted request still reaches exactly one fate when the
    gate is shedding: answered + shed + dead-lettered == admitted."""
    runtime = _overloaded_runtime()
    frontend = runtime.sharded_frontend(2)

    def drive():
        try:
            yield from runtime.fanout.run_job(
                lambda x: x, synthetic_dataset(5, 128),
                function="f", frontend=frontend,
            )
        except FanoutPartialFailure:
            pass

    runtime.sim.spawn(drive())
    runtime.sim.run()
    engine = runtime.fanout
    assert engine.tasks_shed > 0
    assert engine.conserved(
        frontend.requests_admitted, len(runtime.dead_letters)
    )


def test_fanout_scenario_composes_with_overload_control():
    """``run_load`` wires both subsystems at once: the report carries
    an overload block *and* a conserved fanout block, and the load
    totals balance (nothing lost)."""
    report = run_load("fanout", seed=3, quick=True, overload=True)
    assert "overload" in report
    fanout = report["fanout"]
    assert fanout["conserved"] is True
    assert fanout["tasks_done"] > 0
    assert report["load"]["lost"] == 0


# -- fanout x warm path -------------------------------------------------------------


_STORM = FanoutConfig(
    partitions=32, chunk_size=8, admit_stagger_s=0.001, speculate=False,
)


def _storm_runtime(warmpath: bool, seed: int = 9) -> MoleculeRuntime:
    runtime = MoleculeRuntime.create(
        num_dpus=2, seed=seed,
        warmpath=WarmPathConfig() if warmpath else None,
        fanout=_STORM,
    )
    runtime.deploy_now(_dpu_first_function())
    return runtime


def _storm_job(runtime):
    items = synthetic_dataset(9, 256)
    job = runtime.run(runtime.fanout.run_job(
        lambda x: x * x, items, operator.add, function="sq"
    ))
    assert job.value == functools.reduce(
        operator.add, [x * x for x in items]
    )
    return job


def test_cold_start_storm_coalesces_into_single_flight_batches():
    """32 simultaneous misses on the same (function, PU) open a
    handful of batches, not 32 serial cold starts."""
    runtime = _storm_runtime(warmpath=True)
    _storm_job(runtime)
    assert runtime.fanout.tasks_done == 32
    # The vast majority of tasks ride a batch as followers...
    assert runtime.invoker.coalesced_invocations >= 24
    # ...because the storm opened only a few single-flight batches.
    assert 0 < runtime.warmpath.coalescer.batches_opened <= 4
    assert runtime.warmpath.coalesced_served == (
        runtime.invoker.coalesced_invocations
    )


def test_coalescing_beats_serial_cold_starts_on_wall_clock():
    """Same storm, same seed: the warm path collapses the serial DPU
    cold-start queue, so the fan-out + gather stages finish far
    sooner than the un-coalesced runtime."""
    warm = _storm_job(_storm_runtime(warmpath=True))
    cold = _storm_job(_storm_runtime(warmpath=False))
    warm_s = warm.stage_s["fanout"] + warm.stage_s["gather"]
    cold_s = cold.stage_s["fanout"] + cold.stage_s["gather"]
    assert warm_s < cold_s / 2


def test_warmpath_does_not_change_fanout_results_or_fates():
    runtime = _storm_runtime(warmpath=True)
    _storm_job(runtime)
    log = runtime.fanout.task_log
    assert len(log) == 32
    assert sorted(seq for _, seq, _ in log) == list(range(32))
    assert all(outcome == "done" for _, _, outcome in log)
