"""Golden fan-out trace regression: a seeded 2-shard, 64-partition
``map_reduce`` run must reproduce byte-identical per-task
``(time, seq, outcome)`` tuples.

The checked-in output at ``data/golden_fanout_tasks.json`` pins the
whole fan-out pipeline: partition planning, chunked admission order,
shard routing, DPU executor queueing, straggler sweep timing and the
speculation races it fires.  If a change *intentionally* alters the
timeline, regenerate the file (run this module as a script) and call
the change out in review.
"""

import functools
import json
import operator
from pathlib import Path

from repro import FanoutConfig
from repro.futures import synthetic_dataset
from repro.loadgen import Arrival, ArrivalPlan, build_runtime

DATA = Path(__file__).parent / "data"
GOLDEN_SEED = 1234
GOLDEN_SHARDS = 2
GOLDEN_DATASET = (GOLDEN_SEED, 256)

#: Pinned explicitly (not FanoutConfig defaults) so default tuning can
#: move without invalidating the golden output.  The ``etl`` function
#: is DPU-first, so the 64-task storm queues on the serial executor
#: daemon and the straggler sweep fires for real; the sample floor is
#: set above one job's worth of completions so the 250ms fallback
#: trigger governs (a single job's own p95 *is* its straggler tail,
#: which would otherwise never trigger).
GOLDEN_CONFIG = FanoutConfig(
    partitions=64, chunk_size=16, admit_stagger_s=0.002,
    gather_threshold=0.8, sweep_period_s=0.02,
    speculation_percentile=95.0, speculation_min_samples=1000,
    speculation_default_trigger_s=0.25,
)


def _replay():
    # The plan only sizes the runtime (functions + trace buffer); the
    # job below is driven directly through the sharded frontend.
    plan = ArrivalPlan(
        (Arrival(time_s=0.0, function="etl"),), duration_s=1.0
    )
    runtime, frontend = build_runtime(
        plan, seed=GOLDEN_SEED, shards=GOLDEN_SHARDS,
        fanout=GOLDEN_CONFIG,
    )
    items = synthetic_dataset(*GOLDEN_DATASET)
    value = runtime.run(runtime.fanout.map_reduce(
        lambda x: x * x, items, operator.add, function="etl",
        frontend=frontend,
    ))
    assert value == functools.reduce(
        operator.add, [x * x for x in items]
    )
    engine = runtime.fanout
    return [list(entry) for entry in engine.task_log], engine


def test_replay_matches_checked_in_task_tuples():
    expected = json.loads(
        (DATA / "golden_fanout_tasks.json").read_text()
    )
    task_log, engine = _replay()
    assert len(task_log) == GOLDEN_CONFIG.partitions
    assert task_log == expected
    assert engine.tasks_done == GOLDEN_CONFIG.partitions


def test_replay_is_identical_across_runs():
    first_log, first_engine = _replay()
    second_log, second_engine = _replay()
    # Byte-identical, not approximately equal: serialise and compare.
    assert json.dumps(first_log) == json.dumps(second_log)
    assert first_engine.snapshot() == second_engine.snapshot()


def test_golden_run_actually_speculates():
    """The checked-in trace exercises the straggler machinery for
    real: the gather sweep fires clone triggers and at least one clone
    wins its race."""
    _, engine = _replay()
    spec = engine.speculation
    assert engine.speculations > 0
    assert spec.fired > 0
    assert spec.won > 0
    assert spec.losers_completed == 0
    assert spec.anti_affinity_violations == 0


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    DATA.mkdir(exist_ok=True)
    task_log, _ = _replay()
    (DATA / "golden_fanout_tasks.json").write_text(
        json.dumps(task_log) + "\n"
    )
    print(f"regenerated {DATA / 'golden_fanout_tasks.json'}")
