"""Setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel``
package (legacy editable install path).
"""

from setuptools import setup

setup()
