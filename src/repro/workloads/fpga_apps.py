"""FPGA-accelerated applications (Fig. 2b, Fig. 13, Fig. 14f-h,
Table 4), ported from the AWS/Xilinx Vitis demos the paper uses.

Kernel fabric resources are calibrated so that the Table 4 wrapper —
4 instances each of madd/mmult/mscale plus the shell — reproduces the
published utilisation (10.1% LUTs, 8.3% REGs, 22.5% BRAMs, 11.5% DSPs
of an F1 device).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import FunctionDef, WorkProfile
from repro.errors import WorkloadError
from repro.hardware.fpga import FabricResources, KernelSpec
from repro.hardware.pu import PuKind
from repro.sandbox.base import FunctionCode, Language

# -- matrix kernels (Fig. 2b / Fig. 14h / Table 4) -----------------------------

#: CPU latencies labelled in Fig. 2b (microseconds).
MATRIX_CPU_US = {"mscale": 192.0, "madd": 324.0, "vmult": 3551.0}
#: FPGA latencies derived from the published 2.15x-2.82x speedups.
MATRIX_FPGA_US = {"mscale": 80.3, "madd": 114.9, "vmult": 1651.6}
#: Paper speedup band of Fig. 2b.
PAPER_MATRIX_SPEEDUP = (2.15, 2.82)

#: Per-instance fabric resources (Table 4 calibration).
MATRIX_KERNEL_RESOURCES = {
    "madd": FabricResources(luts=4000, regs=7000, brams=20.0, dsps=40.0),
    "mscale": FabricResources(luts=3607, regs=6604, brams=15.5, dsps=22.5),
    "mmult": FabricResources(luts=7500, regs=12000, brams=32.0, dsps=100.0),
}

#: Table 4's published wrapper totals (12 instances incl. shell).
PAPER_TABLE4_WRAPPER = {
    "luts": 119_517,
    "regs": 196_996,
    "brams": 486.0,
    "dsps": 787.0,
}
PAPER_TABLE4_FRACTIONS = {
    "luts": 0.101,
    "regs": 0.083,
    "brams": 0.225,
    "dsps": 0.115,
}


def matrix_kernel(name: str) -> KernelSpec:
    """A matrix kernel spec (madd / mscale / mmult / vmult).

    ``vmult`` (vector multiplication, Fig. 2b) shares mmult's fabric
    shape.
    """
    resources = MATRIX_KERNEL_RESOURCES.get(
        name, MATRIX_KERNEL_RESOURCES["mmult"]
    )
    exec_us = MATRIX_FPGA_US.get(name, MATRIX_FPGA_US["vmult"])
    return KernelSpec(name=name, resources=resources, exec_time_s=exec_us * 1e-6)


def matrix_functions() -> list[FunctionDef]:
    """The three Fig. 2b matrix functions, deployable on CPU and FPGA."""
    functions = []
    for name in ("mscale", "madd", "vmult"):
        functions.append(
            FunctionDef(
                name=name,
                code=FunctionCode(
                    name,
                    language=Language.PYTHON,
                    kernel=matrix_kernel(name),
                    memory_mb=60.0,
                ),
                work=WorkProfile(
                    warm_exec_ms=MATRIX_CPU_US[name] / 1000.0,
                    fpga_exec_ms=MATRIX_FPGA_US[name] / 1000.0,
                ),
                profiles=(PuKind.CPU, PuKind.FPGA),
            )
        )
    return functions


#: Fig. 14h: the matrix-computation application, CPU 2.6ms vs FPGA 2.8x
#: lower.
MATRIX_COMPUT_CPU_MS = 2.6
MATRIX_COMPUT_FPGA_MS = 2.6 / 2.8


# -- GZip (Fig. 14f) -----------------------------------------------------------------


def gzip_cpu_ms(file_mb: float) -> float:
    """CPU gzip latency model: ~4.5s for the 112MB Linux source."""
    if file_mb < 0:
        raise WorkloadError(f"negative file size: {file_mb}")
    return 40.0 * file_mb


def gzip_fpga_ms(file_mb: float) -> float:
    """FPGA gzip latency: fixed offload overhead + streaming rate."""
    if file_mb < 0:
        raise WorkloadError(f"negative file size: {file_mb}")
    return 450.0 + 1.0 * file_mb


#: Paper claims for Fig. 14f: FPGA wins clearly above ~25MB, by up to
#: 4.8-8.3x at large sizes.
PAPER_GZIP_CROSSOVER_MB = 25.0
PAPER_GZIP_SPEEDUP = (4.8, 8.3)

GZIP_KERNEL = KernelSpec(
    name="gzip",
    resources=FabricResources(luts=52_000, regs=88_000, brams=120.0, dsps=12.0),
    exec_time_s=0.450,
)


def gzip_function() -> FunctionDef:
    """The GZip application (CPU and FPGA profiles).

    Invoke with ``exec_time_s=gzip_*_ms(size)/1000`` for a given file.
    """
    return FunctionDef(
        name="gzip_app",
        code=FunctionCode(
            "gzip_app", language=Language.PYTHON, kernel=GZIP_KERNEL, memory_mb=128.0
        ),
        work=WorkProfile(warm_exec_ms=gzip_cpu_ms(1.0), fpga_exec_ms=gzip_fpga_ms(1.0)),
        profiles=(PuKind.CPU, PuKind.FPGA),
    )


# -- Anti-money-laundering (Fig. 14g) ---------------------------------------------------


def aml_cpu_ms(entries: int) -> float:
    """CPU transaction-screening latency: ~270ms at 6M entries."""
    if entries < 0:
        raise WorkloadError(f"negative entry count: {entries}")
    return 2.1 + 44.7e-6 * entries


def aml_fpga_ms(entries: int) -> float:
    """FPGA screening latency: ~8.3ms at 6M entries."""
    if entries < 0:
        raise WorkloadError(f"negative entry count: {entries}")
    return 0.5 + 1.3e-6 * entries


#: Fig. 14g claim: FPGA outperforms CPU by 4.7x (6K) to 34.6x (6M).
PAPER_AML_SPEEDUP = (4.7, 34.6)

AML_KERNEL = KernelSpec(
    name="anti_moneyl",
    resources=FabricResources(luts=38_000, regs=61_000, brams=96.0, dsps=24.0),
    exec_time_s=0.0083,
)


def aml_function() -> FunctionDef:
    """The Anti-MoneyL application (CPU and FPGA profiles)."""
    return FunctionDef(
        name="anti_moneyl",
        code=FunctionCode(
            "anti_moneyl", language=Language.PYTHON, kernel=AML_KERNEL, memory_mb=96.0
        ),
        work=WorkProfile(
            warm_exec_ms=aml_cpu_ms(6000), fpga_exec_ms=aml_fpga_ms(6000)
        ),
        profiles=(PuKind.CPU, PuKind.FPGA),
    )


# -- vector chain (Fig. 13) ---------------------------------------------------------------


def vector_chain_kernels(n: int = 5, exec_us: float = 50.0) -> list[KernelSpec]:
    """``n`` small vector-computation kernels for the Fig. 13 chain."""
    if n < 1:
        raise WorkloadError(f"chain needs at least one kernel: {n}")
    return [
        KernelSpec(
            name=f"vec{i}",
            resources=FabricResources(luts=2500, regs=4200, brams=8.0, dsps=16.0),
            exec_time_s=exec_us * 1e-6,
        )
        for i in range(n)
    ]
