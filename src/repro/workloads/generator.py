"""Request generators: open-loop (Poisson) and closed-loop clients.

Used by the density and utilisation experiments, and available for
users driving their own workloads against a :class:`MoleculeRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import WorkloadError
from repro.sim import SeededRng, Simulator


@dataclass
class RequestTrace:
    """Collected results of a generated request stream."""

    latencies_s: list[float] = field(default_factory=list)
    completed: int = 0
    failed: int = 0

    def record(self, latency_s: float) -> None:
        """Record one completed request."""
        self.latencies_s.append(latency_s)
        self.completed += 1


class PoissonGenerator:
    """Open-loop arrivals at a fixed mean rate."""

    def __init__(self, sim: Simulator, rate_per_s: float, rng: Optional[SeededRng] = None):
        if rate_per_s <= 0:
            raise WorkloadError(f"arrival rate must be positive: {rate_per_s}")
        self.sim = sim
        self.rate = rate_per_s
        self.rng = rng or SeededRng()
        self.trace = RequestTrace()

    def run(self, invoke: Callable[[], object], duration_s: float):
        """Generator: fire requests for ``duration_s`` seconds.

        ``invoke`` must return a fresh invocation generator per call;
        each request runs as its own process (open loop).
        """
        end = self.sim.now + duration_s
        while self.sim.now < end:
            gap = self.rng.exponential(1.0 / self.rate)
            yield self.sim.timeout(gap)
            if self.sim.now >= end:
                break
            self.sim.spawn(self._request(invoke))

    def _request(self, invoke):
        begin = self.sim.now
        try:
            yield from invoke()
        except Exception:
            self.trace.failed += 1
            return
        self.trace.record(self.sim.now - begin)


class ClosedLoopClient:
    """One client issuing requests back to back."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.trace = RequestTrace()

    def run(self, invoke: Callable[[], object], requests: int):
        """Generator: issue ``requests`` sequential invocations."""
        if requests < 0:
            raise WorkloadError(f"negative request count: {requests}")
        for _ in range(requests):
            begin = self.sim.now
            yield from invoke()
            self.trace.record(self.sim.now - begin)
