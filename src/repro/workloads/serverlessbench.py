"""ServerlessBench workloads (Yu et al., SoCC'20): the Alexa skill
chain and the Python MapReduce chain used in Fig. 12 and Fig. 14e.

Calibration: the paper reports 38.6ms for the baseline Alexa chain on
the CPU (5 Node.js functions, 4 hops through Express) and 20.0ms for
baseline MapReduce (3 Python functions, 2 Flask hops).  Backing out the
Express/Flask hop costs (config.BASELINE_DAG) leaves ~3.78ms per Alexa
handler and ~1.67ms per MapReduce stage of execution.
"""

from __future__ import annotations

from repro.core.dag import Chain, ChainStage
from repro.core.registry import FunctionDef, WorkProfile
from repro.hardware.pu import PuKind
from repro.sandbox.base import FunctionCode, Language

#: The Fig. 12 edge names: front->interact, interact->smarthome,
#: smarthome->door, smarthome->light (modelled as a linear chain).
ALEXA_STAGES = ("frontend", "interact", "smarthome", "door", "light")
ALEXA_EDGE_NAMES = (
    "front-interact",
    "interact-smarthome",
    "smarthome-door",
    "smarthome-light",
)
#: Per-edge payloads (<1KB messages, §6.3).
ALEXA_PAYLOAD_BYTES = (1024, 819, 512, 307)

ALEXA_EXEC_MS = 3.78      # per handler on the reference CPU
ALEXA_DPU_SLOWDOWN = 2.0  # event-driven Node.js code on BF-1 (Fig. 14e)

MAPREDUCE_STAGES = ("splitter", "mapper", "reducer")
MAPREDUCE_PAYLOAD_BYTES = (2048, 2048)
MAPREDUCE_EXEC_MS = 1.67
MAPREDUCE_DPU_SLOWDOWN = 2.0

#: Paper end-to-end baselines on CPU (Fig. 14e labels).
PAPER_ALEXA_BASELINE_CPU_MS = 38.6
PAPER_MAPREDUCE_BASELINE_CPU_MS = 20.0
#: Paper improvement ranges across CPU/DPU/CrossPU.
PAPER_ALEXA_SPEEDUP = (2.04, 2.47)
PAPER_MAPREDUCE_SPEEDUP = (3.70, 4.47)


def alexa_functions(profiles=(PuKind.CPU, PuKind.DPU)) -> list[FunctionDef]:
    """The five Alexa skill handlers."""
    return [
        FunctionDef(
            name=stage,
            code=FunctionCode(stage, language=Language.NODEJS, memory_mb=60.0),
            work=WorkProfile(
                warm_exec_ms=ALEXA_EXEC_MS, dpu_slowdown=ALEXA_DPU_SLOWDOWN
            ),
            profiles=profiles,
        )
        for stage in ALEXA_STAGES
    ]


def alexa_chain() -> Chain:
    """The Alexa smart-home chain."""
    stages = tuple(
        ChainStage(stage, payload)
        for stage, payload in zip(
            ALEXA_STAGES, (*ALEXA_PAYLOAD_BYTES, 256)
        )
    )
    return Chain("alexa", stages)


def mapreduce_functions(profiles=(PuKind.CPU, PuKind.DPU)) -> list[FunctionDef]:
    """The three MapReduce stages."""
    return [
        FunctionDef(
            name=stage,
            code=FunctionCode(stage, language=Language.PYTHON, memory_mb=60.0),
            work=WorkProfile(
                warm_exec_ms=MAPREDUCE_EXEC_MS, dpu_slowdown=MAPREDUCE_DPU_SLOWDOWN
            ),
            profiles=profiles,
        )
        for stage in MAPREDUCE_STAGES
    ]


def mapreduce_chain() -> Chain:
    """The Python MapReduce chain."""
    stages = tuple(
        ChainStage(stage, payload)
        for stage, payload in zip(
            MAPREDUCE_STAGES, (*MAPREDUCE_PAYLOAD_BYTES, 512)
        )
    )
    return Chain("mapreduce", stages)
