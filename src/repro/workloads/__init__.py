"""Workload suites: FunctionBench, ServerlessBench, FPGA applications."""

from repro.workloads import fpga_apps, functionbench, serverlessbench, traces
from repro.workloads.generator import ClosedLoopClient, PoissonGenerator, RequestTrace
from repro.workloads.traces import AzureLikeTrace, DiurnalProfile, TraceEvent

__all__ = [
    "AzureLikeTrace",
    "ClosedLoopClient",
    "DiurnalProfile",
    "PoissonGenerator",
    "RequestTrace",
    "TraceEvent",
    "fpga_apps",
    "functionbench",
    "serverlessbench",
    "traces",
]
