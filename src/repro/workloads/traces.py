"""Synthetic invocation traces in the style of Azure Functions.

The paper's keep-alive discussion builds on "Serverless in the Wild"
(Shahrad et al., its citation [82]): production invocation streams are
highly skewed — a few functions dominate — with strong time-of-day
cycles and heavy-tailed inter-arrival times.  This module generates
such streams so keep-alive and density experiments can run against
realistic-shaped load instead of uniform Poisson traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import WorkloadError
from repro.sim import SeededRng


@dataclass(frozen=True)
class TraceEvent:
    """One invocation in a trace."""

    time_s: float
    function: str


def zipf_weights(n: int, skew: float = 1.1) -> list[float]:
    """Normalised Zipf popularity weights for ``n`` functions.

    ``skew`` ≈ 1.0 matches the production observation that a small head
    of functions receives most invocations.
    """
    if n < 1:
        raise WorkloadError(f"need at least one function: {n}")
    if skew <= 0:
        raise WorkloadError(f"skew must be positive: {skew}")
    raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [value / total for value in raw]


@dataclass
class DiurnalProfile:
    """A day-shaped rate modulation: rate(t) = base * profile(t)."""

    period_s: float = 86_400.0
    trough_fraction: float = 0.25  # overnight rate relative to the peak

    def factor(self, time_s: float) -> float:
        """Multiplier in [trough, 1] with a midday peak."""
        if self.period_s <= 0:
            raise WorkloadError("period must be positive")
        phase = 2 * math.pi * (time_s % self.period_s) / self.period_s
        # Cosine day: peak at half-period (midday), trough at 0.
        shape = 0.5 * (1 - math.cos(phase))
        return self.trough_fraction + (1 - self.trough_fraction) * shape


@dataclass
class OnOffProfile:
    """A square-wave rate modulation: bursts at the peak, lulls between.

    ``factor(t)`` is 1.0 for the first ``on_s`` of every period and
    ``idle_fraction`` for the remaining ``off_s`` — the bursty arrival
    regime that stresses autoscaling and keep-alive at burst edges.
    """

    on_s: float = 5.0
    off_s: float = 15.0
    idle_fraction: float = 0.05

    def factor(self, time_s: float) -> float:
        """Multiplier in {idle_fraction, 1} for the containing phase."""
        if self.on_s <= 0 or self.off_s < 0:
            raise WorkloadError(
                f"invalid on/off profile: on={self.on_s} off={self.off_s}"
            )
        if not 0 <= self.idle_fraction <= 1:
            raise WorkloadError(
                f"idle fraction must be in [0, 1]: {self.idle_fraction}"
            )
        period = self.on_s + self.off_s
        phase = time_s % period if period > 0 else 0.0
        return 1.0 if phase < self.on_s else self.idle_fraction


class AzureLikeTrace:
    """Generates a skewed, diurnally-modulated invocation stream."""

    def __init__(
        self,
        functions: Sequence[str],
        peak_rate_per_s: float,
        skew: float = 1.1,
        diurnal: DiurnalProfile | None = None,
        rng: SeededRng | None = None,
    ):
        if peak_rate_per_s <= 0:
            raise WorkloadError(f"rate must be positive: {peak_rate_per_s}")
        if not functions:
            raise WorkloadError("trace needs at least one function")
        self.functions = list(functions)
        self.peak_rate = peak_rate_per_s
        self.weights = zipf_weights(len(self.functions), skew)
        self.diurnal = diurnal or DiurnalProfile()
        self.rng = rng or SeededRng()
        self._cum_weights = []
        acc = 0.0
        for weight in self.weights:
            acc += weight
            self._cum_weights.append(acc)

    def _pick_function(self) -> str:
        draw = self.rng.uniform(0.0, 1.0)
        for name, cum in zip(self.functions, self._cum_weights):
            if draw <= cum:
                return name
        return self.functions[-1]

    def events(self, duration_s: float, start_s: float = 0.0) -> Iterator[TraceEvent]:
        """Yield events over ``[start_s, start_s + duration_s)``.

        Uses thinning: candidate arrivals at the peak rate, accepted
        with the diurnal factor, which yields an inhomogeneous Poisson
        process.
        """
        if duration_s <= 0:
            raise WorkloadError(f"duration must be positive: {duration_s}")
        now = start_s
        end = start_s + duration_s
        while True:
            now += self.rng.exponential(1.0 / self.peak_rate)
            if now >= end:
                return
            if self.rng.uniform(0.0, 1.0) <= self.diurnal.factor(now):
                yield TraceEvent(time_s=now, function=self._pick_function())

    def replay(self, sim, invoke, duration_s: float, trace_log: list | None = None):
        """Generator: replay the trace against a runtime.

        ``invoke(function_name)`` must return a fresh invocation
        generator; each request runs as its own process.
        """
        for event in self.events(duration_s, start_s=sim.now):
            delay = event.time_s - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            if trace_log is not None:
                trace_log.append(event)
            sim.spawn(invoke(event.function))


def head_share(weights: Sequence[float], head: int) -> float:
    """Fraction of traffic captured by the ``head`` hottest functions."""
    if head < 0:
        raise WorkloadError(f"negative head size: {head}")
    return sum(sorted(weights, reverse=True)[:head])
