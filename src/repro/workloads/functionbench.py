"""FunctionBench workloads (Kim & Lee, SoCC'19) as used in Fig. 14.

Each workload's work profile is calibrated from the paper's published
end-to-end latencies: the warm number (Fig. 14b) is the execution time,
and the cold-minus-warm delta is split into the Python runtime boot
(common to all), dependency imports (skipped by a dedicated template)
and data preparation (never skipped).  Paper numbers are kept alongside
for the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registry import FunctionDef, WorkProfile
from repro.errors import WorkloadError
from repro.hardware.pu import PuKind
from repro.sandbox.base import FunctionCode, Language


@dataclass(frozen=True)
class FunctionBenchSpec:
    """One FunctionBench workload and its paper-reported latencies."""

    name: str
    warm_ms: float        # Fig. 14b (execution only)
    import_ms: float      # dependency imports, skipped by cfork template
    data_ms: float        # data preparation, paid on every cold start
    paper_cold_cpu_ms: float   # Fig. 14a baseline
    paper_cold_bf1_ms: float   # Fig. 14c baseline
    paper_cold_bf2_ms: float   # Fig. 14d baseline
    memory_mb: float = 60.0

    def to_function(self, profiles=(PuKind.CPU, PuKind.DPU)) -> FunctionDef:
        """Build the deployable FunctionDef."""
        return FunctionDef(
            name=self.name,
            code=FunctionCode(
                self.name,
                language=Language.PYTHON,
                import_ms=self.import_ms,
                data_ms=self.data_ms,
                memory_mb=self.memory_mb,
            ),
            work=WorkProfile(warm_exec_ms=self.warm_ms),
            profiles=profiles,
        )


#: The eight Fig. 14 workloads.  import/data splits derive from
#: cold - warm - (container 34.4 + python boot 136.7) on the host CPU;
#: negative residuals (pyaes, dd, gzip) clamp to zero imports.
FUNCTIONBENCH = (
    FunctionBenchSpec("image_resize", 14.1, 12.8, 0.0, 198.0, 1245.4, 238.9),
    FunctionBenchSpec("chameleon", 10.9, 80.3, 0.0, 262.3, 1857.1, 492.4),
    FunctionBenchSpec("linpack", 95.9, 194.5, 0.0, 461.5, 1855.2, 471.4),
    FunctionBenchSpec("matmul", 1.4, 118.4, 8.0, 298.9, 1853.2, 400.8),
    FunctionBenchSpec("pyaes", 19.5, 0.0, 0.0, 164.5, 1121.9, 213.7),
    FunctionBenchSpec(
        "video_processing", 33811.0, 171.9, 4100.0, 38254.0, 240237.0, 82636.8
    ),
    FunctionBenchSpec("dd", 43.1, 0.0, 0.0, 194.9, 1134.3, 216.1),
    FunctionBenchSpec("gzip_compression", 182.9, 0.0, 0.0, 335.6, 1909.6, 506.7),
)

#: Paper speedups for Molecule over baseline, cold boot on CPU
#: (Fig. 14a): between 1.01x (video) and 11.12x (matmul).
PAPER_COLD_SPEEDUP_RANGE = (1.01, 11.12)


def spec(name: str) -> FunctionBenchSpec:
    """Workload spec by name."""
    for workload in FUNCTIONBENCH:
        if workload.name == name:
            return workload
    raise WorkloadError(f"unknown FunctionBench workload {name!r}")


def all_functions(profiles=(PuKind.CPU, PuKind.DPU)) -> list[FunctionDef]:
    """Deployable FunctionDefs for the whole suite."""
    return [workload.to_function(profiles) for workload in FUNCTIONBENCH]


def workload_names() -> list[str]:
    """Names of the eight workloads, in paper order."""
    return [workload.name for workload in FUNCTIONBENCH]
