"""Molecule-homo: the paper's homogeneous baseline (§6).

Molecule-homo does not use XPU-Shim, so it runs on a *single* PU (CPU
or DPU, never both), cannot reach accelerators, starts every instance
with a full container cold boot (no cfork), and chains functions with
Node.js Express / Python Flask HTTP hops — the same DAG methods
OpenWhisk uses.  It is deliberately a strong baseline: far faster than
the commercial systems of Fig. 9, which makes Molecule's wins over it
meaningful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import config
from repro.core.dag import Chain, ChainResult
from repro.core.invoker import InvocationResult
from repro.core.keepalive import WarmPool
from repro.core.registry import FunctionDef, FunctionRegistry
from repro.errors import SchedulingError
from repro.hardware.pu import ProcessingUnit, PuKind, PuSpec
from repro.hardware import specs
from repro.multios.os import OsInstance
from repro.sandbox.base import Language
from repro.sandbox.runc import RuncRuntime
from repro.sim import Simulator


def _hop_ms(language: Language) -> float:
    """Same-PU HTTP hop cost of the baseline DAG method (ref CPU)."""
    if language is Language.NODEJS:
        return config.BASELINE_DAG.express_hop_cpu_ms
    return config.BASELINE_DAG.flask_hop_cpu_ms


class MoleculeHomo:
    """The homogeneous baseline runtime on one PU."""

    def __init__(self, sim: Optional[Simulator] = None, pu_spec: PuSpec = specs.XEON_8160):
        self.sim = sim or Simulator()
        self.pu = ProcessingUnit(self.sim, 0, "pu0", pu_spec)
        self.os = OsInstance(self.sim, self.pu)
        self.runc = RuncRuntime(self.sim, self.os)
        self.registry = FunctionRegistry()
        self.pool = WarmPool(4096)
        self._ids = itertools.count(1)
        self._request_ids = itertools.count(1)

    def run(self, generator):
        """Spawn, run to completion, return the generator's value."""
        proc = self.sim.spawn(generator)
        self.sim.run()
        return proc.value

    def deploy(self, function: FunctionDef) -> FunctionDef:
        """Register a function (no templates: homo has no cfork)."""
        return self.registry.register(function)

    # -- invocation -----------------------------------------------------------------

    def invoke(self, name: str, force_cold: bool = False, exec_time_s: Optional[float] = None):
        """Generator: one request — full container boot when cold."""
        function = self.registry.get(name)
        start = self.sim.now
        yield self.sim.timeout(config.GATEWAY_OVERHEAD_MS * config.MS)
        request_id = next(self._request_ids)
        startup_begin = self.sim.now
        instance = None if force_cold else self.pool.acquire(name)
        cold = instance is None
        if cold:
            sandbox_id = f"{name}-{next(self._ids)}"
            yield from self.runc.create(sandbox_id, function.code)
            sandbox = yield from self.runc.start(sandbox_id)
            from repro.core.invoker import FunctionInstance

            instance = FunctionInstance(
                function=function, pu=self.pu, sandbox=sandbox, forked=False
            )
        startup_s = self.sim.now - startup_begin
        exec_begin = self.sim.now
        if cold and function.code.data_ms:
            yield self.sim.timeout(function.code.data_ms * config.MS)
        duration = (
            exec_time_s if exec_time_s is not None
            else self._exec_time(function)
        )
        yield self.sim.timeout(duration)
        instance.requests_served += 1
        exec_s = self.sim.now - exec_begin
        self.pool.release(instance, now=self.sim.now)
        return InvocationResult(
            function=name,
            request_id=request_id,
            pu_name=self.pu.name,
            pu_kind=self.pu.kind,
            cold=cold,
            startup_s=startup_s,
            exec_s=exec_s,
            comm_s=0.0,
            total_s=self.sim.now - start,
            billed_cost=self.pu.spec.price_class.cost(exec_s),
        )

    def invoke_now(self, name: str, **kwargs) -> InvocationResult:
        """Synchronous convenience wrapper."""
        return self.run(self.invoke(name, **kwargs))

    def _exec_time(self, function: FunctionDef) -> float:
        return function.work.exec_time(self.pu)

    def _chain_factor(self, function: FunctionDef) -> float:
        """Software-cost scaling of hop work on this PU."""
        if self.pu.kind is PuKind.DPU and function.work.dpu_slowdown is not None:
            return function.work.dpu_slowdown
        return 1.0 / self.pu.spec.speed

    # -- chains -----------------------------------------------------------------------

    def run_chain(self, chain: Chain, cross_pu_edges: Sequence[bool] = ()):
        """Generator: execute a chain with Express/Flask HTTP hops.

        ``cross_pu_edges[i]`` marks edge i as crossing PUs (the CrossPU
        configuration of Fig. 14e, where the baseline must hop through
        the host network / gateway).  All functions must be deployed.
        """
        edges = len(chain.stages) - 1
        crosses = list(cross_pu_edges) or [False] * edges
        if len(crosses) != edges:
            raise SchedulingError("cross_pu_edges length must match chain edges")
        start = self.sim.now
        exec_total = 0.0
        edge_latencies = []
        for i, stage in enumerate(chain.stages):
            function = self.registry.get(stage.function)
            duration = self._exec_time(function)
            yield self.sim.timeout(duration)
            exec_total += duration
            if i < edges:
                if crosses[i]:
                    hop_ms = config.BASELINE_DAG.cross_pu_hop_ms
                else:
                    hop_ms = _hop_ms(function.code.language) * self._chain_factor(
                        function
                    )
                hop_ms += (
                    stage.payload_out_bytes / config.KB
                ) * config.BASELINE_DAG.payload_ms_per_kb
                hop_s = hop_ms * config.MS
                yield self.sim.timeout(hop_s)
                edge_latencies.append(hop_s)
        total_s = self.sim.now - start
        return ChainResult(
            chain=chain.name,
            total_s=total_s,
            exec_s=exec_total,
            comm_s=total_s - exec_total,
            edge_latencies_s=edge_latencies,
            placements=[self.pu.name] * len(chain.stages),
        )

    def run_chain_now(self, chain: Chain, **kwargs) -> ChainResult:
        """Synchronous convenience wrapper."""
        return self.run(self.run_chain(chain, **kwargs))
