"""Baseline systems: Molecule-homo and commercial latency models."""

from repro.baselines.commercial import (
    CommercialSample,
    CommercialSystemModel,
    aws_lambda,
    openwhisk,
)
from repro.baselines.homo import MoleculeHomo

__all__ = [
    "CommercialSample",
    "CommercialSystemModel",
    "MoleculeHomo",
    "aws_lambda",
    "openwhisk",
]
