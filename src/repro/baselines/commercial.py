"""Latency models of the commercial comparators of Fig. 9.

AWS Lambda and OpenWhisk only appear in the paper as comparison bars
for startup and communication latency; they are modelled as calibrated
latency distributions (means from Fig. 9, small lognormal-ish jitter),
not as simulated systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.sim import SeededRng


@dataclass(frozen=True)
class CommercialSample:
    """One sampled request against a commercial platform."""

    startup_ms: float
    comm_ms: float


class CommercialSystemModel:
    """A named (startup, comm-hop) latency model."""

    def __init__(self, name: str, startup_ms: float, comm_ms: float,
                 rng: SeededRng | None = None, jitter: float = 0.08):
        self.name = name
        self.startup_ms = startup_ms
        self.comm_ms = comm_ms
        self.jitter = jitter
        self.rng = rng or SeededRng(config.default_seed()).fork(name)

    def sample(self) -> CommercialSample:
        """Draw one request's startup and communication latency."""
        return CommercialSample(
            startup_ms=self.rng.jitter(self.startup_ms, self.jitter),
            comm_ms=self.rng.jitter(self.comm_ms, self.jitter),
        )

    def mean_startup_ms(self, n: int = 50) -> float:
        """Mean sampled startup latency over ``n`` requests."""
        return sum(self.sample().startup_ms for _ in range(n)) / n

    def mean_comm_ms(self, n: int = 50) -> float:
        """Mean sampled communication latency over ``n`` requests."""
        return sum(self.sample().comm_ms for _ in range(n)) / n


def aws_lambda(rng: SeededRng | None = None) -> CommercialSystemModel:
    """AWS Lambda: helloworld cold start + Step Functions hop (Fig. 9)."""
    return CommercialSystemModel(
        "aws-lambda",
        startup_ms=config.COMMERCIAL.lambda_startup_ms,
        comm_ms=config.COMMERCIAL.lambda_comm_ms,
        rng=rng,
    )


def openwhisk(rng: SeededRng | None = None) -> CommercialSystemModel:
    """Apache OpenWhisk: docker-runtime cold start + HTTP hop (Fig. 9)."""
    return CommercialSystemModel(
        "openwhisk",
        startup_ms=config.COMMERCIAL.openwhisk_startup_ms,
        comm_ms=config.COMMERCIAL.openwhisk_comm_ms,
        rng=rng,
    )
