"""The warm-path engine: cold-start coalescing, predictive pre-warm,
and FPGA bitstream prefetch (see :mod:`repro.warmpath.engine`)."""

from repro.warmpath.coalesce import CoalescedBatch, ColdStartCoalescer
from repro.warmpath.engine import WarmPathConfig, WarmPathEngine
from repro.warmpath.predictor import ArrivalPredictor, FunctionStats

__all__ = [
    "ArrivalPredictor",
    "CoalescedBatch",
    "ColdStartCoalescer",
    "FunctionStats",
    "WarmPathConfig",
    "WarmPathEngine",
]
