"""Per-function arrival prediction for the warm-path engine.

The predictor is fed every gateway admission and maintains, per
function, a hybrid of the two signals the Serverless-in-the-Wild
keep-alive policy uses:

* an **EWMA arrival rate** — reacts quickly to bursts and decays when
  a function goes quiet, driving *how many* instances to pre-warm;
* an **inter-arrival histogram** — the empirical idle-gap
  distribution, whose upper percentile drives *how long* to keep idle
  instances alive (the per-function adaptive TTL).

Everything is pure arithmetic over observed timestamps: no randomness,
so a seeded run that feeds the same admissions produces the same
predictions, tick for tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Inter-arrival histogram bucket upper bounds (seconds), roughly
#: logarithmic from 1ms to 2 minutes; gaps beyond the last bound land
#: in an overflow bucket.
GAP_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


@dataclass
class FunctionStats:
    """Arrival statistics of one function."""

    #: Total admissions observed.
    count: int = 0
    #: Sim time of the most recent admission.
    last_arrival_s: float = 0.0
    #: EWMA of the instantaneous arrival rate (1 / inter-arrival gap).
    ewma_rate: float = 0.0
    #: Inter-arrival gap histogram (len(GAP_BUCKETS) + 1 overflow).
    gap_counts: list = field(
        default_factory=lambda: [0] * (len(GAP_BUCKETS) + 1)
    )


class ArrivalPredictor:
    """EWMA rate + inter-arrival histogram per function."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._stats: dict[str, FunctionStats] = {}

    def observe(self, func_name: str, now: float) -> None:
        """Record one admission of ``func_name`` at sim time ``now``."""
        stats = self._stats.get(func_name)
        if stats is None:
            stats = self._stats[func_name] = FunctionStats()
        if stats.count:
            gap = now - stats.last_arrival_s
            if gap > 0.0:
                index = len(GAP_BUCKETS)
                for i, bound in enumerate(GAP_BUCKETS):
                    if gap <= bound:
                        index = i
                        break
                stats.gap_counts[index] += 1
                instant = 1.0 / gap
                if stats.ewma_rate:
                    stats.ewma_rate += self.alpha * (instant - stats.ewma_rate)
                else:
                    stats.ewma_rate = instant
            # gap == 0 (several admissions in one timestep): the EWMA
            # already reflects a burst; skip the degenerate 1/0 sample.
        stats.count += 1
        stats.last_arrival_s = now

    def functions(self) -> list[str]:
        """Every function the predictor has seen, in first-seen order."""
        return list(self._stats)

    def stats(self, func_name: str) -> Optional[FunctionStats]:
        """Raw statistics for one function (None if never seen)."""
        return self._stats.get(func_name)

    def predicted_rps(self, func_name: str, now: float) -> float:
        """Predicted near-term arrival rate of ``func_name``.

        The EWMA rate, decayed once the function has been idle longer
        than two expected inter-arrival gaps — so a function that went
        quiet stops attracting pre-warm capacity within a couple of
        its own gap lengths, without any tunable decay clock.
        """
        stats = self._stats.get(func_name)
        if stats is None or stats.ewma_rate <= 0.0:
            return 0.0
        idle = now - stats.last_arrival_s
        if idle <= 0.0:
            return stats.ewma_rate
        return min(stats.ewma_rate, 2.0 / idle)

    def gap_percentile(self, func_name: str, q: float) -> Optional[float]:
        """Nearest-rank ``q``-th percentile inter-arrival gap (seconds).

        Returns the upper bound of the bucket containing the rank (the
        conservative choice for a keep-alive TTL); None until at least
        one gap has been observed.  Gaps beyond the largest bucket
        report that largest bound — the TTL clamp handles the tail.
        """
        stats = self._stats.get(func_name)
        if stats is None:
            return None
        total = sum(stats.gap_counts)
        if total == 0:
            return None
        rank = max(1, int(total * q / 100.0 + 0.999999))
        cumulative = 0
        for i, count in enumerate(stats.gap_counts):
            cumulative += count
            if cumulative >= rank:
                return GAP_BUCKETS[min(i, len(GAP_BUCKETS) - 1)]
        return GAP_BUCKETS[-1]
