"""Single-flight cold-start batches (the coalescing bookkeeping).

When several requests for the same function miss the warm pool in the
same window, only the first (the **leader**) runs a real cold start;
the rest (**followers**) park on the leader's :class:`CoalescedBatch`.
When the leader's instance is up, the batch fans out: a capped number
of extra instances are forked off the same template (the vectorized
part — by then the template page cache is hot and the per-fork work is
the only cost), and each finished instance is handed FIFO to a parked
follower.  Followers the batch cannot serve are woken empty-handed and
retry the warm pool — by then earlier requests are completing and
releasing instances, which is exactly how a storm of N misses ends up
with far fewer than N sandboxes.

This module is pure bookkeeping over sim events; the engine drives the
actual forking through the invoker so every instance goes through the
normal admission / teardown paths.
"""

from __future__ import annotations

from typing import Optional


class CoalescedBatch:
    """One in-flight single-flight cold start for a ``(function, PU)``."""

    def __init__(self, key: tuple[str, int]):
        #: (function name, pu_id) this batch serves.
        self.key = key
        #: Follower wait events, FIFO; each is succeeded with a
        #: FunctionInstance (served) or None (batch closed — retry).
        self.waiters: list = []
        #: True while new followers may join.
        self.open = True
        #: True once the leader's own cold start completed.
        self.leader_ready = False
        #: Extra instances requested so far (leader excluded); bounded
        #: by the engine's ``max_batch - 1``.
        self.requested = 0
        #: Extra-instance fork processes still in flight.
        self.spawning = 0
        #: Live instances attributable to this batch (leader + extras,
        #: minus destroys).  While > 0, completing requests will keep
        #: recycling instances to parked followers, so the batch stays
        #: open; it closes once nothing can serve its waiters anymore.
        self.live = 0
        #: Followers handed an instance by this batch.
        self.served = 0
        #: Extra instances forked beyond the leader's.
        self.extra_spawned = 0

    def join(self, sim):
        """Park one follower; returns the event it must yield on."""
        event = sim.event()
        self.waiters.append(event)
        return event

    def next_waiter(self):
        """Pop the longest-parked follower still waiting (or None)."""
        if self.waiters:
            return self.waiters.pop(0)
        return None


class ColdStartCoalescer:
    """The open-batch table: one batch per missing ``(function, PU)``."""

    def __init__(self):
        self._batches: dict[tuple[str, int], CoalescedBatch] = {}
        #: Lifetime counters (tests and reports).
        self.batches_opened = 0
        self.followers_served = 0
        self.followers_requeued = 0

    def lookup(self, func_name: str, pu_ids) -> Optional[CoalescedBatch]:
        """The open batch for ``func_name`` on any of ``pu_ids``."""
        for pu_id in pu_ids:
            batch = self._batches.get((func_name, pu_id))
            if batch is not None and batch.open:
                return batch
        return None

    def peek(self, func_name: str, pu_id: int) -> Optional[CoalescedBatch]:
        """The batch (open or draining) keyed exactly ``(func, pu)``."""
        return self._batches.get((func_name, pu_id))

    def begin(self, func_name: str, pu_id: int) -> CoalescedBatch:
        """Open a new batch led by the calling request."""
        key = (func_name, pu_id)
        batch = CoalescedBatch(key)
        self._batches[key] = batch
        self.batches_opened += 1
        return batch

    def close(self, batch: CoalescedBatch) -> None:
        """Close a batch: stop new joins and wake leftover followers.

        Followers woken here got no instance (event value None); they
        loop back to the warm pool / a fresh batch.
        """
        batch.open = False
        if self._batches.get(batch.key) is batch:
            del self._batches[batch.key]
        while batch.waiters:
            event = batch.waiters.pop(0)
            self.followers_requeued += 1
            if not event.triggered:
                event.succeed(None)

    def deliver(self, batch: CoalescedBatch, instance) -> bool:
        """Hand ``instance`` to the longest-parked follower.

        Returns False when nobody is waiting (the caller releases the
        instance into the warm pool instead).
        """
        event = batch.next_waiter()
        if event is None:
            return False
        batch.served += 1
        self.followers_served += 1
        event.succeed(instance)
        return True
