"""The warm-path engine: coalescing, predictive pre-warm, prefetch.

:class:`WarmPathEngine` sits beside the invoker and attacks the three
places the reactive warm pool still pays cold starts (§5 keep-alive is
purely LRU+TTL):

* **cold-start coalescing** — concurrent misses for one
  ``(function, PU)`` join a single-flight fork batch
  (:mod:`repro.warmpath.coalesce`) instead of each forking its own
  sandbox: a storm of N misses is served by a capped set of recycled
  instances, so the PU's DRAM admits the storm instead of rejecting
  the overflow into placement-retry failures;
* **predictive pre-warm** — a per-function arrival estimator
  (:mod:`repro.warmpath.predictor`) fed by gateway admissions drives a
  ``PreWarmer`` sim process that forks instances ahead of predicted
  demand and adapts per-function keep-alive TTLs from the
  inter-arrival distribution, with wasted-prewarm accounting shrinking
  the horizon when predictions misfire;
* **bitstream prefetch** — the same predictor plans the next
  vectorized FPGA image and starts its (multi-second) programming
  before the triggering request arrives; a request landing mid-program
  joins the in-flight programming instead of repacking a second
  device.

Everything is deterministic (pure arithmetic over sim timestamps; the
instances themselves go through the normal seeded paths) and the whole
engine is optional: a runtime constructed without a
:class:`WarmPathConfig` behaves byte-identically to one predating this
module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import ReproError, SchedulingError
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.obs.spans import NULL_TRACE
from repro.warmpath.coalesce import CoalescedBatch, ColdStartCoalescer
from repro.warmpath.predictor import ArrivalPredictor

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.invoker import FunctionInstance, Invoker
    from repro.core.molecule import MoleculeRuntime
    from repro.core.registry import FunctionDef


@dataclass
class WarmPathConfig:
    """Knobs of the warm-path engine (all mechanisms individually
    togglable; the engine absent ⇒ stock behavior)."""

    #: Single-flight cold-start coalescing on/off.
    coalesce: bool = True
    #: Total instances one batch may produce (leader + extras).
    max_batch: int = 8
    #: Predictive pre-warm on/off.
    prewarm: bool = True
    #: Pre-warmer tick period (sim seconds).
    prewarm_period_s: float = 0.25
    #: How far ahead of predicted demand to stock instances (seconds
    #: of predicted arrivals).
    horizon_s: float = 1.0
    #: Cap on pre-warmed idle instances per function.
    max_prewarm_per_function: int = 8
    #: EWMA smoothing for the arrival-rate estimator.
    rate_alpha: float = 0.3
    #: Adapt per-function keep-alive TTLs from the gap histogram.
    adaptive_ttl: bool = True
    #: Inter-arrival percentile a pre-warmed instance must outlive.
    ttl_percentile: float = 99.0
    #: Safety margin over that percentile gap.
    ttl_margin: float = 1.5
    #: Clamp for adaptive TTLs (seconds).
    min_ttl_s: float = 0.5
    max_ttl_s: float = 120.0
    #: Recent pre-warm outcomes considered by the self-correction loop.
    wasted_window: int = 32
    #: Wasted fraction above which the pre-warm horizon halves.
    wasted_threshold: float = 0.5
    #: Bitstream prefetch on/off.
    prefetch: bool = True
    #: Minimum predicted rate before programming an FPGA ahead of time.
    prefetch_min_rps: float = 0.5


class WarmPathEngine:
    """Coalescing + pre-warm + prefetch over one runtime's invoker."""

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[WarmPathConfig] = None):
        self.runtime = runtime
        self.config = config or WarmPathConfig()
        self.predictor = ArrivalPredictor(alpha=self.config.rate_alpha)
        self.coalescer = ColdStartCoalescer()
        # -- lifetime counters (reports and tests) ------------------------------
        self.coalesced_served = 0
        self.extra_spawned = 0
        self.prewarm_spawned = 0
        self.prewarm_hits = 0
        self.prewarm_wasted = 0
        self.prewarm_reaped = 0
        self.prefetch_started = 0
        self.prefetch_hits = 0
        self.ticks = 0
        # -- pre-warm state -----------------------------------------------------
        #: func_name -> pre-warm forks still in flight.
        self._prewarm_inflight: dict[str, int] = {}
        #: Recent pre-warm outcomes (True = wasted) for self-correction.
        self._outcomes: deque = deque(maxlen=self.config.wasted_window)
        #: Multiplier on the pre-warm horizon, shrunk when predictions
        #: keep producing wasted instances.
        self.horizon_scale = 1.0
        self._admitted_since_tick = 0
        self._wakeup = None
        # -- prefetch state -----------------------------------------------------
        #: pu_id -> (functions being programmed, completion event).
        self._prefetch_inflight: dict[int, tuple] = {}
        #: (pu_id, func_name) pairs programmed ahead of demand and not
        #: yet claimed by a request (consumed on first warm FPGA start).
        self._prefetched: set = set()

        obs = runtime.obs
        if obs is not None:
            obs.ensure_warmpath_metrics()
        runtime.invoker.engine = self
        if self.config.prewarm or self.config.prefetch:
            runtime.sim.spawn(self._prewarm_loop(), name="warmpath-prewarmer")

    # -- admission feed ----------------------------------------------------------

    def on_admission(self, function: "FunctionDef",
                     kind: Optional[PuKind]) -> None:
        """One request admitted: feed the predictor, wake the pre-warmer."""
        self.predictor.observe(function.name, self.runtime.sim.now)
        self._admitted_since_tick += 1
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # -- cold-start coalescing ------------------------------------------------------

    @property
    def coalesce_enabled(self) -> bool:
        """True while misses should try to join a single-flight batch."""
        return self.config.coalesce

    def joinable_batch(self, function: "FunctionDef", kind, pu,
                       exclude=None) -> Optional[CoalescedBatch]:
        """An open batch this miss may join (None: become a leader).

        ``exclude`` is hedge anti-affinity: a clone never parks on a
        batch bound to its primary's PU.
        """
        if not self.config.coalesce:
            return None
        if pu is not None:
            pu_ids = (pu.pu_id,)
        else:
            pu_ids = tuple(
                c.pu_id
                for c in self.runtime.scheduler.candidates(function, kind)
            )
        if exclude is not None:
            pu_ids = tuple(i for i in pu_ids if i != exclude.pu_id)
        return self.coalescer.lookup(function.name, pu_ids)

    def open_batch(self, function: "FunctionDef",
                   target: ProcessingUnit) -> Optional[CoalescedBatch]:
        """The calling request becomes leader of a new batch."""
        if not self.config.coalesce:
            return None
        return self.coalescer.begin(function.name, target.pu_id)

    def abort_batch(self, batch: Optional[CoalescedBatch]) -> None:
        """The leader's cold start failed: wake every follower to retry."""
        if batch is not None:
            self.coalescer.close(batch)

    def on_follower_joined(self, batch: CoalescedBatch) -> None:
        """A miss just parked on ``batch``: fork an extra instance for
        it right away if the batch is under its size cap.

        Forking at join time (not when the leader completes) keeps a
        coalesced miss latency-competitive with the independent cold
        start it replaced — the extra fork runs concurrently with the
        leader's.  The cap plus DRAM admission is where coalescing
        beats per-request forking: followers past the cap are served by
        recycled instances (see :meth:`offer_released`) instead of
        failing placement or stacking up sandboxes.
        """
        func_name, pu_id = batch.key
        if 1 + batch.requested >= self.config.max_batch:
            return
        runtime = self.runtime
        try:
            function = runtime.registry.get(func_name)
        except ReproError:  # pragma: no cover - unregistered name
            return
        target = runtime.machine.pus[pu_id]
        if target.kind.general_purpose and not target.try_reserve_dram(
            function.code.memory_mb
        ):
            return  # admission control: recycle instead of growing
        batch.requested += 1
        batch.spawning += 1
        runtime.sim.spawn(
            self._spawn_batch_instance(batch, function, target),
            name=f"coalesce:{func_name}@{target.name}.{batch.requested}",
        )

    def leader_done(self, batch: CoalescedBatch, function: "FunctionDef",
                    target: ProcessingUnit) -> None:
        """The leader's instance is up: serve parked followers from the
        warm pool (requests completing meanwhile released instances
        there).  The batch stays open while its instances keep
        recycling; :meth:`_maybe_close` retires it."""
        batch.leader_ready = True
        batch.live += 1  # the leader's own instance
        invoker = self.runtime.invoker
        pool = invoker.pools[target.pu_id]
        while batch.waiters and pool.idle_instances(function.name):
            instance = pool.acquire(function.name)
            if instance is None:
                break
            if not invoker._is_alive(instance):
                invoker.sim.spawn(invoker._destroy(instance))
                continue
            self._note_prewarm_use(instance)
            self.coalescer.deliver(batch, instance)
        self._maybe_close(batch)

    def _maybe_close(self, batch: CoalescedBatch) -> None:
        """Close a batch that can no longer serve anyone: the leader is
        done, no extra fork is in flight, and either nobody waits or no
        live instance remains to recycle to them."""
        if (
            batch.open
            and batch.leader_ready
            and batch.spawning == 0
            and (not batch.waiters or batch.live <= 0)
        ):
            self.coalescer.close(batch)

    def _spawn_batch_instance(self, batch: CoalescedBatch,
                              function: "FunctionDef",
                              target: ProcessingUnit):
        """Generator: fork one extra batch instance and hand it over."""
        invoker = self.runtime.invoker
        instance = None
        try:
            instance = yield from invoker._cold_start(
                function, target, NULL_TRACE
            )
        except ReproError:
            # The fork died (injected fault / crashed PU): give back
            # the DRAM reserved for it in on_follower_joined.
            self.runtime.scheduler.release(function, target)
        if instance is not None:
            batch.extra_spawned += 1
            batch.live += 1
            self.extra_spawned += 1
            if not invoker._is_alive(instance):
                invoker.sim.spawn(invoker._destroy(instance))
            elif not self.coalescer.deliver(batch, instance):
                # Nobody left waiting: stock the warm pool instead.
                evicted = invoker.pools[target.pu_id].release(
                    instance, now=invoker.sim.now
                )
                invoker.notify_idle()
                for old in evicted:
                    invoker.sim.spawn(invoker._destroy(old))
        batch.spawning -= 1
        self._maybe_close(batch)

    def offer_released(self, instance: "FunctionInstance") -> bool:
        """Recycle a just-released instance straight to a parked
        follower of its ``(function, PU)`` batch, bypassing the pool.

        This is what lets a storm of N misses finish with far fewer
        than N sandboxes: requests completing on batch instances feed
        the followers the batch's size cap could not fork for.
        Returns False when nobody is waiting (normal pool release).
        """
        if not self.config.coalesce:
            return False
        batch = self.coalescer.peek(
            instance.function.name, instance.pu.pu_id
        )
        if batch is None or not batch.waiters:
            return False
        return self.coalescer.deliver(batch, instance)

    def on_coalesced_start(self, func_name: str) -> None:
        """A follower was served by a batch instead of a cold start."""
        self.coalesced_served += 1
        obs = self.runtime.obs
        if obs is not None:
            obs.on_coalesced_start(func_name)

    # -- pre-warm accounting ---------------------------------------------------------

    def _note_prewarm_use(self, instance: "FunctionInstance") -> None:
        """Credit a pre-warmed instance the moment a request claims it."""
        if instance.prewarmed:
            instance.prewarmed = False
            if instance.requests_served == 0:
                self.prewarm_hits += 1
                self._outcomes.append(False)
                obs = self.runtime.obs
                if obs is not None:
                    obs.on_prewarm_hit(instance.function.name)

    def on_warm_acquire(self, instance: "FunctionInstance") -> None:
        """Invoker hook: a warm-pool acquire is about to serve a request."""
        self._note_prewarm_use(instance)

    def on_instance_destroyed(self, instance: "FunctionInstance") -> None:
        """Invoker hook: an instance died; debit it if it was a
        pre-warmed instance no request ever used, and let its batch
        re-check whether it can still serve its waiters."""
        batch = self.coalescer.peek(
            instance.function.name, instance.pu.pu_id
        )
        if batch is not None:
            # Decrement is a lower bound (the destroyed instance may
            # predate the batch); an early close only requeues waiters,
            # never strands them.
            batch.live = max(0, batch.live - 1)
            self._maybe_close(batch)
        if instance.prewarmed and instance.requests_served == 0:
            instance.prewarmed = False
            self.prewarm_wasted += 1
            self._outcomes.append(True)
            obs = self.runtime.obs
            if obs is not None:
                obs.on_prewarm_wasted(instance.function.name)

    # -- the PreWarmer process -------------------------------------------------------

    def _prewarm_loop(self):
        """Daemon: periodically stock pools ahead of predicted demand.

        Event-driven like the keep-alive reaper: with no admissions and
        no predicted demand the process parks on a wakeup event, so an
        idle simulation can drain; :meth:`on_admission` wakes it.
        """
        sim = self.runtime.sim
        while True:
            if not self._work_pending():
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
            yield sim.timeout(self.config.prewarm_period_s)
            self._tick()

    def _work_pending(self) -> bool:
        """True while the pre-warmer should keep ticking."""
        if self._admitted_since_tick:
            return True
        now = self.runtime.sim.now
        for name in self.predictor.functions():
            predicted = self.predictor.predicted_rps(name, now)
            if self.config.prewarm and self._desired_instances(predicted) > 0:
                return True
            if self.config.prefetch and predicted >= self.config.prefetch_min_rps:
                return True
        return False

    def _desired_instances(self, predicted_rps: float) -> int:
        """Instances worth holding warm for one function right now."""
        raw = predicted_rps * self.config.horizon_s * self.horizon_scale
        return min(int(raw), self.config.max_prewarm_per_function)

    def _update_horizon_scale(self) -> None:
        """Self-correction: shrink the horizon while predictions keep
        producing wasted instances; recover slowly once they land."""
        if len(self._outcomes) < 8:
            return
        wasted = sum(1 for w in self._outcomes if w) / len(self._outcomes)
        if wasted > self.config.wasted_threshold:
            self.horizon_scale = max(0.25, self.horizon_scale * 0.5)
        elif wasted < self.config.wasted_threshold / 2:
            self.horizon_scale = min(1.0, self.horizon_scale * 1.25)

    def _tick(self) -> None:
        """One pre-warmer pass: TTLs, instance deficits, prefetch."""
        runtime = self.runtime
        now = runtime.sim.now
        self.ticks += 1
        self._admitted_since_tick = 0
        self._update_horizon_scale()
        obs = runtime.obs
        for name in self.predictor.functions():
            try:
                function = runtime.registry.get(name)
            except ReproError:  # pragma: no cover - unregistered name
                continue
            predicted = self.predictor.predicted_rps(name, now)
            if obs is not None:
                obs.on_predicted_rps(name, predicted)
            if self.config.adaptive_ttl:
                self._adapt_ttl(function)
            if self.config.prewarm:
                self._stock(function, predicted)
            if self.config.prefetch and function.supports(PuKind.FPGA):
                self._maybe_prefetch(function, predicted)
        self._reap(now)

    def _gp_kind(self, function: "FunctionDef") -> Optional[PuKind]:
        """The function's first general-purpose profile kind."""
        for kind in function.profiles:
            if kind.general_purpose:
                return kind
        return None

    def _adapt_ttl(self, function: "FunctionDef") -> None:
        """Set the function's keep-alive TTL from its gap distribution."""
        gap = self.predictor.gap_percentile(
            function.name, self.config.ttl_percentile
        )
        if gap is None:
            return
        ttl = min(
            max(gap * self.config.ttl_margin, self.config.min_ttl_s),
            self.config.max_ttl_s,
        )
        kind = self._gp_kind(function)
        if kind is None:
            return
        for pu in self.runtime.scheduler.candidates(function, kind):
            self.runtime.invoker.pools[pu.pu_id].ttl_overrides[
                function.name
            ] = ttl

    def _stock(self, function: "FunctionDef", predicted_rps: float) -> None:
        """Fork instances to cover the function's predicted deficit."""
        overload = getattr(self.runtime, "overload", None)
        if overload is not None and overload.suppress_prewarm():
            # Brownout: speculative capacity competes with admitted
            # requests for the cores that are already oversubscribed.
            return
        kind = self._gp_kind(function)
        if kind is None:
            return
        desired = self._desired_instances(predicted_rps)
        if desired <= 0:
            return
        runtime = self.runtime
        invoker = runtime.invoker
        idle = sum(
            len(invoker.pools[pu.pu_id].idle_instances(function.name))
            for pu in runtime.scheduler.candidates(function, kind)
        )
        inflight = self._prewarm_inflight.get(function.name, 0)
        deficit = desired - idle - inflight
        for i in range(max(0, deficit)):
            try:
                target = runtime.scheduler.place(function, kind)
            except SchedulingError:
                break  # admission control: the machine is full
            self._prewarm_inflight[function.name] = (
                self._prewarm_inflight.get(function.name, 0) + 1
            )
            runtime.sim.spawn(
                self._spawn_prewarm(function, target),
                name=f"prewarm:{function.name}@{target.name}.{i}",
            )

    def _spawn_prewarm(self, function: "FunctionDef",
                       target: ProcessingUnit):
        """Generator: fork one instance ahead of demand."""
        invoker = self.runtime.invoker
        instance = None
        try:
            instance = yield from invoker._cold_start(
                function, target, NULL_TRACE
            )
        except ReproError:
            self.runtime.scheduler.release(function, target)
        finally:
            self._prewarm_inflight[function.name] -= 1
        if instance is None:
            return
        instance.prewarmed = True
        self.prewarm_spawned += 1
        obs = self.runtime.obs
        if obs is not None:
            obs.on_prewarm_spawned(function.name)
        if not invoker._is_alive(instance):
            invoker.sim.spawn(invoker._destroy(instance))
            return
        evicted = invoker.pools[target.pu_id].release(
            instance, now=invoker.sim.now
        )
        invoker.notify_idle()
        for old in evicted:
            invoker.sim.spawn(invoker._destroy(old))

    def _reap(self, now: float) -> None:
        """Apply adaptive TTLs on pools the stock reaper does not cover
        (the invoker only runs its reaper with a pool-wide TTL set)."""
        invoker = self.runtime.invoker
        if any(
            pool.keep_alive_ttl_s is not None
            for pool in invoker.pools.values()
        ):
            # A stock reaper exists; it honours ttl_overrides itself.
            invoker.notify_idle()
            return
        reaped = 0
        for pool in invoker.pools.values():
            if not pool.ttl_overrides:
                continue
            for instance in pool.reap_expired(now):
                invoker.sim.spawn(invoker._destroy(instance))
                reaped += 1
        self.prewarm_reaped += reaped
        if reaped and self.runtime.obs is not None:
            self.runtime.obs.on_keepalive_reaped(reaped)

    # -- bitstream prefetch ----------------------------------------------------------

    def _maybe_prefetch(self, function: "FunctionDef",
                        predicted_rps: float) -> None:
        """Start programming the next image ahead of the first request."""
        if predicted_rps < self.config.prefetch_min_rps:
            return
        runtime = self.runtime
        try:
            candidates = runtime.scheduler.candidates(function, PuKind.FPGA)
        except ReproError:  # pragma: no cover - no FPGA profile
            return
        if not candidates:
            return
        for pu in candidates:
            runf = runtime.runfs.get(pu.pu_id)
            if (
                runf is not None
                and runf.cached_sandbox_for(function.name) is not None
            ):
                return  # already resident: nothing to hide
        for funcs, _event in self._prefetch_inflight.values():
            if function.name in funcs:
                return  # already being programmed
        free = [
            pu for pu in candidates
            if pu.pu_id not in self._prefetch_inflight
        ]
        if not free:
            return
        target = min(
            free,
            key=lambda pu: runtime.runf_on(pu.pu_id).device.program_count,
        )
        runtime.sim.spawn(
            self._run_prefetch(function, target),
            name=f"prefetch:{function.name}@{target.name}",
        )

    def _run_prefetch(self, function: "FunctionDef",
                      target: ProcessingUnit):
        """Generator: plan and program one image before demand lands."""
        runtime = self.runtime
        runf = runtime.runf_on(target.pu_id)
        predicted = [function.name] + [
            n for n in runf.resident_function_ids if n != function.name
        ]
        plan = runtime.image_planner.plan(predicted)
        invoker = runtime.invoker
        entries = []
        for fn_name in plan.func_names:
            fn = runtime.registry.get(fn_name)
            for _copy in range(plan.copies_each):
                entries.append(
                    (f"{fn_name}-v{next(invoker._sandbox_ids)}", fn.code)
                )
        done = runtime.sim.event()
        self._prefetch_inflight[target.pu_id] = (set(plan.func_names), done)
        ok = False
        try:
            yield from runf.create_vector(entries)
            ok = True
        except ReproError:
            pass  # injected bitstream failure: requests fall back cold
        finally:
            self._prefetch_inflight.pop(target.pu_id, None)
            if not done.triggered:
                done.succeed()
        if not ok:
            return
        self.prefetch_started += 1
        obs = runtime.obs
        if obs is not None:
            obs.on_bitstream_prefetch_started(function.name)
        # The previous image (and any unclaimed marks on it) is gone.
        self._prefetched = {
            (pu_id, name) for pu_id, name in self._prefetched
            if pu_id != target.pu_id
        }
        for name in plan.func_names:
            self._prefetched.add((target.pu_id, name))

    def join_bitstream_prefetch(self, function: "FunctionDef"):
        """Generator: if a device is mid-programming an image holding
        this function, wait for it (instead of repacking another)."""
        for funcs, event in list(self._prefetch_inflight.values()):
            if function.name in funcs:
                if not event.triggered:
                    yield event
                return
        return
        yield  # pragma: no cover - makes this a generator when the loop is empty

    def note_fpga_start(self, func_name: str, pu_id: int,
                        cold: bool) -> None:
        """Invoker hook: one FPGA start resolved (warm or cold)."""
        if cold:
            # The request repacked the image: whatever had been
            # prefetched onto this device was overwritten.
            self._prefetched = {
                (p, n) for p, n in self._prefetched if p != pu_id
            }
            return
        if (pu_id, func_name) in self._prefetched:
            self._prefetched.discard((pu_id, func_name))
            self.prefetch_hits += 1
            obs = self.runtime.obs
            if obs is not None:
                obs.on_bitstream_prefetch_hit(func_name)

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine counters for reports and tests."""
        return {
            "coalesced_served": self.coalesced_served,
            "batches_opened": self.coalescer.batches_opened,
            "extra_spawned": self.extra_spawned,
            "followers_requeued": self.coalescer.followers_requeued,
            "prewarm_spawned": self.prewarm_spawned,
            "prewarm_hits": self.prewarm_hits,
            "prewarm_wasted": self.prewarm_wasted,
            "prewarm_reaped": self.prewarm_reaped,
            "prefetch_started": self.prefetch_started,
            "prefetch_hits": self.prefetch_hits,
            "horizon_scale": self.horizon_scale,
            "ticks": self.ticks,
        }
