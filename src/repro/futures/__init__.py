"""Futures-based fan-out over partitioned data (repro.futures).

Lithops-style ``map``/``map_reduce`` with :class:`FanoutFuture`
handles, ``wait(ALL_COMPLETED | ANY_COMPLETED | N_COMPLETED)`` and a
straggler-aware gather that speculatively re-executes slow partitions
through the repro.hedging clone path.  See docs/futures.md.
"""

from repro.futures.engine import (
    FanoutConfig,
    FanoutEngine,
    FanoutJobResult,
    SpeculationPolicy,
)
from repro.futures.future import (
    ALL_COMPLETED,
    ANY_COMPLETED,
    DONE,
    ERROR,
    N_COMPLETED,
    PENDING,
    RUNNING,
    FanoutFuture,
    wait,
)
from repro.futures.partitioner import (
    Partition,
    Partitioner,
    synthetic_dataset,
)

__all__ = [
    "ALL_COMPLETED",
    "ANY_COMPLETED",
    "DONE",
    "ERROR",
    "N_COMPLETED",
    "PENDING",
    "RUNNING",
    "FanoutConfig",
    "FanoutEngine",
    "FanoutFuture",
    "FanoutJobResult",
    "Partition",
    "Partitioner",
    "SpeculationPolicy",
    "synthetic_dataset",
    "wait",
]
