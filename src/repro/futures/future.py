"""Futures over the simulation kernel: task handles and ``wait``.

A :class:`FanoutFuture` is the handle one partition task of a fan-out
job is tracked through.  It moves through at most three states::

    PENDING ──> RUNNING ──> DONE | ERROR

Exactly one terminal transition ever happens (``_finish`` and
``_fail`` are idempotent against each other), which is the
task-conservation property the Hypothesis suite checks: every
submitted task reaches exactly one terminal fate.

:func:`wait` is the gather primitive: a generator (``yield from`` it
inside a simulated process) that parks on the futures' completion
events until the requested number of them is done, every one is done,
or a timeout expires — the lithops-style
``ALL_COMPLETED | ANY_COMPLETED | N_COMPLETED`` contract.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ReproError

#: ``wait`` return conditions.
ALL_COMPLETED = "ALL_COMPLETED"
ANY_COMPLETED = "ANY_COMPLETED"
N_COMPLETED = "N_COMPLETED"

#: FanoutFuture states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"

#: Task outcome labels (``repro_fanout_tasks`` metric + task log).
OUTCOME_DONE = "done"
OUTCOME_SHED = "shed"
OUTCOME_ERROR = "error"


class FanoutFuture:
    """Handle of one partition task inside a fan-out job."""

    __slots__ = (
        "seq", "partition", "function", "state", "outcome",
        "dispatched_s", "finished_s", "speculated",
        "_value", "_error", "_waiters", "_spec_state",
    )

    def __init__(self, seq: int, partition, function: str):
        #: Job-wide submission sequence number (partition order).
        self.seq = seq
        self.partition = partition
        self.function = function
        self.state = PENDING
        #: Terminal outcome label ("" until terminal).
        self.outcome = ""
        #: Sim time the task was dispatched (straggler age baseline).
        self.dispatched_s = 0.0
        self.finished_s = 0.0
        #: True once the gather loop fired this task's clone trigger.
        self.speculated = False
        self._value = None
        self._error: Optional[BaseException] = None
        #: Events armed by ``wait`` loops; succeeded on any terminal
        #: transition.
        self._waiters: list = []
        #: The task's live hedge join state (repro.hedging), stamped by
        #: the per-task speculation policy so the gather loop can fire
        #: its clone trigger.  Replaced on every retry attempt.
        self._spec_state = None

    def done(self) -> bool:
        """True once the task reached a terminal state."""
        return self.state in (DONE, ERROR)

    def running(self) -> bool:
        """True while the task is dispatched but not terminal."""
        return self.state == RUNNING

    def result(self, throw_except: bool = True):
        """The task's value; raises (or returns None) before completion
        or on error depending on ``throw_except``."""
        if self.state == DONE:
            return self._value
        if self.state == ERROR:
            if throw_except:
                raise self._error
            return None
        if throw_except:
            raise ReproError(
                f"task {self.seq} of {self.function!r} is {self.state}"
            )
        return None

    @property
    def error(self) -> Optional[BaseException]:
        """The terminal error, if the task failed."""
        return self._error

    # -- engine-side transitions (package-private) ---------------------------------

    def _mark_running(self, now: float) -> None:
        self.state = RUNNING
        self.dispatched_s = now

    def _finish(self, value, now: float) -> None:
        if self.done():
            return
        self.state = DONE
        self.outcome = OUTCOME_DONE
        self._value = value
        self.finished_s = now
        self._notify()

    def _fail(self, error: BaseException, outcome: str, now: float) -> None:
        if self.done():
            return
        self.state = ERROR
        self.outcome = outcome
        self._error = error
        self.finished_s = now
        self._notify()

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()


def wait(sim, fs: Sequence[FanoutFuture], return_when: str = ALL_COMPLETED,
         timeout: Optional[float] = None, count: Optional[int] = None):
    """Generator: park until enough of ``fs`` completed.

    Returns ``(done, not_done)`` lists preserving the input order.
    ``return_when`` picks the target: every future (``ALL_COMPLETED``),
    at least one (``ANY_COMPLETED``), or at least ``count``
    (``N_COMPLETED``).  With no timeout, ``ANY_COMPLETED`` can only
    return a non-empty done-set while undone futures remain — the
    liveness property the Hypothesis suite checks.  A ``timeout``
    bounds the park and may return early with fewer done.
    """
    fs = list(fs)
    if return_when == ANY_COMPLETED:
        target = 1
    elif return_when == N_COMPLETED:
        if count is None:
            raise ReproError("N_COMPLETED requires count=")
        target = count
    elif return_when == ALL_COMPLETED:
        target = len(fs)
    else:
        raise ReproError(f"unknown return_when: {return_when!r}")
    target = min(target, len(fs))
    deadline = sim.now + timeout if timeout is not None else None
    while True:
        done = [f for f in fs if f.done()]
        not_done = [f for f in fs if not f.done()]
        if len(done) >= target or not not_done:
            return done, not_done
        if deadline is not None and sim.now >= deadline:
            return done, not_done
        waiter = sim.event()
        for future in not_done:
            future._waiters.append(waiter)
        if deadline is not None:
            yield sim.any_of(
                [waiter, sim.timeout(deadline - sim.now)]
            )
        else:
            yield waiter
        # Disarm: a timeout wake leaves the waiter registered, and a
        # completion wake leaves it on the *other* still-pending
        # futures' lists.
        for future in not_done:
            try:
                future._waiters.remove(waiter)
            except ValueError:
                pass
