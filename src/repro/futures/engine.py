"""The fan-out engine: ``map``/``map_reduce`` with straggler-aware gather.

One fan-out *job* is a three-to-four stage pipeline run entirely
through the real gateway/scheduler/invoker path:

1. **partition** — a CPU-pinned stage request splits the dataset into
   :class:`~repro.futures.partitioner.Partition` records;
2. **fanout** — partitions are admitted in deterministic chunks (the
   batched submitter), each as its own request dispatched to the PU
   kind the function's profile picks (CPU/DPU/FPGA);
3. **gather** — the job parks until the
   :attr:`FanoutConfig.gather_threshold` fraction of partitions
   completed, then sweeps the survivors: any task older than the
   tracked per-function latency percentile has its hedge clone
   trigger fired, re-executing it speculatively on a second PU via the
   repro.hedging race (first copy wins, losers cancelled at the
   invoker's checkpoints);
4. **reduce** — ``map_reduce`` only: a CPU-pinned stage request folds
   the gathered values.

Stragglers are cloned through a :class:`SpeculationPolicy` — a
free-standing :class:`~repro.hedging.engine.HedgePolicy` that is *not*
wired as the runtime hedger; it rides along each task request via the
``hedge_policy=`` override, with the percentile timer replaced by an
externally fired trigger event the gather loop owns.

Like every engine before it, the layer is fully optional:
``MoleculeRuntime(fanout=None)`` leaves every code path, metric family
and golden trace byte-identical to a runtime that never heard of it.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.errors import (
    FanoutPartialFailure,
    ReproError,
    RequestShed,
    SchedulingError,
    WorkloadError,
)
from repro.futures.future import (
    ALL_COMPLETED,
    N_COMPLETED,
    OUTCOME_DONE,
    OUTCOME_ERROR,
    OUTCOME_SHED,
    FanoutFuture,
    wait,
)
from repro.futures.partitioner import (
    PAYLOAD_BASE_BYTES,
    PAYLOAD_BYTES_PER_ITEM,
    Partitioner,
)
from repro.hardware.pu import PuKind
from repro.hedging.engine import HedgeConfig, HedgePolicy
from repro.obs.spans import FANOUT_STAGES, START_FANOUT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime


@dataclass
class FanoutConfig:
    """Tuning knobs for the fan-out engine."""

    #: Partitioning strategy: fixed partition size wins when set,
    #: otherwise the dataset is spread over ``partitions`` chunks.
    partition_size: Optional[int] = None
    partitions: int = 64
    #: Partitions admitted per deterministic chunk (the batched
    #: submitter), and the stagger between chunks.
    chunk_size: int = 16
    admit_stagger_s: float = 0.002
    #: Fraction of partitions that must complete before the straggler
    #: sweep starts.
    gather_threshold: float = 0.8
    #: Sweep cadence while stragglers remain.
    sweep_period_s: float = 0.02
    #: Arm straggler speculation (the hedging clone path).  Off leaves
    #: gather as a plain ALL_COMPLETED wait.
    speculate: bool = True
    #: Latency percentile a surviving task must outlive before its
    #: clone trigger fires, the sample floor below which the fallback
    #: trigger applies, and that fallback (seconds).
    speculation_percentile: float = 95.0
    speculation_min_samples: int = 10
    speculation_default_trigger_s: float = 0.25
    #: Simulated stage-request execution cost per dataset item
    #: (microseconds): partitioning touches every input item, the
    #: reduce touches every mapped value.
    partition_us_per_item: float = 2.0
    reduce_us_per_item: float = 2.0


@dataclass
class FanoutJobResult:
    """One fan-out job's outcome, shaped like an invocation result so
    the load drivers can record it without special-casing."""

    function: str
    value: object
    partitions: int
    batches: int
    speculated: int
    total_s: float
    admitted_s: float = 0.0
    shard: Optional[int] = None
    pu_name: str = "fanout"
    cold: bool = False
    attempts: int = 1
    hedged: bool = False
    #: Per-stage durations (sim seconds), pipeline order.
    stage_s: dict = field(default_factory=dict)


class SpeculationPolicy(HedgePolicy):
    """Straggler speculation as a free-standing hedge policy.

    Differences from the runtime-wide hedger it subclasses:

    * never wired as ``invoker.hedging`` (``wire=False``) — it rides
      along fan-out task requests via the ``hedge_policy=`` override;
    * every eligible task arms a *dormant* clone trigger (an event the
      gather sweep fires) instead of a percentile timer, so no clone
      ever launches unless the gather decides the task is a straggler;
    * checks clone anti-affinity on every resolved race and counts
      violations — the detector the mutation tests trip.
    """

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[HedgeConfig] = None):
        super().__init__(runtime, config, wire=False)
        #: Clone placements that landed on the primary's PU (must stay
        #: zero: ``Scheduler.clone_candidates`` excludes it).
        self.anti_affinity_violations = 0
        self._affinity_checked: set[int] = set()

    def eligible(self, function, kind, resolved_kind, pu, force_cold) -> bool:
        """Like the hedger's gate but without the warm-up check: the
        trigger is externally fired, so a cold tracker must not stop a
        task from arming its (dormant) clone trigger."""
        if pu is not None or force_cold:
            return False
        if not resolved_kind.general_purpose:
            return False
        try:
            candidates = self.runtime.scheduler.candidates(function, kind)
        except SchedulingError:
            return False
        return len(candidates) >= 2

    def begin(self, function, request_id: int):
        state = super().begin(function, request_id)
        if state.trigger_s is None:
            state.trigger_s = 0.0
        state.trigger_event = self.runtime.sim.event()
        return state

    def _check_affinity(self, state) -> None:
        event = state.event
        if event is None or event.get("clone_pu") is None:
            return
        key = id(event)
        if key in self._affinity_checked:
            return
        self._affinity_checked.add(key)
        if event["clone_pu"] == event["primary_pu"]:
            self.anti_affinity_violations += 1

    def on_won(self, state, tag, result) -> None:
        super().on_won(state, tag, result)
        self._check_affinity(state)

    def on_cancelled(self, state, tag, attempt_info, wasted_s) -> None:
        super().on_cancelled(state, tag, attempt_info, wasted_s)
        self._check_affinity(state)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["anti_affinity_violations"] = self.anti_affinity_violations
        return snap


class _TaskPolicy:
    """Per-task proxy over the shared :class:`SpeculationPolicy`.

    Intercepts ``begin`` so the opened hedge join state (and with it
    the clone trigger event) lands on the task's future, where the
    gather sweep can reach it; everything else delegates.  Retries call
    ``begin`` again, so the future always holds the live attempt's
    state.
    """

    __slots__ = ("_policy", "_future")

    def __init__(self, policy: SpeculationPolicy, future: FanoutFuture):
        self._policy = policy
        self._future = future

    def __getattr__(self, name):
        return getattr(self._policy, name)

    def begin(self, function, request_id: int):
        state = self._policy.begin(function, request_id)
        self._future._spec_state = state
        return state


class FanoutEngine:
    """Plans and drives fan-out jobs over one Molecule runtime."""

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[FanoutConfig] = None):
        self.runtime = runtime
        self.config = config or FanoutConfig()
        if self.config.partition_size is not None:
            self.partitioner = Partitioner.fixed_size(
                self.config.partition_size
            )
        else:
            self.partitioner = Partitioner.chunk_count(self.config.partitions)
        self.speculation: Optional[SpeculationPolicy] = None
        if self.config.speculate:
            self.speculation = SpeculationPolicy(runtime, HedgeConfig(
                percentile=self.config.speculation_percentile,
                min_samples=self.config.speculation_min_samples,
                default_trigger_s=self.config.speculation_default_trigger_s,
            ))
        # Lifetime counters (also exported as repro_fanout_* metrics).
        self.jobs = 0
        self.jobs_failed = 0
        self.tasks_submitted = 0
        self.tasks_done = 0
        self.tasks_shed = 0
        self.tasks_error = 0
        #: Stage requests (partition / reduce) by fate; they admit at
        #: the frontend like any request, so conservation needs them.
        self.stage_ok = 0
        self.stage_shed = 0
        self.stage_error = 0
        self.batches = 0
        self.speculations = 0
        #: (time, seq, outcome) per terminal task, completion order —
        #: the golden fan-out trace pins these byte for byte.
        self.task_log: list[tuple] = []
        #: Per-task end-to-end latencies (dispatch to terminal).
        self.task_samples: list[float] = []
        #: Per-stage durations across jobs (seconds).
        self.stage_samples: dict[str, list[float]] = {
            name: [] for name in FANOUT_STAGES
        }
        self._seq = itertools.count(0)
        if runtime.obs is not None:
            runtime.obs.ensure_fanout_metrics()

    @property
    def sim(self):
        return self.runtime.sim

    # -- public API --------------------------------------------------------------

    def map(self, fn: Callable, iterable: Sequence, function: str,
            frontend=None):
        """Generator: apply ``fn`` to every item via fanned-out
        partition tasks; returns the flat result list in input order."""
        job = yield from self.run_job(
            fn, iterable, None, function=function, frontend=frontend
        )
        return job.value

    def map_reduce(self, map_fn: Callable, iterable: Sequence,
                   reduce_fn: Callable, function: str, frontend=None):
        """Generator: ``map`` then fold the flat results through
        ``reduce_fn`` in a CPU-pinned reduce stage."""
        job = yield from self.run_job(
            map_fn, iterable, reduce_fn, function=function, frontend=frontend
        )
        return job.value

    def run_job(self, map_fn: Callable, items: Sequence,
                reduce_fn: Optional[Callable] = None,
                function: str = "", frontend=None):
        """Generator: one fan-out job end to end; returns the
        :class:`FanoutJobResult` (``value`` holds the flat map results,
        or the reduction when ``reduce_fn`` is given)."""
        items = tuple(items)
        if not items:
            raise WorkloadError("fan-out job needs a non-empty dataset")
        fdef = self.runtime.registry.get(function)
        sim = self.sim
        obs = self.runtime.obs
        start = sim.now
        self.jobs += 1
        if obs is not None:
            obs.on_fanout_job(function)
        trace = (
            obs.begin_invocation(function)
            if obs is not None else None
        )
        if trace is not None:
            trace.annotate(start_kind=START_FANOUT)
        stage_s: dict[str, float] = {}
        try:
            # -- stage 1: CPU partition ------------------------------------------
            t0 = sim.now
            span = trace.begin_phase("partition") if trace is not None else None
            first = yield from self._stage_request(
                function, frontend,
                exec_s=self.config.partition_us_per_item * 1e-6 * len(items),
                payload_bytes=(
                    PAYLOAD_BASE_BYTES + PAYLOAD_BYTES_PER_ITEM * len(items)
                ),
            )
            partitions = self.partitioner.partition(items)
            if trace is not None:
                trace.end_phase(span)
                trace.annotate(partitions=len(partitions))
            stage_s["partition"] = sim.now - t0
            # -- stage 2: chunked fan-out ----------------------------------------
            t0 = sim.now
            span = trace.begin_phase("fanout") if trace is not None else None
            futures = [
                FanoutFuture(next(self._seq), partition, function)
                for partition in partitions
            ]
            job_batches = yield from self._admit(
                futures, map_fn, function, frontend
            )
            if trace is not None:
                trace.end_phase(span)
            stage_s["fanout"] = sim.now - t0
            # -- stage 3: straggler-aware gather ---------------------------------
            t0 = sim.now
            span = trace.begin_phase("gather") if trace is not None else None
            speculated = yield from self._gather(futures, fdef)
            if trace is not None:
                trace.end_phase(span)
            stage_s["gather"] = sim.now - t0
            self._raise_partial_failure(function, futures)
            flat = [
                value
                for future in futures
                for value in future.result()
            ]
            # -- stage 4: CPU reduce (map_reduce only) ---------------------------
            value: object = flat
            if reduce_fn is not None:
                t0 = sim.now
                span = (
                    trace.begin_phase("reduce") if trace is not None else None
                )
                yield from self._stage_request(
                    function, frontend,
                    exec_s=self.config.reduce_us_per_item * 1e-6 * len(flat),
                    payload_bytes=(
                        PAYLOAD_BASE_BYTES
                        + PAYLOAD_BYTES_PER_ITEM * len(flat)
                    ),
                )
                value = functools.reduce(reduce_fn, flat)
                if trace is not None:
                    trace.end_phase(span)
                stage_s["reduce"] = sim.now - t0
        except RequestShed as exc:
            self.jobs_failed += 1
            if trace is not None:
                trace.shed(exc.reason)
            raise
        except Exception as exc:
            self.jobs_failed += 1
            if trace is not None:
                trace.fail(type(exc).__name__)
            raise
        for name, duration in stage_s.items():
            self.stage_samples[name].append(duration)
        if trace is not None:
            trace.finish()
        return FanoutJobResult(
            function=function,
            value=value,
            partitions=len(partitions),
            batches=job_batches,
            speculated=speculated,
            total_s=sim.now - start,
            admitted_s=first.admitted_s,
            shard=first.shard,
            hedged=speculated > 0,
            stage_s=stage_s,
        )

    # -- pipeline stages ----------------------------------------------------------

    def _invoke(self, name: str, frontend=None, **kwargs):
        frontend = (
            frontend if frontend is not None else self.runtime.frontend
        )
        if frontend is not None:
            return frontend.invoke(name, **kwargs)
        return self.runtime.invoker.invoke(name, **kwargs)

    def _stage_request(self, function: str, frontend, exec_s: float,
                       payload_bytes: int):
        """Generator: one CPU-pinned partition/reduce stage request."""
        try:
            result = yield from self._invoke(
                function, frontend,
                kind=PuKind.CPU,
                exec_time_s=exec_s,
                payload_bytes=payload_bytes,
            )
        except RequestShed:
            self.stage_shed += 1
            raise
        except ReproError:
            self.stage_error += 1
            raise
        self.stage_ok += 1
        return result

    def _admit(self, futures: list[FanoutFuture], map_fn: Callable,
               function: str, frontend) -> int:
        """Generator: dispatch tasks in deterministic chunks."""
        obs = self.runtime.obs
        chunk_size = max(1, self.config.chunk_size)
        job_batches = 0
        for lo in range(0, len(futures), chunk_size):
            chunk = futures[lo:lo + chunk_size]
            for future in chunk:
                future._mark_running(self.sim.now)
                self.tasks_submitted += 1
                self.sim.spawn(
                    self._task(future, map_fn, function, frontend),
                    name=f"fanout-task:{function}#{future.seq}",
                )
            self.batches += 1
            job_batches += 1
            if obs is not None:
                obs.on_fanout_batch()
            if (self.config.admit_stagger_s > 0
                    and lo + chunk_size < len(futures)):
                yield self.sim.timeout(self.config.admit_stagger_s)
        return job_batches

    def _task(self, future: FanoutFuture, map_fn: Callable, function: str,
              frontend):
        """Generator: one partition task through the real invoke path."""
        obs = self.runtime.obs
        policy = (
            _TaskPolicy(self.speculation, future)
            if self.speculation is not None else None
        )
        try:
            yield from self._invoke(
                function, frontend,
                payload_bytes=future.partition.payload_bytes,
                hedge_policy=policy,
            )
        except RequestShed as exc:
            self.tasks_shed += 1
            future._fail(exc, OUTCOME_SHED, self.sim.now)
        except ReproError as exc:
            self.tasks_error += 1
            future._fail(exc, OUTCOME_ERROR, self.sim.now)
        else:
            value = [map_fn(item) for item in future.partition.items]
            self.tasks_done += 1
            future._finish(value, self.sim.now)
        self.task_log.append(
            (round(self.sim.now, 9), future.seq, future.outcome)
        )
        self.task_samples.append(future.finished_s - future.dispatched_s)
        if obs is not None:
            obs.on_fanout_task(function, future.outcome)

    def _gather(self, futures: list[FanoutFuture], fdef) -> int:
        """Generator: threshold wait, then the straggler sweep."""
        sim = self.sim
        obs = self.runtime.obs
        threshold = max(
            1, int(-(-len(futures) * self.config.gather_threshold // 1))
        )
        yield from wait(sim, futures, N_COMPLETED, count=threshold)
        speculated = 0
        while True:
            done, pending = yield from wait(
                sim, futures, ALL_COMPLETED,
                timeout=(
                    self.config.sweep_period_s
                    if self.speculation is not None else None
                ),
            )
            if not pending:
                return speculated
            if self.speculation is None:
                continue
            trigger_s = self.speculation.trigger_delay(fdef)
            for future in pending:
                state = future._spec_state
                if (future.speculated or state is None or state.fired
                        or trigger_s is None):
                    continue
                if sim.now - future.dispatched_s < trigger_s:
                    continue
                event = state.trigger_event
                if event is not None and not event.triggered:
                    event.succeed()
                future.speculated = True
                speculated += 1
                self.speculations += 1
                if obs is not None:
                    obs.on_fanout_speculated(future.function)

    def _raise_partial_failure(self, function: str,
                               futures: list[FanoutFuture]) -> None:
        shed = sum(1 for f in futures if f.outcome == OUTCOME_SHED)
        failed = sum(1 for f in futures if f.outcome == OUTCOME_ERROR)
        if not shed and not failed:
            return
        done = sum(1 for f in futures if f.outcome == OUTCOME_DONE)
        errors = tuple(
            f"partition {f.partition.index}: "
            f"{type(f.error).__name__}: {f.error}"
            for f in futures
            if f.outcome in (OUTCOME_SHED, OUTCOME_ERROR)
        )
        raise FanoutPartialFailure(
            f"fan-out of {function!r} lost {shed + failed} of "
            f"{len(futures)} partitions ({shed} shed, {failed} failed)",
            done=done, shed=shed, failed=failed, errors=errors,
        )

    # -- invariants / reporting ----------------------------------------------------

    def answered_requests(self) -> int:
        """Frontend-admitted requests this engine saw answered (tasks
        plus stage requests): the ``answered`` term of the conservation
        invariant when the load is fan-out jobs."""
        return self.tasks_done + self.stage_ok

    def shed_requests(self) -> int:
        """Frontend-admitted requests shed by the overload controller."""
        return self.tasks_shed + self.stage_shed

    def conserved(self, admitted: int, dead: int) -> bool:
        """The task-conservation invariant at the frontend:
        ``answered + shed + dead == admitted``.  Task and stage errors
        are dead-lettered by the invoker, so they arrive through
        ``dead``."""
        return (
            self.answered_requests() + self.shed_requests() + dead
            == admitted
        )

    def snapshot(self) -> dict:
        """Lifetime accounting (stable keys, deterministic values)."""
        snap = {
            "jobs": self.jobs,
            "jobs_failed": self.jobs_failed,
            "tasks_submitted": self.tasks_submitted,
            "tasks_done": self.tasks_done,
            "tasks_shed": self.tasks_shed,
            "tasks_error": self.tasks_error,
            "stage_ok": self.stage_ok,
            "stage_shed": self.stage_shed,
            "stage_error": self.stage_error,
            "batches": self.batches,
            "speculations": self.speculations,
        }
        if self.speculation is not None:
            snap["speculation"] = self.speculation.snapshot()
        return snap
