"""Deterministic data partitioning for fan-out jobs.

A fan-out job starts from a concrete dataset (a sequence of items) and
splits it into :class:`Partition` records before dispatch.  Both
strategies — fixed partition *size* and fixed partition *count* — are
pure functions of the input sequence, so the same dataset always
yields the same partitions in the same order: the property the golden
fan-out trace pins byte for byte.

Datasets themselves come from :func:`synthetic_dataset`, which draws
from a :class:`~repro.sim.rng.SeededRng` fork (never the global
``random`` state), so a (seed, size) pair names one dataset forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.sim.rng import SeededRng

#: Simulated payload sizing: a partition's request payload is a fixed
#: envelope plus this many bytes per item.
PAYLOAD_BASE_BYTES = 256
PAYLOAD_BYTES_PER_ITEM = 64


def synthetic_dataset(seed: int, size: int) -> tuple[int, ...]:
    """A deterministic dataset of ``size`` small ints for ``seed``."""
    if size < 0:
        raise WorkloadError(f"dataset size must be >= 0: {size}")
    rng = SeededRng(seed).fork("fanout-dataset")
    return tuple(rng.randint(0, 1_000) for _ in range(size))


@dataclass(frozen=True)
class Partition:
    """One shard of a fan-out job's input data."""

    index: int
    items: tuple
    payload_bytes: int

    def __len__(self) -> int:
        return len(self.items)


class Partitioner:
    """Split a dataset into partitions under one of two strategies.

    ``fixed_size`` caps every partition at ``size`` items (the last one
    may be short); ``chunk_count`` spreads the items over exactly
    ``chunks`` partitions as evenly as possible (the first
    ``len % chunks`` partitions get one extra item).  Exactly one
    strategy must be configured.
    """

    def __init__(self, size: Optional[int] = None,
                 chunks: Optional[int] = None):
        if (size is None) == (chunks is None):
            raise WorkloadError(
                "configure exactly one of size= or chunks="
            )
        if size is not None and size < 1:
            raise WorkloadError(f"partition size must be >= 1: {size}")
        if chunks is not None and chunks < 1:
            raise WorkloadError(f"partition count must be >= 1: {chunks}")
        self.size = size
        self.chunks = chunks

    @classmethod
    def fixed_size(cls, size: int) -> "Partitioner":
        """Partitions of at most ``size`` items each."""
        return cls(size=size)

    @classmethod
    def chunk_count(cls, chunks: int) -> "Partitioner":
        """Exactly ``chunks`` partitions, as even as possible."""
        return cls(chunks=chunks)

    def partition(self, items: Sequence) -> tuple[Partition, ...]:
        """Split ``items`` into partitions (deterministic, ordered)."""
        items = tuple(items)
        if not items:
            return ()
        if self.size is not None:
            bounds = [
                (lo, min(lo + self.size, len(items)))
                for lo in range(0, len(items), self.size)
            ]
        else:
            chunks = min(self.chunks, len(items))
            base, extra = divmod(len(items), chunks)
            bounds = []
            lo = 0
            for index in range(chunks):
                hi = lo + base + (1 if index < extra else 0)
                bounds.append((lo, hi))
                lo = hi
        return tuple(
            Partition(
                index=index,
                items=items[lo:hi],
                payload_bytes=(
                    PAYLOAD_BASE_BYTES + PAYLOAD_BYTES_PER_ITEM * (hi - lo)
                ),
            )
            for index, (lo, hi) in enumerate(bounds)
        )
