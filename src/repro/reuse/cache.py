"""The result cache: bounded memoization of idempotent invocations.

Entries are keyed ``(function, input digest)`` and carry the payload
the execution produced, the sim time they were stored, and the
registry generation of the function that produced them — a redeploy
bumps the generation and silently invalidates every older entry, so a
fresh hit can never survive an invalidating deploy.

Eviction is deterministic and wall-clock-free: either plain LRU over
an ordered dict, or GDSF priorities (`repro.reuse.gdsf`) where an
entry's worth scales with how expensive the execution it memoizes was
and how often it hits.

The single-flight table collapses concurrent identical misses: the
first request (the leader) executes, followers park on sim events and
are all fanned the same entry when the leader fills — mirroring the
warm path's cold-start coalescer, but at result granularity.  A dead
leader closes the flight, waking every follower empty-handed so one of
them re-executes instead of the whole cohort wedging.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.reuse.gdsf import GreedyDualTracker

#: Eviction policies :class:`ResultCache` accepts.
CACHE_POLICIES = ("lru", "gdsf")


def result_payload(function: str, digest: str) -> str:
    """The canonical payload an execution of ``(function, digest)``
    produces.

    Workloads in this simulation are synthetic, so the "result" is a
    deterministic fingerprint of the key — which is exactly what makes
    cache correctness checkable: every hit's payload must equal what a
    real execution of the same digest would have produced.
    """
    tag = zlib.crc32(f"{function}\x00{digest}".encode()) & 0xFFFFFFFF
    return f"{function}/{digest}#{tag:08x}"


@dataclass
class CacheEntry:
    """One memoized result."""

    function: str
    digest: str
    payload: str
    size_bytes: int
    #: Sim time the entry was stored (refreshed on revalidation).
    stored_at_s: float
    #: Sim time freshness ends; after this the entry is *stale* —
    #: still servable under pressure, otherwise revalidated.
    expires_at_s: float
    #: Registry generation of the function when this entry was filled;
    #: a redeploy bumps the generation and orphans the entry.
    generation: int
    #: Execution seconds the memoized run took (the GDSF cost term).
    exec_s: float = 0.0
    #: Times this entry answered a request.
    hits: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.function, self.digest)

    def fresh(self, now: float) -> bool:
        """True while the entry may be served without revalidation."""
        return now < self.expires_at_s


class ResultCache:
    """Bounded ``(function, digest) -> CacheEntry`` store."""

    def __init__(self, capacity_bytes: int, policy: str = "gdsf"):
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; "
                f"available: {', '.join(CACHE_POLICIES)}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.policy = policy
        self._entries: "OrderedDict[tuple[str, str], CacheEntry]" = OrderedDict()
        self._gdsf = GreedyDualTracker() if policy == "gdsf" else None
        self.bytes_used = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._entries

    def get(self, function: str, digest: str) -> Optional[CacheEntry]:
        """The entry for ``(function, digest)``, touching recency."""
        key = (function, digest)
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        if self._gdsf is not None:
            self._gdsf.touch(key)
        return entry

    def peek(self, function: str, digest: str) -> Optional[CacheEntry]:
        """The entry without touching recency (stale fallbacks)."""
        return self._entries.get((function, digest))

    def put(self, entry: CacheEntry) -> list[CacheEntry]:
        """Store ``entry``; returns the entries evicted to make room.

        An entry larger than the whole cache is refused (returned as
        its own eviction) rather than flushing everything for nothing.
        """
        if entry.size_bytes > self.capacity_bytes:
            return [entry]
        key = entry.key
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old.size_bytes
            if self._gdsf is not None:
                self._gdsf.remove(key)
        self._entries[key] = entry
        self.bytes_used += entry.size_bytes
        if self._gdsf is not None:
            self._gdsf.admit(
                key, cost=max(entry.exec_s, 1e-9), size=entry.size_bytes
            )
        evicted: list[CacheEntry] = []
        while self.bytes_used > self.capacity_bytes:
            victim_key = (
                self._gdsf.victim()
                if self._gdsf is not None
                else next(iter(self._entries))
            )
            if victim_key == key and len(self._entries) > 1 and \
                    self._gdsf is None:
                # LRU never evicts what it just inserted while older
                # entries exist (move_to_end keeps this impossible, but
                # guard against a zero-hit insert storm).
                victim_key = next(iter(self._entries))
            victim = self._entries.pop(victim_key)
            self.bytes_used -= victim.size_bytes
            if self._gdsf is not None:
                self._gdsf.remove(victim_key, evicted=True)
            self.evictions += 1
            evicted.append(victim)
            if victim_key == key:
                break
        return evicted

    def discard(self, function: str, digest: str) -> bool:
        """Drop one entry (e.g. orphaned by a redeploy)."""
        entry = self._entries.pop((function, digest), None)
        if entry is None:
            return False
        self.bytes_used -= entry.size_bytes
        if self._gdsf is not None:
            self._gdsf.remove((function, digest))
        self.invalidations += 1
        return True

    def invalidate_function(self, function: str) -> int:
        """Drop every entry of ``function`` (invalidating deploy)."""
        doomed = [key for key in self._entries if key[0] == function]
        for key in doomed:
            entry = self._entries.pop(key)
            self.bytes_used -= entry.size_bytes
            if self._gdsf is not None:
                self._gdsf.remove(key)
        self.invalidations += len(doomed)
        return len(doomed)


class Flight:
    """One in-flight single-flight execution for a ``(function, digest)``."""

    def __init__(self, key: tuple[str, str]):
        self.key = key
        #: Follower wait events; each is succeeded with a CacheEntry
        #: (the leader filled) or None (the leader died — re-elect).
        self.waiters: list = []
        #: True while new followers may join.
        self.open = True

    def join(self, sim):
        """Park one follower; returns the event it must yield on."""
        event = sim.event()
        self.waiters.append(event)
        return event


class SingleFlightTable:
    """The open-flight table: one leader per missing ``(function, digest)``."""

    def __init__(self):
        self._flights: dict[tuple[str, str], Flight] = {}
        self.flights_opened = 0
        self.followers_joined = 0
        self.followers_served = 0
        self.followers_requeued = 0
        self.leader_failures = 0

    def __len__(self) -> int:
        return len(self._flights)

    def lookup(self, key: tuple[str, str]) -> Optional[Flight]:
        """The open flight for ``key`` (or None: the caller leads)."""
        flight = self._flights.get(key)
        if flight is not None and flight.open:
            return flight
        return None

    def begin(self, key: tuple[str, str]) -> Flight:
        """Open a new flight led by the calling request."""
        flight = Flight(key)
        self._flights[key] = flight
        self.flights_opened += 1
        return flight

    def join(self, flight: Flight, sim):
        """Park one follower on ``flight``."""
        self.followers_joined += 1
        return flight.join(sim)

    def finish(self, flight: Flight, entry: CacheEntry) -> int:
        """The leader filled: fan the same entry to every follower."""
        flight.open = False
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
        served = 0
        while flight.waiters:
            event = flight.waiters.pop(0)
            if not event.triggered:
                event.succeed(entry)
                served += 1
        self.followers_served += served
        return served

    def abort(self, flight: Flight) -> int:
        """The leader died: wake followers empty-handed to re-elect.

        Every follower loops back through the cache / flight table; the
        first to arrive becomes the new leader and re-executes, so a
        leader crash costs one extra execution — never a wedged cohort.
        """
        self.leader_failures += 1
        flight.open = False
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]
        requeued = 0
        while flight.waiters:
            event = flight.waiters.pop(0)
            if not event.triggered:
                event.succeed(None)
                requeued += 1
        self.followers_requeued += requeued
        return requeued
