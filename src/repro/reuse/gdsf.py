"""Greedy-Dual-Size-Frequency (GDSF) priority bookkeeping.

One tracker serves two consumers: the result cache's eviction order
(`repro.reuse.cache`) and the FaasCache-style warm-pool keep-alive
policy (`repro.core.keepalive.GdsfWarmPool`).  Both face the same
problem — which entry is cheapest to lose? — and GDSF answers it with
one priority per entry:

    priority = clock + frequency * cost / size

where ``cost`` is what re-creating the entry would take (execution
time for a cached result, cold-start time for a warm sandbox),
``size`` its footprint, and ``clock`` an aging term that rises to the
evicted entry's priority on every eviction, so long-idle entries decay
relative to fresh ones without any wall-clock input.  Everything is
deterministic: ties break on admission order, and the clock only moves
on evictions, never on real time.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Optional


class _Cell:
    """Per-entry GDSF state."""

    __slots__ = ("freq", "cost", "size", "priority", "seq")

    def __init__(self, freq: int, cost: float, size: float,
                 priority: float, seq: int):
        self.freq = freq
        self.cost = cost
        self.size = size
        self.priority = priority
        self.seq = seq


class GreedyDualTracker:
    """Deterministic GDSF priorities over an arbitrary key space."""

    def __init__(self):
        #: Aging term; rises to the victim's priority on each eviction.
        self.clock = 0.0
        self._cells: dict[Hashable, _Cell] = {}
        self._seq = itertools.count()
        #: Lifetime evictions taken through :meth:`remove`.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cells

    def _priority(self, cell: _Cell) -> float:
        return self.clock + cell.freq * cell.cost / max(cell.size, 1e-12)

    def admit(self, key: Hashable, cost: float = 1.0,
              size: float = 1.0) -> None:
        """Start tracking ``key`` (or re-admit it after removal)."""
        cell = _Cell(1, cost, size, 0.0, next(self._seq))
        cell.priority = self._priority(cell)
        self._cells[key] = cell

    def touch(self, key: Hashable) -> None:
        """One more hit on ``key``: bump frequency, refresh priority."""
        cell = self._cells[key]
        cell.freq += 1
        cell.priority = self._priority(cell)

    def keys(self) -> tuple:
        """Snapshot of the tracked keys (admission order)."""
        return tuple(self._cells)

    def priority_of(self, key: Hashable) -> float:
        """The current priority of one tracked key."""
        return self._cells[key].priority

    def age(self, priority: float) -> None:
        """Record an eviction *at* ``priority`` without forgetting a key.

        The warm-pool policy tracks one cell per function but evicts one
        *instance* at a time; when a victim function keeps other idle
        instances the cell survives, yet the cache still paid an
        eviction at that priority level and the clock must advance.
        """
        self.evictions += 1
        self.clock = max(self.clock, priority)

    def victim(self) -> Optional[Hashable]:
        """The lowest-priority key (admission order breaks ties)."""
        if not self._cells:
            return None
        return min(
            self._cells,
            key=lambda k: (self._cells[k].priority, self._cells[k].seq),
        )

    def remove(self, key: Hashable, evicted: bool = False) -> None:
        """Forget ``key``; an eviction advances the aging clock."""
        cell = self._cells.pop(key, None)
        if cell is None:
            return
        if evicted:
            self.evictions += 1
            # Greedy-dual aging: future admissions start at the level
            # the cache was willing to give up, so stale high-frequency
            # entries cannot squat forever.
            self.clock = max(self.clock, cell.priority)
