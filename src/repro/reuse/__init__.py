"""Computation reuse: a deterministic result cache in front of the
gateway (memoization of idempotent functions, single-flight de-dup,
stale-under-pressure serving).  See docs/reuse.md.
"""

from repro.reuse.cache import (
    CACHE_POLICIES,
    CacheEntry,
    Flight,
    ResultCache,
    SingleFlightTable,
    result_payload,
)
from repro.reuse.engine import CacheHit, ReuseConfig, ReuseEngine
from repro.reuse.gdsf import GreedyDualTracker

__all__ = [
    "CACHE_POLICIES",
    "CacheEntry",
    "CacheHit",
    "Flight",
    "GreedyDualTracker",
    "ResultCache",
    "ReuseConfig",
    "ReuseEngine",
    "SingleFlightTable",
    "result_payload",
]
