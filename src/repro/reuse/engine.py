"""The computation-reuse engine: cache consult, staleness policy,
single-flight leadership, and the conservation extension.

Sits between gateway admission and the overload controller's admission
gate inside :meth:`repro.core.invoker.Invoker.invoke`:

* a **fresh** hit answers without a sandbox, a gate slot, or a billing
  charge — the whole point of the cache;
* an **expired-but-present** entry is served *stale* when the overload
  controller's pressure signal is active, or when the request's
  remaining deadline budget is smaller than the gate's predicted queue
  wait — otherwise the request revalidates (executes and refreshes the
  entry);
* concurrent identical misses collapse onto one **single-flight**
  leader; followers park on sim events and are fanned the leader's
  entry (a dead leader wakes them empty-handed to re-elect);
* a request the admission gate would **shed** is downgraded to a stale
  answer when an entry exists — an old answer beats no answer — and
  the controller un-counts the shed so the three-fate invariant
  ``answered + shed + dead == admitted`` keeps holding, with answers
  partitioned ``fresh + stale + executed``.

Optional like every engine here: ``MoleculeRuntime(reuse=None)`` keeps
every code path, metric family and report byte-identical to a runtime
without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.reuse.cache import (
    CacheEntry,
    Flight,
    ResultCache,
    SingleFlightTable,
    result_payload,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime
    from repro.core.registry import FunctionDef


@dataclass
class ReuseConfig:
    """Tuning knobs for the result cache."""

    #: Cache budget in megabytes (entry footprint is the request
    #: payload size — the data the memoized result was computed over).
    capacity_mb: float = 8.0
    #: Freshness lifetime of an entry off the sim clock; after it the
    #: entry is stale (servable under pressure, else revalidated).
    ttl_s: float = 30.0
    #: Eviction policy: ``"gdsf"`` (greedy-dual, execution-cost aware)
    #: or ``"lru"``.
    policy: str = "gdsf"
    #: Simulated lookup-and-respond latency of a cache hit.
    hit_latency_s: float = 0.0005
    #: Serve expired entries under pressure / short deadline budget.
    serve_stale: bool = True
    #: Downgrade an admission-gate shed to a stale answer when an
    #: entry (fresh or expired) exists for the request's key.
    shed_to_stale: bool = True

    @property
    def capacity_bytes(self) -> int:
        return int(self.capacity_mb * 1024 * 1024)


class CacheHit:
    """One request answered from the cache (fresh, coalesced or stale)."""

    __slots__ = ("entry", "stale", "reason")

    def __init__(self, entry: CacheEntry, stale: bool, reason: str):
        self.entry = entry
        #: True when the entry was past its TTL at serve time.  A
        #: shed-downgrade of a still-fresh entry is *not* stale — the
        #: flag reflects actual freshness, never the serve path.
        self.stale = stale
        #: "fresh" | "singleflight" | "pressure" | "deadline" | "shed".
        self.reason = reason


class ReuseEngine:
    """Deterministic result cache in front of the admission gate."""

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[ReuseConfig] = None):
        self.runtime = runtime
        self.config = config or ReuseConfig()
        self.cache = ResultCache(
            self.config.capacity_bytes, policy=self.config.policy
        )
        self.flights = SingleFlightTable()
        # Answer classes (the conservation partition).
        self.served_fresh = 0
        self.served_stale = 0
        self.executed = 0
        # Diagnostics.
        self.misses = 0
        self.revalidations = 0
        self.stale_by_reason: dict[str, int] = {}
        self.shed_downgrades = 0
        self.bypass_by_reason: dict[str, int] = {}
        if runtime.obs is not None:
            runtime.obs.ensure_reuse_metrics()
        runtime.invoker.reuse = self

    @property
    def sim(self):
        return self.runtime.sim

    # -- the consult path (called by Invoker.invoke) -----------------------------------

    def cacheable(self, function: "FunctionDef",
                  input_key: Optional[str]) -> bool:
        """True when this request may touch the cache at all."""
        return function.idempotent and input_key is not None

    def lookup(self, function: "FunctionDef", input_key: Optional[str],
               gateway, request_id: int):
        """Generator: consult the cache for one admitted request.

        Returns ``(hit, flight)``: a :class:`CacheHit` to answer from
        (``flight`` None), or ``hit`` None with ``flight`` set when
        this request leads a new single-flight execution, or both None
        when the request is not cacheable and runs the normal path.
        """
        if not self.cacheable(function, input_key):
            self.note_bypass(
                function,
                "no_key" if function.idempotent else "nonidempotent",
            )
            return (None, None)
        sim = self.sim
        name = function.name
        key = (name, input_key)
        registry = self.runtime.registry
        while True:
            entry = self.cache.get(name, input_key)
            if (entry is not None
                    and entry.generation != registry.generation(name)):
                # An invalidating deploy raced in under the entry: it
                # memoizes a retired version and must never serve.
                self.cache.discard(name, input_key)
                entry = None
            if entry is not None:
                if entry.fresh(sim.now):
                    yield sim.timeout(self.config.hit_latency_s)
                    return (CacheHit(entry, stale=False, reason="fresh"),
                            None)
                reason = self._stale_reason(gateway, request_id)
                if reason is not None:
                    yield sim.timeout(self.config.hit_latency_s)
                    return (CacheHit(entry, stale=True, reason=reason), None)
                # Expired and no pressure: revalidate through the
                # normal execution path (the fill refreshes the entry).
                self.revalidations += 1
            flight = self.flights.lookup(key)
            if flight is None:
                self.misses += 1
                if self.runtime.obs is not None:
                    self.runtime.obs.on_reuse_miss(name)
                return (None, self.flights.begin(key))
            waiter = self.flights.join(flight, sim)
            yield waiter
            if waiter.value is not None:
                return (CacheHit(waiter.value, stale=False,
                                 reason="singleflight"), None)
            # The leader died before filling: loop — this request either
            # finds a newer flight or becomes the replacement leader.

    def _stale_reason(self, gateway, request_id: int) -> Optional[str]:
        """Why an expired entry may be served anyway (None: revalidate).

        The two triggers mirror the shedding rationale: when the
        overload controller's pressure signal is up, every executed
        request deepens the saturation a stale answer avoids; and when
        the predicted gate wait already exceeds the request's remaining
        deadline budget, revalidating can only produce a dead letter.
        """
        if not self.config.serve_stale:
            return None
        overload = getattr(self.runtime, "overload", None)
        if overload is None:
            return None
        if (overload.brownout_active
                or overload.pressure() >= overload.config.brownout_on):
            return "pressure"
        deadline_at = gateway.deadline_for(request_id)
        if deadline_at is not None:
            budget = deadline_at - self.sim.now
            wait = overload.gate_for(gateway).estimated_wait_s()
            if wait > max(0.0, budget):
                return "deadline"
        return None

    def shed_fallback(self, function: "FunctionDef",
                      input_key: Optional[str]) -> Optional[CacheHit]:
        """An entry to serve instead of a shed (None: really shed).

        Consulted when the admission gate raised
        :class:`~repro.errors.RequestShed`: any present entry — fresh
        or expired — beats refusing outright, provided it still belongs
        to the current deploy generation.
        """
        if not self.config.shed_to_stale:
            return None
        if not self.cacheable(function, input_key):
            return None
        entry = self.cache.peek(function.name, input_key)
        if entry is None:
            return None
        if entry.generation != self.runtime.registry.generation(function.name):
            return None
        self.shed_downgrades += 1
        return CacheHit(entry, stale=not entry.fresh(self.sim.now),
                        reason="shed")

    # -- accounting (called by Invoker) -------------------------------------------------

    def note_served(self, function: "FunctionDef", hit: CacheHit) -> None:
        """One request answered from the cache."""
        hit.entry.hits += 1
        if hit.stale:
            self.served_stale += 1
            self.stale_by_reason[hit.reason] = (
                self.stale_by_reason.get(hit.reason, 0) + 1
            )
        else:
            self.served_fresh += 1
        obs = self.runtime.obs
        if obs is not None:
            obs.on_reuse_hit(
                function.name, "stale" if hit.stale else hit.reason
            )
            if hit.stale:
                obs.on_reuse_stale(hit.reason)
            obs.on_reuse_cache_state(
                len(self.cache), self.cache.bytes_used, self.hit_rate()
            )

    def note_executed(self) -> None:
        """One request answered by real execution (cacheable or not)."""
        self.executed += 1

    def note_bypass(self, function: "FunctionDef", reason: str) -> None:
        """One request that skipped the cache consult entirely.

        ``probe`` bypasses matter most: a half-open breaker's probe
        must reach a real PU — a cached answer would starve the probe
        and pin the shard's breaker open.
        """
        self.bypass_by_reason[reason] = (
            self.bypass_by_reason.get(reason, 0) + 1
        )
        if self.runtime.obs is not None:
            self.runtime.obs.on_reuse_bypass(reason)

    def fill(self, flight: Flight, function: "FunctionDef", result,
             payload_bytes: int) -> CacheEntry:
        """The single-flight leader finished executing: memoize its
        result, stamp the payload onto it, and fan the entry to every
        parked follower."""
        self.executed += 1
        name, digest = flight.key
        now = self.sim.now
        payload = result_payload(name, digest)
        result.payload = payload
        entry = CacheEntry(
            function=name,
            digest=digest,
            payload=payload,
            size_bytes=max(1, int(payload_bytes)),
            stored_at_s=now,
            expires_at_s=now + self.config.ttl_s,
            generation=self.runtime.registry.generation(name),
            exec_s=result.exec_s,
        )
        evicted = self.cache.put(entry)
        served = self.flights.finish(flight, entry)
        obs = self.runtime.obs
        if obs is not None:
            if evicted:
                obs.on_reuse_evicted(len(evicted))
            if served:
                obs.on_reuse_singleflight(name, served)
            obs.on_reuse_cache_state(
                len(self.cache), self.cache.bytes_used, self.hit_rate()
            )
        return entry

    def abort(self, flight: Flight) -> None:
        """The single-flight leader died before filling: close the
        flight so followers re-elect instead of wedging."""
        self.flights.abort(flight)

    def invalidate(self, name: str) -> int:
        """Eagerly drop every entry of ``name`` (redeploy hook; the
        generation check also catches entries lazily)."""
        dropped = self.cache.invalidate_function(name)
        if dropped and self.runtime.obs is not None:
            self.runtime.obs.on_reuse_invalidated(dropped)
        return dropped

    # -- reporting ---------------------------------------------------------------------

    def hit_rate(self) -> float:
        """Cached answers over all cache-consulting answers."""
        served = self.served_fresh + self.served_stale
        consults = served + self.misses
        return served / consults if consults else 0.0

    def conserved(self, answered: int) -> bool:
        """The answer partition: fresh + stale + executed == answered."""
        return self.served_fresh + self.served_stale + self.executed \
            == answered

    def snapshot(self) -> dict:
        """Deterministic lifetime accounting for the SLO report."""
        return {
            "policy": self.cache.policy,
            "capacity_bytes": self.cache.capacity_bytes,
            "entries": len(self.cache),
            "bytes_used": self.cache.bytes_used,
            "served_fresh": self.served_fresh,
            "served_stale": self.served_stale,
            "executed": self.executed,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 9),
            "revalidations": self.revalidations,
            "stale_by_reason": dict(sorted(self.stale_by_reason.items())),
            "shed_downgrades": self.shed_downgrades,
            "bypass_by_reason": dict(sorted(self.bypass_by_reason.items())),
            "evictions": self.cache.evictions,
            "invalidations": self.cache.invalidations,
            "singleflight": {
                "flights": self.flights.flights_opened,
                "followers_joined": self.flights.followers_joined,
                "followers_served": self.flights.followers_served,
                "followers_requeued": self.flights.followers_requeued,
                "leader_failures": self.flights.leader_failures,
            },
        }
