"""Scale harness: deterministic load generation over sharded gateways.

Four layers, composable or canned:

* :mod:`repro.loadgen.arrivals` — seeded arrival processes (Poisson,
  bursty on/off, diurnal, Azure-style trace replay) materialised into
  immutable :class:`ArrivalPlan` objects;
* :mod:`repro.loadgen.sharding` — N gateway shards with pluggable
  routing (consistent hash, least-outstanding, warm-sandbox locality)
  feeding one shared scheduler;
* :mod:`repro.loadgen.driver` — open-loop (admit at trace time) and
  closed-loop (fixed concurrency) drivers producing per-request
  records;
* :mod:`repro.loadgen.slo` — percentile/goodput/utilization
  aggregation into the ``BENCH_load.json`` report.

``repro.loadgen.scenarios.run_load`` wires all four for the
``repro load`` CLI.
"""

from repro.loadgen.arrivals import (
    Arrival,
    ArrivalPlan,
    BurstyArrivals,
    DiurnalArrivals,
    FunctionMix,
    PLAN_SCHEMA,
    PoissonArrivals,
    TraceArrivals,
    ZipfSampler,
)
from repro.loadgen.driver import (
    ClosedLoopDriver,
    OpenLoopDriver,
    RequestRecord,
)
from repro.loadgen.sharding import (
    GatewayShard,
    HashRing,
    ROUTING_POLICIES,
    ShardedFrontend,
)
from repro.loadgen.slo import (
    SCHEMA,
    build_report,
    compare_reports,
    format_comparison,
    format_report,
    latency_block,
    write_report,
)
from repro.loadgen.scenarios import (
    attach_fault_plan,
    attach_zipf_inputs,
    build_runtime,
    default_mix,
    run_load,
    scenario_names,
)

__all__ = [
    "Arrival",
    "ArrivalPlan",
    "BurstyArrivals",
    "ClosedLoopDriver",
    "DiurnalArrivals",
    "FunctionMix",
    "GatewayShard",
    "HashRing",
    "OpenLoopDriver",
    "PLAN_SCHEMA",
    "PoissonArrivals",
    "ROUTING_POLICIES",
    "RequestRecord",
    "SCHEMA",
    "ShardedFrontend",
    "TraceArrivals",
    "ZipfSampler",
    "attach_fault_plan",
    "attach_zipf_inputs",
    "build_report",
    "build_runtime",
    "compare_reports",
    "default_mix",
    "format_comparison",
    "format_report",
    "latency_block",
    "run_load",
    "scenario_names",
    "write_report",
]
