"""SLO aggregation: percentiles, goodput and utilization -> BENCH_load.json.

Takes the per-request :class:`~repro.loadgen.driver.RequestRecord`
ground truth plus the runtime's lifecycle spans and distils the
numbers an operator would page on:

* end-to-end latency p50/p95/p99/p99.9 (nearest-rank, the artifact's
  convention) over answered requests;
* per-stage percentiles (admit/schedule/sandbox_start/exec/respond)
  from the observability span trees;
* goodput (answered/sec) against offered load, plus the machine-wide
  accounting invariant ``answered + dead_lettered == admitted``;
* per-shard utilization (busy-time integral of the front end) and
  per-PU utilization (core busy clocks).

Everything but ``wall_s`` is simulated and therefore seed-stable:
two runs with the same seed must produce byte-identical reports
modulo the ``wall_s``/``host`` fields, which ``compare_reports``
ignores.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Optional, Sequence, TYPE_CHECKING

from repro import config
from repro.analysis.stats import percentile
from repro.loadgen.arrivals import ArrivalPlan
from repro.loadgen.driver import RequestRecord
from repro.obs.spans import LIFECYCLE_PHASES

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime
    from repro.loadgen.sharding import ShardedFrontend

#: Report format version (bump on breaking schema changes).
SCHEMA = "repro-load/1"

#: Relative change treated as a regression by ``--compare``: latency
#: percentiles rising or goodput dropping by more than this fraction.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Percentiles in the latency blocks (99.9 keyed as ``p999``).
_PERCENTILES = ((50, "p50"), (95, "p95"), (99, "p99"), (99.9, "p999"))


def latency_block(samples_s: Sequence[float]) -> dict:
    """mean/max/p50/p95/p99/p999 of ``samples_s``, reported in ms."""
    if not samples_s:
        return {"count": 0}
    block = {
        "count": len(samples_s),
        "mean_ms": sum(samples_s) / len(samples_s) / config.MS,
        "max_ms": max(samples_s) / config.MS,
    }
    for p, key in _PERCENTILES:
        block[f"{key}_ms"] = percentile(samples_s, p) / config.MS
    return block


def build_report(
    runtime: "MoleculeRuntime",
    plan: ArrivalPlan,
    records: Sequence[RequestRecord],
    scenario: str,
    params: Optional[dict] = None,
    wall_s: float = 0.0,
    frontend: Optional["ShardedFrontend"] = None,
    elapsed_s: Optional[float] = None,
    busy_baseline: Optional[dict] = None,
) -> dict:
    """Aggregate one load run into the BENCH_load report dict.

    ``elapsed_s`` is the measurement window (the driver's first-submit
    to last-completion span); defaults to absolute sim time for callers
    that measured from t=0.  ``busy_baseline`` maps ``pu_id`` to the
    PU's busy clock at workload start, so boot/deploy work doesn't
    count toward run utilization.
    """
    frontend = frontend if frontend is not None else runtime.frontend
    sim_elapsed = elapsed_s if elapsed_s is not None else runtime.sim.now
    busy_baseline = busy_baseline or {}
    answered = [r for r in records if r.answered]
    shed = sum(1 for r in records if r.shed)
    failed = len(records) - len(answered) - shed
    if frontend is not None:
        admitted = frontend.requests_admitted
    else:
        admitted = runtime.gateway.requests_admitted
    dead = len(runtime.dead_letters)
    overload = getattr(runtime, "overload", None)
    fanout = getattr(runtime, "fanout", None)
    # With the fan-out engine armed, driver records are *jobs* while
    # the frontend admits their partition tasks and stage requests —
    # the ``lost`` ledger must be computed at the task level or every
    # fanned-out task would read as lost.
    if fanout is not None:
        lost = (
            admitted - fanout.answered_requests() - dead
            - fanout.shed_requests()
        )
    else:
        lost = admitted - len(answered) - dead - shed

    # Per-stage latencies from the span trees.  Failed requests never
    # publish phase histograms, so these cover answered requests only.
    stage_samples: dict[str, list[float]] = {p: [] for p in LIFECYCLE_PHASES}
    for trace in runtime.obs.completed_traces():
        for name, duration_s in trace.phases().items():
            if name in stage_samples:
                stage_samples[name].append(duration_s)

    report = {
        "schema": SCHEMA,
        "scenario": scenario,
        "params": dict(params or {}),
        "wall_s": wall_s,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
        "load": {
            "offered": len(plan),
            "offered_rate_per_s": plan.offered_rate_per_s,
            "plan_duration_s": plan.duration_s,
            "sim_elapsed_s": sim_elapsed,
            "submitted": len(records),
            "admitted": admitted,
            "answered": len(answered),
            "failed": failed,
            # Conditional so controller-off reports stay byte-identical.
            **(
                {
                    "shed": shed,
                    "shed_rate": shed / len(records) if records else 0.0,
                }
                if overload is not None else {}
            ),
            "dead_lettered": dead,
            "lost": lost,
            "goodput_per_s": (
                len(answered) / sim_elapsed if sim_elapsed > 0 else 0.0
            ),
            "goodput_ratio": (
                len(answered) / len(records) if records else 0.0
            ),
            "cold_starts": sum(1 for r in answered if r.cold),
            "cold_start_rate": (
                sum(1 for r in answered if r.cold) / len(answered)
                if answered else 0.0
            ),
            "retried": sum(1 for r in answered if r.attempts > 1),
        },
        "latency": {
            "end_to_end": latency_block([r.latency_s for r in answered]),
            "stages": {
                name: latency_block(samples)
                for name, samples in stage_samples.items()
                if samples
            },
        },
        "shards": (
            frontend.snapshot(sim_elapsed) if frontend is not None else []
        ),
        "pus": [
            {
                "pu": pu.name,
                "kind": pu.kind.value,
                "busy_s": pu.clock.busy_time - busy_baseline.get(pu_id, 0.0),
                "utilization": (
                    (pu.clock.busy_time - busy_baseline.get(pu_id, 0.0))
                    / sim_elapsed
                    if sim_elapsed > 0
                    else 0.0
                ),
            }
            for pu_id, pu in sorted(runtime.machine.pus.items())
        ],
    }
    # Billed cost over the whole run: the denominator for the hedging
    # acceptance bar (p999 cut at <5% mean-cost increase).
    total = runtime.ledger.total()
    report["cost"] = {
        "billed_invocations": total.invocations,
        "billed_ms": total.billed_ms,
        "billed_cost": total.cost,
        "mean_cost_per_answered": (
            total.cost / len(answered) if answered else 0.0
        ),
    }
    hedging = getattr(runtime, "hedging", None)
    if hedging is not None:
        snap = hedging.snapshot()
        hedged = sum(1 for r in answered if r.hedged)
        report["hedging"] = {
            **snap,
            "hedged_answered": hedged,
            "hedge_rate": snap["fired"] / len(answered) if answered else 0.0,
            "wasted_cost_fraction": (
                snap["wasted_cost"] / total.cost if total.cost else 0.0
            ),
        }
    if overload is not None:
        over_snap = overload.snapshot()
        report["overload"] = {
            **over_snap,
            "shed_rate": shed / len(records) if records else 0.0,
            # Clamped: after the last response the pressure signal is
            # frozen, so an open brownout interval stretches into the
            # post-drain sim tail (orphaned deadline timers keep the
            # clock ticking long past the measurement window).
            "brownout_fraction": (
                min(1.0, overload.brownout_s() / sim_elapsed)
                if sim_elapsed > 0 else 0.0
            ),
            "conserved": overload.conserved(admitted, len(answered), dead),
            # The overload acceptance metric: latency among requests the
            # controller chose to answer (sheds excluded by definition).
            "goodput_answered": latency_block(
                [r.latency_s for r in answered]
            ),
        }
    if fanout is not None:
        report["fanout"] = {
            **fanout.snapshot(),
            "conserved": fanout.conserved(admitted, dead),
            "task_latency": latency_block(fanout.task_samples),
            "stages": {
                name: latency_block(samples)
                for name, samples in fanout.stage_samples.items()
                if samples
            },
        }
    reuse = getattr(runtime, "reuse", None)
    if reuse is not None:
        cached = sum(1 for r in answered if r.cache)
        stale_served = sum(1 for r in answered if r.cache == "stale")
        report["reuse"] = {
            **reuse.snapshot(),
            "answered_from_cache": cached,
            "answered_stale": stale_served,
            "cache_answer_rate": cached / len(answered) if answered else 0.0,
            # Extended conservation: every answered request is exactly
            # one of fresh-hit, stale-hit, or executed (and the
            # three-fate ``answered + shed + dead == admitted`` ledger
            # above still holds with shed-to-stale downgrades
            # un-counted on the shed side).
            "conserved": reuse.conserved(len(answered)),
            "latency_cached": latency_block(
                [r.latency_s for r in answered if r.cache]
            ),
            "latency_executed": latency_block(
                [r.latency_s for r in answered if not r.cache]
            ),
        }
    return report


def write_report(report: dict, path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict) -> str:
    """Human-readable summary of one report."""
    load = report["load"]
    lines = [
        f"scenario {report['scenario']}: "
        f"{load['offered']} offered @ {load['offered_rate_per_s']:.1f}/s, "
        f"{load['answered']} answered, {load['dead_lettered']} dead, "
        f"goodput {load['goodput_per_s']:.1f}/s "
        f"({load['goodput_ratio']:.1%}) in {load['sim_elapsed_s']:.1f}s sim "
        f"/ {report['wall_s']:.2f}s wall",
    ]
    e2e = report["latency"]["end_to_end"]
    if e2e.get("count"):
        lines.append(
            "  end-to-end ms  "
            + "  ".join(
                f"{key}={e2e[f'{key}_ms']:.2f}"
                for _p, key in _PERCENTILES
            )
            + f"  mean={e2e['mean_ms']:.2f} max={e2e['max_ms']:.2f}"
        )
    for name, block in sorted(report["latency"]["stages"].items()):
        lines.append(
            f"  {name:<13} ms  p50={block['p50_ms']:.3f} "
            f"p99={block['p99_ms']:.3f} (n={block['count']})"
        )
    for shard in report["shards"]:
        shed_part = (
            f" shed={shard['shed']}" if "shed" in shard else ""
        )
        lines.append(
            f"  shard {shard['shard']}: routed={shard['routed']} "
            f"admitted={shard['admitted']} failed={shard['failed']}"
            f"{shed_part} "
            f"util={shard['utilization']:.1%} breaker={shard['breaker']}"
        )
    for pu in report["pus"]:
        lines.append(
            f"  {pu['pu']:<12} util={pu['utilization']:.1%} "
            f"busy={pu['busy_s']:.2f}s"
        )
    hedging = report.get("hedging")
    if hedging is not None:
        lines.append(
            f"  hedging: fired={hedging['fired']} won={hedging['won']} "
            f"cancelled={hedging['cancelled']} "
            f"rate={hedging['hedge_rate']:.1%} "
            f"wasted_cost={hedging['wasted_cost']:.0f} "
            f"({hedging['wasted_cost_fraction']:.2%} of bill)"
        )
    fanout = report.get("fanout")
    if fanout is not None:
        spec = fanout.get("speculation", {})
        lines.append(
            f"  fanout: jobs={fanout['jobs']} "
            f"({fanout['jobs_failed']} failed) "
            f"tasks={fanout['tasks_done']}/{fanout['tasks_submitted']} "
            f"batches={fanout['batches']} "
            f"speculated={fanout['speculations']} "
            f"(won={spec.get('won', 0)}) "
            f"conserved={fanout['conserved']}"
        )
    reuse = report.get("reuse")
    if reuse is not None:
        flights = reuse.get("singleflight", {})
        lines.append(
            f"  reuse: hit_rate={reuse['hit_rate']:.1%} "
            f"fresh={reuse['served_fresh']} stale={reuse['served_stale']} "
            f"executed={reuse['executed']} "
            f"singleflight={flights.get('followers_served', 0)} "
            f"downgrades={reuse['shed_downgrades']} "
            f"evictions={reuse['evictions']} "
            f"conserved={reuse['conserved']}"
        )
    overload = report.get("overload")
    if overload is not None:
        lines.append(
            f"  overload: shed={overload['shed']} "
            f"({overload['shed_rate']:.1%}) "
            f"brownout={overload['brownout_fraction']:.1%} "
            f"({overload['brownout_entries']} entries) "
            f"degraded={overload['degraded_forced']} "
            f"conserved={overload['conserved']}"
        )
        for gate in overload["gates"]:
            lines.append(
                f"    gate {gate['shard']}: limit={gate['limit']} "
                f"[{gate['limit_min']}..{gate['limit_max']}] "
                f"admitted={gate['admitted']} shed={gate['shed']} "
                f"queued={gate['queued']} "
                f"max_queue={gate['max_queue_depth']}"
            )
    return "\n".join(lines)


# -- comparison --------------------------------------------------------------------

#: end_to_end keys compared (lower is better).
_LATENCY_KEYS = ("p50_ms", "p95_ms", "p99_ms", "p999_ms")


def compare_reports(
    current: dict,
    prior: dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[dict]:
    """Regressions of ``current`` against ``prior``.

    Latency percentiles rising beyond ``threshold`` and goodput
    dropping beyond it are regressions.  Reports from different
    scenarios or different sizing params are skipped — wall-clock and
    host fields are never compared.
    """
    if current.get("scenario") != prior.get("scenario"):
        return []
    if current.get("params") != prior.get("params"):
        return []
    regressions: list[dict] = []
    now_e2e = current["latency"]["end_to_end"]
    before_e2e = prior.get("latency", {}).get("end_to_end", {})
    for key in _LATENCY_KEYS:
        now_value = now_e2e.get(key)
        prior_value = before_e2e.get(key)
        if not now_value or not prior_value:
            continue
        delta = (now_value - prior_value) / prior_value
        if delta > threshold:
            regressions.append({
                "metric": f"end_to_end.{key}",
                "prior": prior_value,
                "current": now_value,
                "delta": delta,
            })
    now_good = current["load"].get("goodput_per_s")
    prior_good = prior.get("load", {}).get("goodput_per_s")
    if now_good is not None and prior_good:
        delta = (now_good - prior_good) / prior_good
        if delta < -threshold:
            regressions.append({
                "metric": "load.goodput_per_s",
                "prior": prior_good,
                "current": now_good,
                "delta": delta,
            })
    return regressions


def format_comparison(regressions: list[dict], threshold: float) -> str:
    """Human-readable comparison verdict."""
    if not regressions:
        return f"no regressions beyond {threshold:.0%}"
    lines = [f"REGRESSIONS beyond {threshold:.0%}:"]
    for r in regressions:
        lines.append(
            f"  {r['metric']}: {r['prior']:,.2f} -> "
            f"{r['current']:,.2f} ({r['delta']:+.1%})"
        )
    return "\n".join(lines)
