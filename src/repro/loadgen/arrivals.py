"""Deterministic arrival processes for load generation.

The scale harness separates *what arrives when* from *how it is
driven*: an arrival model materialises an :class:`ArrivalPlan` — an
immutable, time-sorted list of :class:`Arrival` records — and the
drivers in :mod:`repro.loadgen.driver` replay that plan open- or
closed-loop.  Materialising first is what makes runs reproducible
(same seed, same plan, byte for byte) and what lets plans be checked
into the repository as golden traces.

Four models cover the paper's Fig. 2 density and keep-alive studies
plus the bursty regimes CloudSimSC-style simulators parameterise:

* :class:`PoissonArrivals` — homogeneous Poisson at a fixed rate;
* :class:`BurstyArrivals`  — on/off modulated Poisson (burst storms);
* :class:`DiurnalArrivals` — day-shaped inhomogeneous Poisson built on
  :class:`repro.workloads.traces.DiurnalProfile`;
* :class:`TraceArrivals`   — replay of an Azure-style skewed stream
  from :class:`repro.workloads.traces.AzureLikeTrace`.

All randomness flows through a :class:`repro.sim.rng.SeededRng` fork,
never the global :mod:`random` state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import WorkloadError
from repro.hardware.pu import PuKind
from repro.sim.rng import SeededRng
from repro.workloads.traces import AzureLikeTrace, DiurnalProfile, OnOffProfile

#: Plan serialisation format (bump on breaking changes).
PLAN_SCHEMA = "repro-arrivals/1"


@dataclass(frozen=True)
class Arrival:
    """One planned invocation: when, which function, how dispatched."""

    time_s: float
    function: str
    #: Dispatch kind (``None`` lets the function's first profile win).
    kind: Optional[PuKind] = None
    payload_bytes: int = 1024
    #: Logical input identity for result-cache keying (repro.reuse).
    #: ``None`` means "unknown input": the request is never cacheable.
    input_key: Optional[str] = None

    def to_dict(self) -> dict:
        data = {
            "time_s": self.time_s,
            "function": self.function,
            "kind": self.kind.value if self.kind is not None else None,
            "payload_bytes": self.payload_bytes,
        }
        # Emitted only when set so pre-reuse golden plans stay byte
        # identical on a round trip.
        if self.input_key is not None:
            data["input_key"] = self.input_key
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Arrival":
        kind = data.get("kind")
        input_key = data.get("input_key")
        return cls(
            time_s=float(data["time_s"]),
            function=str(data["function"]),
            kind=PuKind(kind) if kind is not None else None,
            payload_bytes=int(data.get("payload_bytes", 1024)),
            input_key=str(input_key) if input_key is not None else None,
        )


@dataclass(frozen=True)
class ArrivalPlan:
    """An immutable, time-sorted sequence of arrivals."""

    arrivals: tuple[Arrival, ...]
    duration_s: float

    def __post_init__(self):
        times = [a.time_s for a in self.arrivals]
        if any(b < a for a, b in zip(times, times[1:])):
            raise WorkloadError("arrival plan must be time-sorted")
        if self.duration_s <= 0:
            raise WorkloadError(f"duration must be positive: {self.duration_s}")

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def offered_rate_per_s(self) -> float:
        """Arrivals per second over the plan window."""
        return len(self.arrivals) / self.duration_s

    def functions(self) -> tuple[str, ...]:
        """Distinct function names in the plan, first-seen order."""
        seen: dict[str, None] = {}
        for arrival in self.arrivals:
            seen.setdefault(arrival.function, None)
        return tuple(seen)

    # -- (de)serialisation: golden traces are checked-in plans ---------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "schema": PLAN_SCHEMA,
                "duration_s": self.duration_s,
                "arrivals": [a.to_dict() for a in self.arrivals],
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ArrivalPlan":
        data = json.loads(text)
        if data.get("schema") != PLAN_SCHEMA:
            raise WorkloadError(
                f"unknown arrival plan schema: {data.get('schema')!r}"
            )
        return cls(
            arrivals=tuple(
                Arrival.from_dict(entry) for entry in data["arrivals"]
            ),
            duration_s=float(data["duration_s"]),
        )


@dataclass(frozen=True)
class FunctionMix:
    """Weighted function mix with optional per-function dispatch kinds.

    Expresses "60% of traffic hits `thumb` on CPU/DPU, 30% hits `gzip`
    on the FPGA, 10% hits `infer`" — the per-function concurrency mix
    over heterogeneous profiles the scale scenarios drive.
    """

    names: tuple[str, ...]
    weights: tuple[float, ...]
    kinds: tuple[Optional[PuKind], ...] = ()

    def __post_init__(self):
        if not self.names:
            raise WorkloadError("function mix needs at least one function")
        if len(self.weights) != len(self.names):
            raise WorkloadError("mix weights must match function names")
        if any(w <= 0 for w in self.weights):
            raise WorkloadError(f"mix weights must be positive: {self.weights}")
        if self.kinds and len(self.kinds) != len(self.names):
            raise WorkloadError("mix kinds must match function names")

    @classmethod
    def of(cls, *entries: tuple) -> "FunctionMix":
        """Build from ``(name, weight)`` or ``(name, weight, kind)``."""
        names, weights, kinds = [], [], []
        for entry in entries:
            names.append(entry[0])
            weights.append(float(entry[1]))
            kinds.append(entry[2] if len(entry) > 2 else None)
        return cls(tuple(names), tuple(weights), tuple(kinds))

    def pick(self, rng: SeededRng) -> tuple[str, Optional[PuKind]]:
        """Draw one (function, kind) pair by weight."""
        total = sum(self.weights)
        draw = rng.uniform(0.0, total)
        acc = 0.0
        for index, weight in enumerate(self.weights):
            acc += weight
            if draw <= acc:
                kind = self.kinds[index] if self.kinds else None
                return self.names[index], kind
        kind = self.kinds[-1] if self.kinds else None
        return self.names[-1], kind


class ZipfSampler:
    """Deterministic Zipf(s) sampler over a fixed key universe.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r**-s`` — the closed-form frequencies the reuse tests check
    against.  Sampling is inverse-CDF over the precomputed cumulative
    weights, so the draw sequence is fully determined by the seeded
    stream: same fork, same keys, byte for byte.

    The computation-reuse scenarios use one sampler per function to
    pick which *input* each arrival carries; with ``s`` above ~1 the
    head keys dominate and a small result cache absorbs most traffic.
    """

    def __init__(self, keys: Sequence[str], skew: float, rng: SeededRng):
        if not keys:
            raise WorkloadError("zipf sampler needs at least one key")
        if skew < 0:
            raise WorkloadError(f"zipf skew must be non-negative: {skew}")
        self.keys = tuple(keys)
        self.skew = skew
        self.rng = rng
        weights = [(rank + 1) ** -skew for rank in range(len(self.keys))]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift at the tail

    def probability(self, rank: int) -> float:
        """Closed-form P(rank) for a 1-based rank (test oracle)."""
        if not 1 <= rank <= len(self.keys):
            raise WorkloadError(f"rank out of range: {rank}")
        prev = self._cdf[rank - 2] if rank > 1 else 0.0
        return self._cdf[rank - 1] - prev

    def sample(self) -> str:
        """Draw one key from the seeded stream."""
        draw = self.rng.uniform(0.0, 1.0)
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if draw <= self._cdf[mid]:
                hi = mid
            else:
                lo = mid + 1
        return self.keys[lo]


class _ThinnedProcess:
    """Shared thinning machinery for (in)homogeneous Poisson models.

    Candidate arrivals are drawn at ``peak_rate`` and accepted with the
    model's instantaneous rate fraction — the classic Lewis-Shedler
    thinning construction, fully determined by the seeded stream.
    """

    #: Instantaneous acceptance fraction in [0, 1] at time ``t``.
    def _accept_fraction(self, time_s: float) -> float:  # pragma: no cover
        raise NotImplementedError

    def __init__(
        self,
        mix: FunctionMix,
        peak_rate_per_s: float,
        rng: Optional[SeededRng] = None,
        payload_bytes: int = 1024,
    ):
        if peak_rate_per_s <= 0:
            raise WorkloadError(f"rate must be positive: {peak_rate_per_s}")
        self.mix = mix
        self.peak_rate = peak_rate_per_s
        self.rng = rng or SeededRng()
        self.payload_bytes = payload_bytes

    def plan(self, duration_s: float, start_s: float = 0.0) -> ArrivalPlan:
        """Materialise the arrival plan for one run window."""
        if duration_s <= 0:
            raise WorkloadError(f"duration must be positive: {duration_s}")
        arrivals: list[Arrival] = []
        now = start_s
        end = start_s + duration_s
        while True:
            now += self.rng.exponential(1.0 / self.peak_rate)
            if now >= end:
                break
            if self.rng.uniform(0.0, 1.0) > self._accept_fraction(now):
                continue
            name, kind = self.mix.pick(self.rng)
            arrivals.append(Arrival(
                time_s=now, function=name, kind=kind,
                payload_bytes=self.payload_bytes,
            ))
        return ArrivalPlan(arrivals=tuple(arrivals), duration_s=duration_s)


class PoissonArrivals(_ThinnedProcess):
    """Homogeneous Poisson arrivals at a fixed rate."""

    def __init__(self, mix: FunctionMix, rate_per_s: float, **kwargs):
        super().__init__(mix, rate_per_s, **kwargs)

    def _accept_fraction(self, time_s: float) -> float:
        return 1.0


class BurstyArrivals(_ThinnedProcess):
    """On/off modulated Poisson: storms at the peak rate, lulls between.

    During the ON phase of the :class:`OnOffProfile` arrivals come at
    the peak rate; during OFF they are thinned down to ``idle_fraction``
    of it.  This is the open-loop stressor for autoscaling/keep-alive:
    every burst edge re-exercises cold starts and pool refill.
    """

    def __init__(
        self,
        mix: FunctionMix,
        peak_rate_per_s: float,
        profile: Optional[OnOffProfile] = None,
        **kwargs,
    ):
        super().__init__(mix, peak_rate_per_s, **kwargs)
        self.profile = profile or OnOffProfile()

    def _accept_fraction(self, time_s: float) -> float:
        return self.profile.factor(time_s)


class DiurnalArrivals(_ThinnedProcess):
    """Day-shaped inhomogeneous Poisson arrivals (compressed days)."""

    def __init__(
        self,
        mix: FunctionMix,
        peak_rate_per_s: float,
        profile: Optional[DiurnalProfile] = None,
        **kwargs,
    ):
        super().__init__(mix, peak_rate_per_s, **kwargs)
        self.profile = profile or DiurnalProfile()

    def _accept_fraction(self, time_s: float) -> float:
        return self.profile.factor(time_s)


class TraceArrivals:
    """Replay of an Azure-style skewed stream as an arrival plan.

    Wraps :class:`repro.workloads.traces.AzureLikeTrace` (zipf-skewed
    function popularity, diurnal modulation) and materialises its event
    stream, optionally attaching per-function dispatch kinds from a
    mapping (hot functions on accelerators, the tail on CPU).
    """

    def __init__(
        self,
        trace: AzureLikeTrace,
        kinds: Optional[dict[str, PuKind]] = None,
        payload_bytes: int = 1024,
    ):
        self.trace = trace
        self.kinds = dict(kinds or {})
        self.payload_bytes = payload_bytes

    def plan(self, duration_s: float, start_s: float = 0.0) -> ArrivalPlan:
        arrivals = tuple(
            Arrival(
                time_s=event.time_s,
                function=event.function,
                kind=self.kinds.get(event.function),
                payload_bytes=self.payload_bytes,
            )
            for event in self.trace.events(duration_s, start_s=start_s)
        )
        return ArrivalPlan(arrivals=arrivals, duration_s=duration_s)
