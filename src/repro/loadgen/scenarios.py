"""Canned load scenarios for the ``repro load`` CLI and CI smoke.

Each scenario materialises a seeded arrival plan (so the same seed
produces the same plan, byte for byte), boots a CPU+DPU deployment
with a sharded gateway front end, replays the plan open- or
closed-loop, and aggregates the run into a BENCH_load report.

The default full-size run (``--rps 200 --duration 60``) offers ~12k
invocations — past the 10k bar the scale harness has to sustain —
and finishes in a couple of wall-clock seconds on the tuned kernel.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Optional

from repro import config
from repro.core.molecule import MoleculeRuntime
from repro.core.registry import FunctionDef, WorkProfile
from repro.errors import ReproError
from repro.hardware.machine import build_cpu_dpu_machine
from repro.hardware.pu import PuKind
from repro.loadgen.arrivals import (
    ArrivalPlan,
    BurstyArrivals,
    DiurnalArrivals,
    FunctionMix,
    PoissonArrivals,
    TraceArrivals,
    ZipfSampler,
)
from repro.loadgen.driver import ClosedLoopDriver, OpenLoopDriver
from repro.loadgen.slo import build_report
from repro.obs import Observability
from repro.sandbox.base import FunctionCode, Language
from repro.sim import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.traces import AzureLikeTrace, DiurnalProfile, OnOffProfile

#: Sizing defaults: (rps, duration_s, shards) per mode.
QUICK_DEFAULTS = (40.0, 5.0, 2)
FULL_DEFAULTS = (200.0, 60.0, 4)

#: The ``overload`` scenario multiplies the nominal rps by this factor
#: to push offered load well past the point where the DPU path's cold
#: stampedes turn into congestion collapse.
OVERLOAD_FACTOR = 8.0
#: ... with a deadline tight enough that queueing visibly eats it.
OVERLOAD_DEADLINE_S = 2.0
#: ... and a keep-alive TTL equal to the deadline: long enough to ride
#: out burst gaps, short enough that the initial stampede and the
#: post-crash re-stampede still re-pay their cold starts.
OVERLOAD_KEEP_ALIVE_S = 2.0

#: The ``zipf`` scenario's input-popularity defaults: each function
#: draws its inputs from this many distinct keys with Zipf(s) skew.
#: At s ~ 1.1 the head keys dominate, so a small result cache absorbs
#: most of the offered load — the crossover BENCH_load_cache.json
#: sweeps across skews.
ZIPF_SKEW = 1.1
ZIPF_KEYS_PER_FUNCTION = 32
#: The ``zipf`` scenario multiplies the nominal rps by this factor so
#: the cache-off run visibly queues (and, under the scenario's default
#: deadline below, loses its slowest requests) — the headroom the
#: result cache then wins back.
ZIPF_FACTOR = 4.0
ZIPF_DEADLINE_S = 2.0

#: The ``fanout`` scenario's job shape: every arrival is one
#: map_reduce job over this many partitions of this many items each,
#: so ``jobs = offered_invocations / FANOUT_PARTITIONS`` keeps the
#: task count comparable to the other scenarios' request count.
FANOUT_PARTITIONS = 64
FANOUT_ITEMS_PER_PARTITION = 4

#: The standard three-function deployment every scenario drives: a hot
#: thumbnailer that may land on CPU or DPU, a DPU-pinned ETL stage and
#: a CPU-only model-inference function.
_FUNCTIONS = (
    ("thumb", 80.0, 3.0, (PuKind.CPU, PuKind.DPU)),
    ("etl", 40.0, 5.0, (PuKind.DPU, PuKind.CPU)),
    ("infer", 150.0, 8.0, (PuKind.CPU,)),
)


def default_mix() -> FunctionMix:
    """The per-function traffic mix over heterogeneous profiles."""
    return FunctionMix.of(
        ("thumb", 0.6),
        ("etl", 0.3, PuKind.DPU),
        ("infer", 0.1, PuKind.CPU),
    )


def scenario_names() -> list[str]:
    """Names of every canned scenario, sorted."""
    return sorted(_SCENARIOS)


def _plan_poisson(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    return PoissonArrivals(default_mix(), rps, rng=rng).plan(duration_s)


def _plan_burst(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    profile = OnOffProfile(on_s=duration_s / 12, off_s=duration_s / 4)
    return BurstyArrivals(
        default_mix(), rps, profile=profile, rng=rng
    ).plan(duration_s)


def _plan_diurnal(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    # One compressed "day" per run window.
    profile = DiurnalProfile(period_s=duration_s)
    return DiurnalArrivals(
        default_mix(), rps, profile=profile, rng=rng
    ).plan(duration_s)


def _plan_azure(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    trace = AzureLikeTrace(
        functions=[name for name, _imp, _exec, _profiles in _FUNCTIONS],
        peak_rate_per_s=rps,
        diurnal=DiurnalProfile(period_s=duration_s),
        rng=rng,
    )
    return TraceArrivals(
        trace, kinds={"etl": PuKind.DPU, "infer": PuKind.CPU}
    ).plan(duration_s)


def overload_mix() -> FunctionMix:
    """The ``overload`` scenario's DPU-heavy mix: most traffic pinned
    to the machine's scarcest PUs, so saturation hits where it hurts."""
    return FunctionMix.of(
        ("etl", 0.7, PuKind.DPU),
        ("thumb", 0.2),
        ("infer", 0.1, PuKind.CPU),
    )


def _plan_overload(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    """Chaos-under-saturation: bursts at OVERLOAD_FACTOR x the nominal
    rate, long on-phases with short gaps — sustained saturation, not
    the spiky profile of the ``burst`` scenario."""
    profile = OnOffProfile(on_s=duration_s / 4, off_s=duration_s / 16)
    return BurstyArrivals(
        overload_mix(), rps * OVERLOAD_FACTOR, profile=profile, rng=rng
    ).plan(duration_s)


def overload_fault_plan(duration_s: float):
    """The canned chaos for the ``overload`` scenario: one DPU crashes
    30% into the run and reboots after another 30%, removing a third of
    the DPU capacity exactly while the machine is already saturated."""
    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

    return FaultPlan.of(FaultSpec(
        kind=FaultKind.PU_CRASH,
        target="dpu0",
        at_s=0.3 * duration_s,
        reboot_after_s=0.3 * duration_s,
    ))


def attach_zipf_inputs(
    plan: ArrivalPlan,
    rng: SeededRng,
    skew: float = ZIPF_SKEW,
    keys_per_function: int = ZIPF_KEYS_PER_FUNCTION,
) -> ArrivalPlan:
    """Attach Zipf-sampled input keys to a plan's arrivals.

    Each function gets its own sampler off a named fork of ``rng``, so
    key streams are independent of arrival interleaving and fully
    seed-deterministic.  Arrivals that already carry a key keep it.
    Used by the ``zipf`` scenario and by ``--reuse`` runs of the other
    scenarios (whose base plans never consume this fork, keeping their
    cache-off goldens byte-identical).
    """
    universe = tuple(f"k{index:02d}" for index in range(keys_per_function))
    samplers: dict[str, ZipfSampler] = {}
    arrivals = []
    for arrival in plan:
        if arrival.input_key is not None:
            arrivals.append(arrival)
            continue
        sampler = samplers.get(arrival.function)
        if sampler is None:
            sampler = ZipfSampler(
                universe, skew, rng.fork(f"zipf:{arrival.function}")
            )
            samplers[arrival.function] = sampler
        arrivals.append(replace(arrival, input_key=sampler.sample()))
    return ArrivalPlan(arrivals=tuple(arrivals), duration_s=plan.duration_s)


def _plan_zipf(
    rng: SeededRng, rps: float, duration_s: float, skew: float = ZIPF_SKEW
) -> ArrivalPlan:
    """Computation-reuse workload: Poisson arrivals over the standard
    mix at ZIPF_FACTOR x the nominal rate, every arrival carrying a
    Zipf(s)-popular input key."""
    base = PoissonArrivals(
        default_mix(), rps * ZIPF_FACTOR, rng=rng
    ).plan(duration_s)
    return attach_zipf_inputs(base, rng.fork("zipf-keys"), skew=skew)


def _plan_fanout(rng: SeededRng, rps: float, duration_s: float) -> ArrivalPlan:
    """Fan-out jobs at fixed spacing: the nominal request budget
    (``rps * duration_s``) divided into 64-partition map_reduce jobs.
    Spacing (rather than a Poisson draw) keeps the job schedule
    trivially deterministic; the per-job function draw still consumes
    the seeded stream so job mixes differ across seeds."""
    from repro.loadgen.arrivals import Arrival

    count = int(round(rps * duration_s))
    jobs = max(1, -(-count // FANOUT_PARTITIONS))
    spacing = duration_s / jobs
    arrivals = tuple(
        Arrival(
            time_s=round(index * spacing, 9),
            function=rng.choice(("thumb", "etl")),
        )
        for index in range(jobs)
    )
    return ArrivalPlan(arrivals=arrivals, duration_s=duration_s)


def _fanout_map(value):
    """The canned map stage (square each item)."""
    return value * value


def _fanout_reduce(left, right):
    """The canned reduce stage (sum)."""
    return left + right


def fanout_invoke_factory(engine, frontend, seed: int):
    """Build the per-arrival job factory the drivers run: one seeded
    map_reduce job per arrival, dataset derived from (seed, index)."""
    from repro.futures import synthetic_dataset

    items_per_job = FANOUT_PARTITIONS * FANOUT_ITEMS_PER_PARTITION

    def factory(index, arrival):
        items = synthetic_dataset(seed * 1_000_003 + index, items_per_job)
        return engine.run_job(
            _fanout_map, items, _fanout_reduce,
            function=arrival.function, frontend=frontend,
        )

    return factory


#: name -> plan builder; ``repro load --scenario`` keys into this.
_SCENARIOS: dict[str, Callable[[SeededRng, float, float], ArrivalPlan]] = {
    "poisson": _plan_poisson,
    "burst": _plan_burst,
    "diurnal": _plan_diurnal,
    "azure": _plan_azure,
    "overload": _plan_overload,
    "fanout": _plan_fanout,
    "zipf": _plan_zipf,
}


def build_runtime(
    plan: ArrivalPlan,
    seed: int,
    shards: int,
    policy: str = "hash",
    num_dpus: int = 2,
    default_deadline_s: float = 30.0,
    keep_alive_ttl_s: Optional[float] = None,
    prewarm: bool = False,
    hedge=False,
    hedge_percentile: Optional[float] = None,
    overload=False,
    hedge_budget: Optional[float] = None,
    batched: bool = True,
    fanout=None,
    reuse=False,
    cache_mb: Optional[float] = None,
    idempotent: bool = False,
    keepalive_policy: str = "ttl",
):
    """Boot a deployment sized for ``plan`` with a sharded front end.

    The observability trace buffer is sized to the plan so per-stage
    percentiles cover every request even on 10k+ runs.  ``prewarm``
    arms the warm-path engine (cold-start coalescing + predictive
    pre-warm); ``hedge`` arms the tail-latency hedging engine (pass
    True for defaults or a HedgeConfig for full control, with
    ``hedge_percentile`` overriding the trigger percentile);
    ``overload`` arms the overload controller (True for defaults or an
    OverloadConfig); ``hedge_budget`` sets the hedge clone token-bucket
    ratio (implies ``hedge``).  All are off by default so existing runs
    stay byte-identical.  ``batched=False`` runs on the kernel's
    pre-batch reference loop (same trace, roughly half the throughput)
    — the A/B lever the ``loadgen_replay`` perf scenario measures.
    ``reuse`` arms the result-cache engine (True for defaults or a
    ReuseConfig; ``cache_mb`` overrides its capacity), ``idempotent``
    deploys every function cache-eligible, and ``keepalive_policy``
    selects the warm-pool eviction policy (``"ttl"`` LRU+TTL or
    ``"gdsf"`` FaasCache-style greedy-dual).
    """
    sim = Simulator(batched=batched)
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
    # One trace per request; a fan-out arrival is one *job* that emits
    # its own trace plus one per partition task and stage request.
    traces_per_arrival = (
        FANOUT_PARTITIONS + 3 if fanout is not None else 1
    )
    obs = Observability(
        sim, max_traces=traces_per_arrival * len(plan) + 1024
    )
    warmpath = None
    if prewarm:
        from repro.warmpath import WarmPathConfig

        warmpath = WarmPathConfig()
    hedging = None
    if hedge or hedge_budget is not None:
        from repro.hedging import HedgeConfig

        hedging = hedge if isinstance(hedge, HedgeConfig) else HedgeConfig()
        if hedge_percentile is not None:
            hedging = replace(hedging, percentile=hedge_percentile)
        if hedge_budget is not None:
            hedging = replace(hedging, budget_ratio=hedge_budget)
    overload_cfg = None
    if overload:
        from repro.overload import OverloadConfig

        overload_cfg = (
            overload if isinstance(overload, OverloadConfig)
            else OverloadConfig()
        )
    reuse_cfg = None
    if reuse:
        from repro.reuse import ReuseConfig

        reuse_cfg = reuse if isinstance(reuse, ReuseConfig) else ReuseConfig()
        if cache_mb is not None:
            reuse_cfg = replace(reuse_cfg, capacity_mb=cache_mb)
    runtime = MoleculeRuntime(
        sim,
        machine,
        obs=obs,
        seed=seed,
        default_deadline_s=default_deadline_s,
        keep_alive_ttl_s=keep_alive_ttl_s,
        keepalive_policy=keepalive_policy,
        warmpath=warmpath,
        hedging=hedging,
        overload=overload_cfg,
        fanout=fanout,
        reuse=reuse_cfg,
    )
    runtime.start()
    for name, import_ms, exec_ms, profiles in _FUNCTIONS:
        runtime.deploy_now(FunctionDef(
            name=name,
            code=FunctionCode(name, language=Language.PYTHON, import_ms=import_ms),
            work=WorkProfile(warm_exec_ms=exec_ms),
            profiles=profiles,
            idempotent=idempotent,
        ))
    frontend = runtime.sharded_frontend(shards, policy=policy)
    return runtime, frontend


def attach_fault_plan(runtime: MoleculeRuntime, plan) -> None:
    """Arm a fault plan on a booted runtime, shifting ``at_s`` triggers
    so they count from workload start (mirrors ``repro faults``)."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    base = runtime.sim.now
    shifted = FaultPlan.of(*(
        spec if spec.at_s is None else replace(spec, at_s=spec.at_s + base)
        for spec in plan
    ))
    runtime.fault_plan = shifted
    runtime.injector = FaultInjector(runtime, shifted)
    runtime.injector.arm()


def run_load(
    scenario: str,
    seed: Optional[int] = None,
    rps: Optional[float] = None,
    duration_s: Optional[float] = None,
    shards: Optional[int] = None,
    policy: str = "hash",
    quick: bool = False,
    mode: str = "open",
    concurrency: int = 64,
    fault_plan=None,
    keep_alive_ttl_s: Optional[float] = None,
    prewarm: bool = False,
    hedge=False,
    hedge_percentile: Optional[float] = None,
    overload=False,
    hedge_budget: Optional[float] = None,
    deadline_s: Optional[float] = None,
    tasks: Optional[int] = None,
    fanout_gather: bool = True,
    reuse=False,
    zipf_s: Optional[float] = None,
    cache_mb: Optional[float] = None,
    keepalive_policy: str = "ttl",
) -> dict:
    """Run one canned load scenario and return its BENCH_load report.

    ``tasks`` (fanout scenario only) targets a partition-task count:
    the job schedule is resized so at least that many partition tasks
    run.  ``fanout_gather=False`` disarms straggler speculation — the
    A/B lever behind BENCH_load_fanout.json's p99 comparison.
    ``reuse`` arms the result cache (the ``zipf`` scenario's A/B
    lever; on any other scenario it also Zipf-attaches input keys so
    requests are cacheable), ``zipf_s`` overrides the input skew and
    ``cache_mb`` the cache capacity.
    """
    try:
        plan_builder = _SCENARIOS[scenario]
    except KeyError:
        raise ReproError(
            f"unknown scenario {scenario!r}; available: {scenario_names()}"
        ) from None
    if mode not in ("open", "closed"):
        raise ReproError(f"unknown drive mode {mode!r}: open or closed")
    seed = seed if seed is not None else config.default_seed()
    d_rps, d_duration, d_shards = QUICK_DEFAULTS if quick else FULL_DEFAULTS
    rps = rps if rps is not None else d_rps
    duration_s = duration_s if duration_s is not None else d_duration
    shards = shards if shards is not None else d_shards
    if scenario == "overload":
        # The chaos-under-saturation defaults: a deadline tight enough
        # for queueing to eat, cold stampedes every burst, and a DPU
        # crash mid-run.  Each is only a default — explicit arguments
        # still win.
        if deadline_s is None:
            deadline_s = OVERLOAD_DEADLINE_S
        if keep_alive_ttl_s is None:
            keep_alive_ttl_s = OVERLOAD_KEEP_ALIVE_S
        if fault_plan is None:
            fault_plan = overload_fault_plan(duration_s)
    if scenario == "zipf" and deadline_s is None:
        # Tight enough that the cache-off run's queueing tail dies at
        # the deadline — the headroom the A/B comparison measures.
        deadline_s = ZIPF_DEADLINE_S
    fanout_cfg = None
    if scenario == "fanout":
        from repro.futures import FanoutConfig

        # A fan-out job lands FANOUT_PARTITIONS cold misses on the
        # same (function, PU) within milliseconds; each DPU's executor
        # daemon is a serial command loop, so un-coalesced storms
        # queue 64 cold starts back to back and blow the deadline.
        # The warm-path engine is the designed answer (single-flight
        # batches), so the scenario arms it.
        prewarm = True
        if tasks is not None:
            # Resize the job schedule to the task target: the plan
            # builder turns the nominal request budget into jobs of
            # FANOUT_PARTITIONS tasks each.
            rps = tasks / duration_s
        fanout_cfg = FanoutConfig(
            partitions=FANOUT_PARTITIONS, speculate=fanout_gather
        )

    skew = zipf_s if zipf_s is not None else ZIPF_SKEW
    rng = SeededRng(seed).fork(f"loadgen:{scenario}")
    if scenario == "zipf":
        plan = _plan_zipf(rng, rps, duration_s, skew=skew)
    else:
        plan = plan_builder(rng, rps, duration_s)
        if reuse:
            # Reuse on a non-zipf scenario: attach input keys off a
            # fresh fork the base plan never consumes, so the cache-off
            # run of the same scenario stays byte-identical.
            plan = attach_zipf_inputs(
                plan,
                SeededRng(seed).fork(f"loadgen:{scenario}:zipf-keys"),
                skew=skew,
            )

    wall_start = time.perf_counter()
    runtime, frontend = build_runtime(
        plan, seed, shards, policy=policy,
        default_deadline_s=deadline_s if deadline_s is not None else 30.0,
        keep_alive_ttl_s=keep_alive_ttl_s, prewarm=prewarm,
        hedge=hedge, hedge_percentile=hedge_percentile,
        overload=overload, hedge_budget=hedge_budget,
        fanout=fanout_cfg,
        reuse=reuse, cache_mb=cache_mb,
        # Cache eligibility is per-function opt-in: the zipf scenario
        # deploys idempotent functions even cache-off so its A/B pair
        # differs only by the engine.
        idempotent=(scenario == "zipf") or bool(reuse),
        keepalive_policy=keepalive_policy,
    )
    if fault_plan is not None:
        attach_fault_plan(runtime, fault_plan)
    busy_baseline = {
        pu_id: pu.clock.busy_time
        for pu_id, pu in runtime.machine.pus.items()
    }
    invoke_factory = None
    task_weight = None
    if fanout_cfg is not None:
        invoke_factory = fanout_invoke_factory(
            runtime.fanout, frontend, seed
        )
        # One fanned-out arrival holds FANOUT_PARTITIONS tasks plus
        # the two CPU stage requests in flight.
        task_weight = lambda arrival: FANOUT_PARTITIONS + 2  # noqa: E731
    if mode == "open":
        driver = OpenLoopDriver(
            runtime, plan, frontend, invoke_factory=invoke_factory
        )
    else:
        driver = ClosedLoopDriver(
            runtime, plan, concurrency=concurrency, frontend=frontend,
            invoke_factory=invoke_factory, task_weight=task_weight,
        )
    records = driver.run()
    wall_s = time.perf_counter() - wall_start

    report = build_report(
        runtime,
        plan,
        records,
        scenario,
        params={
            "seed": seed,
            "rps": rps,
            "duration_s": duration_s,
            "shards": shards,
            "policy": policy,
            "mode": mode,
            "quick": quick,
            "prewarm": prewarm,
            **(
                {"deadline_s": deadline_s}
                if deadline_s is not None and deadline_s != 30.0 else {}
            ),
            **(
                {"keep_alive_ttl_s": keep_alive_ttl_s}
                if keep_alive_ttl_s is not None else {}
            ),
            **(
                {
                    "hedge": True,
                    "hedge_percentile": runtime.hedging.config.percentile,
                }
                if runtime.hedging is not None else {}
            ),
            **(
                {"hedge_budget": hedge_budget}
                if hedge_budget is not None else {}
            ),
            **({"overload": True} if runtime.overload is not None else {}),
            **(
                {"zipf_s": skew}
                if scenario == "zipf" or runtime.reuse is not None else {}
            ),
            **(
                {
                    "reuse": True,
                    "cache_mb": runtime.reuse.config.capacity_mb,
                }
                if runtime.reuse is not None else {}
            ),
            **(
                {"keepalive_policy": keepalive_policy}
                if keepalive_policy != "ttl" else {}
            ),
            **({"concurrency": concurrency} if mode == "closed" else {}),
            **(
                {
                    "fanout": True,
                    "fanout_gather": fanout_gather,
                    **({"tasks": tasks} if tasks is not None else {}),
                }
                if runtime.fanout is not None else {}
            ),
        },
        wall_s=wall_s,
        frontend=frontend,
        elapsed_s=driver.elapsed_s,
        busy_baseline=busy_baseline,
    )
    report["seed"] = seed
    if runtime.warmpath is not None:
        report["warmpath"] = runtime.warmpath.snapshot()
    return report
