"""The sharded gateway front end: N admission shards, pluggable routing.

A single :class:`~repro.core.gateway.ApiGateway` serialises admission
for the whole machine; at production traffic rates the front door has
to scale out.  :class:`ShardedFrontend` runs ``N`` gateway shards over
one shared scheduler/invoker, with three routing policies:

* ``hash`` — consistent hashing of the function name over a virtual-
  node ring, so shard-count changes only remap the keys whose ring
  segment the new shard takes (FDN-style delivery layer stability);
* ``least-outstanding`` — the shard with the fewest in-flight
  requests, skipping shards whose circuit breaker is open;
* ``locality`` — the shard affined to the PU currently holding a warm
  sandbox for the function, falling back to the hash ring when no warm
  instance exists anywhere.

Every shard shares one request-id stream, so machine-wide accounting
(``answered + dead == admitted``) spans shards, and each shard keeps a
busy-time integral for the per-shard utilization the SLO report emits.
"""

from __future__ import annotations

import bisect
import itertools
import zlib
from typing import Optional, TYPE_CHECKING

from repro.core.gateway import ApiGateway
from repro.core.reliability import BreakerState, CircuitBreaker
from repro.errors import RequestShed, SchedulingError
from repro.hardware.pu import PuKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime

#: Routing policy names accepted by :class:`ShardedFrontend`.
ROUTING_POLICIES = ("hash", "least-outstanding", "locality")


def _stable_hash(key: str) -> int:
    """Process-stable 32-bit hash (builtin ``hash`` is randomised)."""
    return zlib.crc32(key.encode())


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each shard owns ``vnodes`` points on a 32-bit ring; a key routes to
    the owner of the first point at or after its hash.  Adding a shard
    only moves the keys that fall into the new shard's segments —
    the rebalance-boundary stability property the routing tests pin.
    """

    def __init__(self, num_shards: int, vnodes: int = 64):
        if num_shards < 1:
            raise SchedulingError(f"need at least one shard: {num_shards}")
        if vnodes < 1:
            raise SchedulingError(f"need at least one vnode: {vnodes}")
        self.num_shards = num_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(vnodes):
                points.append((_stable_hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _shard in points]

    def route(self, key: str) -> int:
        """The shard owning ``key``."""
        value = _stable_hash(key)
        index = bisect.bisect_left(self._hashes, value)
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class GatewayShard:
    """One admission shard: a gateway plus routing bookkeeping.

    ``affinity`` is the tuple of PU ids this shard fronts for locality
    routing.  The breaker lets the least-outstanding policy steer
    around a shard that keeps producing failures (e.g. its affined PUs
    are down); routing never targets an OPEN-breaker shard while a
    healthy one exists.
    """

    def __init__(
        self,
        sim,
        index: int,
        obs=None,
        default_deadline_s: Optional[float] = None,
        request_ids=None,
        affinity: tuple[int, ...] = (),
    ):
        self.sim = sim
        self.index = index
        self.gateway = ApiGateway(
            sim,
            obs=obs,
            default_deadline_s=default_deadline_s,
            request_ids=request_ids,
        )
        self.affinity = affinity
        self.breaker = CircuitBreaker()
        self.outstanding = 0
        self.routed = 0
        self.completed = 0
        self.failed = 0
        #: Requests shed at this shard's admission gate (repro.overload).
        self.shed = 0
        #: Integral of wall (sim) time with >= 1 request in flight.
        self.busy_s = 0.0
        self._busy_since: Optional[float] = None

    @property
    def healthy(self) -> bool:
        """True while routing may target this shard."""
        return self.breaker.allows(self.sim.now)

    def begin_request(self) -> None:
        """A request was routed here (before admission)."""
        self.routed += 1
        if self.outstanding == 0:
            self._busy_since = self.sim.now
        self.outstanding += 1
        self.breaker.begin_attempt(self.sim.now)

    def end_request(self, ok: bool) -> None:
        """A routed request finished (answered or terminally failed)."""
        self.outstanding -= 1
        if self.outstanding == 0 and self._busy_since is not None:
            self.busy_s += self.sim.now - self._busy_since
            self._busy_since = None
        if ok:
            self.completed += 1
            self.breaker.record_success(self.sim.now)
        else:
            self.failed += 1
            self.breaker.record_failure(self.sim.now)

    def end_shed(self) -> None:
        """A routed request was shed at admission (repro.overload).

        A shed is deliberate back-pressure, not a shard failure: the
        breaker records nothing — a saturated shard tripping its own
        breaker open would amplify the overload it is shedding against
        — and the count is reported apart from ``failed``.
        """
        self.shed += 1
        self.outstanding -= 1
        if self.outstanding == 0 and self._busy_since is not None:
            self.busy_s += self.sim.now - self._busy_since
            self._busy_since = None

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` this shard had requests in flight."""
        busy = self.busy_s
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / elapsed_s if elapsed_s > 0 else 0.0


class ShardedFrontend:
    """N gateway shards feeding one runtime's shared scheduler."""

    def __init__(
        self,
        runtime: "MoleculeRuntime",
        num_shards: int,
        policy: str = "hash",
        default_deadline_s: Optional[float] = None,
        vnodes: int = 64,
    ):
        if num_shards < 1:
            raise SchedulingError(f"need at least one shard: {num_shards}")
        if policy not in ROUTING_POLICIES:
            raise SchedulingError(
                f"unknown routing policy {policy!r}; "
                f"available: {', '.join(ROUTING_POLICIES)}"
            )
        self.runtime = runtime
        self.policy = policy
        self.ring = HashRing(num_shards, vnodes=vnodes)
        if runtime.obs is not None:
            runtime.obs.ensure_shard_metrics()
        deadline = (
            default_deadline_s
            if default_deadline_s is not None
            else runtime.gateway.default_deadline_s
        )
        request_ids = itertools.count(1)
        pu_ids = sorted(runtime.machine.pus)
        self.shards = [
            GatewayShard(
                runtime.sim,
                index,
                obs=runtime.obs,
                default_deadline_s=deadline,
                request_ids=request_ids,
                affinity=tuple(
                    pu_id for i, pu_id in enumerate(pu_ids)
                    if i % num_shards == index
                ),
            )
            for index in range(num_shards)
        ]
        #: pu_id -> owning shard, from the round-robin affinity split.
        self._pu_shard = {
            pu_id: shard.index
            for shard in self.shards
            for pu_id in shard.affinity
        }
        runtime.frontend = self
        overload = getattr(runtime, "overload", None)
        if overload is not None:
            overload.attach_frontend(self)

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def requests_admitted(self) -> int:
        """Total admissions across every shard."""
        return sum(s.gateway.requests_admitted for s in self.shards)

    # -- routing ---------------------------------------------------------------

    def route(self, function: str, kind: Optional[PuKind] = None) -> GatewayShard:
        """Pick the shard for one request under the configured policy."""
        if self.policy == "least-outstanding":
            shard = self._route_least_outstanding()
        elif self.policy == "locality":
            shard = self._route_locality(function, kind)
        else:
            shard = self.shards[self.ring.route(function)]
        if self.runtime.obs is not None:
            self.runtime.obs.on_shard_routed(shard.index, self.policy)
        return shard

    def _route_least_outstanding(self) -> GatewayShard:
        healthy = [s for s in self.shards if s.healthy]
        # With every breaker open there is no good choice; degrade to
        # all shards rather than black-holing the request.
        pool = healthy or self.shards
        return min(pool, key=lambda s: (s.outstanding, s.index))

    def _route_locality(
        self, function: str, kind: Optional[PuKind]
    ) -> GatewayShard:
        fn = self.runtime.registry.get(function)
        pu = self.runtime.scheduler.warm_locality(
            fn, self.runtime.invoker.pools, kind=kind
        )
        if pu is not None:
            shard = self.shards[self._pu_shard[pu.pu_id]]
            if shard.healthy:
                return shard
        # No warm sandbox anywhere (or its shard is unhealthy): fall
        # back to the stable hash placement.
        return self.shards[self.ring.route(function)]

    def shard_for_pu(self, pu_id: int) -> GatewayShard:
        """The shard affined to one PU."""
        return self.shards[self._pu_shard[pu_id]]

    # -- invocation ------------------------------------------------------------

    def invoke(self, name: str, **kwargs):
        """Generator: route one request and run it through its shard."""
        kind = kwargs.get("kind")
        shard = self.route(name, kind)
        if getattr(self.runtime, "overload", None) is not None:
            # A half-open breaker's single probe must never be shed: it
            # is the only signal that can close the breaker again.
            # Detected before begin_request claims the probe slot (the
            # claim itself flips probe_in_flight).
            kwargs["overload_bypass"] = (
                shard.breaker.state is BreakerState.HALF_OPEN
                and not shard.breaker.probe_in_flight
            )
        shard.begin_request()
        try:
            result = yield from self.runtime.invoker.invoke(
                name, gateway=shard.gateway, **kwargs
            )
        except RequestShed:
            shard.end_shed()
            raise
        except Exception:
            shard.end_request(ok=False)
            raise
        shard.end_request(ok=True)
        result.shard = shard.index
        return result

    # -- reporting --------------------------------------------------------------

    def snapshot(self, elapsed_s: Optional[float] = None) -> list[dict]:
        """Per-shard counters for reports and metric refreshes."""
        elapsed = (
            elapsed_s if elapsed_s is not None else self.runtime.sim.now
        )
        overload = getattr(self.runtime, "overload", None)
        return [
            {
                "shard": shard.index,
                "routed": shard.routed,
                "admitted": shard.gateway.requests_admitted,
                "completed": shard.completed,
                "failed": shard.failed,
                # Conditional so controller-off reports stay
                # byte-identical to earlier releases.
                **({"shed": shard.shed} if overload is not None else {}),
                "outstanding": shard.outstanding,
                "utilization": shard.utilization(elapsed),
                "breaker": shard.breaker.state.value,
                "affinity": [
                    self.runtime.machine.pus[pu_id].name
                    for pu_id in shard.affinity
                ],
            }
            for shard in self.shards
        ]
