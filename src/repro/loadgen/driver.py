"""Open- and closed-loop load drivers over an arrival plan.

The **open-loop** driver admits every arrival at its planned time
regardless of how many earlier requests are still in flight — the
discipline that actually measures tail latency under load (a
closed-loop driver self-throttles and hides queueing).  The
**closed-loop** driver keeps a fixed number of workers busy, the
regime the repo's earlier experiments used.

Both produce a list of :class:`RequestRecord`, the per-request ground
truth the SLO layer aggregates and the golden-trace regression test
pins byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ReproError, RequestShed
from repro.loadgen.arrivals import ArrivalPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime
    from repro.loadgen.sharding import ShardedFrontend

#: Outcome values in RequestRecord.outcome.
OUTCOME_OK = "ok"
#: A request the admission gate deliberately refused (repro.overload).
#: Distinct from failure outcomes: sheds are back-pressure, and the
#: conservation invariant counts them apart from dead letters
#: (``answered + shed + dead == admitted``).
OUTCOME_SHED = "Shed"


@dataclass
class RequestRecord:
    """One request's fate, as observed by the driver."""

    index: int
    function: str
    submitted_s: float
    outcome: str = OUTCOME_OK
    admitted_s: float = 0.0
    shard: Optional[int] = None
    pu: str = ""
    cold: bool = False
    attempts: int = 0
    latency_s: float = 0.0
    #: True when a hedge clone was launched for this request
    #: (repro.hedging); ``pu`` then names the winning copy's PU.
    hedged: bool = False
    #: ``"fresh"``/``"stale"`` when answered from the result cache
    #: (repro.reuse), ``""`` when the request actually executed.
    #: Excluded from both golden tuples below.
    cache: str = ""

    @property
    def answered(self) -> bool:
        """True if the request produced a response."""
        return self.outcome == OUTCOME_OK

    @property
    def shed(self) -> bool:
        """True if the admission gate deliberately refused the request."""
        return self.outcome == OUTCOME_SHED

    def tuple(self) -> tuple:
        """The golden-trace comparison tuple.

        Deliberately excludes ``hedged``: the 72-arrival golden trace
        pins this exact shape.
        """
        return (
            self.index, self.function, self.outcome, self.admitted_s,
            self.shard, self.pu, self.latency_s,
        )

    def hedge_tuple(self) -> tuple:
        """The golden *hedge* trace comparison tuple."""
        return self.tuple() + (self.hedged,)


class OpenLoopDriver:
    """Admit each arrival at its trace time, never waiting on answers."""

    def __init__(
        self,
        runtime: "MoleculeRuntime",
        plan: ArrivalPlan,
        frontend: Optional["ShardedFrontend"] = None,
        invoke_factory: Optional[Callable] = None,
    ):
        self.runtime = runtime
        self.plan = plan
        self.frontend = frontend if frontend is not None else runtime.frontend
        #: Optional request builder ``(index, arrival) -> generator``
        #: replacing the plain invoke (repro.futures: one fan-out job
        #: per arrival).  The generator's return value must expose the
        #: record fields (``admitted_s``/``shard``/``pu_name``/
        #: ``cold``/``attempts``/``total_s``/``hedged``).
        self.invoke_factory = invoke_factory
        self.records: list[RequestRecord] = []
        self.submitted = 0
        #: Sim time the workload started (pacer launch) and the time the
        #: last request finished.  Plan times are relative to the start,
        #: so a run is unaffected by how long boot and deploy took; the
        #: pair bounds the measurement window for goodput/utilization
        #: (``sim.now`` after the drain overshoots it: orphaned deadline
        #: timers keep the simulation ticking long after the last
        #: response).
        self.started_s = 0.0
        self.finished_s = 0.0

    @property
    def elapsed_s(self) -> float:
        """The measurement window: first submit to last completion."""
        return self.finished_s - self.started_s

    def _invoke(self, name: str, **kwargs):
        if self.frontend is not None:
            return self.frontend.invoke(name, **kwargs)
        return self.runtime.invoker.invoke(name, **kwargs)

    def _request(self, index: int, arrival):
        record = RequestRecord(
            index=index,
            function=arrival.function,
            submitted_s=self.runtime.sim.now,
        )
        self.records.append(record)
        self.submitted += 1
        try:
            if self.invoke_factory is not None:
                result = yield from self.invoke_factory(index, arrival)
            else:
                result = yield from self._invoke(
                    arrival.function,
                    kind=arrival.kind,
                    payload_bytes=arrival.payload_bytes,
                    input_key=arrival.input_key,
                )
        except ReproError as exc:
            record.outcome = (
                OUTCOME_SHED if isinstance(exc, RequestShed)
                else type(exc).__name__
            )
            record.latency_s = self.runtime.sim.now - record.submitted_s
        else:
            record.admitted_s = result.admitted_s
            record.shard = result.shard
            record.pu = result.pu_name
            record.cold = result.cold
            record.attempts = result.attempts
            record.latency_s = result.total_s
            record.hedged = result.hedged
            record.cache = getattr(result, "cache", "")
        self.finished_s = max(self.finished_s, self.runtime.sim.now)

    def _pacer(self):
        sim = self.runtime.sim
        base = sim.now
        for index, arrival in enumerate(self.plan):
            delay = base + arrival.time_s - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            sim.spawn(
                self._request(index, arrival), name=f"load-{index}"
            )

    def run(self) -> list[RequestRecord]:
        """Replay the whole plan and drain the simulation."""
        sim = self.runtime.sim
        self.started_s = sim.now
        self.finished_s = sim.now
        pacer = sim.spawn(self._pacer(), name="load-pacer")
        sim.run()
        if not pacer.processed:
            raise ReproError("open-loop pacer deadlocked")
        return self.records


class ClosedLoopDriver:
    """Fixed-concurrency workers pulling arrivals as fast as answered.

    Arrival *times* are ignored — only the (function, kind, payload)
    sequence matters — which makes this the apples-to-apples contrast
    against the open-loop numbers at the same offered mix.

    ``concurrency`` bounds outstanding *tasks*, not outstanding
    requests: a fanned-out request (repro.futures) holds its worker for
    the whole gather while dispatching many sandbox tasks, so counting
    requests would undercount in-flight work by the fan-out factor.
    ``task_weight(arrival)`` declares how many tasks one arrival fans
    out to (default 1, the plain one-request-one-task case, which
    leaves the historical schedule byte-identical).
    """

    def __init__(
        self,
        runtime: "MoleculeRuntime",
        plan: ArrivalPlan,
        concurrency: int = 8,
        frontend: Optional["ShardedFrontend"] = None,
        invoke_factory: Optional[Callable] = None,
        task_weight: Optional[Callable] = None,
    ):
        if concurrency < 1:
            raise ReproError(f"concurrency must be >= 1: {concurrency}")
        self.runtime = runtime
        self.plan = plan
        self.concurrency = concurrency
        self.frontend = frontend if frontend is not None else runtime.frontend
        #: See :class:`OpenLoopDriver`.
        self.invoke_factory = invoke_factory
        #: ``(arrival) -> int``: sandbox tasks this arrival fans out to.
        self.task_weight = task_weight
        self.records: list[RequestRecord] = []
        self._next = 0
        #: Outstanding sandbox tasks across all workers, and the high
        #: watermark (the regression test's observable).
        self._inflight_tasks = 0
        self.max_inflight_tasks = 0
        self._capacity_evt = None
        self.started_s = 0.0
        self.finished_s = 0.0

    @property
    def elapsed_s(self) -> float:
        """The measurement window: first submit to last completion."""
        return self.finished_s - self.started_s

    def _invoke(self, name: str, **kwargs):
        if self.frontend is not None:
            return self.frontend.invoke(name, **kwargs)
        return self.runtime.invoker.invoke(name, **kwargs)

    def _acquire_tasks(self, weight: int):
        """Generator: park until ``weight`` more tasks fit under the
        concurrency bound.  A request heavier than the whole bound is
        admitted alone (it could otherwise never run).  The weight-1
        fast path never creates an event, keeping plain runs
        byte-identical to the pre-weight driver."""
        sim = self.runtime.sim
        while (self._inflight_tasks > 0
               and self._inflight_tasks + weight > self.concurrency):
            if self._capacity_evt is None or self._capacity_evt.triggered:
                self._capacity_evt = sim.event()
            yield self._capacity_evt
        self._inflight_tasks += weight
        self.max_inflight_tasks = max(
            self.max_inflight_tasks, self._inflight_tasks
        )

    def _release_tasks(self, weight: int) -> None:
        self._inflight_tasks -= weight
        if self._capacity_evt is not None and not self._capacity_evt.triggered:
            self._capacity_evt.succeed()

    def _worker(self):
        arrivals = self.plan.arrivals
        while self._next < len(arrivals):
            index = self._next
            self._next += 1
            arrival = arrivals[index]
            weight = (
                max(1, self.task_weight(arrival))
                if self.task_weight is not None else 1
            )
            yield from self._acquire_tasks(weight)
            record = RequestRecord(
                index=index,
                function=arrival.function,
                submitted_s=self.runtime.sim.now,
            )
            self.records.append(record)
            try:
                if self.invoke_factory is not None:
                    result = yield from self.invoke_factory(index, arrival)
                else:
                    result = yield from self._invoke(
                        arrival.function,
                        kind=arrival.kind,
                        payload_bytes=arrival.payload_bytes,
                        input_key=arrival.input_key,
                    )
            except ReproError as exc:
                record.outcome = (
                    OUTCOME_SHED if isinstance(exc, RequestShed)
                    else type(exc).__name__
                )
                record.latency_s = self.runtime.sim.now - record.submitted_s
            else:
                record.admitted_s = result.admitted_s
                record.shard = result.shard
                record.pu = result.pu_name
                record.cold = result.cold
                record.attempts = result.attempts
                record.latency_s = result.total_s
                record.hedged = result.hedged
                record.cache = getattr(result, "cache", "")
            finally:
                self._release_tasks(weight)
            self.finished_s = max(self.finished_s, self.runtime.sim.now)

    def run(self) -> list[RequestRecord]:
        """Drain the plan through the worker pool."""
        sim = self.runtime.sim
        self.started_s = sim.now
        self.finished_s = sim.now
        for worker in range(min(self.concurrency, len(self.plan))):
            sim.spawn(self._worker(), name=f"closed-loop-{worker}")
        sim.run()
        self.records.sort(key=lambda r: r.index)
        return self.records
