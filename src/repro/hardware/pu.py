"""Processing-unit model.

A *processing unit* (PU) is one compute element of the heterogeneous
computer: the host CPU, a DPU, an FPGA, or a GPU.  General-purpose PUs
(CPU/DPU) run an OS and arbitrary processes; accelerators (FPGA/GPU)
only run kernels managed through a vectorized sandbox runtime and are
fronted by a virtual XPU-Shim instance on a neighbouring
general-purpose PU (paper §4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.errors import HardwareError
from repro.sim import Container, PreemptibleClock, Resource, Simulator


class PuKind(enum.Enum):
    """The architectural class of a processing unit."""

    CPU = "cpu"
    DPU = "dpu"
    FPGA = "fpga"
    GPU = "gpu"

    @property
    def general_purpose(self) -> bool:
        """True for PUs that run an OS and arbitrary processes."""
        return self in (PuKind.CPU, PuKind.DPU)


class PriceClass(enum.Enum):
    """Relative billing classes (§4.1: DPU cheapest, FPGA most expensive)."""

    DPU = 0.6
    CPU = 1.0
    GPU = 2.5
    FPGA = 4.0

    def cost(self, duration_s: float, resource_units: float = 1.0) -> float:
        """Billing cost in abstract credit units, 1 ms granularity (§1)."""
        billed_ms = max(1.0, round(duration_s / config.MS))
        return self.value * billed_ms * resource_units


@dataclass(frozen=True)
class PuSpec:
    """Static description of a processing-unit model."""

    model: str
    kind: PuKind
    cores: int
    freq_ghz: float
    #: Single-thread speed relative to the reference Xeon server CPU.
    speed: float
    dram_mb: float
    reserved_mb: float
    costs: config.PuCosts
    price_class: PriceClass

    def usable_dram_mb(self) -> float:
        """DRAM available to function instances."""
        return self.dram_mb - self.reserved_mb


class ProcessingUnit:
    """A live PU inside a simulated machine.

    Owns the core pool (a counted :class:`Resource`), the DRAM pool (a
    :class:`Container` in MB) and a utilisation clock.
    """

    def __init__(self, sim: Simulator, pu_id: int, name: str, spec: PuSpec):
        self.sim = sim
        self.pu_id = pu_id
        self.name = name
        self.spec = spec
        self.cores = Resource(sim, capacity=spec.cores)
        self.dram = Container(sim, capacity=spec.usable_dram_mb(), init=0.0)
        self.clock = PreemptibleClock(sim)
        #: For accelerators: the general-purpose PU hosting the virtual
        #: XPU-Shim instance and executor for this device (§4.1).
        self.host_pu: Optional["ProcessingUnit"] = None

    @property
    def kind(self) -> PuKind:
        """Architectural class of this PU."""
        return self.spec.kind

    @property
    def is_general_purpose(self) -> bool:
        """True if this PU runs an OS (CPU/DPU)."""
        return self.spec.kind.general_purpose

    # -- memory accounting ----------------------------------------------------

    @property
    def dram_used_mb(self) -> float:
        """MB of instance memory currently allocated."""
        return self.dram.level

    @property
    def dram_free_mb(self) -> float:
        """MB of instance memory still available."""
        return self.dram.capacity - self.dram.level

    def try_reserve_dram(self, mb: float) -> bool:
        """Immediately reserve ``mb`` of DRAM; False if it does not fit.

        Used by admission control: unlike ``dram.put`` this never queues.
        """
        if mb < 0:
            raise HardwareError(f"negative DRAM reservation: {mb}")
        if self.dram.level + mb > self.dram.capacity + 1e-9:
            return False
        self.dram.put(mb)
        return True

    def release_dram(self, mb: float) -> None:
        """Return a reservation made by :meth:`try_reserve_dram`."""
        self.dram.get(mb)

    # -- timing models ----------------------------------------------------------

    def compute_time(self, ref_cpu_seconds: float) -> float:
        """Wall time for work that takes ``ref_cpu_seconds`` on the
        reference CPU, scaled by this PU's relative speed."""
        if ref_cpu_seconds < 0:
            raise HardwareError(f"negative work: {ref_cpu_seconds}")
        return ref_cpu_seconds / self.spec.speed

    def ipc_notify_time(self) -> float:
        """One-way local IPC notification latency on this PU."""
        return self.spec.costs.ipc_notify_us * config.US

    def op_time(self, count: float = 1.0) -> float:
        """Time for ``count`` fixed user-space operations."""
        return self.spec.costs.op_us * count * config.US

    def copy_time(self, nbytes: int) -> float:
        """memcpy time for ``nbytes`` on this PU's cores."""
        return self.spec.costs.copy_us_per_kb * (nbytes / config.KB) * config.US

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PU {self.pu_id} {self.name} ({self.spec.model})>"
