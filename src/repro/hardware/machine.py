"""The heterogeneous computer: PUs + interconnect + attached devices.

Builders mirror the paper's two testbeds and a combined machine:

* :func:`build_cpu_dpu_machine`  -- Xeon host + N Bluefield DPUs (§6 setting 1)
* :func:`build_cpu_fpga_machine` -- F1-style host + N UltraScale+ FPGAs (§6 setting 2)
* :func:`build_full_machine`     -- CPU + DPUs + FPGAs + GPU (generality, §6.8)
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import HardwareError
from repro.hardware import specs
from repro.hardware.fpga import FpgaDevice
from repro.hardware.interconnect import Interconnect, LinkKind, Route
from repro.hardware.pu import ProcessingUnit, PuKind, PuSpec
from repro.sim import Simulator


class HeterogeneousComputer:
    """One worker machine with heterogeneous processing units."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.pus: dict[int, ProcessingUnit] = {}
        self.interconnect = Interconnect()
        #: Accelerator device models keyed by pu_id (e.g. FpgaDevice).
        self.devices: dict[int, FpgaDevice] = {}
        self._next_pu_id = 0
        #: Lookup caches — the topology is static after construction, so
        #: kind scans are computed once and invalidated only by add_pu.
        self._kind_cache: dict[PuKind, tuple[ProcessingUnit, ...]] = {}
        self._gp_cache: Optional[tuple[ProcessingUnit, ...]] = None

    # -- construction -----------------------------------------------------------

    def add_pu(self, name: str, spec: PuSpec) -> ProcessingUnit:
        """Add a processing unit and return it."""
        pu = ProcessingUnit(self.sim, self._next_pu_id, name, spec)
        self.pus[pu.pu_id] = pu
        self._next_pu_id += 1
        self._kind_cache.clear()
        self._gp_cache = None
        return pu

    def connect(self, a: ProcessingUnit, b: ProcessingUnit, kind: LinkKind) -> None:
        """Add a physical link between two PUs."""
        self.interconnect.add_link(a, b, kind)

    def attach_fpga_device(self, pu: ProcessingUnit, **kwargs) -> FpgaDevice:
        """Attach an :class:`FpgaDevice` model to an FPGA PU."""
        device = FpgaDevice(self.sim, pu, **kwargs)
        self.devices[pu.pu_id] = device
        return device

    # -- lookup -------------------------------------------------------------------

    def pu(self, pu_id: int) -> ProcessingUnit:
        """PU by id (raises on unknown id)."""
        try:
            return self.pus[pu_id]
        except KeyError:
            raise HardwareError(f"unknown PU id {pu_id}") from None

    def pus_of_kind(self, kind: PuKind) -> tuple[ProcessingUnit, ...]:
        """All PUs of one architectural class, in id order.

        Returns a cached immutable tuple: callers on the scheduling hot
        path share it without a per-call scan, and none of them can
        mutate the shared state.
        """
        pus = self._kind_cache.get(kind)
        if pus is None:
            pus = tuple(pu for pu in self.pus.values() if pu.kind is kind)
            self._kind_cache[kind] = pus
        return pus

    def general_purpose_pus(self) -> tuple[ProcessingUnit, ...]:
        """All CPU/DPU PUs, in id order (cached immutable tuple)."""
        if self._gp_cache is None:
            self._gp_cache = tuple(
                pu for pu in self.pus.values() if pu.is_general_purpose
            )
        return self._gp_cache

    @property
    def host_cpu(self) -> ProcessingUnit:
        """The machine's host CPU (first CPU-kind PU)."""
        cpus = self.pus_of_kind(PuKind.CPU)
        if not cpus:
            raise HardwareError("machine has no host CPU")
        return cpus[0]

    def route(self, src: ProcessingUnit, dst: ProcessingUnit) -> Route:
        """Interconnect route between two PUs."""
        return self.interconnect.route(src.pu_id, dst.pu_id)

    def fpga_device(self, pu: ProcessingUnit) -> FpgaDevice:
        """The device model attached to an FPGA PU."""
        try:
            return self.devices[pu.pu_id]
        except KeyError:
            raise HardwareError(f"PU {pu.name} has no attached device model") from None

    def describe(self) -> str:
        """One-line-per-PU description of the machine topology."""
        lines = []
        for pu in self.pus.values():
            neighbors = list(self.interconnect.neighbors(pu.pu_id))
            lines.append(
                f"PU{pu.pu_id} {pu.name:<10} {pu.spec.model:<34} "
                f"kind={pu.kind.value:<4} links={neighbors}"
            )
        return "\n".join(lines)


def build_cpu_dpu_machine(
    sim: Simulator,
    num_dpus: int = 2,
    dpu_model: str = "bf1",
    cpu_spec: Optional[PuSpec] = None,
) -> HeterogeneousComputer:
    """The §6 CPU-DPU testbed: Xeon host + Bluefield DPUs over RDMA."""
    if num_dpus < 0:
        raise HardwareError(f"invalid DPU count: {num_dpus}")
    machine = HeterogeneousComputer(sim)
    cpu = machine.add_pu("cpu0", cpu_spec or specs.XEON_8160)
    dpu_spec = specs.CATALOG[dpu_model]
    if dpu_spec.kind is not PuKind.DPU:
        raise HardwareError(f"{dpu_model!r} is not a DPU model")
    for index in range(num_dpus):
        dpu = machine.add_pu(f"dpu{index}", dpu_spec)
        machine.connect(cpu, dpu, LinkKind.RDMA)
    return machine


def build_cpu_fpga_machine(
    sim: Simulator,
    num_fpgas: int = 8,
    data_retention: bool = True,
) -> HeterogeneousComputer:
    """The §6 CPU-FPGA testbed: F1.x16large with eight UltraScale+ FPGAs."""
    if num_fpgas < 1:
        raise HardwareError(f"invalid FPGA count: {num_fpgas}")
    machine = HeterogeneousComputer(sim)
    cpu = machine.add_pu("cpu0", specs.XEON_8160)
    for index in range(num_fpgas):
        fpga = machine.add_pu(f"fpga{index}", specs.ULTRASCALE_PLUS)
        fpga.host_pu = cpu
        machine.connect(cpu, fpga, LinkKind.DMA)
        machine.attach_fpga_device(fpga, data_retention=data_retention)
    return machine


def build_full_machine(
    sim: Simulator,
    num_dpus: int = 2,
    num_fpgas: int = 1,
    num_gpus: int = 1,
    dpu_model: str = "bf1",
) -> HeterogeneousComputer:
    """A combined machine exercising every PU kind (§6.8 generality)."""
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus, dpu_model=dpu_model)
    cpu = machine.host_cpu
    for index in range(num_fpgas):
        fpga = machine.add_pu(f"fpga{index}", specs.ULTRASCALE_PLUS)
        fpga.host_pu = cpu
        machine.connect(cpu, fpga, LinkKind.DMA)
        machine.attach_fpga_device(fpga)
    for index in range(num_gpus):
        gpu = machine.add_pu(f"gpu{index}", specs.GENERIC_GPU)
        gpu.host_pu = cpu
        machine.connect(cpu, gpu, LinkKind.DMA)
    return machine
