"""FPGA device model: fabric resources, images, programming, DRAM banks.

The model mirrors how the paper's ``runf`` runtime drives a Xilinx
UltraScale+ device:

* the fabric has a fixed budget of LUTs/REGs/BRAMs/DSPs (Table 4);
* a *bitstream image* packs a wrapper (shell) plus one or more kernel
  instances — vectorized sandboxes flush many instances in one image;
* programming = optional erase + load (Fig. 10c timings);
* the FPGA-attached DRAM is split into banks; with *data retention*
  enabled, bank contents survive re-programming (§4.3 zero-copy chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.errors import FaultInjectedError, FpgaResourceError, FpgaStateError
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.sim import Simulator


@dataclass(frozen=True)
class FabricResources:
    """A bundle of FPGA fabric resources."""

    luts: float = 0.0
    regs: float = 0.0
    brams: float = 0.0
    dsps: float = 0.0

    def __add__(self, other: "FabricResources") -> "FabricResources":
        return FabricResources(
            self.luts + other.luts,
            self.regs + other.regs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def scaled(self, count: int) -> "FabricResources":
        """This bundle replicated ``count`` times."""
        return FabricResources(
            self.luts * count, self.regs * count, self.brams * count, self.dsps * count
        )

    def fits_within(self, budget: "FabricResources") -> bool:
        """True if every component is within ``budget``."""
        return (
            self.luts <= budget.luts
            and self.regs <= budget.regs
            and self.brams <= budget.brams
            and self.dsps <= budget.dsps
        )

    def fraction_of(self, budget: "FabricResources") -> dict[str, float]:
        """Utilisation fractions per component."""
        return {
            "luts": self.luts / budget.luts if budget.luts else 0.0,
            "regs": self.regs / budget.regs if budget.regs else 0.0,
            "brams": self.brams / budget.brams if budget.brams else 0.0,
            "dsps": self.dsps / budget.dsps if budget.dsps else 0.0,
        }


#: Fabric totals of one AWS F1 UltraScale+ device (Table 4).
F1_TOTALS = FabricResources(
    luts=config.F1_FABRIC.luts,
    regs=config.F1_FABRIC.regs,
    brams=config.F1_FABRIC.brams,
    dsps=config.F1_FABRIC.dsps,
)

#: Static wrapper (shell) overhead included in every image (§6.4: ~5% LUTs).
WRAPPER_OVERHEAD = FabricResources(
    luts=config.WRAPPER_LUTS,
    regs=config.WRAPPER_REGS,
    brams=config.WRAPPER_BRAMS,
    dsps=config.WRAPPER_DSPS,
)


@dataclass(frozen=True)
class KernelSpec:
    """One compiled FPGA kernel (an HLS/OpenCL function)."""

    name: str
    resources: FabricResources
    #: Execution time of one invocation on the fabric (seconds); may be
    #: a base + per-unit model evaluated by the workload layer.
    exec_time_s: float
    #: DRAM bank demand of one instance (MB).
    dram_mb: float = 64.0


@dataclass
class KernelInstance:
    """One placed instance of a kernel inside an image (a vFPGA slot)."""

    kernel: KernelSpec
    slot: int
    dram_bank: Optional[int] = None


class FpgaImage:
    """A bitstream: wrapper + a vector of kernel instances.

    Built by the vectorized ``create`` interface: ``runf`` packs a whole
    vector of sandboxes into one image so later requests hit a cached
    instance without re-programming (§3.5).
    """

    def __init__(self, name: str, kernels: list[KernelSpec]):
        if not kernels:
            raise FpgaResourceError("an FPGA image needs at least one kernel")
        self.name = name
        self.instances = [
            KernelInstance(kernel=kernel, slot=slot)
            for slot, kernel in enumerate(kernels)
        ]

    @property
    def kernel_names(self) -> list[str]:
        """Names of all packed kernel instances (with duplicates)."""
        return [inst.kernel.name for inst in self.instances]

    def resources(self) -> FabricResources:
        """Total fabric demand: wrapper + every instance."""
        total = WRAPPER_OVERHEAD
        for inst in self.instances:
            total = total + inst.kernel.resources
        return total

    def find_instance(self, kernel_name: str) -> Optional[KernelInstance]:
        """First placed instance of ``kernel_name``, if any."""
        for inst in self.instances:
            if inst.kernel.name == kernel_name:
                return inst
        return None

    def count(self, kernel_name: str) -> int:
        """Number of placed instances of ``kernel_name``."""
        return sum(1 for inst in self.instances if inst.kernel.name == kernel_name)


@dataclass
class DramBank:
    """One FPGA-attached DRAM bank.

    ``payload`` holds the tag of the data currently resident; with data
    retention the payload survives image re-programming, enabling the
    zero-copy function chains of §4.3.
    """

    index: int
    size_mb: float
    payload: Optional[str] = None
    owner_slot: Optional[int] = None


class FpgaDevice:
    """A programmable FPGA attached to a host PU via DMA."""

    def __init__(
        self,
        sim: Simulator,
        pu: ProcessingUnit,
        totals: FabricResources = F1_TOTALS,
        num_dram_banks: int = 4,
        dram_bank_mb: float = 16 * 1024,
        data_retention: bool = True,
        costs: config.FpgaCosts = config.FPGA_COSTS,
    ):
        if pu.kind is not PuKind.FPGA:
            raise FpgaStateError(f"PU {pu.name} is not an FPGA")
        self.sim = sim
        self.pu = pu
        self.totals = totals
        self.costs = costs
        self.data_retention = data_retention
        self.image: Optional[FpgaImage] = None
        #: Partial-reconfiguration regions (None until enabled).
        self.regions: Optional[list[Optional[KernelSpec]]] = None
        #: True when the fabric still holds a stale (unerased) image.
        self.dirty = False
        self.banks = [
            DramBank(index=i, size_mb=dram_bank_mb) for i in range(num_dram_banks)
        ]
        #: Cumulative counts for tests/reports.
        self.erase_count = 0
        self.program_count = 0
        #: Fault injection: the next N ``program`` calls fail after
        #: paying the load time (a corrupted / rejected bitstream).
        self.fail_next_programs = 0

    # -- programming -----------------------------------------------------------

    def check_fits(self, image: FpgaImage) -> None:
        """Raise :class:`FpgaResourceError` if ``image`` exceeds the fabric."""
        demand = image.resources()
        if not demand.fits_within(self.totals):
            raise FpgaResourceError(
                f"image {image.name!r} needs {demand} which exceeds {self.totals}"
            )

    def erase_time(self) -> float:
        """Seconds to erase the current image (zero when already clean)."""
        return self.costs.erase_s if self.dirty else 0.0

    def program(self, image: FpgaImage, erase_first: bool = True):
        """Generator: program ``image``, optionally erasing first.

        Skipping the erase is Molecule's "No-Erase" optimisation
        (Fig. 10c): the incoming bitstream simply replaces the old one.
        With data retention, DRAM bank payloads survive; otherwise they
        are cleared.
        """
        if self.partial_reconfig_enabled:
            raise FpgaStateError(
                "fabric is partitioned into regions; use program_region"
            )
        self.check_fits(image)
        if erase_first and self.dirty:
            yield self.sim.timeout(self.costs.erase_s)
            self.erase_count += 1
            self.dirty = False
        yield self.sim.timeout(self.costs.load_image_s)
        if self.fail_next_programs > 0:
            # The load completed but the bitstream did not come up: the
            # fabric is left without a valid image.
            self.fail_next_programs -= 1
            self.image = None
            self.dirty = True
            raise FaultInjectedError(
                f"bitstream load of {image.name!r} failed"
            )
        self.image = image
        self.dirty = True
        self.program_count += 1
        if not self.data_retention:
            for bank in self.banks:
                bank.payload = None
                bank.owner_slot = None
        return image

    # -- partial reconfiguration ---------------------------------------------------

    def enable_partial_reconfiguration(self, num_regions: int) -> None:
        """Split the fabric into ``num_regions`` reconfigurable regions.

        §3.5: "Even with techniques like partial re-configuration, one
        FPGA can only support very limited regions" — each region gets
        an equal slice of the fabric budget, and only whole regions can
        be reprogrammed.  Mutually exclusive with a loaded full image.
        """
        if num_regions < 1 or num_regions > 8:
            raise FpgaStateError(
                f"partial reconfiguration supports 1-8 regions, got {num_regions}"
            )
        if self.image is not None:
            raise FpgaStateError("cannot partition a fabric holding a full image")
        slice_budget = FabricResources(
            luts=self.totals.luts / num_regions,
            regs=self.totals.regs / num_regions,
            brams=self.totals.brams / num_regions,
            dsps=self.totals.dsps / num_regions,
        )
        self.regions: list[Optional[KernelSpec]] = [None] * num_regions
        self._region_budget = slice_budget

    @property
    def partial_reconfig_enabled(self) -> bool:
        """True once the fabric has been partitioned into regions."""
        return getattr(self, "regions", None) is not None

    def program_region(self, region: int, kernel: KernelSpec):
        """Generator: reprogram ONE region without touching the others.

        Loads only a region-sized bitstream (proportionally faster than
        a full-image load), but the kernel must fit the region's slice
        of the fabric — the scaling limitation the paper contrasts with
        vectorized images.
        """
        if not self.partial_reconfig_enabled:
            raise FpgaStateError("partial reconfiguration is not enabled")
        if not 0 <= region < len(self.regions):
            raise FpgaStateError(f"no region {region}")
        demand = kernel.resources + WRAPPER_OVERHEAD.scaled(1)
        if not demand.fits_within(self._region_budget):
            raise FpgaResourceError(
                f"kernel {kernel.name!r} (+shell) exceeds the region budget"
            )
        yield self.sim.timeout(self.costs.load_image_s / len(self.regions))
        self.regions[region] = kernel
        self.program_count += 1
        return kernel

    def region_kernel_names(self) -> list[Optional[str]]:
        """Resident kernel per region (None for empty regions)."""
        if not self.partial_reconfig_enabled:
            return []
        return [k.name if k else None for k in self.regions]

    # -- DRAM banks --------------------------------------------------------------

    def assign_bank(self, slot: int) -> DramBank:
        """Statically assign a free DRAM bank to an instance slot (§5:
        two instances share a bank only if they never run concurrently)."""
        for bank in self.banks:
            if bank.owner_slot is None or bank.owner_slot == slot:
                bank.owner_slot = slot
                return bank
        raise FpgaStateError("no free DRAM bank for instance")

    def bank_with_payload(self, payload: str) -> Optional[DramBank]:
        """Find the bank currently holding ``payload`` (retention hits)."""
        for bank in self.banks:
            if bank.payload == payload:
                return bank
        return None

    # -- execution ---------------------------------------------------------------

    def invoke(self, kernel_name: str):
        """Generator: execute one invocation of a resident kernel
        (from the full image, or from a reconfigurable region)."""
        if self.partial_reconfig_enabled:
            for kernel in self.regions:
                if kernel is not None and kernel.name == kernel_name:
                    self.pu.clock.mark_busy()
                    yield self.sim.timeout(kernel.exec_time_s)
                    self.pu.clock.mark_idle()
                    return kernel
            raise FpgaStateError(f"kernel {kernel_name!r} is in no region")
        if self.image is None:
            raise FpgaStateError("device is not programmed")
        instance = self.image.find_instance(kernel_name)
        if instance is None:
            raise FpgaStateError(
                f"kernel {kernel_name!r} is not in image {self.image.name!r}"
            )
        self.pu.clock.mark_busy()
        yield self.sim.timeout(instance.kernel.exec_time_s)
        self.pu.clock.mark_idle()
        return instance

    def has_kernel(self, kernel_name: str) -> bool:
        """True if the resident image or a region holds ``kernel_name``."""
        if self.partial_reconfig_enabled:
            return kernel_name in self.region_kernel_names()
        return self.image is not None and self.image.find_instance(kernel_name) is not None
