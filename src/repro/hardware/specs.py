"""Catalog of processing-unit models used by the paper's testbeds.

* ``XEON_8160``       -- host CPU of the CPU-DPU machine (§6: 96 cores, 2.1GHz).
* ``BLUEFIELD1``      -- Mellanox Bluefield-1 DPU (16 ARM cores @ 800MHz).
* ``BLUEFIELD2``      -- Bluefield-2 DPU (ARM cores up to 2.75GHz, Fig. 14d).
* ``ULTRASCALE_PLUS`` -- Xilinx UltraScale+ FPGA of the AWS F1 instance.
* ``GENERIC_GPU``     -- the GPU used by the §6.8 generality study.
* ``DESKTOP_I7``      -- i7-9700 desktop used for the Fig. 11 breakdown.
"""

from __future__ import annotations

from repro import config
from repro.hardware.pu import PriceClass, PuKind, PuSpec

XEON_8160 = PuSpec(
    model="Intel Xeon Platinum 8160",
    kind=PuKind.CPU,
    cores=96,
    freq_ghz=2.1,
    speed=config.SPEED_XEON,
    dram_mb=config.CPU_DRAM_MB,
    reserved_mb=config.CPU_DRAM_RESERVED_MB,
    costs=config.CPU_COSTS,
    price_class=PriceClass.CPU,
)

BLUEFIELD1 = PuSpec(
    model="Mellanox Bluefield-1 DPU",
    kind=PuKind.DPU,
    cores=16,
    freq_ghz=0.8,
    speed=config.SPEED_BF1,
    dram_mb=config.DPU_DRAM_MB,
    reserved_mb=config.DPU_DRAM_RESERVED_MB,
    costs=config.BF1_COSTS,
    price_class=PriceClass.DPU,
)

BLUEFIELD2 = PuSpec(
    model="Nvidia Bluefield-2 DPU",
    kind=PuKind.DPU,
    cores=8,
    freq_ghz=2.75,
    speed=config.SPEED_BF2,
    dram_mb=config.DPU_DRAM_MB,
    reserved_mb=config.DPU_DRAM_RESERVED_MB,
    costs=config.BF2_COSTS,
    price_class=PriceClass.DPU,
)

ULTRASCALE_PLUS = PuSpec(
    model="Xilinx UltraScale+ VU9P (AWS F1)",
    kind=PuKind.FPGA,
    cores=1,  # the device programs one image at a time
    freq_ghz=0.25,
    speed=1.0,  # accelerator work uses explicit kernel timings
    dram_mb=config.FPGA_DRAM_MB,
    reserved_mb=0.0,
    costs=config.CPU_COSTS,  # software side runs on the host
    price_class=PriceClass.FPGA,
)

GENERIC_GPU = PuSpec(
    model="Generic CUDA GPU",
    kind=PuKind.GPU,
    cores=4,  # concurrent kernel contexts (MPS)
    freq_ghz=1.4,
    speed=1.0,
    dram_mb=config.GPU_DRAM_MB,
    reserved_mb=0.0,
    costs=config.CPU_COSTS,
    price_class=PriceClass.GPU,
)

DESKTOP_I7 = PuSpec(
    model="Intel Core i7-9700",
    kind=PuKind.CPU,
    cores=8,
    freq_ghz=3.0,
    speed=config.SPEED_DESKTOP,
    dram_mb=16 * 1024,
    reserved_mb=2 * 1024,
    costs=config.DESKTOP_COSTS,
    price_class=PriceClass.CPU,
)

#: All catalog entries by a short lookup key.
CATALOG = {
    "xeon": XEON_8160,
    "bf1": BLUEFIELD1,
    "bf2": BLUEFIELD2,
    "f1-fpga": ULTRASCALE_PLUS,
    "gpu": GENERIC_GPU,
    "desktop": DESKTOP_I7,
}
