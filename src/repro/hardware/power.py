"""Per-PU power and energy accounting.

§6.6 argues DPUs "promise better energy efficiency" than host CPUs
(and the E3 related work makes the same case for SmartNICs).  This
module attaches a simple two-state power model (idle/busy watts) to
each PU kind and integrates energy from the PUs' utilisation clocks, so
experiments can compare joules-per-request across placements.

Power figures are representative datasheet values, not paper-calibrated
(the paper publishes no energy numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.pu import ProcessingUnit, PuKind


@dataclass(frozen=True)
class PowerSpec:
    """Two-state power model of one PU."""

    idle_watts: float
    busy_watts: float

    def __post_init__(self):
        if self.idle_watts < 0 or self.busy_watts < self.idle_watts:
            raise HardwareError(
                f"invalid power spec: idle={self.idle_watts} busy={self.busy_watts}"
            )


#: Representative board-level figures: a 2-socket Xeon server burns two
#: orders of magnitude more than a Bluefield card.
DEFAULT_POWER = {
    PuKind.CPU: PowerSpec(idle_watts=120.0, busy_watts=330.0),
    PuKind.DPU: PowerSpec(idle_watts=15.0, busy_watts=35.0),
    PuKind.FPGA: PowerSpec(idle_watts=20.0, busy_watts=45.0),
    PuKind.GPU: PowerSpec(idle_watts=40.0, busy_watts=250.0),
}


class EnergyMeter:
    """Integrates a PU's energy from its utilisation clock."""

    def __init__(self, pu: ProcessingUnit, spec: PowerSpec | None = None):
        self.pu = pu
        self.spec = spec or DEFAULT_POWER[pu.kind]
        self._epoch = pu.sim.now
        self._busy_at_epoch = pu.clock.busy_time

    def reset(self) -> None:
        """Restart the measurement window at the current time."""
        self._epoch = self.pu.sim.now
        self._busy_at_epoch = self.pu.clock.busy_time

    @property
    def window_s(self) -> float:
        """Length of the current measurement window."""
        return self.pu.sim.now - self._epoch

    @property
    def busy_s(self) -> float:
        """Busy seconds accumulated inside the window."""
        return self.pu.clock.busy_time - self._busy_at_epoch

    def energy_joules(self) -> float:
        """Energy consumed over the window (idle floor + busy delta)."""
        busy = self.busy_s
        idle = max(0.0, self.window_s - busy)
        return busy * self.spec.busy_watts + idle * self.spec.idle_watts

    def busy_energy_joules(self) -> float:
        """The marginal (above-idle) energy of the busy time only —
        the fair per-request attribution on a shared machine."""
        return self.busy_s * (self.spec.busy_watts - self.spec.idle_watts)


def energy_per_request(meter: EnergyMeter, requests: int) -> float:
    """Marginal joules attributed to each of ``requests`` requests."""
    if requests <= 0:
        raise HardwareError(f"request count must be positive: {requests}")
    return meter.busy_energy_joules() / requests
