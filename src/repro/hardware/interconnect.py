"""Interconnect model: the links between processing units.

Each pair of directly connected PUs is joined by a :class:`Link` with a
kind (RDMA / DMA / host network / loopback), a base latency and a
bandwidth.  The :class:`Interconnect` owns the link graph, computes
routes (including the paper's CPU-intercepted DPU<->FPGA path, §5
"Limitations") and prices transfers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from repro import config
from repro.errors import RoutingError
from repro.hardware.pu import ProcessingUnit


class LinkKind(enum.Enum):
    """Physical transport of a link."""

    LOOPBACK = "loopback"  # same PU, shared memory
    RDMA = "rdma"          # CPU <-> DPU over PCIe (the only exported path, §5)
    DMA = "dma"            # CPU <-> FPGA/GPU over PCIe DMA
    NETWORK = "network"    # host networking (used by baselines)


_LINK_COSTS = {
    LinkKind.LOOPBACK: config.LinkCosts(latency_us=0.0, bandwidth_gbps=100.0),
    LinkKind.RDMA: config.RDMA_LINK,
    LinkKind.DMA: config.DMA_LINK,
    LinkKind.NETWORK: config.NETWORK_LINK,
}


@dataclass(frozen=True)
class Link:
    """A direct connection between two PUs."""

    a: int  # pu_id
    b: int  # pu_id
    kind: LinkKind

    @property
    def costs(self) -> config.LinkCosts:
        """Latency/bandwidth parameters for this link kind."""
        return _LINK_COSTS[self.kind]

    def transfer_time(self, nbytes: int) -> float:
        """Wire time to move ``nbytes`` across this link."""
        costs = self.costs
        return costs.latency_us * config.US + nbytes / (
            costs.bandwidth_gbps * config.GB
        )

    def endpoints(self) -> tuple[int, int]:
        """The two PU ids joined by the link."""
        return (self.a, self.b)


@dataclass(frozen=True)
class DegradedLink(Link):
    """A link operating under an injected degradation fault.

    Latency is multiplied by ``latency_factor`` and bandwidth divided
    by ``bandwidth_factor`` (both >= 1 for a degradation).  Routes
    computed while the fault is active price transfers accordingly.
    """

    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def transfer_time(self, nbytes: int) -> float:
        costs = self.costs
        bandwidth = costs.bandwidth_gbps / self.bandwidth_factor
        return costs.latency_us * self.latency_factor * config.US + nbytes / (
            bandwidth * config.GB
        )


@dataclass(frozen=True)
class Route:
    """A path between two PUs: an ordered list of links.

    ``intercepted_by`` is set when the route bounces through an
    intermediate general-purpose PU (the CPU-intercepted DPU<->FPGA
    path of §5).
    """

    src: int
    dst: int
    links: tuple[Link, ...]
    intercepted_by: Optional[int] = None

    @property
    def hop_count(self) -> int:
        """Number of physical links traversed."""
        return len(self.links)

    def transfer_time(self, nbytes: int) -> float:
        """Total wire time across all hops (store-and-forward)."""
        return sum(link.transfer_time(nbytes) for link in self.links)


class Interconnect:
    """The link graph of one heterogeneous computer."""

    def __init__(self):
        self._links: dict[frozenset[int], Link] = {}
        self._neighbors: dict[int, set[int]] = {}
        #: Active degradation faults: link key -> (latency, bandwidth)
        #: slowdown factors.
        self._degraded: dict[frozenset[int], tuple[float, float]] = {}

    def add_link(self, a: ProcessingUnit, b: ProcessingUnit, kind: LinkKind) -> Link:
        """Directly connect PUs ``a`` and ``b``."""
        key = frozenset((a.pu_id, b.pu_id))
        if len(key) != 2:
            raise RoutingError("cannot link a PU to itself")
        link = Link(a.pu_id, b.pu_id, kind)
        self._links[key] = link
        self._neighbors.setdefault(a.pu_id, set()).add(b.pu_id)
        self._neighbors.setdefault(b.pu_id, set()).add(a.pu_id)
        return link

    def link_between(self, a: int, b: int) -> Optional[Link]:
        """The direct link between two PU ids, if one exists.

        While a degradation fault is active on the link, a
        :class:`DegradedLink` view with the fault's slowdown factors is
        returned instead of the pristine link.
        """
        key = frozenset((a, b))
        link = self._links.get(key)
        if link is None:
            return None
        factors = self._degraded.get(key)
        if factors is None:
            return link
        return DegradedLink(
            link.a, link.b, link.kind,
            latency_factor=factors[0], bandwidth_factor=factors[1],
        )

    def degrade(
        self, a: int, b: int,
        latency_factor: float = 1.0, bandwidth_factor: float = 1.0,
    ) -> None:
        """Put a degradation fault on the direct link between two PUs."""
        key = frozenset((a, b))
        if key not in self._links:
            raise RoutingError(f"no direct link between PU {a} and PU {b}")
        if latency_factor < 1.0 or bandwidth_factor < 1.0:
            raise RoutingError(
                "degradation factors must be >= 1 "
                f"(got {latency_factor}, {bandwidth_factor})"
            )
        self._degraded[key] = (latency_factor, bandwidth_factor)

    def restore(self, a: int, b: int) -> None:
        """Lift the degradation fault from a link (no-op when absent)."""
        self._degraded.pop(frozenset((a, b)), None)

    def neighbors(self, pu_id: int) -> Iterable[int]:
        """PU ids directly connected to ``pu_id``."""
        return sorted(self._neighbors.get(pu_id, ()))

    def route(self, src: int, dst: int) -> Route:
        """Compute the route between two PUs.

        Same PU -> loopback.  Direct link -> one hop.  Otherwise a
        two-hop CPU-intercepted path through a shared neighbour is used
        (matching the prototype's stated limitation); longer paths are
        found by BFS as a fallback.
        """
        if src == dst:
            loop = Link(src, dst, LinkKind.LOOPBACK)
            return Route(src, dst, (loop,))
        direct = self.link_between(src, dst)
        if direct is not None:
            return Route(src, dst, (direct,))
        shared = set(self._neighbors.get(src, ())) & set(self._neighbors.get(dst, ()))
        if shared:
            via = min(shared)
            first = self.link_between(src, via)
            second = self.link_between(via, dst)
            assert first is not None and second is not None
            return Route(src, dst, (first, second), intercepted_by=via)
        path = self._bfs(src, dst)
        if path is None:
            raise RoutingError(f"no route between PU {src} and PU {dst}")
        links = []
        for a, b in zip(path, path[1:]):
            link = self.link_between(a, b)
            assert link is not None
            links.append(link)
        return Route(src, dst, tuple(links), intercepted_by=path[1])

    def _bfs(self, src: int, dst: int) -> Optional[list[int]]:
        frontier = [[src]]
        seen = {src}
        while frontier:
            next_frontier = []
            for path in frontier:
                for neighbor in self.neighbors(path[-1]):
                    if neighbor in seen:
                        continue
                    new_path = path + [neighbor]
                    if neighbor == dst:
                        return new_path
                    seen.add(neighbor)
                    next_frontier.append(new_path)
            frontier = next_frontier
        return None
