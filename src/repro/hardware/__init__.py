"""Hardware model of the heterogeneous computer."""

from repro.hardware.fpga import (
    DramBank,
    F1_TOTALS,
    FabricResources,
    FpgaDevice,
    FpgaImage,
    KernelInstance,
    KernelSpec,
    WRAPPER_OVERHEAD,
)
from repro.hardware.interconnect import Interconnect, Link, LinkKind, Route
from repro.hardware.machine import (
    HeterogeneousComputer,
    build_cpu_dpu_machine,
    build_cpu_fpga_machine,
    build_full_machine,
)
from repro.hardware.power import (
    DEFAULT_POWER,
    EnergyMeter,
    PowerSpec,
    energy_per_request,
)
from repro.hardware.pu import PriceClass, ProcessingUnit, PuKind, PuSpec
from repro.hardware import specs

__all__ = [
    "DEFAULT_POWER",
    "DramBank",
    "EnergyMeter",
    "PowerSpec",
    "energy_per_request",
    "F1_TOTALS",
    "FabricResources",
    "FpgaDevice",
    "FpgaImage",
    "HeterogeneousComputer",
    "Interconnect",
    "KernelInstance",
    "KernelSpec",
    "Link",
    "LinkKind",
    "PriceClass",
    "ProcessingUnit",
    "PuKind",
    "PuSpec",
    "Route",
    "WRAPPER_OVERHEAD",
    "build_cpu_dpu_machine",
    "build_cpu_fpga_machine",
    "build_full_machine",
    "specs",
]
