"""Lightweight span tracing over simulated time.

A :class:`Tracer` records nested spans (request -> startup -> exec ->
comm ...) against the simulation clock, giving experiments and users a
structured timeline of where a request's latency went — the breakdowns
behind Fig. 10/11 style analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.sim import Simulator


class TraceError(ReproError):
    """Invalid span nesting or lifecycle."""


@dataclass
class Span:
    """One named interval of simulated time."""

    name: str
    begin_s: float
    end_s: Optional[float] = None
    parent: Optional["Span"] = None
    children: list["Span"] = field(default_factory=list)
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span length (raises while still open)."""
        if self.end_s is None:
            raise TraceError(f"span {self.name!r} is still open")
        return self.end_s - self.begin_s

    @property
    def open(self) -> bool:
        """True while the span has not been closed."""
        return self.end_s is None

    def self_time_s(self) -> float:
        """Duration not covered by child spans."""
        return self.duration_s - sum(child.duration_s for child in self.children)


class Tracer:
    """Records a tree of spans per logical trace."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def begin(self, name: str, **attributes) -> Span:
        """Open a span nested under the innermost open one."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            begin_s=self.sim.now,
            parent=parent,
            attributes=dict(attributes),
        )
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span; must be the innermost open one."""
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(f"span {span.name!r} is not the innermost open span")
        if span.end_s is not None:
            raise TraceError(f"span {span.name!r} already closed")
        span.end_s = self.sim.now
        self._stack.pop()
        return span

    def span(self, name: str, **attributes) -> "_SpanContext":
        """Context manager form: ``with tracer.span("exec"): ...``."""
        return _SpanContext(self, name, attributes)

    def find(self, name: str) -> list[Span]:
        """All spans with ``name``, depth-first."""
        found = []

        def walk(span):
            if span.name == name:
                found.append(span)
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return found

    def render(self) -> str:
        """An indented text timeline of all closed root spans."""
        lines: list[str] = []

        def walk(span, depth):
            duration = "OPEN" if span.open else f"{span.duration_s * 1e3:9.3f} ms"
            lines.append(f"{'  ' * depth}{span.name:<24} {duration}")
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)


class _SpanContext:
    def __init__(self, tracer: Tracer, name: str, attributes: dict):
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self.tracer.begin(self.name, **self.attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.span is not None
        self.tracer.end(self.span)
