"""ASCII charts: terminal renderings of the paper's figure shapes.

No plotting dependency is available offline, so bar charts and line
series render as text.  Used by the CLI's ``plot`` command and handy in
benchmark output (`pytest -s`).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError


class ChartError(ReproError):
    """Invalid chart input."""


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bars, one per item, scaled to the maximum value."""
    if not data:
        raise ChartError("bar chart needs at least one value")
    values = list(data.values())
    if any(v < 0 for v in values):
        raise ChartError("bar chart values must be non-negative")
    label_width = max(len(str(k)) for k in data)

    def scale(value: float) -> float:
        if log_scale:
            floor = min(v for v in values if v > 0) if any(values) else 1.0
            top = math.log10(max(values) / floor) if max(values) > floor else 1.0
            if value <= 0:
                return 0.0
            return math.log10(value / floor) / top if top else 1.0
        top = max(values)
        return value / top if top else 0.0

    lines = []
    for key, value in data.items():
        bar = "#" * max(1 if value > 0 else 0, round(scale(value) * width))
        lines.append(f"{str(key):<{label_width}}  {bar:<{width}}  {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    width: int = 64,
) -> str:
    """Multiple series as a scatter-of-letters plot.

    Each series is assigned a letter (a, b, c ...) and drawn over a
    shared linear y-axis; a legend follows the canvas.
    """
    if not series:
        raise ChartError("line chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1 or lengths == {0}:
        raise ChartError("all series need the same, non-zero length")
    n_points = lengths.pop()
    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    for index, values in enumerate(series.values()):
        marker = markers[index % len(markers)]
        for i, value in enumerate(values):
            x = round(i * (width - 1) / max(1, n_points - 1))
            y = height - 1 - round((value - low) / span * (height - 1))
            canvas[y][x] = marker
    lines = [f"{high:>10.3g} |" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{low:>10.3g} |" + "".join(canvas[-1]))
    lines.append(" " * 12 + f"x: {x_labels[0]} .. {x_labels[-1]}")
    for index, name in enumerate(series):
        lines.append(f"{' ' * 12}{markers[index % len(markers)]} = {name}")
    return "\n".join(lines)


def speedup_chart(
    cases: Mapping[str, tuple[float, float]],
    width: int = 40,
) -> str:
    """Baseline-vs-ours paired bars with the speedup annotated."""
    if not cases:
        raise ChartError("speedup chart needs at least one case")
    label_width = max(len(k) for k in cases)
    top = max(max(pair) for pair in cases.values())
    lines = []
    for name, (baseline, ours) in cases.items():
        if ours <= 0 or baseline < 0:
            raise ChartError(f"invalid pair for {name!r}")
        base_bar = "#" * max(1, round(baseline / top * width))
        ours_bar = "=" * max(1, round(ours / top * width))
        lines.append(f"{name:<{label_width}}  base {base_bar} {baseline:g}")
        lines.append(
            f"{'':<{label_width}}  ours {ours_bar} {ours:g}  "
            f"({baseline / ours:.2f}x)"
        )
    return "\n".join(lines)
