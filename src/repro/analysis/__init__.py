"""Analysis: statistics, reporting, and the per-figure experiment harness."""

from repro.analysis.report import (
    format_artifact_block,
    format_comparison,
    format_phase_breakdown,
    format_reliability,
    format_start_kinds,
    format_table,
    normalized,
)
from repro.analysis.stats import LatencyStats, LatencySummary, percentile
from repro.analysis.trace import Span, Tracer

__all__ = [
    "LatencyStats",
    "LatencySummary",
    "Span",
    "Tracer",
    "format_artifact_block",
    "format_comparison",
    "format_phase_breakdown",
    "format_reliability",
    "format_start_kinds",
    "format_table",
    "normalized",
    "percentile",
]
