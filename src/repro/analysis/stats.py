"""Latency statistics in the artifact's reporting format."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (the artifact reports 50/75/90/95/99)."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    ordered = sorted(samples)
    if p == 0:
        return ordered[0]
    # The epsilon guards float noise: 99.9/100*1000 evaluates to
    # 999.0000000000001, which must rank as 999, not 1000.
    rank = max(1, math.ceil(p / 100 * len(ordered) - 1e-9))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LatencySummary:
    """avg/p50/p75/p90/p95/p99, matching the artifact's output block."""

    avg: float
    p50: float
    p75: float
    p90: float
    p95: float
    p99: float

    def as_row(self) -> list[float]:
        """Values in artifact column order."""
        return [self.avg, self.p50, self.p75, self.p90, self.p95, self.p99]


class LatencyStats:
    """Accumulates latency samples (seconds by default)."""

    def __init__(self, unit: str = "ms"):
        self.unit = unit
        self._samples: list[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        self._samples.extend(values)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        """All recorded samples (copy)."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def summary(self) -> LatencySummary:
        """The artifact's six-number summary."""
        return LatencySummary(
            avg=self.mean(),
            p50=percentile(self._samples, 50),
            p75=percentile(self._samples, 75),
            p90=percentile(self._samples, 90),
            p95=percentile(self._samples, 95),
            p99=percentile(self._samples, 99),
        )
