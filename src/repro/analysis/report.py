"""Table/series formatting in the style of the paper's artifact output."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.stats import LatencyStats


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_artifact_block(title: str, stats: LatencyStats) -> str:
    """A block matching the artifact's README output::

        =============== fork-startup result ==============
        latency (ms):
        avg     50%     75%     90%     95%     99%
        6.40    5       8       9       9       9
    """
    summary = stats.summary()
    header = f" {title} ".center(50, "=")
    cols = "\t".join(["avg", "50%", "75%", "90%", "95%", "99%"])
    vals = "\t".join(f"{v:.2f}" for v in summary.as_row())
    return f"{header}\nlatency ({stats.unit}):\n{cols}\n{vals}"


def format_comparison(
    title: str,
    rows: Iterable[tuple[str, float, float]],
    value_unit: str = "ms",
) -> str:
    """Baseline-vs-Molecule comparison with speedup column."""
    table_rows = []
    for name, baseline, molecule in rows:
        speedup = baseline / molecule if molecule else float("inf")
        table_rows.append(
            (name, f"{baseline:.2f}", f"{molecule:.2f}", f"{speedup:.2f}x")
        )
    body = format_table(
        ["case", f"baseline ({value_unit})", f"molecule ({value_unit})", "speedup"],
        table_rows,
    )
    return f"== {title} ==\n{body}"


def format_phase_breakdown(snapshot: dict) -> str:
    """Per-phase latency table from a runtime metrics snapshot.

    ``snapshot`` is :meth:`MoleculeRuntime.metrics_snapshot` output; the
    table aggregates ``repro_phase_seconds`` series per lifecycle phase
    (count, mean, p50/p95/p99 in milliseconds).
    """
    family = snapshot["metrics"]["repro_phase_seconds"]
    rows = []
    for series in family["series"]:
        labels = series["labels"]
        mean_ms = series["sum"] / series["count"] * 1e3 if series["count"] else 0.0
        rows.append((
            labels["phase"],
            labels["function"],
            f"{labels['pu_kind']}/{labels['start_kind']}",
            series["count"],
            f"{mean_ms:.3f}",
            f"{series['p50'] * 1e3:.3f}",
            f"{series['p95'] * 1e3:.3f}",
            f"{series['p99'] * 1e3:.3f}",
        ))
    return format_table(
        ["phase", "function", "pu/start", "count",
         "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
    )


def format_start_kinds(snapshot: dict) -> str:
    """Cold/fork/warm start counter table from a metrics snapshot."""
    family = snapshot["metrics"]["repro_starts_total"]
    rows = [
        (series["labels"]["start_kind"], int(series["value"]))
        for series in family["series"]
    ]
    return format_table(["start kind", "count"], rows)


def _family_total(snapshot: dict, name: str) -> float:
    family = snapshot["metrics"].get(name)
    if not family:
        return 0.0
    return sum(series.get("value", 0.0) for series in family["series"])


def format_reliability(snapshot: dict) -> str:
    """Reliability summary from a runtime metrics snapshot: request
    accounting (admitted / answered / dead-lettered), retry and
    degradation rates, and per-PU breaker state."""
    admitted = snapshot.get("requests_admitted", 0)
    answered = _family_total(snapshot, "repro_requests_total")
    dead = snapshot.get("dead_letters", 0)
    retries = _family_total(snapshot, "repro_retries_total")
    degraded = _family_total(snapshot, "repro_degraded_total")
    deadline = _family_total(snapshot, "repro_deadline_exceeded_total")
    faults = _family_total(snapshot, "repro_faults_injected_total")

    def rate(count: float) -> str:
        return f"{count / admitted:.1%}" if admitted else "n/a"

    rows = [
        ("requests admitted", int(admitted), ""),
        ("requests answered", int(answered), rate(answered)),
        ("dead letters", int(dead), rate(dead)),
        ("retries", int(retries), rate(retries)),
        ("degraded to fallback PU", int(degraded), rate(degraded)),
        ("deadline exceeded", int(deadline), rate(deadline)),
        ("faults injected", int(faults), ""),
    ]
    out = [format_table(["reliability", "count", "rate"], rows)]
    breaker = snapshot["metrics"].get("repro_breaker_state")
    if breaker and breaker["series"]:
        state_names = {0: "closed", 1: "half-open", 2: "open", 3: "down"}
        breaker_rows = [
            (
                series["labels"]["pu"],
                state_names.get(int(series["value"]), str(series["value"])),
            )
            for series in breaker["series"]
        ]
        out.append(format_table(["pu", "breaker"], breaker_rows))
    return "\n\n".join(out)


def normalized(values: Sequence[float], reference: float) -> list[float]:
    """Values divided by a reference (the paper's normalized plots)."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [value / reference for value in values]
