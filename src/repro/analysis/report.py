"""Table/series formatting in the style of the paper's artifact output."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.stats import LatencyStats


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_artifact_block(title: str, stats: LatencyStats) -> str:
    """A block matching the artifact's README output::

        =============== fork-startup result ==============
        latency (ms):
        avg     50%     75%     90%     95%     99%
        6.40    5       8       9       9       9
    """
    summary = stats.summary()
    header = f" {title} ".center(50, "=")
    cols = "\t".join(["avg", "50%", "75%", "90%", "95%", "99%"])
    vals = "\t".join(f"{v:.2f}" for v in summary.as_row())
    return f"{header}\nlatency ({stats.unit}):\n{cols}\n{vals}"


def format_comparison(
    title: str,
    rows: Iterable[tuple[str, float, float]],
    value_unit: str = "ms",
) -> str:
    """Baseline-vs-Molecule comparison with speedup column."""
    table_rows = []
    for name, baseline, molecule in rows:
        speedup = baseline / molecule if molecule else float("inf")
        table_rows.append(
            (name, f"{baseline:.2f}", f"{molecule:.2f}", f"{speedup:.2f}x")
        )
    body = format_table(
        ["case", f"baseline ({value_unit})", f"molecule ({value_unit})", "speedup"],
        table_rows,
    )
    return f"== {title} ==\n{body}"


def normalized(values: Sequence[float], reference: float) -> list[float]:
    """Values divided by a reference (the paper's normalized plots)."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [value / reference for value in values]
