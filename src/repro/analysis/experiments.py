"""Experiment harness: one function per figure/table of the paper's
evaluation (§6).  Each returns a structured result carrying both the
measured values and the paper's published reference, so benchmarks and
EXPERIMENTS.md generation share one implementation.

All experiments are deterministic given the default seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import config
from repro.baselines import MoleculeHomo, aws_lambda, openwhisk
from repro.core import Chain, MoleculeRuntime, run_fpga_chain
from repro.core.scheduler import Scheduler
from repro.hardware import (
    FpgaImage,
    build_cpu_dpu_machine,
    build_cpu_fpga_machine,
    build_full_machine,
    specs,
)
from repro.hardware.fpga import F1_TOTALS
from repro.hardware.pu import PuKind
from repro.multios import CpusetLockMode, OsInstance, average_pss_mb, average_rss_mb
from repro.sandbox import FunctionCode, Language, RuncRuntime, RunfRuntime
from repro.sim import Simulator
from repro.workloads import fpga_apps, functionbench, serverlessbench
from repro.xpu import FifoEnd, Permission, ShimCluster, XpucallTransport


def _run(sim: Simulator, generator):
    proc = sim.spawn(generator)
    sim.run()
    return proc.value


# ---------------------------------------------------------------------------
# Figure 2a — DPU for higher density
# ---------------------------------------------------------------------------


@dataclass
class DensityResult:
    """Concurrent-instance density per machine configuration."""

    measured: dict[str, int]
    paper: dict[str, int] = field(
        default_factory=lambda: {"CPU": 1000, "+1 DPU": 1256, "+2 DPU": 1512}
    )


def fig2a_density() -> DensityResult:
    """Fig. 2a: instances of the Python image-processing function that
    fit on the CPU alone, +1 DPU, +2 DPUs."""
    function = functionbench.spec("image_resize").to_function()
    measured = {}
    for label, num_dpus in (("CPU", 0), ("+1 DPU", 1), ("+2 DPU", 2)):
        sim = Simulator()
        machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
        scheduler = Scheduler(machine)
        measured[label] = scheduler.max_density(
            function, [PuKind.CPU, PuKind.DPU]
        )
    return DensityResult(measured=measured)


# ---------------------------------------------------------------------------
# Figure 2b — FPGA for better performance (matrix kernels)
# ---------------------------------------------------------------------------


@dataclass
class MatrixKernelRow:
    """One matrix kernel's CPU-vs-FPGA execution latency."""

    name: str
    cpu_us: float
    fpga_us: float

    @property
    def speedup(self) -> float:
        """CPU/FPGA latency ratio."""
        return self.cpu_us / self.fpga_us


@dataclass
class MatrixResult:
    """Fig. 2b result: per-kernel rows plus the paper band."""
    rows: list[MatrixKernelRow]
    paper_speedup: tuple[float, float] = fpga_apps.PAPER_MATRIX_SPEEDUP


def fig2b_fpga_matrix() -> MatrixResult:
    """Fig. 2b: execute the three matrix kernels on the CPU model and on
    a programmed FPGA device, measuring kernel latency."""
    rows = []
    for function in fpga_apps.matrix_functions():
        sim = Simulator()
        machine = build_cpu_fpga_machine(sim, num_fpgas=1)
        cpu = machine.host_cpu
        device = machine.fpga_device(machine.pu(1))
        cpu_time = function.work.exec_time(cpu)
        _run(sim, device.program(FpgaImage("m", [function.code.kernel])))
        begin = sim.now
        _run(sim, device.invoke(function.code.kernel.name))
        fpga_time = sim.now - begin
        rows.append(
            MatrixKernelRow(
                name=function.name,
                cpu_us=cpu_time / config.US,
                fpga_us=fpga_time / config.US,
            )
        )
    return MatrixResult(rows=rows)


# ---------------------------------------------------------------------------
# Figure 8 — nIPC latency vs Linux FIFO
# ---------------------------------------------------------------------------

FIG8_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)


@dataclass
class NipcResult:
    """Latency series (us) keyed by series name then message size."""

    series: dict[str, dict[int, float]]
    paper_note: str = (
        "paper: nIPC ranges 25-144us; base/MPSC 1.6-2.8x Linux-DPU FIFO; "
        "polling ~25us, better than Linux-DPU, 1.5-3.1x Linux-CPU"
    )


def _measure_local_fifo_us(pu_spec, size: int) -> float:
    from repro.hardware.pu import ProcessingUnit

    sim = Simulator()
    pu = ProcessingUnit(sim, 0, "pu", pu_spec)
    os_instance = OsInstance(sim, pu)
    fifo = os_instance.create_fifo("f")
    done = {}

    def reader(sim):
        yield from fifo.read()
        done["t"] = sim.now

    sim.spawn(reader(sim))
    sim.spawn(fifo.write(b"", size))
    sim.run()
    return done["t"] / config.US


def _measure_nipc_write_us(transport: XpucallTransport, size: int) -> float:
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    cluster = ShimCluster(sim, machine)
    for pu in machine.general_purpose_pus():
        os_instance = OsInstance(sim, pu)
        shim_transport = transport if pu.kind is PuKind.DPU else None
        cluster.install(pu, os_instance, transport=shim_transport)
    reader_group = cluster.register_process(0, name="reader")
    writer_group = cluster.register_process(1, name="writer")
    cpu_shim, dpu_shim = cluster.shim_on(0), cluster.shim_on(1)
    times = {}

    def scenario(sim):
        handle = yield from cpu_shim.xfifo_init(reader_group, "rx", "rx")
        yield from cpu_shim.grant_cap(
            reader_group, writer_group.xpu_pid, handle.fifo.obj_id, Permission.WRITE
        )
        w_handle = yield from dpu_shim.xfifo_connect(writer_group, "rx", FifoEnd.WRITE)
        begin = sim.now
        yield from dpu_shim.xfifo_write(writer_group, w_handle, b"", size)
        times["write"] = sim.now - begin

    _run(sim, scenario(sim))
    return times["write"] / config.US


def fig8_nipc(sizes: Sequence[int] = FIG8_SIZES) -> NipcResult:
    """Fig. 8: nIPC write latency from a DPU caller under the three
    XPUcall transports, against local Linux FIFOs on DPU and CPU."""
    series: dict[str, dict[int, float]] = {
        "nIPC-Base": {},
        "nIPC-MPSC": {},
        "nIPC-Poll": {},
        "Linux (DPU)": {},
        "Linux (CPU)": {},
    }
    transports = {
        "nIPC-Base": XpucallTransport.FIFO,
        "nIPC-MPSC": XpucallTransport.MPSC,
        "nIPC-Poll": XpucallTransport.MPSC_POLL,
    }
    for size in sizes:
        for name, transport in transports.items():
            series[name][size] = _measure_nipc_write_us(transport, size)
        series["Linux (DPU)"][size] = _measure_local_fifo_us(specs.BLUEFIELD1, size)
        series["Linux (CPU)"][size] = _measure_local_fifo_us(specs.XEON_8160, size)
    return NipcResult(series=series)


# ---------------------------------------------------------------------------
# Figure 9 — comparison with commercial systems
# ---------------------------------------------------------------------------


@dataclass
class CommercialRow:
    """One system's startup and communication latency."""
    system: str
    startup_ms: float
    comm_ms: float


@dataclass
class CommercialResult:
    """Fig. 9 result across the four systems."""
    rows: list[CommercialRow]
    paper_note: str = (
        "paper: Molecule 37-46x faster startup and 68-300x faster comm "
        "than OpenWhisk/Lambda; Molecule-homo 5-6x and 4-19x"
    )

    def row(self, system: str) -> CommercialRow:
        """Row by system name."""
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)


def _helloworld():
    return functionbench.FunctionBenchSpec(
        "helloworld", 1.0, 0.0, 0.0, 0.0, 0.0, 0.0
    ).to_function(profiles=(PuKind.CPU, PuKind.DPU))


def fig9_commercial() -> CommercialResult:
    """Fig. 9: helloworld startup latency and single-hop communication
    latency across AWS Lambda, OpenWhisk, Molecule-homo and Molecule."""
    rows = [
        CommercialRow(
            "aws-lambda",
            aws_lambda().mean_startup_ms(),
            aws_lambda().mean_comm_ms(),
        ),
        CommercialRow(
            "openwhisk",
            openwhisk().mean_startup_ms(),
            openwhisk().mean_comm_ms(),
        ),
    ]
    # Molecule-homo: full cold boot; one Express hop for communication.
    homo = MoleculeHomo()
    homo.deploy(_helloworld())
    homo_cold = homo.invoke_now("helloworld")
    two_stage = Chain(
        "pair",
        tuple(
            serverlessbench.alexa_chain().stages[:2]
        ),
    )
    for fn in serverlessbench.alexa_functions():
        homo.deploy(fn)
    homo_chain = homo.run_chain_now(two_stage)
    rows.append(
        CommercialRow(
            "molecule-homo",
            homo_cold.startup_s / config.MS,
            homo_chain.edge_latencies_s[0] / config.MS,
        )
    )
    # Molecule: cfork startup; one direct-connect IPC edge.
    molecule = MoleculeRuntime.create(num_dpus=1)
    molecule.deploy_now(_helloworld())
    for fn in serverlessbench.alexa_functions():
        molecule.deploy_now(fn)
    cold = molecule.invoke_now("helloworld", kind=PuKind.CPU)
    cpu = molecule.machine.host_cpu
    placements = [cpu, cpu]
    molecule.run(molecule.dag.prepare(two_stage, placements))
    chain = molecule.run(molecule.run_chain(two_stage, placements))
    rows.append(
        CommercialRow(
            "molecule",
            cold.startup_s / config.MS,
            chain.edge_latencies_s[0] / config.MS,
        )
    )
    return CommercialResult(rows=rows)


# ---------------------------------------------------------------------------
# Figure 10 — startup latency on CPU, DPU and FPGA
# ---------------------------------------------------------------------------


@dataclass
class StartupRow:
    """Startup latencies of one (PU, language) pair."""
    pu: str
    language: str
    baseline_local_ms: float
    cfork_local_ms: float
    cfork_xpu_ms: float


@dataclass
class FpgaStartupRow:
    """One FPGA startup configuration's latency."""
    configuration: str
    seconds: float


@dataclass
class StartupResult:
    """Fig. 10 result: CPU/DPU rows plus FPGA stages."""
    rows: list[StartupRow]
    fpga_rows: list[FpgaStartupRow]
    paper_note: str = (
        "paper: cfork beats baseline cold boot by >10x; remote cfork adds "
        "1-3ms; FPGA: >20s baseline, 3.8s no-erase, 1.9s warm-image, "
        "53ms warm-sandbox"
    )


def _fn_for(language: Language):
    code = FunctionCode("startup-probe", language=language, memory_mb=60.0)
    from repro.core import FunctionDef, WorkProfile

    return FunctionDef(
        name="startup-probe",
        code=code,
        work=WorkProfile(warm_exec_ms=1.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )


def _measure_startup(pu_spec, language: Language) -> tuple[float, float, float]:
    """(baseline-local, cfork-local, cfork-XPU) in ms on one PU model."""
    function = _fn_for(language)
    # Baseline: full cold boot on the PU.
    homo = MoleculeHomo(pu_spec=pu_spec)
    homo.deploy(function)
    baseline = homo.invoke_now("startup-probe").startup_s / config.MS

    # cfork-local: fork the template directly on the PU.
    sim = Simulator()
    from repro.hardware.pu import ProcessingUnit

    pu = ProcessingUnit(sim, 0, "pu", pu_spec)
    os_instance = OsInstance(sim, pu, cpuset_lock=CpusetLockMode.MUTEX)
    runc = RuncRuntime(sim, os_instance)
    _run(sim, runc.ensure_template(language, dedicated_to=function.code))
    _run(sim, runc.prepare_containers(2))
    begin = sim.now
    _run(sim, runc.cfork("local", function.code))
    cfork_local = (sim.now - begin) / config.MS

    # cfork-XPU: the same fork issued from the host CPU over nIPC.
    sim2 = Simulator()
    machine = build_cpu_dpu_machine(sim2, num_dpus=1)
    # Measure against this PU model in the neighbour slot (kept a DPU
    # so placement still targets it).
    machine.pus[1].spec = dataclasses.replace(pu_spec, kind=PuKind.DPU)
    runtime = MoleculeRuntime(sim2, machine)
    runtime.start()
    remote_fn = dataclasses.replace(function, profiles=(PuKind.DPU,))
    runtime.deploy_now(remote_fn)
    client = runtime.executor_client(1)
    begin = sim2.now
    runtime.run(client.call("cfork", sandbox_id="remote", code=remote_fn.code))
    cfork_xpu = (sim2.now - begin) / config.MS
    return baseline, cfork_local, cfork_xpu


def fig10_startup() -> StartupResult:
    """Fig. 10a/b/c: startup latency on CPU and DPU (Python, Node.js)
    and the four FPGA startup configurations."""
    rows = []
    for pu_name, pu_spec in (("cpu", specs.XEON_8160), ("dpu-bf1", specs.BLUEFIELD1)):
        for language in (Language.PYTHON, Language.NODEJS):
            baseline, local, xpu = _measure_startup(pu_spec, language)
            rows.append(
                StartupRow(
                    pu=pu_name,
                    language=language.value,
                    baseline_local_ms=baseline,
                    cfork_local_ms=local,
                    cfork_xpu_ms=xpu,
                )
            )
    fpga_rows = []
    kernel_fn = fpga_apps.matrix_functions()[2]  # vmult

    def fpga_case(label, dirty, no_erase, pre_created, pre_started):
        sim = Simulator()
        machine = build_cpu_fpga_machine(sim, num_fpgas=1)
        runf = RunfRuntime(sim, machine.fpga_device(machine.pu(1)), no_erase=no_erase)
        if dirty:
            _run(sim, runf.create("old", fpga_apps.matrix_functions()[0].code))
        if pre_created:
            _run(sim, runf.create("probe", kernel_fn.code))
        if pre_started:
            _run(sim, runf.start("probe"))
        begin = sim.now
        if not pre_created:
            _run(sim, runf.create("probe", kernel_fn.code))
        if not pre_started:
            _run(sim, runf.start("probe"))
        _run(sim, runf.invoke("probe", exec_time_s=0.0))
        fpga_rows.append(FpgaStartupRow(label, sim.now - begin))

    fpga_case("baseline (erase+load+prep)", True, False, False, False)
    fpga_case("no-erase", True, True, False, False)
    fpga_case("warm-image", False, True, True, False)
    fpga_case("warm-sandbox", False, True, True, True)
    return StartupResult(rows=rows, fpga_rows=fpga_rows)


# ---------------------------------------------------------------------------
# Figure 11 — cfork breakdown and memory usage
# ---------------------------------------------------------------------------


@dataclass
class CforkBreakdownResult:
    """Fig. 11a result: measured vs published stage costs."""
    measured_ms: dict[str, float]
    paper_ms: dict[str, float] = field(
        default_factory=lambda: {
            "Baseline": 85.55,
            "+Naive cfork": 47.25,
            "+FuncContainer": 30.05,
            "+Cpuset opt": 8.40,
        }
    )


@dataclass
class MemoryCurvesResult:
    """Average RSS/PSS (MB) per concurrency level."""

    instance_counts: list[int]
    baseline_rss: list[float]
    baseline_pss: list[float]
    molecule_rss: list[float]
    molecule_pss: list[float]

    @property
    def pss_saving_at_max(self) -> float:
        """Fractional PSS saving at the largest instance count."""
        return 1 - self.molecule_pss[-1] / self.baseline_pss[-1]


def fig11a_cfork_breakdown() -> CforkBreakdownResult:
    """Fig. 11a: the four cfork optimisation levels on the desktop."""
    probe = FunctionCode("probe", language=Language.PYTHON, memory_mb=60.0)
    from repro.hardware.pu import ProcessingUnit

    measured = {}

    def setup(lock):
        sim = Simulator()
        pu = ProcessingUnit(sim, 0, "desktop", specs.DESKTOP_I7)
        os_instance = OsInstance(sim, pu, cpuset_lock=lock)
        return sim, RuncRuntime(sim, os_instance)

    sim, runc = setup(CpusetLockMode.SEMAPHORE)
    _run(sim, runc.create("b", probe))
    begin = sim.now
    # Measure create+start as one cold boot.
    sim2, runc2 = setup(CpusetLockMode.SEMAPHORE)
    _run(sim2, runc2.create("b", probe))
    _run(sim2, runc2.start("b"))
    measured["Baseline"] = sim2.now / config.MS

    sim3, runc3 = setup(CpusetLockMode.SEMAPHORE)
    _run(sim3, runc3.ensure_template(Language.PYTHON, dedicated_to=probe))
    begin = sim3.now
    _run(sim3, runc3.cfork("naive", probe))
    measured["+Naive cfork"] = (sim3.now - begin) / config.MS

    sim4, runc4 = setup(CpusetLockMode.SEMAPHORE)
    _run(sim4, runc4.ensure_template(Language.PYTHON, dedicated_to=probe))
    _run(sim4, runc4.prepare_containers(1))
    begin = sim4.now
    _run(sim4, runc4.cfork("pooled", probe))
    measured["+FuncContainer"] = (sim4.now - begin) / config.MS

    sim5, runc5 = setup(CpusetLockMode.MUTEX)
    _run(sim5, runc5.ensure_template(Language.PYTHON, dedicated_to=probe))
    _run(sim5, runc5.prepare_containers(1))
    begin = sim5.now
    _run(sim5, runc5.cfork("opt", probe))
    measured["+Cpuset opt"] = (sim5.now - begin) / config.MS
    return CforkBreakdownResult(measured_ms=measured)


def fig11bc_memory(instance_counts: Sequence[int] = (1, 2, 4, 8, 16)) -> MemoryCurvesResult:
    """Fig. 11b/c: average RSS and PSS of image-resize instances under
    baseline boot vs Molecule cfork."""
    probe = FunctionCode("image_resize", language=Language.PYTHON, memory_mb=60.0)
    from repro.hardware.pu import ProcessingUnit

    baseline_rss, baseline_pss, molecule_rss, molecule_pss = [], [], [], []
    for count in instance_counts:
        sim = Simulator()
        pu = ProcessingUnit(sim, 0, "pu", specs.XEON_8160)
        runc = RuncRuntime(sim, OsInstance(sim, pu))
        processes = []
        for i in range(count):
            _run(sim, runc.create(f"b{i}", probe))
            processes.append(_run(sim, runc.start(f"b{i}")).backend.process)
        baseline_rss.append(average_rss_mb(processes))
        baseline_pss.append(average_pss_mb(processes))

        sim2 = Simulator()
        pu2 = ProcessingUnit(sim2, 0, "pu", specs.XEON_8160)
        runc2 = RuncRuntime(sim2, OsInstance(sim2, pu2))
        _run(sim2, runc2.ensure_template(Language.PYTHON, dedicated_to=probe))
        children = []
        for i in range(count):
            children.append(
                _run(sim2, runc2.cfork(f"m{i}", probe)).backend.process
            )
        molecule_rss.append(average_rss_mb(children))
        molecule_pss.append(average_pss_mb(children))
    return MemoryCurvesResult(
        instance_counts=list(instance_counts),
        baseline_rss=baseline_rss,
        baseline_pss=baseline_pss,
        molecule_rss=molecule_rss,
        molecule_pss=molecule_pss,
    )


# ---------------------------------------------------------------------------
# Figure 12 — DAG communication latency (Alexa edges)
# ---------------------------------------------------------------------------


@dataclass
class DagCommCase:
    """Per-edge baseline/Molecule latency for one placement case."""

    case: str
    edge_names: list[str]
    baseline_ms: list[float]
    molecule_ms: list[float]

    @property
    def speedups(self) -> list[float]:
        """Per-edge baseline/Molecule ratios."""
        return [b / m for b, m in zip(self.baseline_ms, self.molecule_ms)]


@dataclass
class DagCommResult:
    """Fig. 12 result across the four placement cases."""
    cases: list[DagCommCase]
    paper_note: str = "paper: 15-18x same-PU, 10-13x cross-PU improvement"

    def case(self, name: str) -> DagCommCase:
        """Case by name."""
        for case in self.cases:
            if case.case == name:
                return case
        raise KeyError(name)


def fig12_dag_comm() -> DagCommResult:
    """Fig. 12: the four Alexa DAG edges under four placement cases."""
    chain = serverlessbench.alexa_chain()
    edge_names = list(serverlessbench.ALEXA_EDGE_NAMES)
    cases = []

    def molecule_edges(placements_of) -> list[float]:
        molecule = MoleculeRuntime.create(num_dpus=1)
        for fn in serverlessbench.alexa_functions():
            molecule.deploy_now(fn)
        cpu = molecule.machine.host_cpu
        dpu = molecule.machine.pu(1)
        placements = [cpu if p == "cpu" else dpu for p in placements_of]
        molecule.run(molecule.dag.prepare(chain, placements))
        result = molecule.run(molecule.run_chain(chain, placements))
        return [edge / config.MS for edge in result.edge_latencies_s]

    def homo_edges(pu_spec) -> list[float]:
        homo = MoleculeHomo(pu_spec=pu_spec)
        for fn in serverlessbench.alexa_functions():
            homo.deploy(fn)
        result = homo.run_chain_now(chain)
        return [edge / config.MS for edge in result.edge_latencies_s]

    def homo_cross_edges() -> list[float]:
        homo = MoleculeHomo()
        for fn in serverlessbench.alexa_functions():
            homo.deploy(fn)
        result = homo.run_chain_now(chain, cross_pu_edges=[True] * 4)
        return [edge / config.MS for edge in result.edge_latencies_s]

    cases.append(
        DagCommCase("CPU to CPU", edge_names, homo_edges(specs.XEON_8160),
                    molecule_edges(["cpu"] * 5))
    )
    cases.append(
        DagCommCase("DPU to DPU", edge_names, homo_edges(specs.BLUEFIELD1),
                    molecule_edges(["dpu"] * 5))
    )
    cross_molecule = molecule_edges(["cpu", "dpu", "cpu", "dpu", "cpu"])
    cross_baseline = homo_cross_edges()
    cases.append(
        DagCommCase(
            "CPU to DPU",
            [edge_names[0], edge_names[2]],
            [cross_baseline[0], cross_baseline[2]],
            [cross_molecule[0], cross_molecule[2]],
        )
    )
    cases.append(
        DagCommCase(
            "DPU to CPU",
            [edge_names[1], edge_names[3]],
            [cross_baseline[1], cross_baseline[3]],
            [cross_molecule[1], cross_molecule[3]],
        )
    )
    return DagCommResult(cases=cases)


# ---------------------------------------------------------------------------
# Figure 13 — FPGA function-chain latency
# ---------------------------------------------------------------------------


@dataclass
class FpgaChainResult:
    """End-to-end latency (us) per chain length and transfer mode."""

    lengths: list[int]
    copying_us: list[float]
    shm_us: list[float]

    @property
    def speedup_at_max(self) -> float:
        """copying/shm ratio at the longest chain."""
        return self.copying_us[-1] / self.shm_us[-1]


def fig13_fpga_chain(max_length: int = 5) -> FpgaChainResult:
    """Fig. 13: vector-computation chains of 1-5 FPGA functions with
    per-hop copying vs shared-memory data retention."""
    lengths = list(range(1, max_length + 1))
    copying_us, shm_us = [], []
    for n in lengths:
        for mode, out in (("copying", copying_us), ("shm", shm_us)):
            sim = Simulator()
            machine = build_cpu_fpga_machine(sim, num_fpgas=1)
            runf = RunfRuntime(sim, machine.fpga_device(machine.pu(1)))
            kernels = fpga_apps.vector_chain_kernels(n)
            entries = [
                (f"s{i}", FunctionCode(k.name, kernel=k))
                for i, k in enumerate(kernels)
            ]

            def setup(sim, entries=entries):
                yield from runf.create_vector(entries)
                for sid, _ in entries:
                    yield from runf.start(sid)

            _run(sim, setup(sim))
            total = _run(
                sim,
                run_fpga_chain(runf, [sid for sid, _ in entries], mode=mode),
            )
            out.append(total / config.US)
    return FpgaChainResult(lengths=lengths, copying_us=copying_us, shm_us=shm_us)


# ---------------------------------------------------------------------------
# Figure 14a-d — FunctionBench end-to-end latency
# ---------------------------------------------------------------------------


@dataclass
class FunctionBenchRow:
    """One workload's baseline/Molecule latencies."""
    workload: str
    baseline_ms: float
    molecule_ms: float
    paper_baseline_ms: float

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.molecule_ms


@dataclass
class FunctionBenchResult:
    """Fig. 14a-d result for one variant."""
    variant: str
    rows: list[FunctionBenchRow]

    def row(self, workload: str) -> FunctionBenchRow:
        """Row by workload name."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)


_FB_VARIANTS = {
    "cold_cpu": (specs.XEON_8160, PuKind.CPU, True),
    "warm_cpu": (specs.XEON_8160, PuKind.CPU, False),
    "cold_bf1": (specs.BLUEFIELD1, PuKind.DPU, True),
    "cold_bf2": (specs.BLUEFIELD2, PuKind.DPU, True),
}


def fig14_functionbench(variant: str = "cold_cpu") -> FunctionBenchResult:
    """Fig. 14a-d: the eight FunctionBench workloads end to end, as
    baseline (Molecule-homo) vs Molecule, per variant."""
    if variant not in _FB_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; use one of {sorted(_FB_VARIANTS)}")
    pu_spec, kind, cold = _FB_VARIANTS[variant]
    rows = []
    for workload in functionbench.FUNCTIONBENCH:
        function = workload.to_function()
        homo = MoleculeHomo(pu_spec=pu_spec)
        homo.deploy(function)
        if cold:
            baseline = homo.invoke_now(function.name, force_cold=True)
        else:
            homo.invoke_now(function.name)
            baseline = homo.invoke_now(function.name)

        if kind is PuKind.DPU:
            sim = Simulator()
            machine = build_cpu_dpu_machine(sim, num_dpus=1)
            machine.pus[1].spec = pu_spec
            molecule = MoleculeRuntime(sim, machine)
            molecule.start()
        else:
            molecule = MoleculeRuntime.create(num_dpus=0)
        molecule.deploy_now(function)
        if cold:
            result = molecule.invoke_now(function.name, kind=kind, force_cold=True)
        else:
            molecule.invoke_now(function.name, kind=kind)
            result = molecule.invoke_now(function.name, kind=kind)
        paper = {
            "cold_cpu": workload.paper_cold_cpu_ms,
            "warm_cpu": workload.warm_ms,
            "cold_bf1": workload.paper_cold_bf1_ms,
            "cold_bf2": workload.paper_cold_bf2_ms,
        }[variant]
        rows.append(
            FunctionBenchRow(
                workload=workload.name,
                baseline_ms=baseline.total_s / config.MS,
                molecule_ms=result.total_s / config.MS,
                paper_baseline_ms=paper,
            )
        )
    return FunctionBenchResult(variant=variant, rows=rows)


# ---------------------------------------------------------------------------
# Figure 14e — chained applications
# ---------------------------------------------------------------------------


@dataclass
class ChainCaseRow:
    """One (application, placement case) end-to-end pair."""
    application: str
    case: str
    baseline_ms: float
    molecule_ms: float

    @property
    def speedup(self) -> float:
        return self.baseline_ms / self.molecule_ms


@dataclass
class ChainAppsResult:
    """Fig. 14e result across applications and cases."""
    rows: list[ChainCaseRow]
    paper_note: str = (
        "paper: Alexa 2.04-2.47x, MapReduce 3.70-4.47x less latency; "
        "baseline Alexa CPU 38.6ms, MapReduce CPU 20.0ms"
    )

    def row(self, application: str, case: str) -> ChainCaseRow:
        """Row by application and case."""
        for row in self.rows:
            if row.application == application and row.case == case:
                return row
        raise KeyError((application, case))


def fig14e_chains() -> ChainAppsResult:
    """Fig. 14e: Alexa and MapReduce end to end on CPU, DPU and
    cross-PU placements (pre-booted instances)."""
    apps = (
        ("alexa", serverlessbench.alexa_chain(), serverlessbench.alexa_functions),
        (
            "mapreduce",
            serverlessbench.mapreduce_chain(),
            serverlessbench.mapreduce_functions,
        ),
    )
    rows = []
    for app_name, chain, functions_of in apps:
        n = len(chain.stages)
        for case in ("CPU", "DPU", "CrossPU"):
            molecule = MoleculeRuntime.create(num_dpus=1)
            for fn in functions_of():
                molecule.deploy_now(fn)
            cpu = molecule.machine.host_cpu
            dpu = molecule.machine.pu(1)
            if case == "CPU":
                placements = [cpu] * n
            elif case == "DPU":
                placements = [dpu] * n
            else:
                placements = [cpu if i % 2 == 0 else dpu for i in range(n)]
            molecule.run(molecule.dag.prepare(chain, placements))
            molecule_result = molecule.run(molecule.run_chain(chain, placements))

            if case == "CrossPU":
                baseline_ms = _baseline_cross_chain_ms(chain, functions_of(), placements)
            else:
                pu_spec = specs.XEON_8160 if case == "CPU" else specs.BLUEFIELD1
                homo = MoleculeHomo(pu_spec=pu_spec)
                for fn in functions_of():
                    homo.deploy(fn)
                baseline_ms = homo.run_chain_now(chain).total_s / config.MS
            rows.append(
                ChainCaseRow(
                    application=app_name,
                    case=case,
                    baseline_ms=baseline_ms,
                    molecule_ms=molecule_result.total_s / config.MS,
                )
            )
    return ChainAppsResult(rows=rows)


def _baseline_cross_chain_ms(chain, functions, placements) -> float:
    """Analytic baseline for the CrossPU case: per-stage execution on
    its placement plus a gateway/network hop per (always cross-PU) edge."""
    by_name = {fn.name: fn for fn in functions}
    total_ms = 0.0
    for i, stage in enumerate(chain.stages):
        function = by_name[stage.function]
        total_ms += function.work.exec_time(placements[i]) / config.MS
        if i < len(chain.stages) - 1:
            total_ms += config.BASELINE_DAG.cross_pu_hop_ms
            total_ms += (
                stage.payload_out_bytes / config.KB
            ) * config.BASELINE_DAG.payload_ms_per_kb
    return total_ms


# ---------------------------------------------------------------------------
# Figure 14f/g/h — FPGA applications
# ---------------------------------------------------------------------------


@dataclass
class AcceleratedSweepResult:
    """CPU-vs-FPGA end-to-end latency over an input sweep."""

    application: str
    inputs: list[float]
    cpu_ms: list[float]
    fpga_ms: list[float]

    def speedup_at(self, index: int) -> float:
        """CPU/FPGA ratio at one swept input."""
        return self.cpu_ms[index] / self.fpga_ms[index]

    @property
    def crossover_input(self) -> Optional[float]:
        """First input where the FPGA wins, if any."""
        for value, cpu, fpga in zip(self.inputs, self.cpu_ms, self.fpga_ms):
            if fpga < cpu:
                return value
        return None


def _accelerated_sweep(
    application,
    function,
    inputs,
    cpu_model_ms,
    fpga_model_ms,
    full_path: bool = True,
    payload_bytes: int = 4096,
):
    """CPU-vs-FPGA sweep.

    ``full_path=True`` runs whole serverless requests (gateway + warm
    instance + DMA), appropriate for the seconds-scale GZip figure;
    ``full_path=False`` measures function execution only (kernel + DMA),
    matching how the paper reports the millisecond-scale AML and matrix
    applications.
    """
    sim = Simulator()
    machine = build_cpu_fpga_machine(sim, num_fpgas=1)
    molecule = MoleculeRuntime(sim, machine)
    molecule.start()
    molecule.deploy_now(function)
    homo = MoleculeHomo()
    homo.deploy(function)
    homo.invoke_now(function.name)  # warm the baseline instance
    molecule.invoke_now(function.name, kind=PuKind.FPGA)  # program + warm
    fpga_pu = machine.pu(1)
    device = machine.fpga_device(fpga_pu)
    route = machine.route(machine.host_cpu, fpga_pu)
    cpu_ms, fpga_ms = [], []
    for value in inputs:
        if full_path:
            cpu_result = homo.invoke_now(
                function.name, exec_time_s=cpu_model_ms(value) * config.MS
            )
            fpga_result = molecule.invoke_now(
                function.name,
                kind=PuKind.FPGA,
                exec_time_s=fpga_model_ms(value) * config.MS,
            )
            cpu_ms.append(cpu_result.total_s / config.MS)
            fpga_ms.append(fpga_result.total_s / config.MS)
        else:
            cpu_ms.append(cpu_model_ms(value))
            dma = route.transfer_time(payload_bytes) + machine.host_cpu.copy_time(
                payload_bytes
            )
            begin = sim.now

            def run_kernel(sim, exec_s=fpga_model_ms(value) * config.MS, dma=dma):
                yield sim.timeout(dma)  # arguments in
                device.pu.clock.mark_busy()
                yield sim.timeout(exec_s)
                device.pu.clock.mark_idle()
                yield sim.timeout(dma)  # results out

            _run(sim, run_kernel(sim))
            fpga_ms.append((sim.now - begin) / config.MS)
    return AcceleratedSweepResult(
        application=application,
        inputs=list(inputs),
        cpu_ms=cpu_ms,
        fpga_ms=fpga_ms,
    )


GZIP_SIZES_MB = (0.001, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 112.0)


def fig14f_gzip(sizes_mb: Sequence[float] = GZIP_SIZES_MB) -> AcceleratedSweepResult:
    """Fig. 14f: GZip over file sizes from 1KB to the 112MB Linux tree."""
    return _accelerated_sweep(
        "gzip",
        fpga_apps.gzip_function(),
        sizes_mb,
        fpga_apps.gzip_cpu_ms,
        fpga_apps.gzip_fpga_ms,
    )


AML_ENTRIES = (6_000, 60_000, 600_000, 6_000_000)


def fig14g_aml(entries: Sequence[int] = AML_ENTRIES) -> AcceleratedSweepResult:
    """Fig. 14g: Anti-MoneyL over transaction-entry counts 6K-6M
    (execution latency, as the paper's ms-scale axis implies)."""
    return _accelerated_sweep(
        "anti_moneyl",
        fpga_apps.aml_function(),
        entries,
        fpga_apps.aml_cpu_ms,
        fpga_apps.aml_fpga_ms,
        full_path=False,
    )


def fig14h_matrix() -> AcceleratedSweepResult:
    """Fig. 14h: the matrix-computation application (CPU 2.6ms, FPGA
    ~2.8x lower)."""
    function = fpga_apps.matrix_functions()[1]  # madd-based app
    return _accelerated_sweep(
        "matrix-comput",
        dataclasses.replace(function, name="matrix_comput",
                            code=dataclasses.replace(function.code, func_id="matrix_comput")),
        [1.0],
        lambda _x: fpga_apps.MATRIX_COMPUT_CPU_MS,
        lambda _x: fpga_apps.MATRIX_COMPUT_FPGA_MS,
        full_path=False,
        payload_bytes=1024,
    )


# ---------------------------------------------------------------------------
# Table 4 — FPGA resource utilisation
# ---------------------------------------------------------------------------


@dataclass
class FpgaResourceResult:
    """Table 4 result: wrapper demand vs device totals."""
    wrapper: dict[str, float]
    totals: dict[str, float]
    fractions: dict[str, float]
    paper_wrapper: dict[str, float] = field(
        default_factory=lambda: dict(fpga_apps.PAPER_TABLE4_WRAPPER)
    )
    paper_fractions: dict[str, float] = field(
        default_factory=lambda: dict(fpga_apps.PAPER_TABLE4_FRACTIONS)
    )


def table4_fpga_resources() -> FpgaResourceResult:
    """Table 4: the 12-instance wrapper's fabric utilisation on F1."""
    kernels = []
    for name in ("madd", "mmult", "mscale"):
        kernels.extend([fpga_apps.matrix_kernel(name)] * 4)
    image = FpgaImage("table4", kernels)
    demand = image.resources()
    fractions = demand.fraction_of(F1_TOTALS)
    return FpgaResourceResult(
        wrapper={
            "luts": demand.luts,
            "regs": demand.regs,
            "brams": demand.brams,
            "dsps": demand.dsps,
        },
        totals={
            "luts": F1_TOTALS.luts,
            "regs": F1_TOTALS.regs,
            "brams": F1_TOTALS.brams,
            "dsps": F1_TOTALS.dsps,
        },
        fractions=fractions,
    )


# ---------------------------------------------------------------------------
# Table 1 / Table 5 / Figure 15 — support matrix & design space
# ---------------------------------------------------------------------------


def table5_generality() -> dict[str, dict[str, object]]:
    """Table 5: the per-PU support matrix on a full machine."""
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=1, num_fpgas=1, num_gpus=1)
    runtime = MoleculeRuntime(sim, machine)
    return runtime.support_matrix()


@dataclass
class DesignSpacePoint:
    """One system's position in the Fig. 15 design space."""
    system: str
    startup_class: str  # slow (>1s) | fast (~50ms) | extreme (<=10ms)
    same_pu_comm: str   # network | ipc | thread
    cross_pu_comm: str  # network | nipc | n/a


def fig15_design_space() -> list[DesignSpacePoint]:
    """Fig. 15: where the systems sit in the startup/communication
    design space; Molecule is the only one extreme on both axes with a
    cross-PU story."""
    return [
        DesignSpacePoint("openwhisk", "slow", "network", "network"),
        DesignSpacePoint("docker", "slow", "network", "network"),
        DesignSpacePoint("kata-containers", "slow", "network", "network"),
        DesignSpacePoint("gvisor", "fast", "network", "network"),
        DesignSpacePoint("firecracker", "fast", "network", "network"),
        DesignSpacePoint("sock", "fast", "network", "network"),
        DesignSpacePoint("replayable", "fast", "network", "network"),
        DesignSpacePoint("nightcore", "fast", "ipc", "network"),
        DesignSpacePoint("catalyzer", "extreme", "network", "network"),
        DesignSpacePoint("faasm", "extreme", "thread", "network"),
        DesignSpacePoint("faastlane", "extreme", "thread", "network"),
        DesignSpacePoint("molecule", "extreme", "ipc", "nipc"),
    ]
