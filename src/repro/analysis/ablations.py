"""Ablation studies of Molecule's design choices.

Beyond the paper's headline figures, these isolate the contribution of
each mechanism:

* XPUcall transport (Fig. 7 a/b/c) per PU model;
* state synchronisation strategy (static partition / immediate / lazy);
* keep-alive pool capacity vs cache hit rate and mean latency;
* direct-connect DAG calls vs a bus-mediated design (SAND/Nightcore
  style relay through an intermediary process).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import config
from repro.core import MoleculeRuntime
from repro.hardware import build_cpu_dpu_machine, specs
from repro.hardware.pu import ProcessingUnit, PuKind
from repro.sim import Simulator
from repro.workloads import functionbench, serverlessbench
from repro.xpu import ShimCluster, XpucallTransport
from repro.xpu.sync import SyncManager


# ---------------------------------------------------------------------------
# XPUcall transport ablation (Fig. 7)
# ---------------------------------------------------------------------------


@dataclass
class TransportAblationRow:
    """One (PU, transport) round-trip measurement."""
    pu: str
    transport: str
    round_trip_us: float


def xpucall_transport_ablation() -> list[TransportAblationRow]:
    """Round-trip overhead of each transport on CPU, BF-1 and BF-2."""
    sim = Simulator()
    rows = []
    models = (
        ("cpu", specs.XEON_8160),
        ("bf1", specs.BLUEFIELD1),
        ("bf2", specs.BLUEFIELD2),
    )
    for index, (name, spec) in enumerate(models):
        pu = ProcessingUnit(sim, index, name, spec)
        for transport in XpucallTransport:
            rows.append(
                TransportAblationRow(
                    pu=name,
                    transport=transport.value,
                    round_trip_us=transport.round_trip_time(pu) / config.US,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Synchronisation strategy ablation (§5)
# ---------------------------------------------------------------------------


@dataclass
class SyncAblationResult:
    """Cost of one state update under each strategy (us), and what an
    all-immediate design would pay for process creation."""

    static_partition_us: float
    immediate_us: float
    lazy_us: float
    #: Immediate rounds a 100-process boot would need without static
    #: partitioning (it needs zero with it).
    avoided_rounds_for_100_processes: int = 100


def sync_strategy_ablation(num_dpus: int = 2) -> SyncAblationResult:
    """Compare the three §5 strategies on a CPU+N-DPU machine."""
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=num_dpus)
    sync = SyncManager(sim, machine)
    immediate_us = sync.immediate_sync_time(origin_pu_id=0) / config.US

    # Lazy: the local apply is free; propagation is batched off the
    # critical path.
    begin = sim.now
    sync.lazy(lambda: None)
    lazy_us = (sim.now - begin) / config.US

    return SyncAblationResult(
        static_partition_us=0.0,
        immediate_us=immediate_us,
        lazy_us=lazy_us,
    )


# ---------------------------------------------------------------------------
# Keep-alive capacity ablation (§4.2 / FaasCache discussion)
# ---------------------------------------------------------------------------


@dataclass
class KeepAliveRow:
    """Hit rate and mean latency at one pool capacity."""
    pool_capacity: int
    hit_rate: float
    mean_latency_ms: float


def keepalive_ablation(
    capacities: Sequence[int] = (1, 2, 4, 8),
    functions_count: int = 4,
    rounds: int = 6,
) -> list[KeepAliveRow]:
    """Round-robin ``functions_count`` functions over pools of varying
    capacity; small pools thrash (cold starts), large pools stay warm."""
    rows = []
    for capacity in capacities:
        runtime = MoleculeRuntime.create(num_dpus=0, warm_pool_capacity=capacity)
        names = []
        for index in range(functions_count):
            spec = functionbench.spec("image_resize")
            function = spec.to_function(profiles=(PuKind.CPU,))
            import dataclasses

            function = dataclasses.replace(
                function,
                name=f"fn{index}",
                code=dataclasses.replace(function.code, func_id=f"fn{index}"),
            )
            runtime.deploy_now(function)
            names.append(function.name)
        latencies = []
        for _round in range(rounds):
            for name in names:
                result = runtime.invoke_now(name)
                latencies.append(result.total_s / config.MS)
        pool = runtime.invoker.pools[0]
        rows.append(
            KeepAliveRow(
                pool_capacity=capacity,
                hit_rate=pool.hit_rate,
                mean_latency_ms=sum(latencies) / len(latencies),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Direct-connect vs bus-mediated DAG ablation (§4.3)
# ---------------------------------------------------------------------------


@dataclass
class DagDesignResult:
    """Direct-connect vs bus-mediated chain totals."""
    direct_total_ms: float
    bus_total_ms: float

    @property
    def improvement(self) -> float:
        """How much slower the bus design is."""
        return self.bus_total_ms / self.direct_total_ms


@dataclass
class EnergyRow:
    """One PU's latency and marginal energy per request."""
    pu: str
    latency_ms: float
    marginal_joules: float


def energy_ablation(work_ref_ms: float = 16.0, requests: int = 100) -> list[EnergyRow]:
    """Joules-per-request across PU models (§6.6: DPUs promise better
    energy efficiency despite longer runtimes)."""
    from repro.hardware.power import EnergyMeter, energy_per_request

    rows = []
    for name, spec in (
        ("cpu-xeon", specs.XEON_8160),
        ("dpu-bf1", specs.BLUEFIELD1),
        ("dpu-bf2", specs.BLUEFIELD2),
    ):
        sim = Simulator()
        pu = ProcessingUnit(sim, 0, name, spec)
        meter = EnergyMeter(pu)
        duration = pu.compute_time(work_ref_ms * config.MS)

        def serve(sim, duration=duration):
            for _ in range(requests):
                pu.clock.mark_busy()
                yield sim.timeout(duration)
                pu.clock.mark_idle()

        sim.spawn(serve(sim))
        sim.run()
        rows.append(
            EnergyRow(
                pu=name,
                latency_ms=duration / config.MS,
                marginal_joules=energy_per_request(meter, requests),
            )
        )
    return rows


@dataclass
class StartupDesignRow:
    """One startup mechanism's latency and Fig. 15 class."""
    mechanism: str
    startup_ms: float
    design_class: str  # extreme | fast | slow  (Fig. 15 bands)


def startup_design_ablation() -> list[StartupDesignRow]:
    """Cold boot vs snapshot restore vs cfork on the reference CPU —
    the startup axis of Fig. 15."""
    from repro.multios import CpusetLockMode, OsInstance
    from repro.sandbox import FunctionCode, Language, RuncRuntime
    from repro.sandbox.snapshot import SnapshotManager

    probe = FunctionCode("probe", language=Language.PYTHON, memory_mb=60.0)

    def classify(ms: float) -> str:
        if ms <= 20.0:
            return "extreme"
        if ms <= 120.0:
            return "fast"
        return "slow"

    def setup():
        sim = Simulator()
        pu = ProcessingUnit(sim, 0, "cpu", specs.XEON_8160)
        os_instance = OsInstance(sim, pu, cpuset_lock=CpusetLockMode.MUTEX)
        return sim, RuncRuntime(sim, os_instance)

    def run(sim, gen):
        proc = sim.spawn(gen)
        sim.run()
        return proc.value

    rows = []
    sim, runc = setup()
    begin = sim.now
    run(sim, runc.create("cold", probe))
    run(sim, runc.start("cold"))
    ms = (sim.now - begin) / config.MS
    rows.append(StartupDesignRow("cold boot (docker-style)", ms, classify(ms)))

    sim, runc = setup()
    snap = SnapshotManager(runc)
    run(sim, runc.create("warm", probe))
    run(sim, runc.start("warm"))
    run(sim, snap.checkpoint("warm"))
    begin = sim.now
    run(sim, snap.restore("r", probe))
    ms = (sim.now - begin) / config.MS
    rows.append(StartupDesignRow("snapshot restore (replayable-style)", ms, classify(ms)))

    sim, runc = setup()
    run(sim, runc.ensure_template(Language.PYTHON, dedicated_to=probe))
    run(sim, runc.prepare_containers(1))
    begin = sim.now
    run(sim, runc.cfork("c", probe))
    ms = (sim.now - begin) / config.MS
    rows.append(StartupDesignRow("cfork (molecule)", ms, classify(ms)))
    return rows


@dataclass
class ShimThreadingRow:
    """Makespans of one queue discipline under two burst shapes."""
    discipline: str
    threads: int
    skewed_makespan_ms: float
    balanced_makespan_ms: float


def shim_threading_ablation(
    threads: int = 4, calls: int = 16, service_us: float = 500.0
) -> list[ShimThreadingRow]:
    """Per-thread MPSC queues vs a shared MPMC queue with work stealing
    under balanced and skewed XPUcall bursts (§5)."""
    from repro.xpu.threading import (
        QueueDiscipline,
        ShimThreadPool,
        burst_completion_time,
    )

    rows = []
    for discipline in QueueDiscipline:
        makespans = {}
        for skewed in (True, False):
            sim = Simulator()
            pu = ProcessingUnit(sim, 0, "dpu", specs.BLUEFIELD1)
            pool = ShimThreadPool(sim, pu, threads=threads, discipline=discipline)
            makespans[skewed] = burst_completion_time(
                sim, pool, calls=calls, service_s=service_us * config.US,
                skewed=skewed,
            )
        rows.append(
            ShimThreadingRow(
                discipline=discipline.value,
                threads=threads,
                skewed_makespan_ms=makespans[True] / config.MS,
                balanced_makespan_ms=makespans[False] / config.MS,
            )
        )
    return rows


def dag_direct_vs_bus() -> DagDesignResult:
    """Molecule's direct-connect chain vs the same chain relayed
    through a local-bus intermediary (one extra FIFO hop per edge, as
    in SAND's local bus / Nightcore's engine)."""
    chain = serverlessbench.alexa_chain()

    def run(relay_hops: int) -> float:
        molecule = MoleculeRuntime.create(num_dpus=0)
        for function in serverlessbench.alexa_functions():
            molecule.deploy_now(function)
        cpu = molecule.machine.host_cpu
        placements = [cpu] * len(chain.stages)
        molecule.run(molecule.dag.prepare(chain, placements))
        result = molecule.run(molecule.run_chain(chain, placements))
        if relay_hops:
            # Each edge takes an extra bus traversal: one more FIFO
            # write + read + dispatch on the same PU.
            per_edge = (
                2 * cpu.ipc_notify_time()
                + 2 * cpu.copy_time(1024)
                + config.DAG_MSG_MS * config.MS
            )
            return result.total_s + relay_hops * per_edge * (len(chain.stages) - 1)
        return result.total_s

    direct = run(relay_hops=0)
    bus = run(relay_hops=1)
    return DagDesignResult(
        direct_total_ms=direct / config.MS,
        bus_total_ms=bus / config.MS,
    )
