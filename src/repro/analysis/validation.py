"""Reproduction conformance suite.

Each :class:`Claim` states one published result and a predicate over the
regenerated experiment data.  ``validate_all()`` runs every claim and
returns a scorecard — the one-stop answer to "does this reproduction
still hold?" (also exposed as ``python -m repro validate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis import experiments as ex


@dataclass
class Claim:
    """One published claim and its check."""

    claim_id: str
    statement: str
    check: Callable[[], bool]


@dataclass
class ClaimResult:
    """Outcome of checking one claim."""

    claim_id: str
    statement: str
    passed: bool
    error: Optional[str] = None


def _claims() -> list[Claim]:
    # Experiment results are cached so claims can share them.
    cache: dict[str, object] = {}

    def get(name: str, producer):
        if name not in cache:
            cache[name] = producer()
        return cache[name]

    def density():
        return get("fig2a", ex.fig2a_density)

    def matrix():
        return get("fig2b", ex.fig2b_fpga_matrix)

    def nipc():
        return get("fig8", lambda: ex.fig8_nipc(sizes=(16, 256, 2048)))

    def commercial():
        return get("fig9", ex.fig9_commercial)

    def startup():
        return get("fig10", ex.fig10_startup)

    def breakdown():
        return get("fig11a", ex.fig11a_cfork_breakdown)

    def memory():
        return get("fig11bc", ex.fig11bc_memory)

    def dag():
        return get("fig12", ex.fig12_dag_comm)

    def chain13():
        return get("fig13", ex.fig13_fpga_chain)

    def fb_cold():
        return get("fig14a", lambda: ex.fig14_functionbench("cold_cpu"))

    def chains():
        return get("fig14e", ex.fig14e_chains)

    def gzip():
        return get("fig14f", ex.fig14f_gzip)

    def aml():
        return get("fig14g", ex.fig14g_aml)

    def table4():
        return get("table4", ex.table4_fpga_resources)

    return [
        Claim(
            "fig2a-density",
            "1000/1256/1512 concurrent instances with 0/1/2 DPUs",
            lambda: density().measured == density().paper,
        ),
        Claim(
            "fig2b-fpga-speedup",
            "matrix kernels run 2.15-2.82x faster on the FPGA",
            lambda: all(2.0 <= r.speedup <= 2.95 for r in matrix().rows),
        ),
        Claim(
            "fig8-nipc-band",
            "nIPC spans ~25-150us across transports and sizes",
            lambda: all(
                20.0 < value < 150.0
                for name in ("nIPC-Base", "nIPC-MPSC", "nIPC-Poll")
                for value in nipc().series[name].values()
            ),
        ),
        Claim(
            "fig8-poll-beats-dpu-fifo",
            "polling nIPC beats the DPU's local Linux FIFO",
            lambda: all(
                nipc().series["nIPC-Poll"][s] < nipc().series["Linux (DPU)"][s] + 1
                for s in (16, 256, 2048)
            ),
        ),
        Claim(
            "fig9-startup-37x",
            "Molecule starts >30x faster than OpenWhisk/Lambda",
            lambda: min(
                commercial().row("openwhisk").startup_ms,
                commercial().row("aws-lambda").startup_ms,
            ) / commercial().row("molecule").startup_ms > 30.0,
        ),
        Claim(
            "fig9-comm-68x",
            "Molecule communicates >50x faster than OpenWhisk, >200x than Lambda",
            lambda: (
                commercial().row("openwhisk").comm_ms
                / commercial().row("molecule").comm_ms > 50.0
                and commercial().row("aws-lambda").comm_ms
                / commercial().row("molecule").comm_ms > 200.0
            ),
        ),
        Claim(
            "fig10-cfork-10x",
            "cfork beats the baseline cold boot by >5x on every PU",
            lambda: all(
                r.cfork_local_ms < r.baseline_local_ms / 5 for r in startup().rows
            ),
        ),
        Claim(
            "fig10-remote-cfork-3ms",
            "a cross-PU cfork adds only 1-3ms",
            lambda: all(
                0.5 < r.cfork_xpu_ms - r.cfork_local_ms < 3.5 for r in startup().rows
            ),
        ),
        Claim(
            "fig10c-fpga-stages",
            "FPGA startup: >20s baseline, 3.8s no-erase, 1.9s warm-image, 53ms warm",
            lambda: (
                startup().fpga_rows[0].seconds > 20.0
                and abs(startup().fpga_rows[1].seconds - 3.8) < 0.2
                and abs(startup().fpga_rows[2].seconds - 1.9) < 0.2
                and abs(startup().fpga_rows[3].seconds - 0.053) < 0.01
            ),
        ),
        Claim(
            "fig11a-breakdown",
            "cfork breakdown 85.55/47.25/30.05/8.40ms (exact)",
            lambda: all(
                abs(breakdown().measured_ms[stage] - paper) < 0.01
                for stage, paper in breakdown().paper_ms.items()
            ),
        ),
        Claim(
            "fig11c-pss-34pct",
            "Molecule's PSS is 25-45% lower at 16 instances",
            lambda: 0.25 < memory().pss_saving_at_max < 0.45,
        ),
        Claim(
            "fig12-dag-10x",
            "IPC/nIPC DAG edges improve on the baseline by >10x everywhere",
            lambda: all(s > 10.0 for c in dag().cases for s in c.speedups),
        ),
        Claim(
            "fig13-retention-2x",
            "DRAM retention improves a 5-function FPGA chain ~2x",
            lambda: 1.5 < chain13().speedup_at_max < 2.5,
        ),
        Claim(
            "fig14a-cold-range",
            "cold-start improvements span ~1x (video) to ~11x (matmul)",
            lambda: (
                fb_cold().row("video_processing").speedup < 1.05
                and 4.0 < fb_cold().row("matmul").speedup < 13.0
            ),
        ),
        Claim(
            "fig14a-baselines",
            "cold CPU baselines within 20% of the published numbers",
            lambda: all(
                abs(r.baseline_ms - r.paper_baseline_ms) / r.paper_baseline_ms < 0.20
                for r in fb_cold().rows
            ),
        ),
        Claim(
            "fig14e-chain-speedups",
            "Alexa improves ~2x and MapReduce ~3-4.5x end to end",
            lambda: all(
                (1.7 < r.speedup < 2.6) if r.application == "alexa"
                else (2.7 < r.speedup < 4.7)
                for r in chains().rows
            ),
        ),
        Claim(
            "fig14f-gzip-crossover",
            "GZip's CPU/FPGA crossover falls near 25MB with up to ~8x wins",
            lambda: (
                gzip().crossover_input is not None
                and 10.0 <= gzip().crossover_input <= 30.0
                and 4.0 < gzip().speedup_at(-1) < 9.0
            ),
        ),
        Claim(
            "fig14g-aml-band",
            "Anti-MoneyL improves 4-6x at 6K and 25-40x at 6M entries",
            lambda: (
                3.5 < aml().speedup_at(0) < 6.0
                and 25.0 < aml().speedup_at(-1) < 40.0
            ),
        ),
        Claim(
            "table4-wrapper",
            "the 12-instance wrapper matches the published fabric usage",
            lambda: all(
                abs(table4().wrapper[key] - paper) / paper < 0.002
                for key, paper in table4().paper_wrapper.items()
            ),
        ),
    ]


def validate_all() -> list[ClaimResult]:
    """Run every claim; failures never raise, they are reported."""
    results = []
    for claim in _claims():
        try:
            passed = bool(claim.check())
            error = None
        except Exception as exc:  # noqa: BLE001 - scorecard, not crash
            passed = False
            error = f"{type(exc).__name__}: {exc}"
        results.append(
            ClaimResult(
                claim_id=claim.claim_id,
                statement=claim.statement,
                passed=passed,
                error=error,
            )
        )
    return results


def scorecard(results: list[ClaimResult]) -> str:
    """Human-readable pass/fail listing."""
    lines = []
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        suffix = f"  [{result.error}]" if result.error else ""
        lines.append(f"[{mark}] {result.claim_id:<24} {result.statement}{suffix}")
    passed = sum(1 for r in results if r.passed)
    lines.append(f"\n{passed}/{len(results)} claims hold")
    return "\n".join(lines)
