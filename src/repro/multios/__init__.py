"""Multi-OS substrate: one local OS per general-purpose PU."""

from repro.multios.cgroup import Cgroup, CgroupManager, CpusetLockMode
from repro.multios.fifo import LocalFifo, Message
from repro.multios.memory import (
    ProcessMemory,
    SharedSegment,
    average_pss_mb,
    average_rss_mb,
)
from repro.multios.os import OsInstance
from repro.multios.process import OsProcess, ProcessState

__all__ = [
    "Cgroup",
    "CgroupManager",
    "CpusetLockMode",
    "LocalFifo",
    "Message",
    "OsInstance",
    "OsProcess",
    "ProcessMemory",
    "ProcessState",
    "SharedSegment",
    "average_pss_mb",
    "average_rss_mb",
]
