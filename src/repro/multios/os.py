"""The local OS running on one general-purpose PU.

A heterogeneous computer is a *multi-OS system* (§2.1.1): the host CPU
and each DPU run their own Linux with disjoint PID spaces, process
tables and FIFO namespaces.  Nothing in this class is aware of other
PUs — all cross-PU functionality lives in XPU-Shim (``repro.xpu``),
exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Optional

from repro import config
from repro.errors import FifoError, OsError_, UnknownProcessError
from repro.hardware.pu import ProcessingUnit
from repro.multios.cgroup import CgroupManager, CpusetLockMode
from repro.multios.fifo import LocalFifo
from repro.multios.memory import SharedSegment
from repro.multios.process import OsProcess
from repro.sim import Simulator


class OsInstance:
    """One operating system on one general-purpose PU."""

    def __init__(
        self,
        sim: Simulator,
        pu: ProcessingUnit,
        name: str = "",
        cpuset_lock: CpusetLockMode = CpusetLockMode.SEMAPHORE,
    ):
        if not pu.is_general_purpose:
            raise OsError_(f"cannot boot an OS on accelerator PU {pu.name}")
        self.sim = sim
        self.pu = pu
        self.name = name or f"linux@{pu.name}"
        self.cgroups = CgroupManager(sim, pu, lock_mode=cpuset_lock)
        self._processes: dict[int, OsProcess] = {}
        self._fifos: dict[str, LocalFifo] = {}
        self._next_pid = 100
        #: Shared library pages mapped into every language runtime on
        #: this OS (glibc, interpreter binary, ...).
        self.shared_libraries = SharedSegment(
            f"libs@{self.name}", config.MEMORY.baseline_shared_lib_mb
        )

    # -- processes ----------------------------------------------------------------

    def spawn(self, name: str, exec_ms: float = 0.0):
        """Generator: create a process via spawn/exec.

        ``exec_ms`` is the exec cost on the reference CPU; it is scaled
        by this PU's speed.
        """
        if exec_ms < 0:
            raise OsError_(f"negative exec cost: {exec_ms}")
        if exec_ms:
            yield self.sim.timeout(self.pu.compute_time(exec_ms * config.MS))
        process = self._make_process(name, parent=None)
        return process

    def fork(self, parent: OsProcess):
        """Generator: Unix fork with copy-on-write memory.

        Only single-threaded processes can fork correctly — Unix fork
        propagates the calling thread only (§4.2); the forkable language
        runtime must merge threads first.

        The parent's private pages become a COW segment shared between
        parent and child; the child also inherits every shared mapping.
        """
        if not parent.alive:
            raise OsError_(f"cannot fork dead process {parent.pid}")
        if not parent.fork_safe:
            raise OsError_(
                f"process {parent.pid} has {parent.threads} threads; "
                "Unix fork only propagates the forking thread"
            )
        yield self.sim.timeout(
            config.STARTUP.cfork_propagate_ms * config.MS / self.pu.spec.speed
        )
        child = self._make_process(f"{parent.name}-child", parent=parent)
        if parent.memory.private_mb > 0:
            cow = SharedSegment(
                f"cow:{parent.pid}@{self.name}", parent.memory.private_mb
            )
            parent.memory.private_mb = 0.0
            parent.memory.map_segment(cow)
        for segment in list(parent.memory.segments):
            child.memory.map_segment(segment)
        return child

    def kill(self, pid: int) -> None:
        """Terminate a process."""
        self.process(pid).exit()

    def reap(self, pid: int) -> None:
        """Remove a zombie from the process table."""
        process = self.process(pid)
        if process.alive:
            raise OsError_(f"cannot reap live process {pid}")
        del self._processes[pid]

    def process(self, pid: int) -> OsProcess:
        """Process by local PID (raises for unknown pids)."""
        try:
            return self._processes[pid]
        except KeyError:
            raise UnknownProcessError(f"no process {pid} on {self.name}") from None

    @property
    def live_processes(self) -> list[OsProcess]:
        """All running processes, in pid order."""
        return [p for p in self._processes.values() if p.alive]

    def _make_process(self, name: str, parent: Optional[OsProcess]) -> OsProcess:
        pid = self._next_pid
        self._next_pid += 1
        process = OsProcess(self, pid, name, parent=parent)
        self._processes[pid] = process
        return process

    # -- FIFOs ------------------------------------------------------------------------

    def create_fifo(self, name: str) -> LocalFifo:
        """mkfifo: create a named pipe in this OS's namespace."""
        if name in self._fifos:
            raise FifoError(f"FIFO {name!r} already exists on {self.name}")
        fifo = LocalFifo(self.sim, self.pu, name)
        self._fifos[name] = fifo
        return fifo

    def open_fifo(self, name: str) -> LocalFifo:
        """Open an existing named pipe."""
        try:
            return self._fifos[name]
        except KeyError:
            raise FifoError(f"no FIFO {name!r} on {self.name}") from None

    def remove_fifo(self, name: str) -> None:
        """Unlink a named pipe."""
        fifo = self.open_fifo(name)
        fifo.close()
        del self._fifos[name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OsInstance {self.name} pids={len(self._processes)}>"
