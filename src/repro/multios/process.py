"""Process objects living inside one local OS."""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.errors import OsError_
from repro.multios.memory import ProcessMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.multios.os import OsInstance


class ProcessState(enum.Enum):
    """Lifecycle of an OS process."""

    RUNNING = "running"
    ZOMBIE = "zombie"


class OsProcess:
    """One process on a local OS.

    Processes here are bookkeeping entities: their *behaviour* is
    expressed by simulation generators in higher layers; the process
    object tracks identity (pid), threads, memory image, and lineage.
    """

    def __init__(self, os: "OsInstance", pid: int, name: str, parent: Optional["OsProcess"] = None):
        self.os = os
        self.pid = pid
        self.name = name
        self.parent = parent
        self.state = ProcessState.RUNNING
        self.memory = ProcessMemory(self)
        #: Number of live threads; Unix fork only propagates one, which
        #: is why cfork needs the forkable language runtime (§4.2).
        self.threads = 1
        #: Saved thread contexts while merged for a cfork.
        self._saved_thread_contexts = 0

    @property
    def alive(self) -> bool:
        """True until the process exits."""
        return self.state is ProcessState.RUNNING

    # -- threading (forkable-runtime support) --------------------------------------

    def spawn_thread(self, count: int = 1) -> None:
        """Start ``count`` additional threads."""
        if count < 0:
            raise OsError_(f"negative thread count: {count}")
        self._require_alive()
        self.threads += count

    def merge_threads(self) -> int:
        """Forkable runtime step 1: park all but one thread, saving
        their contexts in memory (§4.2).  Returns the parked count."""
        self._require_alive()
        parked = self.threads - 1
        self._saved_thread_contexts += parked
        self.threads = 1
        return parked

    def expand_threads(self) -> int:
        """Forkable runtime step 3: restore previously parked threads."""
        self._require_alive()
        restored = self._saved_thread_contexts
        self.threads += restored
        self._saved_thread_contexts = 0
        return restored

    @property
    def fork_safe(self) -> bool:
        """Unix fork only clones the calling thread; a process is safe
        to fork only while single-threaded."""
        return self.threads == 1

    # -- lifecycle -------------------------------------------------------------------

    def exit(self) -> None:
        """Terminate: release memory mappings and become a zombie."""
        self._require_alive()
        self.memory.unmap_all()
        self.state = ProcessState.ZOMBIE

    def _require_alive(self) -> None:
        if not self.alive:
            raise OsError_(f"process {self.pid} ({self.name}) has exited")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OsProcess pid={self.pid} {self.name!r} on {self.os.name}>"
