"""cgroup / namespace cost model.

The paper's last cfork optimisation patches the Linux kernel to replace
the semaphore locks in ``kernel/cgroup/cpuset.c`` with mutex locks,
cutting the cost of moving a forked child into the function container's
cgroup (Fig. 11a: 30.05ms -> 8.40ms total).  This module models the
attach operation under both lock implementations.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro import config
from repro.errors import OsError_
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.pu import ProcessingUnit
    from repro.multios.process import OsProcess


class CpusetLockMode(enum.Enum):
    """Which locking scheme guards cpuset updates in the kernel."""

    SEMAPHORE = "semaphore"  # stock kernel
    MUTEX = "mutex"          # the paper's patch


class Cgroup:
    """One cgroup (one per function container)."""

    def __init__(self, name: str):
        self.name = name
        self.members: set["OsProcess"] = set()

    def __contains__(self, process: "OsProcess") -> bool:
        return process in self.members


class CgroupManager:
    """Per-OS cgroup controller."""

    def __init__(
        self,
        sim: Simulator,
        pu: "ProcessingUnit",
        lock_mode: CpusetLockMode = CpusetLockMode.SEMAPHORE,
    ):
        self.sim = sim
        self.pu = pu
        self.lock_mode = lock_mode
        self.cgroups: dict[str, Cgroup] = {}

    def create(self, name: str) -> Cgroup:
        """Create a new (empty) cgroup."""
        if name in self.cgroups:
            raise OsError_(f"cgroup {name!r} already exists")
        cgroup = Cgroup(name)
        self.cgroups[name] = cgroup
        return cgroup

    def attach_time(self) -> float:
        """Cost of re-assigning a process's cgroup/namespaces, scaled by
        this PU's speed."""
        if self.lock_mode is CpusetLockMode.MUTEX:
            cost_ms = config.STARTUP.cgroup_attach_mutex_ms
        else:
            cost_ms = config.STARTUP.cgroup_attach_semaphore_ms
        return cost_ms * config.MS / self.pu.spec.speed

    def attach(self, process: "OsProcess", cgroup: Cgroup):
        """Generator: move ``process`` into ``cgroup``, paying the
        cpuset locking cost."""
        if cgroup.name not in self.cgroups:
            raise OsError_(f"unknown cgroup {cgroup.name!r}")
        yield self.sim.timeout(self.attach_time())
        for other in self.cgroups.values():
            other.members.discard(process)
        cgroup.members.add(process)

    def cgroup_of(self, process: "OsProcess"):
        """The cgroup currently containing ``process``, or None."""
        for cgroup in self.cgroups.values():
            if process in cgroup:
                return cgroup
        return None
