"""Copy-on-write memory accounting.

Models just enough of Linux memory management to reproduce the paper's
Fig. 11b/c experiment: processes own *private* memory plus mappings of
*shared segments* (library pages, template-container pages created by
``cfork``).  From those, the two metrics the paper reports fall out:

* **RSS** (resident set size) = private + all mapped shared pages;
* **PSS** (proportional set size) = private + each shared segment's
  size divided by its number of mappers.

``cfork`` sharing is what makes Molecule's PSS drop as instance count
grows (34% lower at 16 instances, §6.4 "Memory saving").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

from repro.errors import OsError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.multios.process import OsProcess


class SharedSegment:
    """A set of pages mapped by one or more processes (libs, COW pages)."""

    _next_id = 0

    def __init__(self, name: str, size_mb: float):
        if size_mb < 0:
            raise OsError_(f"negative segment size: {size_mb}")
        SharedSegment._next_id += 1
        self.segment_id = SharedSegment._next_id
        self.name = name
        self.size_mb = size_mb
        self.mappers: set["OsProcess"] = set()

    @property
    def num_mappers(self) -> int:
        """Number of processes currently mapping this segment."""
        return len(self.mappers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Segment {self.name} {self.size_mb}MB x{self.num_mappers}>"


class ProcessMemory:
    """The memory image of one process."""

    def __init__(self, owner: "OsProcess"):
        self.owner = owner
        self.private_mb = 0.0
        self.segments: set[SharedSegment] = set()

    # -- mutation ---------------------------------------------------------------

    def allocate_private(self, mb: float) -> None:
        """Grow the private (anonymous) footprint."""
        if mb < 0:
            raise OsError_(f"negative allocation: {mb}")
        self.private_mb += mb

    def free_private(self, mb: float) -> None:
        """Shrink the private footprint."""
        if mb < 0 or mb > self.private_mb + 1e-9:
            raise OsError_(f"cannot free {mb}MB of {self.private_mb}MB private")
        self.private_mb -= mb

    def map_segment(self, segment: SharedSegment) -> None:
        """Map a shared segment into this process."""
        segment.mappers.add(self.owner)
        self.segments.add(segment)

    def unmap_segment(self, segment: SharedSegment) -> None:
        """Remove a mapping."""
        if segment not in self.segments:
            raise OsError_(f"{segment!r} is not mapped")
        self.segments.remove(segment)
        segment.mappers.discard(self.owner)

    def unmap_all(self) -> None:
        """Drop every mapping (process exit)."""
        for segment in list(self.segments):
            self.unmap_segment(segment)
        self.private_mb = 0.0

    def cow_write(self, segment: SharedSegment, mb: float) -> None:
        """Copy-on-write fault: privatise ``mb`` of a shared segment.

        The segment stays mapped (other sharers are unaffected); the
        written pages become private to this process.  This is the cost
        Molecule pays on the first request after a cfork (Fig. 14b).
        """
        if segment not in self.segments:
            raise OsError_(f"{segment!r} is not mapped")
        if mb < 0 or mb > segment.size_mb + 1e-9:
            raise OsError_(f"COW write of {mb}MB exceeds segment {segment.size_mb}MB")
        self.private_mb += mb

    # -- metrics -------------------------------------------------------------------

    @property
    def rss_mb(self) -> float:
        """Resident set size: private + every mapped shared page."""
        return self.private_mb + sum(seg.size_mb for seg in self.segments)

    @property
    def pss_mb(self) -> float:
        """Proportional set size: shared pages divided among mappers."""
        return self.private_mb + sum(
            seg.size_mb / seg.num_mappers for seg in self.segments if seg.num_mappers
        )


def average_rss_mb(processes: Iterable["OsProcess"]) -> float:
    """Mean RSS over a set of processes (Fig. 11b reports the average)."""
    procs = list(processes)
    if not procs:
        return 0.0
    return sum(proc.memory.rss_mb for proc in procs) / len(procs)


def average_pss_mb(processes: Iterable["OsProcess"]) -> float:
    """Mean PSS over a set of processes (Fig. 11c)."""
    procs = list(processes)
    if not procs:
        return 0.0
    return sum(proc.memory.pss_mb for proc in procs) / len(procs)
