"""Local (single-OS) FIFOs.

The named-pipe primitive that state-of-the-art serverless systems
(Nightcore, SAND) use for same-PU function communication and which the
paper measures as the "Linux FIFO" series in Fig. 8.  A transfer costs
one kernel notification plus two copies (user->kernel, kernel->user),
all priced by the owning PU's cost model — which is what makes the DPU's
FIFO slower than the CPU's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.errors import FifoError
from repro.sim import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.pu import ProcessingUnit


@dataclass
class Message:
    """One datagram moving through a FIFO."""

    payload: Any
    size: int  # bytes


class LocalFifo:
    """A named pipe on one OS."""

    def __init__(self, sim: Simulator, pu: "ProcessingUnit", name: str):
        self.sim = sim
        self.pu = pu
        self.name = name
        self._store = Store(sim)
        self.closed = False

    def write(self, payload: Any, size: int):
        """Generator: copy into the kernel and notify the reader."""
        self._require_open()
        if size < 0:
            raise FifoError(f"negative message size: {size}")
        yield self.sim.timeout(self.pu.copy_time(size))
        yield self.sim.timeout(self.pu.ipc_notify_time())
        yield self._store.put(Message(payload, size))

    def read(self):
        """Generator: block until a message arrives, then copy it out."""
        self._require_open()
        message = yield self._store.get()
        yield self.sim.timeout(self.pu.copy_time(message.size))
        return message.payload

    def transfer_time(self, size: int) -> float:
        """Analytic end-to-end latency of one message (for reports)."""
        return 2 * self.pu.copy_time(size) + self.pu.ipc_notify_time()

    @property
    def pending(self) -> int:
        """Messages written but not yet read."""
        return len(self._store)

    def close(self) -> None:
        """Close the FIFO; later reads/writes raise."""
        self.closed = True

    def _require_open(self) -> None:
        if self.closed:
            raise FifoError(f"FIFO {self.name!r} is closed")
