"""Calibration constants for the Molecule reproduction.

Every constant here is derived from a number published in the paper
(figure/table/section cited inline).  The simulator *executes the
protocols* — capability checks, FIFO hops, RDMA transfers, fork page
sharing — and these constants parameterise the primitive costs, so the
reproduced results emerge from mechanism + calibration.

Units: seconds unless a name says otherwise (``_us`` = microseconds,
``_ms`` = milliseconds, ``_mb`` = mebibytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

US = 1e-6
MS = 1e-3
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


# ---------------------------------------------------------------------------
# Per-PU software cost primitives (§6.1, Fig. 7/8 calibration).
#
# The paper reports the naive two-round-trip XPUcall at ~100us on the
# Bluefield-1's 800 MHz ARM cores and ~20us on the host CPU.  With the
# decomposition "base XPUcall = 4 local IPC notifies", that pins
# ipc_notify at 25us (BF-1) and 5us (CPU).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PuCosts:
    """Primitive software costs on one processing unit."""

    #: One-way local IPC notification (FIFO wakeup through the kernel).
    ipc_notify_us: float
    #: A fixed user-space operation (queue enqueue, shm poll iteration).
    op_us: float
    #: memcpy cost per KiB moved by this PU's cores.
    copy_us_per_kb: float


CPU_COSTS = PuCosts(ipc_notify_us=5.0, op_us=1.0, copy_us_per_kb=1.0)
BF1_COSTS = PuCosts(ipc_notify_us=25.0, op_us=5.0, copy_us_per_kb=12.0)
BF2_COSTS = PuCosts(ipc_notify_us=10.0, op_us=2.0, copy_us_per_kb=4.0)
#: Desktop i7-9700 used for the Fig. 11 cfork breakdown.
DESKTOP_COSTS = PuCosts(ipc_notify_us=4.0, op_us=0.8, copy_us_per_kb=0.8)


# ---------------------------------------------------------------------------
# Interconnect links (§5: DPU<->CPU over RDMA, FPGA<->CPU over DMA).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkCosts:
    """Latency/bandwidth of one hardware interconnect."""

    latency_us: float
    bandwidth_gbps: float  # GB/s


#: 100 Gbps Bluefield NIC, PCIe RDMA path (Fig. 8: adds a few us).
RDMA_LINK = LinkCosts(latency_us=3.0, bandwidth_gbps=12.5)
#: Xilinx XDMA: §6.5 reports 50-100us to move 4KB CPU<->FPGA.
DMA_LINK = LinkCosts(latency_us=40.0, bandwidth_gbps=4.0)
#: Plain host networking (used by baselines for cross-PU hops).
NETWORK_LINK = LinkCosts(latency_us=50.0, bandwidth_gbps=1.0)


# ---------------------------------------------------------------------------
# Container startup (Fig. 10a/b, Fig. 11a).
#
# Fig. 11a (desktop i7): baseline 85.55ms, naive cfork 47.25ms,
# +FuncContainer 30.05ms, +cpuset opt 8.40ms.  Decomposition:
#   baseline         = container_create + runtime_init         = 17.2 + 68.35
#   naive cfork      = container_create + fork + attach(sem)   = 17.2 + 1.25 + 28.8
#   +FuncContainer   = fork + attach(sem)                      = 1.25 + 28.8
#   +cpuset opt      = fork + attach(mutex)                    = 1.25 + 7.15
# Values below are for the *reference server CPU* (Xeon 8160); the
# desktop machine of Fig. 11 is modelled with speed=2.0 relative to it,
# reproducing the published numbers.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StartupCosts:
    """Container and language-runtime startup costs (reference CPU)."""

    #: runc create+start of a fresh container (namespaces, rootfs, cgroup).
    container_create_ms: float = 34.4
    #: Cold language-runtime boot: interpreter + serverless wrapper.
    runtime_init_python_ms: float = 136.7
    runtime_init_nodejs_ms: float = 211.0
    #: cfork: merge-to-single-thread, fork, re-expand threads (§4.2).
    cfork_propagate_ms: float = 2.5
    #: Re-attach forked child into the function container's cgroup/ns.
    cgroup_attach_semaphore_ms: float = 57.6
    #: Same, with the paper's kernel patch (cpuset semaphore -> mutex).
    cgroup_attach_mutex_ms: float = 14.3
    #: Extra copy-on-write fault cost paid by a forked instance at its
    #: first request (Fig. 14b: Molecule warm slightly worse than base).
    cow_fault_penalty_ms: float = 1.5
    #: nIPC command overhead for a cross-PU cfork (Fig. 10: 1-3 ms).
    remote_cfork_overhead_ms: float = 1.8


STARTUP = StartupCosts()


# ---------------------------------------------------------------------------
# FPGA device timings (Fig. 10c) and fabric budget (Table 4).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FpgaCosts:
    """Programming-phase timings of one UltraScale+ FPGA."""

    erase_s: float = 16.5       # Fig. 10c: erase dominates the >20s baseline
    load_image_s: float = 1.9   # Fig. 10c: "No-Erase" = load + prep = 3.8s
    prep_sandbox_s: float = 1.9  # Fig. 10c: "Warm-image" = prep = 1.9s
    warm_invoke_s: float = 0.053  # Fig. 10c: warm sandbox invoke = 53ms


FPGA_COSTS = FpgaCosts()


@dataclass(frozen=True)
class FpgaFabric:
    """Fabric resource totals (Table 4, AWS F1 UltraScale+)."""

    luts: int = 1_181_768
    regs: int = 2_364_480
    brams: float = 2_160
    dsps: float = 6_840


F1_FABRIC = FpgaFabric()

#: Wrapper (shell) base overhead: ~5% of F1 LUTs (§6.4).
WRAPPER_LUTS = 59_088
WRAPPER_REGS = 94_579
WRAPPER_BRAMS = 216.0
WRAPPER_DSPS = 137.0


# ---------------------------------------------------------------------------
# Memory model (Fig. 11b/c): an image-resize instance.
#
# Baseline: ~11.5MB private + 2.5MB shared libraries.
# Molecule (cfork): ~7.5MB private after COW + 6MB template-shared pages
# + 4MB of additional template-container pages kept mapped.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryModel:
    """Per-instance page footprints for the Fig. 11 memory experiment."""

    baseline_private_mb: float = 11.5
    baseline_shared_lib_mb: float = 2.5
    molecule_private_mb: float = 7.5
    template_shared_mb: float = 6.0
    template_extra_mb: float = 4.0
    #: Density experiment (Fig. 2a): image-processing instance footprint.
    density_instance_mb: float = 60.0


MEMORY = MemoryModel()


# ---------------------------------------------------------------------------
# Commercial-system comparison (Fig. 9).
# Molecule startup ~28ms end-to-end implies OpenWhisk = 37x = ~1036ms
# and AWS Lambda = 46x = ~1288ms; comm 68x/300x of ~0.25ms.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CommercialModel:
    """Published-scale latency models for AWS Lambda and OpenWhisk."""

    lambda_startup_ms: float = 1288.0
    lambda_comm_ms: float = 75.0   # Step Functions hop
    openwhisk_startup_ms: float = 1036.0
    openwhisk_comm_ms: float = 17.0


COMMERCIAL = CommercialModel()


# ---------------------------------------------------------------------------
# Baseline (Molecule-homo) DAG hop costs (Fig. 12, Fig. 14e).
# Node.js Express / Python Flask HTTP hop on the local machine.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineDagCosts:
    """Per-hop costs of the network-based DAG methods used by baselines."""

    express_hop_cpu_ms: float = 4.9   # Alexa: (38.6 - exec) / 4 hops
    flask_hop_cpu_ms: float = 7.5     # MapReduce: (20.0 - exec) / 2 hops
    #: Cross-PU HTTP hop goes through the gateway / host network stack.
    cross_pu_hop_ms: float = 8.0
    #: HTTP framing overhead per KB of payload.
    payload_ms_per_kb: float = 0.08


BASELINE_DAG = BaselineDagCosts()


# ---------------------------------------------------------------------------
# Per-PU relative speeds (reference: Xeon 8160 server CPU = 1.0).
# Fig. 14c: BF-1 is 4-7x slower than CPU -> 0.16.
# Fig. 14d: BF-2 is 3-4x faster than BF-1, close to CPU -> 0.80.
# Fig. 11 footnote: desktop i7-9700 at 3.0GHz -> 2.0.
# ---------------------------------------------------------------------------

SPEED_XEON = 1.0
SPEED_BF1 = 0.16
SPEED_BF2 = 0.80
SPEED_DESKTOP = 2.0

#: Event-driven chain functions (Alexa/MapReduce handlers) are less
#: frequency-bound than FunctionBench compute kernels; the paper's
#: Fig. 14e DPU bars sit ~2-3x above CPU, not 6x.
CHAIN_DPU_SLOWDOWN = 2.0

#: Language-runtime message cost per side of a DAG call (serialize or
#: deserialize + dispatch in the Node/Python wrapper).  With it, a
#: Molecule same-CPU DAG edge lands at ~0.2ms — the Fig. 12 value —
#: and the baseline/Molecule ratio at the paper's 15-18x.
DAG_MSG_MS = 0.12


# ---------------------------------------------------------------------------
# DRAM capacities for the density experiment (Fig. 2a): 1000 instances
# on the CPU, +256 per Bluefield DPU at 60MB per instance.
# ---------------------------------------------------------------------------

CPU_DRAM_MB = 64 * 1024      # 64 GB host DRAM
CPU_DRAM_RESERVED_MB = 5_536  # host OS + runtime reserve -> 60000/60 = 1000
DPU_DRAM_MB = 16 * 1024      # Bluefield onboard DRAM
DPU_DRAM_RESERVED_MB = 1_024  # DPU OS reserve -> 15360/60 = 256
FPGA_DRAM_MB = 64 * 1024     # FPGA-attached DDR (4 banks x 16GB on F1)
GPU_DRAM_MB = 16 * 1024


# ---------------------------------------------------------------------------
# Misc protocol costs.
# ---------------------------------------------------------------------------

#: xSpawn: spawn an executor/process on a neighbour PU (ms, ref CPU).
XSPAWN_EXEC_MS = 5.0
#: Immediate cross-PU state synchronisation: one message round per peer.
SYNC_ROUND_TRIP_US = 20.0
#: Lazy synchronisation batching window (s).
LAZY_SYNC_WINDOW_S = 0.010
#: Gateway request admission/scheduling overhead (ms).
GATEWAY_OVERHEAD_MS = 0.35


# ---------------------------------------------------------------------------
# Reliability defaults (retry/backoff, circuit breakers, deadlines).
#
# Not paper-calibrated: Molecule's prototype has no failure handling;
# these defaults model the commodity policies of production FaaS
# platforms (bounded retries with exponential backoff, per-backend
# breakers) so injected faults are survivable.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityDefaults:
    """Default retry/backoff/breaker parameters."""

    #: Total attempts per request (first try + retries).
    max_attempts: int = 3
    #: First backoff pause; doubles per retry up to the cap.
    backoff_base_ms: float = 10.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 1000.0
    #: Deterministic jitter fraction applied to each backoff pause.
    backoff_jitter: float = 0.1
    #: Consecutive failures that trip a PU's circuit breaker open.
    breaker_failure_threshold: int = 3
    #: How long an open breaker rejects a PU before half-open probing.
    breaker_open_s: float = 5.0


RELIABILITY = ReliabilityDefaults()


def default_seed() -> int:
    """The library-wide default RNG seed."""
    return 42
