"""Overload control: adaptive admission, deadline shedding, brownout.

The control plane's governor for demand past capacity.  See
:mod:`repro.overload.engine` for the mechanism and ``docs/overload.md``
for tuning guidance.
"""

from repro.overload.engine import (
    AdaptiveLimit,
    AdmissionGate,
    OverloadConfig,
    OverloadController,
)

__all__ = [
    "AdaptiveLimit",
    "AdmissionGate",
    "OverloadConfig",
    "OverloadController",
]
