"""Overload control for the sharded frontend.

Demand past capacity used to collapse goodput for *everyone*: every
request was admitted, queued on PU cores past its deadline, and then
either dead-lettered or answered too late — while its orphaned attempt
kept burning the very cores the next request needed.  This module adds
the three classic defenses as one optional controller:

* **Adaptive concurrency limits** (:class:`AdaptiveLimit`) — an AIMD
  limit per gateway shard, driven by observed service latency against a
  moving minimum: completions near the floor grow the limit additively,
  congested or failed completions shrink it multiplicatively.  The
  limit is enforced by an :class:`AdmissionGate` with a bounded FIFO
  admission queue in front.

* **Deadline-aware load shedding** — a request is shed with a distinct
  :class:`~repro.errors.RequestShed` outcome (never retried, never
  dead-lettered) when the admission queue is full, when its estimated
  queue wait already exceeds its remaining deadline budget, or when the
  budget actually drains while it is parked.  Shedding preserves the
  conservation invariant ``answered + shed + dead == admitted``.

* **Brownout degradation** — a pressure signal (worst shard's
  queue-fill x limit-utilization) with on/off hysteresis.  While the
  brownout is active, accelerator functions fall back to their
  CPU-degraded profile, the warm-path engine stops spawning pre-warm
  instances, and the hedging engine's clone token bucket is throttled
  shut: under saturation, speculative and background work is exactly
  the capacity live requests are missing.

Like ``repro.warmpath`` and ``repro.hedging`` the controller is fully
optional: ``MoleculeRuntime(overload=None)`` leaves every code path,
metric family and report byte-identical to a runtime that never heard
of it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import RequestShed

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime


@dataclass
class OverloadConfig:
    """Tuning knobs for the overload controller."""

    #: Starting concurrency limit per shard gate.
    initial_limit: float = 64.0
    #: The AIMD limit never falls below this (a saturated shard must
    #: keep probing capacity or it can never recover — and it should
    #: never sink below the parallelism of the PUs behind it).
    min_limit: float = 16.0
    #: ... and never grows past this.
    max_limit: float = 1024.0
    #: A completion slower than (moving-minimum x tolerance) counts as
    #: congestion.  Generous by default: cold starts legitimately run
    #: one to two orders of magnitude past warm latency, and only
    #: sustained queueing should shrink the limit.
    latency_tolerance: float = 100.0
    #: Additive increase per good completion (scaled by 1/limit, the
    #: classic one-per-RTT shape; >1 recovers faster after a burst
    #: crushed the limit).
    increase: float = 8.0
    #: Multiplicative decrease applied on congestion or failure.
    decrease: float = 0.9
    #: Completions the moving-minimum window remembers.
    min_window: int = 256
    #: Bounded admission-queue depth per shard gate; arrivals past it
    #: are shed ``queue_full``.  Sized as a burst absorber: the
    #: predictive deadline check below is meant to shed first, the hard
    #: cap is the backstop.
    queue_capacity: int = 512
    #: Shed up front when the estimated queue wait exceeds this
    #: fraction of the request's remaining deadline budget (None
    #: disables the predictive check; the in-queue deadline race still
    #: sheds requests whose budget actually drains).
    predictive_budget_fraction: Optional[float] = 0.25
    #: Brownout hysteresis over the pressure signal: enter at/above
    #: ``brownout_on``, leave at/below ``brownout_off``.  Entering
    #: early is cheap (degraded answers beat sheds), so the on
    #: threshold sits low.
    brownout_on: float = 0.25
    brownout_off: float = 0.15
    #: Minimum dwell before a brownout may end.  The pressure signal is
    #: measured at the gates, and the brownout's own relief (degraded
    #: execution, suppressed pre-warm) collapses it almost immediately
    #: — without a dwell the controller flaps between degraded-and-fine
    #: and undegraded-and-drowning.
    brownout_min_s: float = 2.0
    #: Individual brownout effects (defeatable for tests/tuning).
    degrade_accelerated: bool = True
    suppress_prewarm: bool = True
    throttle_hedges: bool = True
    #: Capacity installed on the runtime's DeadLetterQueue when the
    #: controller arms and the queue is still unbounded (None leaves
    #: it unbounded).
    dead_letter_capacity: Optional[int] = 4096
    #: Shed-log records retained for the report (counters are lifetime
    #: regardless).
    shed_log_capacity: int = 10000


class AdaptiveLimit:
    """AIMD concurrency limit driven by latency vs a moving minimum.

    The moving minimum over the last ``min_window`` successful service
    latencies stands in for the uncongested round-trip floor; a
    completion within ``latency_tolerance`` of it is evidence of spare
    capacity (additive increase), anything slower — or any failure —
    is evidence of congestion (multiplicative decrease).
    """

    def __init__(self, config: OverloadConfig):
        self.config = config
        self._limit = float(config.initial_limit)
        self._window: deque[float] = deque(maxlen=config.min_window)
        #: EWMA of successful service latency (admission-gate grant to
        #: completion, queue wait excluded) — the gate's wait estimator.
        self.ewma_latency: Optional[float] = None
        self.increases = 0
        self.decreases = 0

    @property
    def limit(self) -> int:
        """The enforced (integer) concurrency limit."""
        return int(self._limit)

    def on_complete(self, latency_s: float, ok: bool) -> None:
        """Feed one finished request into the control loop."""
        config = self.config
        floor = min(self._window) if self._window else None
        if ok:
            # Failures stay out of the window: a fast failure would
            # otherwise drag the floor down and mislabel every healthy
            # completion as congestion.
            self._window.append(latency_s)
            self.ewma_latency = (
                latency_s if self.ewma_latency is None
                else 0.9 * self.ewma_latency + 0.1 * latency_s
            )
        congested = not ok or (
            floor is not None and latency_s > floor * config.latency_tolerance
        )
        if congested:
            self._limit = max(config.min_limit, self._limit * config.decrease)
            self.decreases += 1
        else:
            self._limit = min(
                config.max_limit, self._limit + config.increase / self._limit
            )
            self.increases += 1


class _QueueEntry:
    """One parked request in a gate's bounded admission queue."""

    __slots__ = ("event", "enqueued_s", "cancelled")

    def __init__(self, event, enqueued_s: float):
        self.event = event
        self.enqueued_s = enqueued_s
        #: Set when the waiter's deadline budget drained before a grant;
        #: the drain loop skips cancelled entries.
        self.cancelled = False


class AdmissionGate:
    """Adaptive concurrency limit + bounded FIFO queue for one shard."""

    def __init__(self, controller: "OverloadController", gateway, label: str):
        self.controller = controller
        self.gateway = gateway
        self.label = label
        self.limiter = AdaptiveLimit(controller.config)
        self.inflight = 0
        self.queue: deque[_QueueEntry] = deque()
        # Lifetime accounting.
        self.arrived = 0
        self.admitted = 0
        self.bypassed = 0
        self.shed = 0
        self.queued = 0
        self.max_queue_depth = 0
        self.queue_wait_s = 0.0
        #: (sim time, integer limit) — appended whenever the enforced
        #: limit moves; the report downsamples this trajectory.
        self.trajectory: list[tuple[float, int]] = []
        self.limit_min_seen = self.limiter.limit
        self.limit_max_seen = self.limiter.limit

    @property
    def sim(self):
        return self.controller.runtime.sim

    # -- admission -------------------------------------------------------------------

    def estimated_wait_s(self) -> float:
        """Up-front queueing estimate for a new arrival: requests ahead
        of it over the gate's observed service rate.  Zero until the
        latency EWMA warms (never shed on a cold estimator)."""
        ewma = self.limiter.ewma_latency
        if ewma is None:
            return 0.0
        limit = max(1, self.limiter.limit)
        ahead = len(self.queue) + max(0, self.inflight - limit) + 1
        return ahead * ewma / limit

    def acquire(self, function, request_id: int, deadline_at: Optional[float],
                trace, bypass: bool):
        """Generator: take one concurrency slot, parking in the bounded
        queue when the shard is at its limit.  Raises
        :class:`RequestShed` instead of parking (or after parking, when
        the budget drains) for requests that cannot be served in time.
        """
        sim = self.sim
        controller = self.controller
        self.arrived += 1
        if bypass:
            # A half-open breaker's probe: the only signal that can
            # close the breaker again, so it never queues and is never
            # shed.
            self.bypassed += 1
            self.admitted += 1
            self.inflight += 1
            return
        if self.inflight < self.limiter.limit and not self.queue:
            self.admitted += 1
            self.inflight += 1
            return
        config = controller.config
        if len(self.queue) >= config.queue_capacity:
            controller.shed_request(self, function, request_id,
                                    "queue_full", 0.0)
        budget = None if deadline_at is None else deadline_at - sim.now
        if budget is not None:
            if budget <= 0.0:
                controller.shed_request(self, function, request_id,
                                        "deadline", 0.0)
            fraction = config.predictive_budget_fraction
            if (fraction is not None
                    and self.estimated_wait_s() > budget * fraction):
                controller.shed_request(self, function, request_id,
                                        "predicted_wait", 0.0)
        entry = _QueueEntry(sim.event(), sim.now)
        self.queue.append(entry)
        self.queued += 1
        if len(self.queue) > self.max_queue_depth:
            self.max_queue_depth = len(self.queue)
        controller.note_pressure()
        queue_span = trace.begin_phase("queue", shard=self.label)
        if budget is None:
            yield entry.event
        else:
            yield sim.any_of([entry.event, sim.timeout(budget)])
        waited = sim.now - entry.enqueued_s
        self.queue_wait_s += waited
        trace.end_phase(queue_span)
        if not entry.event.triggered:
            # The deadline budget drained while parked: shed, not dead.
            # (On the knife's edge where grant and deadline land on the
            # same instant, the triggered grant wins and the retry loop
            # expires the request normally.)
            entry.cancelled = True
            try:
                self.queue.remove(entry)
            except ValueError:
                pass
            controller.note_pressure()
            controller.shed_request(self, function, request_id,
                                    "deadline", waited)
        # Granted: _drain already took the slot on this waiter's behalf.
        self.admitted += 1
        return

    def release(self, service_s: float, ok: bool) -> None:
        """One in-flight request finished: feed the limiter, drain the
        queue into any capacity the new limit allows."""
        self.inflight -= 1
        before = self.limiter.limit
        self.limiter.on_complete(service_s, ok)
        after = self.limiter.limit
        if after != before:
            self.trajectory.append((round(self.sim.now, 9), after))
            self.limit_min_seen = min(self.limit_min_seen, after)
            self.limit_max_seen = max(self.limit_max_seen, after)
        self._drain()
        self.controller.note_pressure()

    def _drain(self) -> None:
        """Grant parked waiters FIFO while slots are free."""
        while self.queue and self.inflight < self.limiter.limit:
            entry = self.queue.popleft()
            if entry.cancelled:
                continue
            self.inflight += 1
            entry.event.succeed()

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic lifetime accounting for the SLO report."""
        trajectory = self.trajectory
        if len(trajectory) > 100:
            step = len(trajectory) / 100.0
            trajectory = [trajectory[int(i * step)] for i in range(100)]
        return {
            "shard": self.label,
            "limit": self.limiter.limit,
            "limit_min": self.limit_min_seen,
            "limit_max": self.limit_max_seen,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "bypassed": self.bypassed,
            "shed": self.shed,
            "queued": self.queued,
            "max_queue_depth": self.max_queue_depth,
            "queue_wait_s": round(self.queue_wait_s, 9),
            "inflight": self.inflight,
            "queue_depth": len(self.queue),
            "limit_trajectory": [list(point) for point in trajectory],
        }


class OverloadController:
    """Per-shard adaptive admission, deadline shedding and brownout.

    Construction self-wires like the other optional engines: it hangs
    itself off ``runtime.invoker.overload``, bounds the runtime's
    dead-letter queue, registers the lazy ``repro_overload_*`` /
    ``repro_shed_*`` metric families, and (when a hedging policy is
    armed) makes sure it carries a throttleable clone token bucket for
    the brownout to close.
    """

    def __init__(self, runtime: "MoleculeRuntime",
                 config: Optional[OverloadConfig] = None):
        self.runtime = runtime
        self.config = config or OverloadConfig()
        self._gates: dict[int, AdmissionGate] = {}
        self._gate_list: list[AdmissionGate] = []
        self.shed_total = 0
        self.shed_by_reason: dict[str, int] = {}
        self.shed_log: deque[dict] = deque(
            maxlen=self.config.shed_log_capacity
        )
        #: Sheds downgraded to stale cache answers (repro.reuse); these
        #: were un-counted from ``shed_total`` because the request was
        #: answered after all.
        self.sheds_downgraded = 0
        self.brownout_active = False
        self.brownout_entries = 0
        self._brownout_s = 0.0
        self._brownout_since: Optional[float] = None
        self.prewarm_suppressed = 0
        self.degraded_forced = 0
        if runtime.obs is not None:
            runtime.obs.ensure_overload_metrics()
        runtime.invoker.overload = self
        # Bound the dead-letter queue so a sustained overload cannot
        # grow it without limit (drop-oldest; see DeadLetterQueue).
        dead_letters = getattr(runtime, "dead_letters", None)
        if (dead_letters is not None
                and self.config.dead_letter_capacity is not None
                and dead_letters.capacity is None):
            dead_letters.capacity = self.config.dead_letter_capacity
        # The brownout throttles hedge clones through the hedging
        # engine's global token bucket; install an unlimited-but-
        # throttleable bucket when the policy has none configured.
        hedging = getattr(runtime, "hedging", None)
        if hedging is not None and self.config.throttle_hedges:
            if hedging.budget is None:
                from repro.hedging.budget import HedgeBudget

                hedging.budget = HedgeBudget()
        frontend = getattr(runtime, "frontend", None)
        if frontend is not None:
            self.attach_frontend(frontend)

    @property
    def sim(self):
        return self.runtime.sim

    # -- gates -----------------------------------------------------------------------

    def attach_frontend(self, frontend) -> None:
        """Create one admission gate per gateway shard."""
        for shard in frontend.shards:
            self.gate_for(shard.gateway, label=str(shard.index))

    def gate_for(self, gateway, label: Optional[str] = None) -> AdmissionGate:
        """The gate guarding ``gateway`` (created on first use, so an
        unsharded runtime gets a single implicit gate)."""
        gate = self._gates.get(id(gateway))
        if gate is None:
            gate = AdmissionGate(
                self, gateway,
                label if label is not None else f"g{len(self._gate_list)}",
            )
            self._gates[id(gateway)] = gate
            self._gate_list.append(gate)
        return gate

    def gates(self) -> list[AdmissionGate]:
        return list(self._gate_list)

    # -- admission -------------------------------------------------------------------

    def acquire(self, gateway, function, request_id: int, trace,
                bypass: bool = False):
        """Generator: take a concurrency slot on the gateway's gate
        (may park in its bounded queue; raises :class:`RequestShed`
        when the request cannot be served within its deadline budget).
        Returns an opaque slot token for :meth:`release`."""
        gate = self.gate_for(gateway)
        deadline_at = gateway.deadline_for(request_id)
        yield from gate.acquire(function, request_id, deadline_at, trace,
                                bypass)
        return (gate, self.sim.now)

    def release(self, slot, ok: bool) -> None:
        """Return a slot taken by :meth:`acquire`; ``ok`` feeds the
        AIMD limiter (service latency is grant-to-completion, so queue
        wait never counts against the limit)."""
        gate, granted_s = slot
        gate.release(self.sim.now - granted_s, ok)

    def shed_request(self, gate: AdmissionGate, function, request_id: int,
                     reason: str, waited_s: float):
        """Account one shed and raise :class:`RequestShed`."""
        gate.shed += 1
        self.shed_total += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        self.shed_log.append({
            "request_id": request_id,
            "function": function.name,
            "shard": gate.label,
            "reason": reason,
            "at_s": round(self.sim.now, 9),
            "waited_s": round(waited_s, 9),
        })
        obs = self.runtime.obs
        if obs is not None:
            obs.on_shed(function.name, reason)
        raise RequestShed(
            f"request {request_id} for {function.name!r} shed at "
            f"admission ({reason})",
            reason=reason,
            request_id=request_id,
        )

    def rescind_shed(self, gateway, reason: str) -> None:
        """Un-count the shed just raised for a request the result cache
        (repro.reuse) downgraded to a stale answer.

        The request ends up in the *answered* column, so leaving the
        shed counted would double-book it and break the conservation
        invariant.  The shed-log record stays (marked ``downgraded``)
        for forensics.
        """
        gate = self.gate_for(gateway)
        gate.shed -= 1
        self.shed_total -= 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 1) - 1
        if not self.shed_by_reason[reason]:
            del self.shed_by_reason[reason]
        if self.shed_log:
            self.shed_log[-1]["downgraded"] = True
        self.sheds_downgraded += 1

    # -- brownout --------------------------------------------------------------------

    def pressure(self) -> float:
        """The saturation signal: worst shard's queue-fill x limit
        utilization (both clamped to [0, 1]).

        Queue fill is normalised by the gate's *limit*, not its queue
        capacity: a backlog as deep as the concurrency window already
        means a full extra service time of queueing, which is pressure
        worth reacting to long before the capacity backstop fills.
        """
        worst = 0.0
        for gate in self._gate_list:
            limit = max(1.0, float(gate.limiter.limit))
            fill = min(1.0, len(gate.queue) / limit)
            util = min(1.0, gate.inflight / limit)
            worst = max(worst, fill * util)
        return worst

    def note_pressure(self) -> None:
        """Re-evaluate the brownout state machine (hysteresis plus a
        minimum dwell)."""
        pressure = self.pressure()
        if not self.brownout_active and pressure >= self.config.brownout_on:
            self._enter_brownout()
        elif (self.brownout_active
              and pressure <= self.config.brownout_off
              and (self._brownout_since is None
                   or self.sim.now - self._brownout_since
                   >= self.config.brownout_min_s)):
            self._exit_brownout()

    def _enter_brownout(self) -> None:
        self.brownout_active = True
        self.brownout_entries += 1
        self._brownout_since = self.sim.now
        self._set_hedge_throttle(True)
        if self.runtime.obs is not None:
            self.runtime.obs.on_brownout(True)

    def _exit_brownout(self) -> None:
        self.brownout_active = False
        if self._brownout_since is not None:
            self._brownout_s += self.sim.now - self._brownout_since
            self._brownout_since = None
        self._set_hedge_throttle(False)
        if self.runtime.obs is not None:
            self.runtime.obs.on_brownout(False)

    def _set_hedge_throttle(self, active: bool) -> None:
        if not self.config.throttle_hedges:
            return
        hedging = getattr(self.runtime, "hedging", None)
        if hedging is not None and hedging.budget is not None:
            hedging.budget.throttled = active

    def brownout_s(self) -> float:
        """Total simulated seconds spent in brownout (open interval
        included when currently active)."""
        active = (self.sim.now - self._brownout_since
                  if self._brownout_since is not None else 0.0)
        return self._brownout_s + active

    # -- brownout effects (consulted by invoker / warmpath) ----------------------------

    def degrade_accelerated(self) -> bool:
        """True while accelerator functions should fall back to their
        CPU-degraded profile."""
        return self.brownout_active and self.config.degrade_accelerated

    def note_degraded(self) -> None:
        self.degraded_forced += 1

    def suppress_prewarm(self) -> bool:
        """True while the warm-path engine must not spawn pre-warm
        instances (each call during brownout counts one suppressed
        stocking pass)."""
        if self.brownout_active and self.config.suppress_prewarm:
            self.prewarm_suppressed += 1
            return True
        return False

    # -- invariants & reporting --------------------------------------------------------

    def conserved(self, admitted: int, answered: int, dead: int) -> bool:
        """The conservation invariant: answered + shed + dead == admitted."""
        return answered + self.shed_total + dead == admitted

    def snapshot(self) -> dict:
        """Deterministic lifetime accounting for the SLO report."""
        return {
            "shed": self.shed_total,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "sheds_downgraded": self.sheds_downgraded,
            "brownout_active": self.brownout_active,
            "brownout_entries": self.brownout_entries,
            "brownout_s": round(self.brownout_s(), 9),
            "prewarm_suppressed": self.prewarm_suppressed,
            "degraded_forced": self.degraded_forced,
            "gates": [gate.snapshot() for gate in self._gate_list],
        }
