"""Deterministic fault injection (see docs/faults.md).

Declarative :class:`FaultPlan`\\ s drive a :class:`FaultInjector` on the
simulation loop; the reliability layer (deadlines, retries, per-PU
circuit breakers, graceful degradation, dead letters — see
:mod:`repro.core.reliability`) absorbs the damage so that every admitted
request is either answered or dead-lettered.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.scenarios import default_plan, run_scenario, scenario_names

__all__ = [
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "default_plan",
    "run_scenario",
    "scenario_names",
]
