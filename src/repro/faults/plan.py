"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec names a fault *kind*, a *target* (a PU name, a FIFO uuid, a
link like ``"cpu0<->dpu0"``) and exactly one *trigger*: an absolute
simulation time (``at_s``) or a gateway admission count
(``after_requests``).  Plans are pure data — they can be built in code,
round-tripped through JSON, and shipped to the CLI — and are executed
by :class:`repro.faults.injector.FaultInjector`.

Determinism: a plan contains no randomness itself.  Probabilistic
faults (FIFO drop/delay windows) draw from a stream forked off the
runtime's seeded RNG, so the same seed and plan replay the exact same
fault history.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Sequence

from repro.errors import FaultPlanError


class FaultKind(enum.Enum):
    """What an injected fault breaks."""

    #: Crash a whole processing unit (OS processes / FPGA image / GPU
    #: context die; the PU is marked down until ``reboot_after_s``).
    PU_CRASH = "pu_crash"
    #: Kill one sandbox (target is a sandbox id or a ``func_id``).
    SANDBOX_KILL = "sandbox_kill"
    #: Drop XPU-FIFO messages (target is a fifo uuid or ``"*"``).
    FIFO_DROP = "fifo_drop"
    #: Delay XPU-FIFO messages (target is a fifo uuid or ``"*"``).
    FIFO_DELAY = "fifo_delay"
    #: Degrade an interconnect link (target is ``"puA<->puB"``).
    LINK_DEGRADE = "link_degrade"
    #: Make the next N bitstream loads on an FPGA fail (target is the
    #: FPGA's PU name).
    BITSTREAM_FAIL = "bitstream_fail"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a target, and exactly one trigger."""

    kind: FaultKind
    target: str
    #: Trigger: fire at this absolute simulation time...
    at_s: Optional[float] = None
    #: ...or once this many requests have been admitted by the gateway.
    after_requests: Optional[int] = None
    #: PU_CRASH: bring the PU back up after this long (None = stays down).
    reboot_after_s: Optional[float] = None
    #: FIFO_DELAY: extra latency added to each affected message.
    delay_s: float = 0.0
    #: FIFO_DROP / FIFO_DELAY: chance each message is affected.
    probability: float = 1.0
    #: FIFO_* / LINK_DEGRADE: lift the fault this long after firing
    #: (None = permanent).
    duration_s: Optional[float] = None
    #: LINK_DEGRADE: multiply link latency by this factor (>= 1).
    latency_factor: float = 1.0
    #: LINK_DEGRADE: divide link bandwidth by this factor (>= 1).
    bandwidth_factor: float = 1.0
    #: BITSTREAM_FAIL: how many consecutive loads fail.
    count: int = 1

    def __post_init__(self):
        triggers = (self.at_s is not None) + (self.after_requests is not None)
        if triggers != 1:
            raise FaultPlanError(
                f"fault {self.kind.value!r} on {self.target!r} needs exactly "
                f"one trigger (at_s or after_requests), got {triggers}"
            )
        if self.at_s is not None and self.at_s < 0:
            raise FaultPlanError("at_s must be >= 0")
        if self.after_requests is not None and self.after_requests < 1:
            raise FaultPlanError("after_requests must be >= 1")
        if not (0.0 <= self.probability <= 1.0):
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise FaultPlanError("delay_s must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise FaultPlanError("duration_s must be > 0")
        if self.latency_factor < 1.0 or self.bandwidth_factor < 1.0:
            raise FaultPlanError("degradation factors must be >= 1")
        if self.count < 1:
            raise FaultPlanError("count must be >= 1")
        if not self.target:
            raise FaultPlanError("target must be non-empty")

    def to_dict(self) -> dict:
        """JSON-friendly form; defaults are omitted."""
        out: dict = {"kind": self.kind.value, "target": self.target}
        for f in fields(self):
            if f.name in ("kind", "target"):
                continue
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        data = dict(data)
        try:
            kind = FaultKind(data.pop("kind"))
        except (KeyError, ValueError) as exc:
            raise FaultPlanError(f"bad fault kind in {data!r}") from exc
        known = {f.name for f in fields(cls)} - {"kind"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec fields: {sorted(unknown)}"
            )
        return cls(kind=kind, **data)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """Convenience constructor: ``FaultPlan.of(spec1, spec2)``."""
        return cls(specs=tuple(specs))

    def to_dict(self) -> dict:
        return {"faults": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError('a fault plan needs a "faults" list')
        faults = data["faults"]
        if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
            raise FaultPlanError('"faults" must be a list of specs')
        return cls(specs=tuple(FaultSpec.from_dict(item) for item in faults))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
