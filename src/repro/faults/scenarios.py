"""Canned fault scenarios for the ``repro faults`` CLI and CI smoke.

Each scenario builds a small deployment, installs a fault plan, drives
a fixed workload, and returns a JSON-friendly summary with zero-lost
accounting: every submitted request must be either answered or
dead-lettered.  All scenarios are deterministic — the same seed
produces a byte-identical metrics snapshot.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro import config
from repro.errors import ReproError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.machine import (
    build_cpu_dpu_machine,
    build_full_machine,
)
from repro.hardware.pu import PuKind
from repro.core.molecule import MoleculeRuntime
from repro.core.registry import FunctionDef, WorkProfile
from repro.hardware.fpga import FabricResources, KernelSpec
from repro.sandbox.base import FunctionCode, Language
from repro.sim import Simulator


def scenario_names() -> list[str]:
    """Names of every canned scenario, sorted."""
    return sorted(_SCENARIOS)


def default_plan(name: str) -> FaultPlan:
    """The canned fault plan a scenario runs with by default."""
    try:
        return _SCENARIOS[name][1]()
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None


def run_scenario(
    name: str,
    seed: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
) -> dict:
    """Run one canned scenario and return its summary dict.

    ``plan`` overrides the canned fault plan (e.g. loaded from a JSON
    file via ``repro faults --plan``).  In scenario plans, ``at_s``
    offsets are relative to *workload start* (after boot and deploy),
    not to simulation time zero.
    """
    try:
        build, plan_factory = _SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None
    seed = seed if seed is not None else config.default_seed()
    runtime, jobs = build(seed)
    _attach_plan(runtime, plan if plan is not None else plan_factory())
    return _drive(name, seed, runtime, jobs)


def _attach_plan(runtime: MoleculeRuntime, plan: FaultPlan) -> None:
    """Install a fault plan on a booted, deployed runtime, shifting
    ``at_s`` triggers so they count from now (= workload start)."""
    from repro.faults.injector import FaultInjector

    base = runtime.sim.now
    shifted = FaultPlan.of(*(
        spec if spec.at_s is None else replace(spec, at_s=spec.at_s + base)
        for spec in plan
    ))
    runtime.fault_plan = shifted
    runtime.injector = FaultInjector(runtime, shifted)
    runtime.injector.arm()


# -- the driver ------------------------------------------------------------------------


def _drive(name: str, seed: int, runtime: MoleculeRuntime, jobs: list[dict]) -> dict:
    """Submit every job as its own sim process, run to completion, and
    account for every request."""
    answered: list[object] = []
    failures: list[str] = []

    def submitter(job: dict):
        delay = job.pop("start_after_s", 0.0)
        fn_name = job.pop("function")
        if delay:
            yield runtime.sim.timeout(delay)
        try:
            result = yield from runtime.invoke(fn_name, **job)
        except ReproError as exc:
            failures.append(type(exc).__name__)
        else:
            answered.append(result)

    for index, job in enumerate(jobs):
        runtime.sim.spawn(submitter(dict(job)), name=f"driver-{index}")
    runtime.sim.run()

    submitted = len(jobs)
    dead = len(runtime.dead_letters)
    lost = submitted - len(answered) - dead
    reasons: dict[str, int] = {}
    for entry in runtime.dead_letters.entries():
        reasons[entry.reason] = reasons.get(entry.reason, 0) + 1
    registry = runtime.obs.registry
    summary = {
        "scenario": name,
        "seed": seed,
        "submitted": submitted,
        "answered": len(answered),
        "dead_lettered": dead,
        "lost": lost,
        "retried_requests": sum(1 for r in answered if r.retried),
        "degraded_requests": sum(1 for r in answered if r.degraded),
        "terminal_errors": sorted(failures),
        "dead_letter_reasons": reasons,
        "retries_total": registry.get("repro_retries_total").total(),
        "deadline_exceeded_total": registry.get(
            "repro_deadline_exceeded_total"
        ).total(),
        "faults_injected": (
            runtime.injector.summary() if runtime.injector else []
        ),
        "breaker_states": runtime.health.states(),
        "snapshot": runtime.metrics_snapshot(),
    }
    return summary


# -- scenario builders -----------------------------------------------------------------


def _plan_fpga_degrade() -> FaultPlan:
    return FaultPlan.of(
        FaultSpec(FaultKind.PU_CRASH, "fpga0", after_requests=4),
    )


def _build_fpga_degrade(seed: int):
    """An FPGA function loses its only FPGA mid-workload and degrades
    to the CPU profile; nothing is lost."""
    sim = Simulator()
    machine = build_full_machine(sim, num_dpus=0, num_fpgas=1, num_gpus=0)
    runtime = MoleculeRuntime(
        sim,
        machine,
        seed=seed,
        default_deadline_s=30.0,
    )
    runtime.start()
    fn = FunctionDef(
        name="vadd",
        code=FunctionCode(
            "vadd",
            language=Language.PYTHON,
            kernel=KernelSpec("vadd", FabricResources(luts=4000), exec_time_s=1e-3),
        ),
        work=WorkProfile(warm_exec_ms=10.0, fpga_exec_ms=1.0),
        profiles=(PuKind.FPGA, PuKind.CPU),
    )
    runtime.deploy_now(fn)
    jobs = [
        {"function": "vadd", "payload_bytes": 4096, "start_after_s": 0.005 * i}
        for i in range(12)
    ]
    return runtime, jobs


def _plan_dpu_crash() -> FaultPlan:
    return FaultPlan.of(
        FaultSpec(
            FaultKind.PU_CRASH, "dpu0", at_s=0.05, reboot_after_s=0.5
        ),
    )


def _build_dpu_crash(seed: int):
    """One of two DPUs crashes and later reboots; in-flight requests
    retry onto the surviving DPU."""
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=2)
    runtime = MoleculeRuntime(
        sim,
        machine,
        seed=seed,
        default_deadline_s=30.0,
    )
    runtime.start()
    fn = FunctionDef(
        name="resize",
        code=FunctionCode("resize", language=Language.PYTHON, import_ms=20.0),
        work=WorkProfile(warm_exec_ms=8.0),
        profiles=(PuKind.DPU, PuKind.CPU),
    )
    runtime.deploy_now(fn)
    jobs = [
        {"function": "resize", "kind": PuKind.DPU, "start_after_s": 0.01 * i}
        for i in range(16)
    ]
    return runtime, jobs


def _plan_flaky_nipc() -> FaultPlan:
    # Triggered on first admission (not at t=0) so deployment's own
    # nIPC traffic is unaffected; only request traffic sees drops.
    return FaultPlan.of(
        FaultSpec(
            FaultKind.FIFO_DROP, "*", after_requests=1, probability=0.25
        ),
    )


def _build_flaky_nipc(seed: int):
    """XPU-FIFO messages are dropped at random; hung requests are
    rescued by the gateway deadline and dead-lettered, never lost."""
    sim = Simulator()
    machine = build_cpu_dpu_machine(sim, num_dpus=1)
    runtime = MoleculeRuntime(
        sim,
        machine,
        seed=seed,
        default_deadline_s=2.0,
    )
    runtime.start()
    fn = FunctionDef(
        name="etl",
        code=FunctionCode("etl", language=Language.PYTHON, import_ms=10.0),
        work=WorkProfile(warm_exec_ms=5.0),
        profiles=(PuKind.DPU,),
    )
    runtime.deploy_now(fn)
    jobs = [
        {
            "function": "etl",
            "kind": PuKind.DPU,
            "force_cold": True,
            "start_after_s": 0.02 * i,
        }
        for i in range(10)
    ]
    return runtime, jobs


_SCENARIOS = {
    "fpga-degrade": (_build_fpga_degrade, _plan_fpga_degrade),
    "dpu-crash": (_build_dpu_crash, _plan_dpu_crash),
    "flaky-nipc": (_build_flaky_nipc, _plan_flaky_nipc),
}
