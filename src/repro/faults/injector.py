"""Deterministic fault injection over a running Molecule deployment.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a :class:`~repro.core.molecule.MoleculeRuntime`:

* ``at_s`` triggers become simulation timer processes,
* ``after_requests`` triggers hook the gateway's admission counter,
* each firing flips the corresponding failure surface — OS processes,
  ``runf``/``runG`` state, FIFO fault windows, interconnect degradation,
  FPGA bitstream loads — and records the event.

All randomness (probabilistic FIFO faults) comes from named forks of
the runtime's seeded RNG, so a given ``(seed, plan)`` pair replays the
exact same fault history on every run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import FaultPlanError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.hardware.pu import ProcessingUnit
from repro.xpu.shim import FifoFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.molecule import MoleculeRuntime


class FaultInjector:
    """Drives a fault plan on the simulation loop."""

    def __init__(self, runtime: "MoleculeRuntime", plan: FaultPlan):
        self.runtime = runtime
        self.plan = plan
        #: Chronological record of fired faults: (sim_time, spec).
        self.fired: list[tuple[float, FaultSpec]] = []
        self._rng = runtime.rng.fork("faults")
        self._fifo_seq = 0
        #: Admission-triggered specs not yet fired: (threshold, spec).
        self._pending_admission: list[tuple[int, FaultSpec]] = []
        self._armed = False
        self._validate()

    # -- arming ------------------------------------------------------------------------

    def _validate(self) -> None:
        """Resolve every target eagerly so bad plans fail fast."""
        for spec in self.plan:
            if spec.kind in (FaultKind.PU_CRASH, FaultKind.BITSTREAM_FAIL):
                self._pu(spec.target)
            elif spec.kind is FaultKind.LINK_DEGRADE:
                self._link_endpoints(spec.target)

    def arm(self) -> None:
        """Install triggers.  Idempotent; called by ``start()``."""
        if self._armed:
            return
        self._armed = True
        sim = self.runtime.sim
        for spec in self.plan:
            if spec.at_s is not None:
                sim.spawn(
                    self._timer(spec),
                    name=f"fault:{spec.kind.value}@{spec.at_s}",
                )
            else:
                self._pending_admission.append((spec.after_requests, spec))
        if self._pending_admission:
            self.runtime.gateway.add_admit_listener(self._on_admit)

    def _timer(self, spec: FaultSpec):
        delay = spec.at_s - self.runtime.sim.now
        if delay > 0:
            yield self.runtime.sim.timeout(delay)
        self._fire(spec)

    def _on_admit(self, admitted: int) -> None:
        due = [entry for entry in self._pending_admission if entry[0] <= admitted]
        if not due:
            return
        self._pending_admission = [
            entry for entry in self._pending_admission if entry[0] > admitted
        ]
        for _threshold, spec in due:
            self._fire(spec)

    # -- firing ------------------------------------------------------------------------

    def _fire(self, spec: FaultSpec) -> None:
        handler = {
            FaultKind.PU_CRASH: self._fire_pu_crash,
            FaultKind.SANDBOX_KILL: self._fire_sandbox_kill,
            FaultKind.FIFO_DROP: self._fire_fifo,
            FaultKind.FIFO_DELAY: self._fire_fifo,
            FaultKind.LINK_DEGRADE: self._fire_link_degrade,
            FaultKind.BITSTREAM_FAIL: self._fire_bitstream_fail,
        }[spec.kind]
        handler(spec)
        self.fired.append((self.runtime.sim.now, spec))
        self.runtime.obs.on_fault_injected(spec.kind.value)

    def _fire_pu_crash(self, spec: FaultSpec) -> None:
        runtime = self.runtime
        pu = self._pu(spec.target)
        runtime.health.mark_down(pu)
        if pu.pu_id in runtime.runcs:
            runtime.runcs[pu.pu_id].crash()
        elif pu.pu_id in runtime.runfs:
            runtime.runfs[pu.pu_id].crash()
        elif pu.pu_id in runtime.rungs:
            runtime.rungs[pu.pu_id].lose_context()
        if spec.reboot_after_s is not None:
            runtime.sim.spawn(
                self._reboot(pu, spec.reboot_after_s),
                name=f"reboot:{pu.name}",
            )

    def _reboot(self, pu: ProcessingUnit, delay_s: float):
        yield self.runtime.sim.timeout(delay_s)
        self.runtime.health.mark_up(pu)

    def _fire_sandbox_kill(self, spec: FaultSpec) -> None:
        """Kill sandboxes whose id or func_id matches the target, on
        every container runtime."""
        from repro.sandbox.base import SandboxState

        killed = 0
        for runc in self.runtime.runcs.values():
            for sandbox in list(runc._sandboxes.values()):
                if spec.target not in (sandbox.sandbox_id, sandbox.code.func_id):
                    continue
                backend = sandbox.backend
                if backend and backend.process and backend.process.alive:
                    backend.process.exit()
                sandbox.state = SandboxState.DELETED
                runc.forget(sandbox.sandbox_id)
                killed += 1
        if killed == 0:
            # Nothing matched *now*; that is fine — the plan may target a
            # sandbox that already finished.  Record it regardless.
            pass

    def _fire_fifo(self, spec: FaultSpec) -> None:
        sim = self.runtime.sim
        until = None if spec.duration_s is None else sim.now + spec.duration_s
        self._fifo_seq += 1
        fault = FifoFault(
            uuid=spec.target,
            mode="drop" if spec.kind is FaultKind.FIFO_DROP else "delay",
            probability=spec.probability,
            delay_s=spec.delay_s,
            until_s=until,
            rng=self._rng.fork(f"fifo-{self._fifo_seq}"),
        )
        self.runtime.cluster.fifo_faults.append(fault)

    def _fire_link_degrade(self, spec: FaultSpec) -> None:
        a, b = self._link_endpoints(spec.target)
        interconnect = self.runtime.machine.interconnect
        interconnect.degrade(
            a.pu_id,
            b.pu_id,
            latency_factor=spec.latency_factor,
            bandwidth_factor=spec.bandwidth_factor,
        )
        if spec.duration_s is not None:
            self.runtime.sim.spawn(
                self._restore_link(a.pu_id, b.pu_id, spec.duration_s),
                name=f"restore-link:{spec.target}",
            )

    def _restore_link(self, a: int, b: int, delay_s: float):
        yield self.runtime.sim.timeout(delay_s)
        self.runtime.machine.interconnect.restore(a, b)

    def _fire_bitstream_fail(self, spec: FaultSpec) -> None:
        pu = self._pu(spec.target)
        try:
            runf = self.runtime.runfs[pu.pu_id]
        except KeyError:
            raise FaultPlanError(
                f"bitstream_fail target {spec.target!r} is not an FPGA"
            ) from None
        runf.device.fail_next_programs += spec.count

    # -- lookup helpers ----------------------------------------------------------------

    def _pu(self, name: str) -> ProcessingUnit:
        for pu in self.runtime.machine.pus.values():
            if pu.name == name:
                return pu
        raise FaultPlanError(f"no PU named {name!r} in this machine")

    def _link_endpoints(self, target: str) -> tuple[ProcessingUnit, ProcessingUnit]:
        if "<->" not in target:
            raise FaultPlanError(
                f"link target must look like 'puA<->puB', got {target!r}"
            )
        left, _, right = target.partition("<->")
        return self._pu(left.strip()), self._pu(right.strip())

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> list[dict]:
        """JSON-friendly record of every fired fault, in firing order."""
        return [
            {"at_s": at, **spec.to_dict()}
            for at, spec in self.fired
        ]
