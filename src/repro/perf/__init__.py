"""Wall-clock performance harness (``repro perf``).

Canned workloads measure how fast the *simulator itself* runs on the
host machine — events/sec through the kernel, invocations/sec through
the full runtime stack, and wall-clock replays of the paper's startup
experiment.  Results land in ``BENCH_perf.json`` so regressions are
caught by diffing two runs (``repro perf --compare prior.json``).
"""

from repro.perf.bench import (
    DEFAULT_REGRESSION_THRESHOLD,
    SCENARIOS,
    BenchResult,
    compare_reports,
    format_comparison,
    format_profile,
    format_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "SCENARIOS",
    "BenchResult",
    "compare_reports",
    "format_comparison",
    "format_profile",
    "format_report",
    "run_benchmarks",
    "write_report",
]
