"""Canned benchmark workloads and the ``BENCH_perf.json`` report.

The scenarios cover the hot paths the kernel fast-path work targets:

* ``kernel_microbench`` — the discrete-event core alone: a fan of
  processes churning through :class:`~repro.sim.core.Timeout` events
  (exercises the batched drain, the resume fast path and the timeout
  free-list) plus a fan-in stage of ``all_of`` conditions (exercises
  callback dispatch and defusal).  Headline metric: **events/sec**.
* ``invocation_sweep`` — the full runtime stack: one deployment, then
  warm and forced-cold invocation loops through gateway, scheduler,
  sandbox and XPU-Shim.  Headline metric: **invocations/sec**.
* ``coldstart_storm`` — a concurrent-miss storm under DRAM pressure,
  with and without the warm-path engine.
* ``loadgen_replay`` — the composite system: the golden 2-shard burst
  load trace replayed open-loop through gateway shards, scheduler,
  sandboxes and XPU-Shim, once on the batched kernel and once on the
  pre-batch reference loop.  Headline metric: **events/sec** (batched),
  with the reference rate and the speedup recorded alongside.
* ``fanout_sweep`` — partition-task throughput through the fan-out
  engine (repro.futures), gather-on vs. gather-off.  Headline metric:
  **fanout tasks/sec**.
* ``reuse_sweep`` — the result cache's hit-rate/latency crossover:
  seeded ``zipf`` runs across input skews, cache on vs. off
  (repro.reuse).  Headline metric: **answered requests/sec** over the
  sweep.
* ``startup_replay`` — wall-clock replays of the paper's Fig. 10
  startup experiment (CPU/DPU cfork vs. baseline plus the FPGA
  configurations), the heaviest single experiment in the suite.
  Headline metric: **replays/sec**.

Every scenario reports wall seconds per stage so a regression can be
localised without a profiler, and the kernel-centric scenarios attach a
:meth:`~repro.sim.core.Simulator.kernel_profile` snapshot (batch-size
histogram, slab hit rates, heap ops avoided) that ``repro perf
--profile`` emits next to BENCH_perf.json.  All simulated work is
seeded, so two runs on the same interpreter do identical work —
wall-clock noise is the only nondeterminism.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Report format version (bump on breaking schema changes).
SCHEMA = "repro-perf/1"

#: Relative events/sec (or invocations/sec, ...) drop treated as a
#: regression by ``--compare``.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Seed for all simulated work; fixed so every run does identical work.
BENCH_SEED = 1879


@dataclass
class BenchResult:
    """One scenario's measurements."""

    name: str
    wall_s: float
    #: Headline rates, e.g. ``{"events_per_sec": 8.1e5}``.  Keys ending
    #: in ``_per_sec`` are compared (higher is better) by ``--compare``.
    metrics: dict = field(default_factory=dict)
    #: Wall seconds per stage, e.g. ``{"deploy_s": 0.01}``.
    stages: dict = field(default_factory=dict)
    #: Workload sizing knobs, recorded for reproducibility.
    params: dict = field(default_factory=dict)
    #: Kernel profiling counters (``Simulator.kernel_profile()``) for
    #: kernel-centric scenarios; emitted by ``repro perf --profile`` as
    #: a sidecar JSON, never into BENCH_perf.json itself.
    profile: Optional[dict] = None

    def to_json(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "metrics": self.metrics,
            "stages": self.stages,
            "params": self.params,
        }


# -- scenarios ---------------------------------------------------------------------


def _bench_kernel(quick: bool) -> BenchResult:
    from repro.sim import Simulator

    procs = 20 if quick else 100
    events_per_proc = 500 if quick else 2_000
    fan_in = 50 if quick else 200

    sim = Simulator()

    def churner(n):
        for _ in range(n):
            yield sim.timeout(1.0)

    for _ in range(procs):
        sim.spawn(churner(events_per_proc))
    t0 = time.perf_counter()
    sim.run()
    churn_s = time.perf_counter() - t0
    churn_events = sim.processed_count

    def waiter():
        yield sim.all_of([sim.timeout(float(i + 1)) for i in range(fan_in)])

    def fan(n):
        for _ in range(n):
            yield from waiter()

    before = sim.processed_count
    for _ in range(procs):
        sim.spawn(fan(4))
    t0 = time.perf_counter()
    sim.run()
    fan_s = time.perf_counter() - t0
    fan_events = sim.processed_count - before

    wall = churn_s + fan_s
    total = sim.processed_count
    return BenchResult(
        name="kernel_microbench",
        profile=sim.kernel_profile(),
        wall_s=wall,
        metrics={
            "events_per_sec": total / wall if wall > 0 else 0.0,
            "events": float(total),
        },
        stages={
            "timeout_churn_s": churn_s,
            "condition_fan_in_s": fan_s,
            "timeout_churn_events_per_sec": (
                churn_events / churn_s if churn_s > 0 else 0.0
            ),
            "condition_fan_in_events_per_sec": (
                fan_events / fan_s if fan_s > 0 else 0.0
            ),
        },
        params={
            "procs": procs,
            "events_per_proc": events_per_proc,
            "fan_in": fan_in,
        },
    )


def _bench_invocations(quick: bool) -> BenchResult:
    from repro import (
        FunctionCode,
        FunctionDef,
        Language,
        MoleculeRuntime,
        PuKind,
        WorkProfile,
    )

    warm = 30 if quick else 150
    cold = 10 if quick else 50

    t0 = time.perf_counter()
    molecule = MoleculeRuntime.create(num_dpus=1, seed=BENCH_SEED)
    hello = FunctionDef(
        name="hello",
        code=FunctionCode("hello", language=Language.PYTHON, import_ms=120.0),
        work=WorkProfile(warm_exec_ms=15.0),
        profiles=(PuKind.CPU, PuKind.DPU),
    )
    molecule.deploy_now(hello)
    deploy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(warm):
        molecule.invoke_now("hello", kind=PuKind.CPU)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(cold):
        molecule.invoke_now("hello", force_cold=True)
    cold_s = time.perf_counter() - t0

    invoke_s = warm_s + cold_s
    invocations = warm + cold
    return BenchResult(
        name="invocation_sweep",
        wall_s=deploy_s + invoke_s,
        metrics={
            "invocations_per_sec": (
                invocations / invoke_s if invoke_s > 0 else 0.0
            ),
            "invocations": float(invocations),
            "sim_events": float(molecule.sim.processed_count),
        },
        stages={
            "deploy_s": deploy_s,
            "warm_sweep_s": warm_s,
            "cold_sweep_s": cold_s,
            "warm_per_invocation_ms": warm_s / warm * 1e3,
            "cold_per_invocation_ms": cold_s / cold * 1e3,
        },
        params={"warm": warm, "cold": cold},
    )


def _bench_coldstart_storm(quick: bool) -> BenchResult:
    """Concurrent-miss storm under DRAM admission pressure.

    Every request misses the warm pool at once and the PU only has
    room for a fraction of them.  With the warm-path engine off each
    miss forks its own sandbox and the overflow dies in placement
    retries; with coalescing on, one single-flight batch serves the
    whole storm from a handful of recycled instances.  The headline
    rate is wall-clock storm throughput with the engine armed; the
    density comparison (sandboxes vs requests) is recorded alongside.
    """
    from repro import (
        FunctionCode,
        FunctionDef,
        Language,
        MoleculeRuntime,
        PuKind,
        WarmPathConfig,
        WorkProfile,
    )
    from repro.errors import ReproError

    requests = 24 if quick else 40
    rounds = 2 if quick else 5

    def run_storm(warmpath):
        molecule = MoleculeRuntime.create(
            num_dpus=1, seed=BENCH_SEED, warmpath=warmpath
        )
        cpu = molecule.machine.host_cpu
        # DRAM admits only ~a fifth of the storm at once, so an
        # uncoalesced miss flood runs straight into placement failures.
        memory_mb = int(cpu.dram_free_mb / max(1, requests // 5))
        molecule.deploy_now(FunctionDef(
            name="storm",
            code=FunctionCode("storm", language=Language.PYTHON,
                              import_ms=120.0, memory_mb=memory_mb),
            work=WorkProfile(warm_exec_ms=15.0),
            profiles=(PuKind.CPU,),
        ))

        outcomes = []

        def guarded():
            try:
                result = yield from molecule.invoke("storm", kind=PuKind.CPU)
                outcomes.append(result)
            except ReproError:
                outcomes.append(None)

        def drive():
            procs = [molecule.sim.spawn(guarded()) for _ in range(requests)]
            yield molecule.sim.all_of(procs)

        molecule.run(drive())
        answered = sum(1 for r in outcomes if r is not None)
        invoker = molecule.invoker
        engine = molecule.warmpath
        sandboxes = invoker.cold_invocations + (
            engine.extra_spawned + engine.prewarm_spawned if engine else 0
        )
        return {
            "answered": answered,
            "cold": invoker.cold_invocations,
            "coalesced": invoker.coalesced_invocations,
            "sandboxes": sandboxes,
        }

    t0 = time.perf_counter()
    for _ in range(rounds):
        off = run_storm(None)
    off_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        on = run_storm(WarmPathConfig())
    on_s = time.perf_counter() - t0

    wall = off_s + on_s
    return BenchResult(
        name="coldstart_storm",
        wall_s=wall,
        metrics={
            "storm_invocations_per_sec": (
                rounds * on["answered"] / on_s if on_s > 0 else 0.0
            ),
            "answered_engine_on": float(on["answered"]),
            "answered_engine_off": float(off["answered"]),
            "sandboxes_engine_on": float(on["sandboxes"]),
            "sandboxes_engine_off": float(off["sandboxes"]),
            "cold_engine_on": float(on["cold"]),
            "cold_engine_off": float(off["cold"]),
            "coalesced_engine_on": float(on["coalesced"]),
        },
        stages={
            "engine_off_s": off_s,
            "engine_on_s": on_s,
        },
        params={"requests": requests, "rounds": rounds},
    )


#: Sizing for the ``loadgen_replay`` scenario, mirroring the golden
#: 2-shard trace recipe (tests/loadgen/data): a seeded bursty plan
#: replayed open-loop through two gateway shards.
REPLAY_SEED = 1234
REPLAY_SHARDS = 2


def _bench_loadgen_replay(quick: bool) -> BenchResult:
    """The composite-system benchmark: a golden-recipe load trace
    through the whole stack, batched kernel vs. the pre-batch loop.

    Everything PR 1-7 built — sharded gateways, scheduler, sandboxes,
    XPU-Shim, observability spans — runs on the sim kernel, so this is
    the number that says what the batching is worth end to end, not
    just on the microbench.  Both runs replay the *same* seeded plan
    and produce the same trace (asserted in tests); only the drain
    strategy differs.
    """
    from repro.loadgen import OpenLoopDriver, build_runtime
    from repro.loadgen.scenarios import _SCENARIOS

    rps, duration_s = (40.0, 3.0) if quick else (120.0, 20.0)
    repeats = 3 if quick else 15

    from repro.sim.rng import SeededRng

    plan = _SCENARIOS["burst"](
        SeededRng(REPLAY_SEED).fork("loadgen:burst"), rps, duration_s
    )

    def replay(batched: bool):
        import gc

        runtime, frontend = build_runtime(
            plan, seed=REPLAY_SEED, shards=REPLAY_SHARDS, batched=batched
        )
        # Collector pauses land arbitrarily inside a ~100 ms replay and
        # dominate run-to-run variance (pyperf disables GC for the same
        # reason); both drain strategies are timed under the same rule.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            records = OpenLoopDriver(runtime, plan, frontend).run()
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        answered = sum(1 for r in records if r.answered)
        return wall, runtime.sim, answered

    # The replay is short (tens of ms), so single runs are dominated by
    # scheduler noise; interleaved best-of-N isolates the deterministic
    # cost, and the headline speedup is the *median of paired ratios*
    # (each iteration times both modes back to back, alternating order)
    # so slow drift in background load cancels out of the comparison.
    replay(batched=False)  # warm-up: imports, first-touch allocations
    replay(batched=True)
    reference_s = batched_s = float("inf")
    sim = answered = None
    ratios: list[float] = []
    for i in range(repeats):
        if i % 2 == 0:
            ref_wall = replay(batched=False)[0]
            wall, run_sim, run_answered = replay(batched=True)
        else:
            wall, run_sim, run_answered = replay(batched=True)
            ref_wall = replay(batched=False)[0]
        ratios.append(ref_wall / wall)
        reference_s = min(reference_s, ref_wall)
        if wall < batched_s:
            batched_s, sim, answered = wall, run_sim, run_answered
    ratios.sort()
    speedup = ratios[len(ratios) // 2]

    events = sim.processed_count
    wall = reference_s + batched_s
    return BenchResult(
        name="loadgen_replay",
        wall_s=wall,
        profile=sim.kernel_profile(),
        metrics={
            "events_per_sec": events / batched_s if batched_s > 0 else 0.0,
            "reference_events_per_sec": (
                events / reference_s if reference_s > 0 else 0.0
            ),
            "events": float(events),
            "invocations": float(len(plan)),
            "answered": float(answered),
            "speedup_vs_reference": speedup,
        },
        stages={
            "batched_replay_s": batched_s,
            "reference_replay_s": reference_s,
        },
        params={
            "seed": REPLAY_SEED,
            "shards": REPLAY_SHARDS,
            "rps": rps,
            "duration_s": duration_s,
        },
    )


def _bench_fanout_sweep(quick: bool) -> BenchResult:
    """Partition-task throughput through the fan-out engine.

    One seeded ``fanout`` load run per gather mode: straggler-aware
    gather armed (the default) and disarmed.  The headline rate is
    wall-clock partition tasks/sec with gather on; the simulated
    gather-stage p99 for both modes rides along so a regression in the
    speculation path (slower sweeps, lost wakeups) shows up as a
    latency delta even when wall throughput is unchanged.
    """
    from repro.loadgen.scenarios import run_load

    tasks = 256 if quick else 2_048

    def sweep(gather: bool):
        t0 = time.perf_counter()
        report = run_load(
            "fanout", seed=REPLAY_SEED, quick=quick, tasks=tasks,
            shards=REPLAY_SHARDS, fanout_gather=gather,
        )
        wall = time.perf_counter() - t0
        return wall, report["fanout"]

    on_s, on = sweep(True)
    off_s, off = sweep(False)
    wall = on_s + off_s
    return BenchResult(
        name="fanout_sweep",
        wall_s=wall,
        metrics={
            "fanout_tasks_per_sec": (
                on["tasks_done"] / on_s if on_s > 0 else 0.0
            ),
            "tasks": float(on["tasks_done"]),
            "jobs": float(on["jobs"]),
            "speculations": float(on["speculations"]),
            "gather_p99_ms": on["stages"]["gather"]["p99_ms"],
            "gather_off_p99_ms": off["stages"]["gather"]["p99_ms"],
        },
        stages={
            "gather_on_s": on_s,
            "gather_off_s": off_s,
        },
        params={
            "seed": REPLAY_SEED,
            "shards": REPLAY_SHARDS,
            "tasks": tasks,
        },
    )


def _bench_reuse_sweep(quick: bool) -> BenchResult:
    """Result-cache hit-rate/latency crossover across Zipf skews.

    One seeded ``zipf`` load run per (skew, cache on/off) pair.  As the
    input-popularity skew rises the cache-on hit rate climbs and its
    answered-p99 falls away from the cache-off run — the crossover the
    computation-reuse engine (repro.reuse) exists for, with the
    checked-in BENCH_load_cache.json pinning the s=1.1 point.  The
    headline rate is wall-clock answered requests/sec summed over the
    whole sweep, so a slow cache path (lookup overhead, single-flight
    bookkeeping) shows up even where simulated latency is unchanged.
    """
    from repro.loadgen.scenarios import run_load

    skews = (0.7, 1.1) if quick else (0.5, 0.7, 0.9, 1.1, 1.4)
    metrics: dict[str, float] = {}
    stages: dict[str, float] = {}
    answered_total = 0
    t_all = time.perf_counter()
    for skew in skews:
        tag = f"s{int(round(skew * 100)):03d}"
        for reuse in (False, True):
            mode = "on" if reuse else "off"
            t0 = time.perf_counter()
            report = run_load(
                "zipf", seed=REPLAY_SEED, quick=quick,
                shards=REPLAY_SHARDS, zipf_s=skew, reuse=reuse,
            )
            stages[f"{tag}_{mode}_s"] = time.perf_counter() - t0
            metrics[f"{tag}_{mode}_p99_ms"] = (
                report["latency"]["end_to_end"]["p99_ms"]
            )
            metrics[f"{tag}_{mode}_answered"] = float(
                report["load"]["answered"]
            )
            answered_total += report["load"]["answered"]
            if reuse:
                metrics[f"{tag}_hit_rate"] = report["reuse"]["hit_rate"]
    wall = time.perf_counter() - t_all
    metrics["reuse_answered_per_sec"] = (
        answered_total / wall if wall > 0 else 0.0
    )
    return BenchResult(
        name="reuse_sweep",
        wall_s=wall,
        metrics=metrics,
        stages=stages,
        params={
            "seed": REPLAY_SEED,
            "shards": REPLAY_SHARDS,
            "skews": list(skews),
        },
    )


def _bench_startup_replay(quick: bool) -> BenchResult:
    from repro.analysis import experiments as ex

    replays = 3 if quick else 20

    # One warm-up replay keeps import costs out of the measurement.
    ex.fig10_startup()
    per_replay: list[float] = []
    t_all = time.perf_counter()
    for _ in range(replays):
        t0 = time.perf_counter()
        ex.fig10_startup()
        per_replay.append(time.perf_counter() - t0)
    wall = time.perf_counter() - t_all

    return BenchResult(
        name="startup_replay",
        wall_s=wall,
        metrics={
            "replays_per_sec": replays / wall if wall > 0 else 0.0,
            "replays": float(replays),
        },
        stages={
            "best_replay_s": min(per_replay),
            "worst_replay_s": max(per_replay),
            "mean_replay_s": wall / replays,
        },
        params={"replays": replays},
    )


#: name -> scenario runner; ``repro perf --scenario`` keys into this.
SCENARIOS: dict[str, Callable[[bool], BenchResult]] = {
    "kernel_microbench": _bench_kernel,
    "invocation_sweep": _bench_invocations,
    "coldstart_storm": _bench_coldstart_storm,
    "loadgen_replay": _bench_loadgen_replay,
    "fanout_sweep": _bench_fanout_sweep,
    "reuse_sweep": _bench_reuse_sweep,
    "startup_replay": _bench_startup_replay,
}


# -- report ------------------------------------------------------------------------


def run_benchmarks(
    quick: bool = False,
    scenarios: Optional[list[str]] = None,
    profile: bool = False,
) -> dict:
    """Run the selected scenarios and return the report dict.

    ``profile=True`` adds a top-level ``"profiles"`` mapping (scenario
    name -> kernel counter snapshot) for the scenarios that attach one;
    the CLI strips it into a sidecar file so BENCH_perf.json's schema
    is unchanged.
    """
    names = list(SCENARIOS) if not scenarios else list(scenarios)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)}")
    results = {name: SCENARIOS[name](quick) for name in names}
    report = {
        "schema": SCHEMA,
        "quick": quick,
        "seed": BENCH_SEED,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
        "scenarios": {name: r.to_json() for name, r in results.items()},
    }
    if profile:
        report["profiles"] = {
            name: r.profile
            for name, r in results.items()
            if r.profile is not None
        }
    return report


def write_report(report: dict, path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: dict) -> str:
    """Human-readable summary of one report."""
    lines = []
    for name, scenario in sorted(report["scenarios"].items()):
        lines.append(f"{name}: {scenario['wall_s']:.3f}s")
        for key, value in sorted(scenario["metrics"].items()):
            if key.endswith("_per_sec"):
                lines.append(f"  {key:<32} {value:>12,.0f}")
        for key, value in sorted(scenario["stages"].items()):
            if key.endswith("_per_sec"):
                lines.append(f"  {key:<32} {value:>12,.0f}")
            else:
                lines.append(f"  {key:<32} {value:>12.4f}")
    return "\n".join(lines)


def format_profile(profiles: dict) -> str:
    """Human-readable summary of the kernel counter snapshots."""
    lines = []
    for name, prof in sorted(profiles.items()):
        mean = prof.get("mean_batch_size", 0.0)
        lines.append(
            f"{name}: {prof['events_processed']:,} events in "
            f"{prof['batches_drained']:,} batches "
            f"(mean {mean:.1f}/batch, "
            f"{prof['heap_ops_avoided']:,} heap ops avoided)"
        )
        hist = prof.get("batch_size_hist", {})
        if hist:
            parts = ", ".join(f"{k}: {v:,}" for k, v in hist.items())
            lines.append(f"  batch sizes   {parts}")
        slab = prof.get("slab", {})
        if slab:
            parts = ", ".join(
                f"{kind} {entry['hit_rate']:.0%}"
                for kind, entry in slab.items()
            )
            lines.append(f"  slab hit rate {parts}")
    return "\n".join(lines)


# -- comparison --------------------------------------------------------------------


def compare_reports(
    current: dict,
    prior: dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[dict]:
    """Regressions of ``current`` against ``prior``.

    Compares every ``*_per_sec`` metric in scenarios both reports ran
    (higher is better); a relative drop beyond ``threshold`` is a
    regression.  Scenarios run at different sizes (``quick`` vs. full)
    are skipped — rates are roughly size-independent but the guard
    keeps apples with apples when params are recorded differently.
    """
    regressions: list[dict] = []
    for name, scenario in current["scenarios"].items():
        before = prior.get("scenarios", {}).get(name)
        if before is None:
            continue
        if scenario.get("params") != before.get("params"):
            continue
        for key, now_value in scenario["metrics"].items():
            if not key.endswith("_per_sec"):
                continue
            prior_value = before.get("metrics", {}).get(key)
            if not prior_value:
                continue
            delta = (now_value - prior_value) / prior_value
            if delta < -threshold:
                regressions.append({
                    "scenario": name,
                    "metric": key,
                    "prior": prior_value,
                    "current": now_value,
                    "delta": delta,
                })
    return regressions


def format_comparison(regressions: list[dict], threshold: float) -> str:
    """Human-readable comparison verdict."""
    if not regressions:
        return f"no regressions beyond {threshold:.0%}"
    lines = [f"REGRESSIONS beyond {threshold:.0%}:"]
    for r in regressions:
        lines.append(
            f"  {r['scenario']}.{r['metric']}: "
            f"{r['prior']:,.0f} -> {r['current']:,.0f} ({r['delta']:+.1%})"
        )
    return "\n".join(lines)
