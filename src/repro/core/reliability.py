"""The reliability layer: retry policy, circuit breakers, dead letters.

Molecule spans loosely coupled PUs — DPUs running their own OS behind
RDMA, FPGAs behind DMA — exactly the setting where partial failure is
routine.  This module holds the mechanisms the invoker and scheduler
use to survive it:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic (seeded) jitter;
* :class:`CircuitBreaker` / :class:`HealthRegistry` — per-PU
  consecutive-failure breakers with half-open probing, plus hard
  up/down state driven by injected crashes; the scheduler excludes
  unavailable PUs from placement candidates;
* :class:`DeadLetterQueue` — requests exhausted of retries land here
  rather than vanishing, preserving the invariant that every admitted
  request is either answered or dead-lettered (never both, never
  neither).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro import config
from repro.sim.rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.pu import ProcessingUnit
    from repro.obs import Observability


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + deterministic jitter."""

    max_attempts: int = config.RELIABILITY.max_attempts
    backoff_base_ms: float = config.RELIABILITY.backoff_base_ms
    backoff_multiplier: float = config.RELIABILITY.backoff_multiplier
    backoff_max_ms: float = config.RELIABILITY.backoff_max_ms
    jitter: float = config.RELIABILITY.backoff_jitter

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff durations must be non-negative")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def backoff_s(self, attempt: int, rng: Optional[SeededRng] = None) -> float:
        """Pause before retry number ``attempt`` (1 = first retry).

        Jitter is drawn from ``rng`` — a seeded stream — so the same
        seed reproduces the same retry timeline.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        base = min(base, self.backoff_max_ms)
        if rng is not None and self.jitter and base > 0:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base * config.MS


class BreakerState(enum.Enum):
    """Circuit-breaker lifecycle states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Numeric encoding for the ``repro_breaker_state`` gauge.
BREAKER_STATE_VALUE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class CircuitBreaker:
    """Consecutive-failure breaker over one PU.

    CLOSED counts consecutive failures; at the threshold it trips OPEN
    and rejects the PU for ``open_s``.  After that cool-down the next
    availability check moves it to HALF_OPEN, where exactly one probe
    attempt is admitted: success closes the breaker, failure re-opens
    it for another full cool-down.
    """

    def __init__(
        self,
        failure_threshold: int = config.RELIABILITY.breaker_failure_threshold,
        open_s: float = config.RELIABILITY.breaker_open_s,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure threshold must be >= 1: {failure_threshold}")
        if open_s <= 0:
            raise ValueError(f"open duration must be positive: {open_s}")
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.probe_in_flight = False
        #: (sim_time, new_state) transition log for tests and reports.
        self.transitions: list[tuple[float, BreakerState]] = []
        #: Invoked (with no arguments) on every state transition; the
        #: health registry hooks this to invalidate availability caches.
        self.on_change: Optional[callable] = None

    def _transition(self, state: BreakerState, now: float) -> None:
        if state is self.state:
            return
        self.state = state
        self.transitions.append((now, state))
        if self.on_change is not None:
            self.on_change()

    def allows(self, now: float) -> bool:
        """True if an attempt may target this PU at ``now``.

        Moves OPEN -> HALF_OPEN once the cool-down elapsed; in
        HALF_OPEN only one probe is admitted until it resolves.
        """
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.open_s:
                self._transition(BreakerState.HALF_OPEN, now)
                self.probe_in_flight = False
            else:
                return False
        if self.state is BreakerState.HALF_OPEN:
            return not self.probe_in_flight
        return True

    def begin_attempt(self, now: float) -> None:
        """Mark an attempt in flight (claims the half-open probe slot)."""
        if self.state is BreakerState.HALF_OPEN:
            self.probe_in_flight = True

    def record_success(self, now: float) -> None:
        """An attempt on this PU completed: close the breaker."""
        self.consecutive_failures = 0
        self.probe_in_flight = False
        self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """An attempt on this PU failed: count it, maybe trip open."""
        self.probe_in_flight = False
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN for a new cool-down.
            self.opened_at = now
            self._transition(BreakerState.OPEN, now)
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.opened_at = now
            self._transition(BreakerState.OPEN, now)


class HealthRegistry:
    """Per-PU health: crash state plus a circuit breaker each.

    The scheduler consults :meth:`available` when building placement
    candidates; the invoker reports attempt outcomes through
    :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        sim,
        failure_threshold: int = config.RELIABILITY.breaker_failure_threshold,
        open_s: float = config.RELIABILITY.breaker_open_s,
        obs: Optional["Observability"] = None,
    ):
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.open_s = open_s
        self.obs = obs
        self._breakers: dict[int, CircuitBreaker] = {}
        self._down: set[int] = set()
        #: Crash generation per PU: incremented on every mark_down so an
        #: in-flight attempt can detect "my PU crashed while I ran" even
        #: if the PU rebooted before the attempt finished.
        self._epochs: dict[int, int] = {}
        #: Names for metric labels, filled lazily.
        self._names: dict[int, str] = {}
        #: Bumped on every availability-affecting change (crashes,
        #: reboots, breaker transitions, probe claims).  The scheduler
        #: keys its candidate cache on this.
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    def breaker(self, pu: "ProcessingUnit") -> CircuitBreaker:
        """The breaker guarding one PU (created on first use)."""
        self._names[pu.pu_id] = pu.name
        breaker = self._breakers.get(pu.pu_id)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.open_s)
            breaker.on_change = self._bump
            self._breakers[pu.pu_id] = breaker
        return breaker

    # -- crash state -------------------------------------------------------------

    def mark_down(self, pu: "ProcessingUnit") -> None:
        """A crash took this PU offline (until :meth:`mark_up`)."""
        self._names[pu.pu_id] = pu.name
        self._down.add(pu.pu_id)
        self._epochs[pu.pu_id] = self._epochs.get(pu.pu_id, 0) + 1
        self._bump()

    def mark_up(self, pu: "ProcessingUnit") -> None:
        """The PU rebooted: back in service with a fresh breaker."""
        self._down.discard(pu.pu_id)
        breaker = self.breaker(pu)
        breaker.consecutive_failures = 0
        breaker.probe_in_flight = False
        breaker._transition(BreakerState.CLOSED, self.sim.now)
        self._bump()

    def is_down(self, pu: "ProcessingUnit") -> bool:
        """True while the PU is crashed."""
        return pu.pu_id in self._down

    def epoch(self, pu: "ProcessingUnit") -> int:
        """How many times this PU has crashed so far."""
        return self._epochs.get(pu.pu_id, 0)

    # -- availability ------------------------------------------------------------

    def available(self, pu: "ProcessingUnit") -> bool:
        """True if the scheduler may place onto this PU right now."""
        if pu.pu_id in self._down:
            return False
        return self.breaker(pu).allows(self.sim.now)

    def filter_available(self, pus) -> tuple[tuple, float]:
        """``(available_pus, valid_until)`` for a candidate list.

        ``valid_until`` is the earliest simulated time at which an
        excluded OPEN breaker finishes its cool-down and could move to
        HALF_OPEN — i.e. when this filtering result may silently become
        stale without any registry mutation.  ``inf`` when no excluded
        PU can recover on its own.
        """
        now = self.sim.now
        available: list = []
        valid_until = float("inf")
        for pu in pus:
            if self.available(pu):
                available.append(pu)
                continue
            breaker = self._breakers.get(pu.pu_id)
            if (
                pu.pu_id not in self._down
                and breaker is not None
                and breaker.state is BreakerState.OPEN
                and breaker.opened_at is not None
            ):
                valid_until = min(valid_until, breaker.opened_at + breaker.open_s)
        return tuple(available), valid_until

    # -- attempt outcomes ----------------------------------------------------------

    def begin_attempt(self, pu: "ProcessingUnit") -> None:
        """An attempt is about to target ``pu`` (claims probe slots)."""
        self.breaker(pu).begin_attempt(self.sim.now)
        self._bump()

    def record_success(self, pu: "ProcessingUnit") -> None:
        """An attempt on ``pu`` succeeded."""
        breaker = self.breaker(pu)
        before = breaker.state
        breaker.record_success(self.sim.now)
        self._observe(pu, before, breaker.state)

    def record_failure(self, pu: "ProcessingUnit") -> None:
        """An attempt on ``pu`` failed."""
        breaker = self.breaker(pu)
        before = breaker.state
        breaker.record_failure(self.sim.now)
        self._observe(pu, before, breaker.state)

    def _observe(self, pu, before: BreakerState, after: BreakerState) -> None:
        if self.obs is not None and before is not after:
            self.obs.on_breaker_transition(pu.name, after.value)

    # -- reporting ---------------------------------------------------------------

    def states(self) -> dict[str, str]:
        """PU name -> breaker state (``down`` overrides), for reports."""
        out: dict[str, str] = {}
        for pu_id, breaker in sorted(self._breakers.items()):
            name = self._names.get(pu_id, str(pu_id))
            out[name] = "down" if pu_id in self._down else breaker.state.value
        for pu_id in sorted(self._down):
            out.setdefault(self._names.get(pu_id, str(pu_id)), "down")
        return out


@dataclass
class DeadLetter:
    """One request that exhausted its retry budget (or its deadline)."""

    request_id: int
    function: str
    attempts: int
    errors: tuple[str, ...]
    enqueued_at: float
    reason: str = "retries_exhausted"


class DeadLetterQueue:
    """Terminal parking lot for undeliverable requests.

    ``capacity`` bounds how many entries are *retained*: when a push
    overflows a bounded queue the oldest retained entry is dropped
    (drop-oldest — under sustained overload the recent dead letters are
    the ones an operator can still act on) and ``overflowed`` counts
    the evictions, mirrored to the lazy
    ``repro_dead_letter_overflow_total`` counter when ``obs`` is wired.
    ``len()`` deliberately keeps reporting the *total* ever
    dead-lettered, not the retained count, so the machine-wide
    conservation invariant (``answered + shed + dead == admitted``)
    survives overflow.  The default (``capacity=None``) is unbounded
    and behaves exactly as before; the overload controller installs a
    bound when it arms.
    """

    def __init__(self, capacity: Optional[int] = None, obs=None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.obs = obs
        self._entries: deque[DeadLetter] = deque()
        self.total = 0
        self.overflowed = 0

    def push(self, entry: DeadLetter) -> DeadLetter:
        """Record one undeliverable request (a bounded queue at
        capacity evicts its oldest entry)."""
        self.total += 1
        self._entries.append(entry)
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popleft()
            self.overflowed += 1
            if self.obs is not None:
                self.obs.on_dead_letter_overflow()
        return entry

    def entries(self) -> list[DeadLetter]:
        """Retained dead letters, oldest first."""
        return list(self._entries)

    def request_ids(self) -> set[int]:
        """The retained request ids (for the answered-xor-dead check)."""
        return {entry.request_id for entry in self._entries}

    def __len__(self) -> int:
        """Total requests ever dead-lettered (invariant accounting;
        equals the retained count while unbounded or under capacity)."""
        return self.total
